"""Tests for the fleet-batched prediction tick and probability recompute."""

import numpy as np
import pytest

from repro.backends import FileSystemBackend
from repro.core import LinearUtility, RequestDistribution, SessionConfig
from repro.core.greedy import probability_matrices
from repro.encoding import ImageAsset, ProgressiveImageEncoder
from repro.fleet import (
    ArrivalConfig,
    FleetConfig,
    FleetScheduleService,
    KhameleonFleet,
    batch_probability_matrices,
)
from repro.predictors.simple import make_point_predictor
from repro.sim import ControlChannel, FixedRateLink, Simulator

BLOCK = 50_000


def make_fleet(
    num_sessions,
    batched,
    n=6,
    nb=3,
    bw=1_000_000,
    cache_blocks=24,
    arrival=None,
):
    sim = Simulator()
    assets = {i: ImageAsset(image_id=i, size_bytes=nb * BLOCK) for i in range(n)}
    encoder = ProgressiveImageEncoder(assets, block_size_bytes=BLOCK)
    backend = FileSystemBackend(sim, encoder, fetch_delay_s=0.0)
    link = FixedRateLink(sim, bytes_per_second=bw, propagation_delay_s=0.01)
    fleet = KhameleonFleet(
        sim=sim,
        backend=backend,
        make_predictor=lambda i: make_point_predictor(n),
        utility=LinearUtility(),
        num_blocks=[nb] * n,
        downlink=link,
        make_uplink=lambda i: ControlChannel(sim, latency_s=0.01),
        config=FleetConfig(
            num_sessions=num_sessions,
            batched_prediction=batched,
            arrival=arrival,
            session=SessionConfig(
                cache_bytes=cache_blocks * BLOCK,
                block_bytes=BLOCK,
                initial_bandwidth_bytes_per_s=float(bw),
                lookahead=4,
            ),
        ),
    )
    return sim, fleet, backend


def run_static(num_sessions, batched, until=1.0):
    """Drive every session with a deterministic request script."""
    sim, fleet, backend = make_fleet(num_sessions, batched)
    for i, session in enumerate(fleet.sessions):
        # Requests at staggered times so predictor states keep changing.
        sim.schedule(0.02 + 0.05 * i, session.client.request, i % 6)
        sim.schedule(0.40 + 0.05 * i, session.client.request, (i + 2) % 6)
    fleet.start()
    sim.run(until=until)
    fleet.stop()
    streams = tuple(
        tuple(
            (o.request, o.latency_s, o.utility_at_upcall, o.blocks_at_upcall)
            for o in s.cache_manager.outcomes
        )
        for s in fleet.sessions
    )
    sent = tuple((s.sender.blocks_sent, s.sender.bytes_sent) for s in fleet.sessions)
    states = tuple(s.server.states_received for s in fleet.sessions)
    return sim, fleet, streams, sent, states


class TestBatchProbabilityMatrices:
    def _random_spec(self, rng, C):
        n = int(rng.integers(4, 60))
        m = int(rng.integers(0, min(n, 20)))
        deltas = np.unique(np.sort(rng.random(int(rng.integers(1, 5))) + 0.01))
        k = len(deltas)
        ids = rng.choice(n, size=m, replace=False).astype(np.int64)
        if m:
            raw = rng.random((k, m))
            probs = rng.uniform(0.2, 0.9) * raw / raw.sum(axis=1, keepdims=True)
        else:
            probs = np.empty((k, 0))
        residual = 1.0 - probs.sum(axis=1)
        dist = RequestDistribution(
            n=n, deltas_s=deltas, explicit_ids=ids,
            explicit_probs=probs, residual=residual,
        )
        t = int(rng.integers(0, C + 1))
        slot = float(rng.uniform(0.001, 0.4))
        gamma = 1.0 if rng.random() < 0.5 else float(rng.uniform(0.8, 1.0))
        return (dist, C, t, slot, gamma)

    def test_matches_per_scheduler_path_bitwise(self):
        rng = np.random.default_rng(7)
        for trial in range(30):
            C = int(rng.integers(1, 40))
            specs = [self._random_spec(rng, C) for _ in range(int(rng.integers(1, 12)))]
            batched = batch_probability_matrices(specs)
            for spec, (pmat, pres) in zip(specs, batched):
                ref_pmat, ref_pres = probability_matrices(*spec)
                np.testing.assert_array_equal(pmat, ref_pmat)
                np.testing.assert_array_equal(pres, ref_pres)

    def test_mixed_cache_sizes_grouped_correctly(self):
        rng = np.random.default_rng(11)
        specs = [self._random_spec(rng, C) for C in (4, 9, 4, 17, 9)]
        batched = batch_probability_matrices(specs)
        for spec, (pmat, pres) in zip(specs, batched):
            ref_pmat, ref_pres = probability_matrices(*spec)
            np.testing.assert_array_equal(pmat, ref_pmat)
            np.testing.assert_array_equal(pres, ref_pres)


class TestStaticFleetEquivalence:
    def test_results_unchanged_vs_per_session_recompute(self):
        """The whole point: coalescing the ticks must not change what
        any session receives, serves, or measures."""
        _, _, streams_a, sent_a, states_a = run_static(5, batched=False)
        _, _, streams_b, sent_b, states_b = run_static(5, batched=True)
        assert streams_a == streams_b
        assert sent_a == sent_b
        assert states_a == states_b

    def test_one_batched_event_per_tick(self):
        """events_processed accounting: per-session mode pays one tick
        event + one uplink delivery per session per interval; batched
        mode pays one tick + one apply for the whole fleet."""
        sim_a, fleet_a, *_ = run_static(8, batched=False)
        sim_b, fleet_b, *_ = run_static(8, batched=True)
        service = fleet_b.schedule_service
        assert service is not None
        assert service.ticks > 0
        # Every tick where states changed coalesced into ONE apply event.
        assert service.batched_recomputes <= service.ticks
        assert service.sessions_recomputed >= 8 * 2  # both request waves
        # The coalesced fleet processes strictly fewer events, by at
        # least the (2 events/session - 2 events/fleet) tick savings.
        ticks = service.ticks
        assert sim_b.events_processed <= sim_a.events_processed - (ticks - 2)

    def test_service_disabled_leaves_no_service(self):
        _, fleet, _ = make_fleet(2, batched=False)
        assert fleet.schedule_service is None
        assert all(s.predictor_manager._task is not None for s in fleet.sessions)

    def test_service_enabled_owns_the_cadence(self):
        _, fleet, _ = make_fleet(2, batched=True)
        assert isinstance(fleet.schedule_service, FleetScheduleService)
        # Sessions register at start, not at construction.
        assert fleet.schedule_service.num_registered == 0
        fleet.start()
        assert fleet.schedule_service.num_registered == 2
        assert all(s.predictor_manager._task is None for s in fleet.sessions)

    def test_report_includes_prediction_diagnostics(self):
        _, fleet, _, _, _ = run_static(3, batched=True)
        report = fleet.report()
        assert "prediction" in report
        assert report["prediction"]["batched_recomputes"] > 0


class TestChurnWithService:
    def test_sessions_register_and_unregister_across_churn(self):
        arrival = ArrivalConfig(rate_per_s=4.0, mean_dwell_s=0.8, dwell_sigma=0.0, seed=1)
        sim, fleet, _ = make_fleet(6, batched=True, arrival=arrival)
        fleet.start()
        sim.run(until=4.0)
        fleet.stop()
        service = fleet.schedule_service
        assert fleet.manager.stats.admitted == 6
        assert fleet.manager.stats.departed > 0
        # Departed sessions must have unregistered themselves.
        assert service.num_registered == 0
        assert service.ticks > 0

    def test_departed_session_is_not_polled(self):
        arrival = ArrivalConfig(rate_per_s=50.0, mean_dwell_s=0.05, dwell_sigma=0.0, seed=2)
        sim, fleet, _ = make_fleet(3, batched=True, arrival=arrival)
        fleet.start()
        sim.run(until=2.0)
        fleet.stop()
        for session in fleet.sessions:
            assert not session.active

"""Tests for the Appendix A.2 reference schedule semantics."""

import numpy as np
import pytest

from repro.core.distribution import RequestDistribution
from repro.core.scheduler import GainTable
from repro.core.semantics import PredictionArrival, ReferenceScheduler
from repro.core.utility import LinearUtility


def point(n, request):
    return RequestDistribution.point(n, request, (0.05, 0.25))


@pytest.fixture()
def reference():
    gains = GainTable(LinearUtility(), [4] * 6)
    return ReferenceScheduler(gains, cache_blocks=8, seed=3)


class TestReferenceSchedule:
    def test_uniform_until_first_prediction(self, reference):
        """Slots before any arrival use the uniform distribution — the
        schedule still allocates (push from t=0, §3.2)."""
        schedule = reference.schedule(4, arrivals=[])
        assert len(schedule) == 4
        assert all(b is not None for b in schedule)

    def test_prediction_redirects_later_slots(self, reference):
        """After a point prediction arrives, subsequent slots feed the
        predicted request until its gains are exhausted (slots 0–1 run
        uniform and may already have given it a block or two)."""
        arrivals = [PredictionArrival(slot=2, dist=point(6, 5))]
        schedule = reference.schedule(6, arrivals)
        early = [b.request for b in schedule[:2] if b is not None]
        later = [b.request for b in schedule[2:6] if b is not None]
        # The point-mass slots feed request 5 until its 4 blocks exist.
        assert later.count(5) == 4 - early.count(5)
        # And they start immediately at the arrival slot.
        assert later[0] == 5

    def test_prefix_unchanged_by_later_arrival(self, reference):
        """A.2: blocks before an arrival's slot are not rescheduled."""
        base = reference.schedule(8, arrivals=[])
        updated = ReferenceScheduler(
            reference.gains, reference.C, seed=3
        ).schedule(8, [PredictionArrival(slot=4, dist=point(6, 1))])
        assert base[:4] == updated[:4]

    def test_duplicate_arrival_slots_rejected(self, reference):
        arrivals = [
            PredictionArrival(slot=1, dist=point(6, 0)),
            PredictionArrival(slot=1, dist=point(6, 2)),
        ]
        with pytest.raises(ValueError):
            reference.schedule(4, arrivals)

    def test_negative_inputs_rejected(self, reference):
        with pytest.raises(ValueError):
            PredictionArrival(slot=-1, dist=point(6, 0))
        with pytest.raises(ValueError):
            reference.schedule(-1, [])

    def test_batch_boundary_resets_counts(self, reference):
        """After C slots the batch resets: request 5 (4 blocks) can be
        allocated again in the next batch (the ring overwrote it)."""
        arrivals = [PredictionArrival(slot=0, dist=point(6, 5))]
        schedule = reference.schedule(16, arrivals)  # two C=8 batches
        first = [b for b in schedule[:8] if b is not None and b.request == 5]
        second = [b for b in schedule[8:] if b is not None and b.request == 5]
        assert len(first) == 4
        # Without a mirror the reference scheduler resets per batch, so
        # the hot request is re-pushed in batch 2.
        assert len(second) >= 1

    def test_deterministic_given_seed(self, reference):
        a = reference.schedule(8, [PredictionArrival(slot=3, dist=point(6, 2))])
        b = ReferenceScheduler(reference.gains, reference.C, seed=3).schedule(
            8, [PredictionArrival(slot=3, dist=point(6, 2))]
        )
        assert a == b

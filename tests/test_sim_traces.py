"""Tests for the Mahimahi trace model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import MTU_BYTES, MahimahiTrace


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MahimahiTrace(())

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            MahimahiTrace((5, 3))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MahimahiTrace((-1, 3))

    def test_period_defaults_to_last_stamp(self):
        assert MahimahiTrace((10, 20, 30)).period_ms == 30

    def test_period_must_cover_last_stamp(self):
        with pytest.raises(ValueError):
            MahimahiTrace((10, 50), period_ms=40)

    def test_from_lines_roundtrip(self):
        trace = MahimahiTrace((1, 2, 5), period_ms=10)
        parsed = MahimahiTrace.from_lines(trace.to_lines())
        assert parsed.opportunities_ms == (1, 2, 5)

    def test_repeated_stamps_allowed(self):
        trace = MahimahiTrace((5, 5, 5), period_ms=10)
        assert trace.capacity_bytes(0.0, 0.010) == 3 * MTU_BYTES


class TestConstantRate:
    def test_mean_rate_close_to_request(self):
        for rate in (100_000, 1_500_000, 15_000_000):
            trace = MahimahiTrace.constant_rate(rate)
            assert trace.mean_rate_bytes_per_s == pytest.approx(rate, rel=0.02)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            MahimahiTrace.constant_rate(0)


class TestTransmitFinish:
    def test_zero_bytes_is_instant(self):
        trace = MahimahiTrace((10, 20), period_ms=20)
        assert trace.transmit_finish(0.005, 0) == 0.005

    def test_single_packet_uses_next_opportunity(self):
        trace = MahimahiTrace((10, 20), period_ms=20)
        assert trace.transmit_finish(0.0, 100) == pytest.approx(0.010)
        assert trace.transmit_finish(0.010, 100) == pytest.approx(0.020)

    def test_wraps_across_cycles(self):
        trace = MahimahiTrace((10, 20), period_ms=20)
        # Third packet is the first opportunity of the second cycle.
        assert trace.transmit_finish(0.0, 3 * MTU_BYTES) == pytest.approx(0.030)

    def test_large_transfer_spans_many_opportunities(self):
        trace = MahimahiTrace.constant_rate(1_500_000)  # 1000 pkts/s
        finish = trace.transmit_finish(0.0, 1_500_000)
        assert finish == pytest.approx(1.0, rel=0.01)

    def test_serialization_chains(self):
        """Feeding finish back as start serializes transfers FIFO."""
        trace = MahimahiTrace.constant_rate(1_500_000)
        t1 = trace.transmit_finish(0.0, 150_000)
        t2 = trace.transmit_finish(t1, 150_000)
        assert t2 > t1
        assert t2 == pytest.approx(0.2, rel=0.05)


class TestCapacity:
    def test_empty_interval(self):
        trace = MahimahiTrace((10,), period_ms=20)
        assert trace.capacity_bytes(1.0, 1.0) == 0
        assert trace.capacity_bytes(2.0, 1.0) == 0

    def test_one_cycle(self):
        trace = MahimahiTrace((10, 20), period_ms=20)
        assert trace.capacity_bytes(0.0, 0.020) == 2 * MTU_BYTES

    def test_many_cycles(self):
        trace = MahimahiTrace((10, 20), period_ms=20)
        assert trace.capacity_bytes(0.0, 0.200) == 20 * MTU_BYTES


@given(
    stamps=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=50),
    nbytes=st.integers(min_value=1, max_value=10 * MTU_BYTES),
    start_ms=st.integers(min_value=0, max_value=5000),
)
def test_property_finish_never_before_start(stamps, nbytes, start_ms):
    trace = MahimahiTrace(tuple(sorted(stamps)))
    start = start_ms / 1000.0
    assert trace.transmit_finish(start, nbytes) >= start


@given(
    stamps=st.lists(st.integers(min_value=1, max_value=1000), min_size=2, max_size=50),
    sizes=st.lists(st.integers(min_value=1, max_value=3 * MTU_BYTES), min_size=2, max_size=10),
)
def test_property_chained_transfers_respect_capacity(stamps, sizes):
    """Bytes pushed through chained transfers never exceed link capacity."""
    trace = MahimahiTrace(tuple(sorted(stamps)))
    t = 0.0
    for size in sizes:
        t = trace.transmit_finish(t, size)
    total = sum(sizes)
    # Capacity up to and including the final instant must cover the
    # packets consumed (each packet carries up to MTU bytes).
    packets_used = sum(-(-s // MTU_BYTES) for s in sizes)
    assert trace.capacity_bytes(0.0, t + 1e-9) >= packets_used * MTU_BYTES
    assert total <= packets_used * MTU_BYTES

"""Shared pytest configuration.

Hypothesis profiles: property tests default to a bounded ``repro``
profile so the full suite stays fast; export
``HYPOTHESIS_PROFILE=thorough`` for a deeper search when hunting a
shrunk counterexample.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("thorough", max_examples=300, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))

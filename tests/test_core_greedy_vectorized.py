"""Vectorized scheduling core: equivalence and regression tests.

Three guarantees from the perf refactor are pinned here:

1. ``GreedyScheduler.schedule_batch`` (the incremental-gain fast path)
   produces **bit-identical** schedules to a ``next_block`` loop (the
   scalar Listing 1 reference) at every seed, across meta-request
   on/off, mirror on/off, mid-stream distribution updates, rollbacks,
   and mirror evictions.
2. The current implementation reproduces schedules captured from the
   pre-refactor code at fixed seeds (golden regression — the cached
   explicit/promoted sets and the incremental ``have`` array change no
   behaviour).
3. The vectorized ``expected_utility`` and
   ``RequestDistribution.explicit_matrix`` agree with their scalar
   references.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    GainTable,
    GreedyScheduler,
    LinearUtility,
    RequestDistribution,
    RingBufferCache,
    ssim_image_utility,
)
from repro.core.greedy import probability_matrices
from repro.core.scheduler import ScheduledBlock, expected_utility, expected_utility_scalar


def drive(n, nb_seed, C, seed, meta, use_mirror, use_fast, mirror_cap=None):
    """Scripted scheduler workout; returns the flattened block stream.

    The script interleaves distribution updates, partial batch pulls,
    rollbacks of in-batch tails, and (with a mirror) sent-block
    confirmations — everything that mutates the fast path's
    incremental state.  ``use_fast`` picks ``schedule_batch`` vs the
    scalar ``next_block`` loop; both must emit the same stream.
    """
    rng = np.random.default_rng(nb_seed)
    nb = rng.integers(1, 7, size=n)
    mirror = RingBufferCache(mirror_cap or max(2, C)) if use_mirror else None
    gains = GainTable(LinearUtility(), nb)
    sched = GreedyScheduler(
        gains, cache_blocks=C, mirror=mirror, meta_request=meta, seed=seed
    )
    script = np.random.default_rng(seed + 999)
    out = []
    for _ in range(6):
        dense = script.random((2, n)) + 1e-9
        sched.update_distribution(
            RequestDistribution.from_dense(dense, deltas_s=[0.05, 0.25], threshold=0.02),
            0.01,
        )
        k = int(script.integers(1, C + 3))
        if use_fast:
            batch = sched.schedule_batch(k)
        else:
            batch = []
            for _ in range(k):
                block = sched.next_block()
                if block is None:
                    break
                batch.append(block)
        out += batch
        if batch and script.random() < 0.4:
            # Roll back a tail that is still inside the current batch.
            tail = min(int(script.integers(0, len(batch) + 1)), sched.position)
            if tail:
                sched.rollback(batch[len(batch) - tail :])
                del out[len(out) - tail :]
                batch = batch[: len(batch) - tail]
        if mirror is not None:
            for block in batch:
                mirror.mirror_put(block.request, block.index)
                sched.on_sent(block)
    return [(b.request, b.index) for b in out]


@settings(deadline=None, max_examples=40)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    meta=st.booleans(),
    use_mirror=st.booleans(),
    C=st.integers(min_value=1, max_value=24),
)
def test_property_schedule_batch_bit_identical_to_scalar(seed, meta, use_mirror, C):
    fast = drive(50, seed + 1, C, seed, meta, use_mirror, use_fast=True)
    slow = drive(50, seed + 1, C, seed, meta, use_mirror, use_fast=False)
    assert fast == slow


def test_bit_identity_under_mirror_evictions():
    """A mirror smaller than the batch forces FIFO evictions, which
    shrink other requests' prefixes mid-stream; the evict listener must
    keep the incremental ``have`` array exact."""
    for seed in range(8):
        fast = drive(30, seed + 1, 16, seed, True, True, use_fast=True, mirror_cap=5)
        slow = drive(30, seed + 1, 16, seed, True, True, use_fast=False, mirror_cap=5)
        assert fast == slow


class TestGoldenSchedules:
    """Fixed-seed schedules captured from the pre-refactor implementation.

    Covers the satellite requirement that caching the promoted/explicit
    sets and maintaining ``have`` incrementally changes nothing under a
    fixed seed.
    """

    GOLDEN = {
        (40, 4, 16, 7, True, 0): [
            (22, 0), (34, 0), (28, 0), (7, 0), (10, 0), (34, 1), (0, 0), (31, 0),
            (30, 0), (17, 0), (10, 1), (9, 0), (8, 0), (16, 0), (18, 0), (20, 0),
        ],
        (40, 4, 16, 7, False, 0): [
            (22, 0), (34, 0), (28, 0), (7, 0), (10, 0), (34, 1), (0, 0), (31, 0),
            (30, 0), (17, 0), (10, 1), (9, 0), (8, 0), (16, 0), (18, 0), (20, 0),
        ],
        (40, 4, 16, 3, True, 16): [
            (3, 0), (11, 0), (32, 0), (24, 0), (3, 1), (17, 0), (19, 0), (6, 0),
            (29, 0), (4, 0), (15, 0), (21, 0), (17, 1), (24, 1), (29, 1), (38, 0),
        ],
        (25, 3, 12, 11, True, 12): [
            (4, 0), (13, 0), (16, 0), (1, 0), (5, 0), (23, 0), (2, 0), (3, 0),
            (23, 1), (16, 1), (9, 0), (13, 1),
        ],
    }

    @staticmethod
    def run(n, nb, C, seed, meta, mirror_cap, use_fast):
        mirror = RingBufferCache(mirror_cap) if mirror_cap else None
        gains = GainTable(LinearUtility(), [nb] * n)
        sched = GreedyScheduler(
            gains, cache_blocks=C, mirror=mirror, meta_request=meta, seed=seed
        )
        rng = np.random.default_rng(seed)
        dense = rng.random((2, n)) + 1e-9
        sched.update_distribution(
            RequestDistribution.from_dense(dense, deltas_s=[0.05, 0.25]), 0.01
        )
        out = []
        if use_fast:
            first = sched.schedule_batch(C // 2)
        else:
            first = [sched.next_block() for _ in range(C // 2)]
        out += first
        if mirror is not None:
            for block in first:
                mirror.mirror_put(block.request, block.index)
                sched.on_sent(block)
        if use_fast:
            out += sched.schedule_batch()
        else:
            while sched.position < C:
                block = sched.next_block()
                if block is None:
                    break
                out.append(block)
        return [(b.request, b.index) for b in out]

    @pytest.mark.parametrize("cfg", sorted(GOLDEN))
    def test_fast_path_reproduces_seed_schedules(self, cfg):
        assert self.run(*cfg, use_fast=True) == self.GOLDEN[cfg]

    @pytest.mark.parametrize("cfg", sorted(GOLDEN))
    def test_scalar_path_reproduces_seed_schedules(self, cfg):
        assert self.run(*cfg, use_fast=False) == self.GOLDEN[cfg]


class TestCachedSets:
    def test_explicit_set_cached_across_epochs_of_same_distribution(self):
        """Rollbacks and batch resets reuse the distribution object, so
        the explicit-id set must not be rebuilt (identity-cached)."""
        gains = GainTable(LinearUtility(), [4] * 30)
        sched = GreedyScheduler(gains, cache_blocks=8, seed=0)
        dense = np.random.default_rng(0).random((1, 30)) + 1e-9
        dist = RequestDistribution.from_dense(dense, deltas_s=[0.05], threshold=0.02)
        sched.update_distribution(dist, 0.01)
        cached = sched._explicit_set
        batch = sched.schedule_batch(4)
        sched.rollback(batch)  # same distribution: set object survives
        assert sched._explicit_set is cached
        sched.update_distribution(
            RequestDistribution.uniform(30), 0.01
        )  # new ids array: rebuilt
        assert sched._explicit_set is not cached

    def test_promoted_set_tracks_list(self):
        gains = GainTable(LinearUtility(), [4] * 50)
        sched = GreedyScheduler(gains, cache_blocks=12, seed=3)
        sched.update_distribution(RequestDistribution.uniform(50), 0.01)
        batch = sched.schedule_batch()
        assert set(sched._promoted) == sched._promoted_set
        sched.rollback(batch)
        assert set(sched._promoted) == sched._promoted_set == set()


class TestProbabilityMatrices:
    def test_install_rejects_shape_mismatch_without_mutating(self):
        gains = GainTable(LinearUtility(), [4] * 10)
        sched = GreedyScheduler(gains, cache_blocks=6, seed=0)
        dense = np.random.default_rng(0).random((1, 10)) + 1e-9
        dist = RequestDistribution.from_dense(dense, deltas_s=[0.05], threshold=0.02)
        before = sched._dist
        with pytest.raises(ValueError):
            sched.install_distribution(dist, 0.01, np.zeros((6, 1)), np.zeros(6))
        assert sched._dist is before  # rejected install left no residue
        good = probability_matrices(dist, 6, 0, 0.01)
        sched.install_distribution(dist, 0.01, *good)
        assert sched._dist is dist

    def test_zero_remaining_slots(self):
        dist = RequestDistribution.uniform(5)
        pmat, pres = probability_matrices(dist, 4, 4, 0.01)
        assert pmat.shape == (4, 0)
        np.testing.assert_array_equal(pres, np.zeros(4))

    def test_rows_before_position_are_zero(self):
        dense = np.random.default_rng(1).random((2, 8)) + 1e-9
        dist = RequestDistribution.from_dense(dense, deltas_s=[0.05, 0.2])
        pmat, pres = probability_matrices(dist, 6, 2, 0.05)
        np.testing.assert_array_equal(pmat[:2], 0.0)
        np.testing.assert_array_equal(pres[:2], 0.0)
        assert (pmat[2:] >= 0).all()
        # Row t aggregates all remaining slots; later rows shed mass.
        assert pres[2] >= pres[5]


class TestExplicitMatrixEquivalence:
    @settings(deadline=None, max_examples=40)
    @given(seed=st.integers(min_value=0, max_value=5_000))
    def test_matches_explicit_at_bitwise(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 50))
        deltas = np.unique(np.sort(rng.random(int(rng.integers(1, 5))) + 0.01))
        k = len(deltas)
        m = int(rng.integers(0, n))
        ids = rng.choice(n, size=m, replace=False).astype(np.int64)
        if m:
            raw = rng.random((k, m))
            probs = rng.uniform(0.3, 0.95) * raw / raw.sum(axis=1, keepdims=True)
        else:
            probs = np.empty((k, 0))
        residual = 1.0 - probs.sum(axis=1)
        dist = RequestDistribution(
            n=n, deltas_s=deltas, explicit_ids=ids,
            explicit_probs=probs, residual=residual,
        )
        # Below, between, exactly on, and beyond the horizons.
        qs = np.concatenate(
            [rng.random(7) * deltas[-1] * 1.5, deltas,
             [deltas[0] * 0.5, deltas[-1] * 2.0]]
        )
        mat, res = dist.explicit_matrix(qs)
        for row, q in enumerate(qs):
            _ids, p, r = dist.explicit_at(float(q))
            np.testing.assert_array_equal(mat[row], p)
            assert res[row] == r


class TestExpectedUtilityEquivalence:
    @settings(deadline=None, max_examples=40)
    @given(seed=st.integers(min_value=0, max_value=5_000))
    def test_matches_scalar_reference(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 40))
        nb = rng.integers(1, 9, size=n)
        utility = ssim_image_utility() if seed % 2 else LinearUtility()
        gains = GainTable(utility, nb)
        C = int(rng.integers(1, 30))
        schedule = [ScheduledBlock(int(r), 0) for r in rng.integers(0, n, size=C)]
        dense = rng.random((2, n)) + 1e-9
        dist = RequestDistribution.from_dense(dense, deltas_s=[0.05, 0.3])
        seeds = {
            int(r): int(c)
            for r, c in zip(rng.integers(0, n, size=3), rng.integers(0, 5, size=3))
        }
        gamma = 0.97 if seed % 3 else 1.0
        a = expected_utility_scalar(
            schedule, dist, gains, 0.01, gamma=gamma, initial_blocks=seeds
        )
        b = expected_utility(
            schedule, dist, gains, 0.01, gamma=gamma, initial_blocks=seeds
        )
        assert b == pytest.approx(a, rel=1e-9, abs=1e-12)

    def test_empty_schedule(self):
        gains = GainTable(LinearUtility(), [3, 3])
        dist = RequestDistribution.uniform(2)
        assert expected_utility([], dist, gains, 0.01) == 0.0

    def test_validation(self):
        gains = GainTable(LinearUtility(), [3, 3])
        dist = RequestDistribution.uniform(2)
        with pytest.raises(ValueError):
            expected_utility([], dist, gains, 0.0)
        with pytest.raises(ValueError):
            expected_utility([], dist, gains, 0.01, gamma=1.5)

"""Tests for the client-side cache manager: upcalls and preemption."""

import pytest

from repro.core.blocks import Block
from repro.core.cache import RingBufferCache
from repro.core.cache_manager import CacheManager
from repro.core.utility import LinearUtility
from repro.sim import Simulator


def make_manager(sim=None, capacity=16, nb=4):
    sim = sim or Simulator()
    upcalls = []
    manager = CacheManager(
        clock=sim,
        cache=RingBufferCache(capacity),
        num_blocks_of=lambda r: nb,
        utility=LinearUtility(),
        on_upcall=upcalls.append,
    )
    return sim, manager, upcalls


def blk(request, index, size=10):
    return Block(request=request, index=index, size_bytes=size)


class TestCacheHit:
    def test_hit_serves_immediately(self):
        sim, mgr, upcalls = make_manager()
        mgr.on_block(blk(1, 0))
        outcome = mgr.register(1)
        assert outcome.cache_hit
        assert outcome.served
        assert outcome.latency_s == 0.0
        assert len(upcalls) == 1

    def test_hit_utility_reflects_prefix(self):
        sim, mgr, upcalls = make_manager(nb=4)
        mgr.on_block(blk(1, 0))
        mgr.on_block(blk(1, 1))
        outcome = mgr.register(1)
        assert outcome.blocks_at_upcall == 2
        assert outcome.utility_at_upcall == pytest.approx(0.5)

    def test_miss_waits_for_block(self):
        sim, mgr, upcalls = make_manager()
        sim.schedule(0.0, lambda: mgr.register(5))
        sim.schedule(0.3, lambda: mgr.on_block(blk(5, 0)))
        sim.run()
        outcome = mgr.outcomes[0]
        assert not outcome.cache_hit
        assert outcome.served_at == pytest.approx(0.3)
        assert outcome.latency_s == pytest.approx(0.3)


class TestPreemption:
    def test_newer_upcall_preempts_older_pending(self):
        sim, mgr, upcalls = make_manager()
        mgr.register(1)  # pending
        mgr.register(2)  # pending
        mgr.on_block(blk(2, 0))  # serves request 2 -> preempts 1
        o1, o2 = mgr.outcomes
        assert o1.preempted and not o1.served
        assert o2.served and not o2.preempted

    def test_hit_preempts_older_pending(self):
        sim, mgr, upcalls = make_manager()
        mgr.register(1)  # pending (no data)
        mgr.on_block(blk(2, 0))  # ignored: serves nothing yet for 1... caches 2
        mgr.register(2)  # immediate hit -> preempts request 1
        o1, o2 = mgr.outcomes
        assert o1.preempted
        assert o2.cache_hit

    def test_block_serves_newest_pending_of_same_request(self):
        sim, mgr, upcalls = make_manager()
        mgr.register(7)
        mgr.register(7)
        mgr.on_block(blk(7, 0))
        first, second = mgr.outcomes
        assert first.preempted
        assert second.served

    def test_out_of_order_completion_counts_preempted(self):
        """Request stream 1,2,3; only 3's data arrives -> 1,2 preempted."""
        sim, mgr, upcalls = make_manager()
        for r in (1, 2, 3):
            mgr.register(r)
        mgr.on_block(blk(3, 0))
        preempted = [o for o in mgr.outcomes if o.preempted]
        assert {o.request for o in preempted} == {1, 2}


class TestImprovements:
    def test_later_blocks_improve_latest_served(self):
        sim, mgr, upcalls = make_manager(nb=4)
        mgr.on_block(blk(1, 0))
        mgr.register(1)
        mgr.on_block(blk(1, 1))
        mgr.on_block(blk(1, 2))
        outcome = mgr.outcomes[0]
        assert [u.blocks_available for u in outcome.improvements] == [2, 3]
        assert outcome.improvements[-1].utility == pytest.approx(0.75)
        assert all(u.is_improvement for u in outcome.improvements)

    def test_improvement_stops_when_new_request_pending(self):
        sim, mgr, upcalls = make_manager(nb=4)
        mgr.on_block(blk(1, 0))
        mgr.register(1)
        mgr.register(2)  # user moved on
        mgr.on_block(blk(1, 1))  # stale data: no improvement upcall
        assert mgr.outcomes[0].improvements == []

    def test_non_prefix_block_does_not_improve(self):
        sim, mgr, upcalls = make_manager(nb=4)
        mgr.on_block(blk(1, 0))
        mgr.register(1)
        mgr.on_block(blk(1, 3))  # hole at 1,2: prefix still 1
        assert mgr.outcomes[0].improvements == []


class TestBookkeeping:
    def test_logical_timestamps_increase(self):
        sim, mgr, _ = make_manager()
        a = mgr.register(1)
        b = mgr.register(2)
        assert b.logical_ts > a.logical_ts

    def test_pending_count(self):
        sim, mgr, _ = make_manager()
        mgr.register(1)
        mgr.register(2)
        assert mgr.pending_count == 2
        mgr.on_block(blk(2, 0))
        assert mgr.pending_count == 0  # served 2, preempted 1

    def test_finalize_clears_pending(self):
        sim, mgr, _ = make_manager()
        mgr.register(1)
        mgr.finalize()
        assert mgr.pending_count == 0
        assert not mgr.outcomes[0].served
        assert not mgr.outcomes[0].preempted

    def test_utility_capped_at_one(self):
        """More cached blocks than Nb (stale + new copies) can't exceed 1."""
        sim, mgr, _ = make_manager(nb=2)
        mgr.on_block(blk(1, 0))
        mgr.on_block(blk(1, 1))
        mgr.on_block(blk(1, 2))  # beyond Nb (shouldn't happen, but defend)
        outcome = mgr.register(1)
        assert outcome.utility_at_upcall == 1.0

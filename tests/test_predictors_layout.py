"""Tests for layouts and gaussian → request-distribution mapping."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.predictors.layout import BoundingBox, ChartLayout, GridLayout


class TestBoundingBox:
    def test_contains(self):
        box = BoundingBox(0, 0, 10, 10)
        assert box.contains(5, 5)
        assert box.contains(0, 0)
        assert not box.contains(10, 5)  # half-open
        assert not box.contains(-1, 5)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(0, 0, 0, 10)

    def test_gaussian_mass_centered(self):
        box = BoundingBox(-1, -1, 1, 1)
        mass = box.gaussian_mass(0, 0, 0.3, 0.3)
        assert mass > 0.99

    def test_gaussian_mass_far_away(self):
        box = BoundingBox(0, 0, 1, 1)
        assert box.gaussian_mass(100, 100, 1, 1) < 1e-6

    def test_zero_std_is_point_mass(self):
        box = BoundingBox(0, 0, 1, 1)
        assert box.gaussian_mass(0.5, 0.5, 0, 0) == 1.0
        assert box.gaussian_mass(5.0, 0.5, 0, 0) == 0.0


class TestGridLayout:
    def make(self):
        return GridLayout(rows=10, cols=10, cell_width=50, cell_height=50)

    def test_request_at_and_bbox_roundtrip(self):
        grid = self.make()
        for request in (0, 37, 99):
            box = grid.bbox(request)
            cx, cy = (box.x0 + box.x1) / 2, (box.y0 + box.y1) / 2
            assert grid.request_at(cx, cy) == request

    def test_request_at_outside_is_none(self):
        grid = self.make()
        assert grid.request_at(-1, 5) is None
        assert grid.request_at(5, 501) is None

    def test_request_id_layout(self):
        grid = self.make()
        assert grid.request_at(25, 25) == 0  # row 0, col 0
        assert grid.request_at(75, 25) == 1  # row 0, col 1
        assert grid.request_at(25, 75) == 10  # row 1, col 0

    def test_num_requests(self):
        assert self.make().num_requests == 100

    def test_clamp(self):
        grid = self.make()
        x, y = grid.clamp(-5, 1000)
        assert grid.request_at(x, y) is not None

    def test_bbox_out_of_range(self):
        with pytest.raises(IndexError):
            self.make().bbox(100)

    def test_validation(self):
        with pytest.raises(ValueError):
            GridLayout(0, 5, 10, 10)
        with pytest.raises(ValueError):
            GridLayout(5, 5, 0, 10)


class TestGridGaussianDistribution:
    def make(self):
        return GridLayout(rows=10, cols=10, cell_width=50, cell_height=50)

    def test_tight_gaussian_concentrates_on_cell(self):
        grid = self.make()
        dist = grid.gaussian_distribution(
            means=[(275.0, 275.0)], stds=[(5.0, 5.0)], deltas_s=[0.05]
        )
        target = grid.request_at(275, 275)
        assert dist.prob_of(target, 0.05) > 0.9

    def test_wide_gaussian_spreads_mass(self):
        grid = self.make()
        dist = grid.gaussian_distribution(
            means=[(250.0, 250.0)], stds=[(200.0, 200.0)], deltas_s=[0.05]
        )
        target = grid.request_at(250, 250)
        assert dist.prob_of(target, 0.05) < 0.2
        assert dist.num_explicit > 10

    def test_rows_sum_to_one(self):
        grid = self.make()
        dist = grid.gaussian_distribution(
            means=[(100.0, 100.0), (400.0, 400.0)],
            stds=[(30.0, 30.0), (120.0, 120.0)],
            deltas_s=[0.05, 0.25],
        )
        for delta in (0.05, 0.1, 0.25):
            assert dist.dense_at(delta).sum() == pytest.approx(1.0, abs=1e-6)

    def test_uniform_row_flag(self):
        grid = self.make()
        dist = grid.gaussian_distribution(
            means=[(100.0, 100.0), (100.0, 100.0)],
            stds=[(10.0, 10.0), (10.0, 10.0)],
            deltas_s=[0.05, 0.5],
            uniform_rows=[False, True],
        )
        # The 0.5 horizon is uniform: every request has prob 1/100.
        assert dist.prob_of(0, 0.5) == pytest.approx(0.01, abs=1e-6)

    def test_off_grid_mean_still_valid(self):
        grid = self.make()
        dist = grid.gaussian_distribution(
            means=[(-500.0, -500.0)], stds=[(10.0, 10.0)], deltas_s=[0.05]
        )
        assert dist.dense_at(0.05).sum() == pytest.approx(1.0, abs=1e-6)

    def test_mismatched_lengths_rejected(self):
        grid = self.make()
        with pytest.raises(ValueError):
            grid.gaussian_distribution(
                means=[(0, 0)], stds=[(1, 1), (2, 2)], deltas_s=[0.05, 0.15]
            )


class TestChartLayout:
    def make(self):
        return ChartLayout(
            [BoundingBox(i * 100, 0, (i + 1) * 100 - 10, 80) for i in range(6)]
        )

    def test_request_at(self):
        charts = self.make()
        assert charts.request_at(50, 40) == 0
        assert charts.request_at(250, 40) == 2
        assert charts.request_at(95, 40) is None  # gutter between charts

    def test_gaussian_distribution_favors_nearest(self):
        charts = self.make()
        dist = charts.gaussian_distribution(
            means=[(250.0, 40.0)], stds=[(30.0, 30.0)], deltas_s=[0.05]
        )
        probs = [dist.prob_of(i, 0.05) for i in range(6)]
        assert np.argmax(probs) == 2
        assert sum(probs) == pytest.approx(1.0, abs=1e-6)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ChartLayout([])

    def test_far_gaussian_falls_back_to_uniform(self):
        charts = self.make()
        dist = charts.gaussian_distribution(
            means=[(1e7, 1e7)], stds=[(1.0, 1.0)], deltas_s=[0.05]
        )
        assert dist.prob_of(0, 0.05) == pytest.approx(1 / 6, abs=1e-6)


@given(
    mean_x=st.floats(min_value=0, max_value=500),
    mean_y=st.floats(min_value=0, max_value=500),
    std=st.floats(min_value=1.0, max_value=300.0),
)
def test_property_grid_gaussian_always_normalized(mean_x, mean_y, std):
    grid = GridLayout(rows=10, cols=10, cell_width=50, cell_height=50)
    dist = grid.gaussian_distribution(
        means=[(mean_x, mean_y)], stds=[(std, std)], deltas_s=[0.05]
    )
    dense = dist.dense_at(0.05)
    assert dense.sum() == pytest.approx(1.0, abs=1e-5)
    assert (dense >= -1e-12).all()

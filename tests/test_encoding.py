"""Tests for progressive encoders."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.encoding import (
    ImageAsset,
    ProgressiveImageEncoder,
    RowSampleEncoder,
    SingleBlockEncoder,
    aggregate_histogram,
    decode_prefix,
    estimation_error,
    split_padded,
)


class TestSplitPadded:
    def test_exact_multiple(self):
        assert split_padded(100, 25) == [25, 25, 25, 25]

    def test_padding_last_block(self):
        assert split_padded(90, 25) == [25, 25, 25, 25]

    def test_zero_bytes_one_block(self):
        assert split_padded(0, 25) == [25]

    def test_validation(self):
        with pytest.raises(ValueError):
            split_padded(-1, 25)
        with pytest.raises(ValueError):
            split_padded(10, 0)


class TestSingleBlockEncoder:
    def test_one_block_full_size(self):
        enc = SingleBlockEncoder(size_of=lambda r: 1_500_000)
        resp = enc.encode(3, "data")
        assert resp.num_blocks == 1
        assert resp.total_bytes == 1_500_000
        assert resp.blocks[0].payload == "data"
        assert enc.num_blocks(3) == 1

    def test_invalid_size(self):
        enc = SingleBlockEncoder(size_of=lambda r: 0)
        with pytest.raises(ValueError):
            enc.encode(0, None)


class TestProgressiveImageEncoder:
    def make(self, size=1_500_000, block=50_000):
        assets = {7: ImageAsset(image_id=7, size_bytes=size)}
        return ProgressiveImageEncoder(assets, block_size_bytes=block)

    def test_block_count_matches_size(self):
        enc = self.make(size=1_500_000, block=50_000)
        assert enc.num_blocks(7) == 30
        assert enc.encode(7).num_blocks == 30

    def test_blocks_are_uniform_size(self):
        enc = self.make(size=1_490_001, block=50_000)
        resp = enc.encode(7)
        sizes = {b.size_bytes for b in resp.blocks}
        assert sizes == {50_000}

    def test_payload_scan_descriptors(self):
        resp = self.make().encode(7)
        scans = [b.payload for b in resp.blocks]
        assert [s.scan for s in scans] == list(range(30))
        assert all(s.image_id == 7 and s.total_scans == 30 for s in scans)

    def test_asset_validation(self):
        with pytest.raises(ValueError):
            ImageAsset(image_id=0, size_bytes=0)
        with pytest.raises(ValueError):
            ProgressiveImageEncoder({}, block_size_bytes=0)


class TestRowSampleEncoder:
    def rows(self, n=100):
        return np.column_stack([np.arange(n) % 10, np.ones(n)])

    def test_round_robin_striping(self):
        enc = RowSampleEncoder(blocks_per_response=4)
        resp = enc.encode(0, self.rows(100))
        assert resp.num_blocks == 4
        for b, block in enumerate(resp.blocks):
            expected = self.rows(100)[b::4]
            assert np.array_equal(block.payload.rows, expected)

    def test_uniform_block_sizes(self):
        enc = RowSampleEncoder(blocks_per_response=3, bytes_per_row=16)
        resp = enc.encode(0, self.rows(100))  # stripes of 34/33/33 rows
        assert {b.size_bytes for b in resp.blocks} == {34 * 16}

    def test_single_block_is_full_result(self):
        enc = RowSampleEncoder(blocks_per_response=1)
        resp = enc.encode(0, self.rows(50))
        assert np.array_equal(resp.blocks[0].payload.rows, self.rows(50))

    def test_validation(self):
        with pytest.raises(ValueError):
            RowSampleEncoder(0)
        with pytest.raises(ValueError):
            RowSampleEncoder(2, bytes_per_row=0)


class TestDecodePrefix:
    def histogram_rows(self):
        """(bin, count) rows: bin i has count 10*i."""
        return np.column_stack([np.arange(8), 10.0 * np.arange(8)])

    def test_full_prefix_is_exact(self):
        enc = RowSampleEncoder(blocks_per_response=4)
        resp = enc.encode(0, self.histogram_rows())
        decoded = aggregate_histogram(decode_prefix(resp.blocks), 8)
        assert np.allclose(decoded, 10.0 * np.arange(8))

    def test_partial_prefix_scales_counts(self):
        enc = RowSampleEncoder(blocks_per_response=4)
        resp = enc.encode(0, self.histogram_rows())
        decoded = decode_prefix(resp.blocks[:2])
        # 2/4 stripes present, counts scaled by 2x: totals comparable.
        assert decoded[:, 1].sum() == pytest.approx(
            self.histogram_rows()[:, 1].sum(), rel=0.5
        )

    def test_estimation_error_decreases_with_prefix(self):
        rng = np.random.default_rng(1)
        rows = np.column_stack([rng.integers(0, 20, 400), rng.poisson(30, 400)])
        enc = RowSampleEncoder(blocks_per_response=8)
        resp = enc.encode(0, rows)
        errors = [
            estimation_error(resp.blocks[:k], rows, 20) for k in (1, 4, 8)
        ]
        assert errors[2] == pytest.approx(0.0, abs=1e-9)
        assert errors[0] >= errors[2]

    def test_decode_empty_raises(self):
        with pytest.raises(ValueError):
            decode_prefix([])

    def test_decode_foreign_blocks_raises(self):
        enc = SingleBlockEncoder(size_of=lambda r: 10)
        resp = enc.encode(0, "x")
        with pytest.raises(TypeError):
            decode_prefix(resp.blocks)


@given(
    n_rows=st.integers(min_value=0, max_value=300),
    nb=st.integers(min_value=1, max_value=16),
)
def test_property_striping_partitions_rows(n_rows, nb):
    """Every row lands in exactly one stripe; stripes interleave evenly."""
    rows = np.column_stack([np.arange(n_rows), np.arange(n_rows)])
    enc = RowSampleEncoder(blocks_per_response=nb)
    resp = enc.encode(0, rows) if n_rows else None
    if resp is None:
        return
    recovered = np.vstack([b.payload.rows for b in resp.blocks if len(b.payload.rows)])
    assert len(recovered) == n_rows
    assert set(recovered[:, 0].astype(int)) == set(range(n_rows))
    counts = [len(b.payload.rows) for b in resp.blocks]
    assert max(counts) - min(counts) <= 1

"""Tests for dynamic fleet serving: arrivals, admission, departures."""

import pytest

from repro.backends import FileSystemBackend
from repro.backends.throttle import SessionThrottleShare
from repro.core import LinearUtility, SessionConfig
from repro.encoding import ImageAsset, ProgressiveImageEncoder
from repro.fleet import ArrivalConfig, FleetConfig, KhameleonFleet
from repro.predictors.simple import make_point_predictor, make_uniform_predictor
from repro.sim import ControlChannel, FixedRateLink, Simulator

BLOCK = 50_000


def make_fleet(
    num_sessions,
    n=6,
    nb=3,
    bw=1_000_000,
    fetch_delay=0.0,
    weights=None,
    backend_concurrency=None,
    weighted_backend=False,
    arrival=None,
    predictor="point",
    cache_blocks=24,
    lookahead=4,
):
    sim = Simulator()
    assets = {i: ImageAsset(image_id=i, size_bytes=nb * BLOCK) for i in range(n)}
    encoder = ProgressiveImageEncoder(assets, block_size_bytes=BLOCK)
    backend = FileSystemBackend(sim, encoder, fetch_delay_s=fetch_delay)
    link = FixedRateLink(sim, bytes_per_second=bw, propagation_delay_s=0.01)
    make = make_point_predictor if predictor == "point" else make_uniform_predictor
    fleet = KhameleonFleet(
        sim=sim,
        backend=backend,
        make_predictor=lambda i: make(n),
        utility=LinearUtility(),
        num_blocks=[nb] * n,
        downlink=link,
        make_uplink=lambda i: ControlChannel(sim, latency_s=0.01),
        config=FleetConfig(
            num_sessions=num_sessions,
            weights=weights,
            backend_concurrency=backend_concurrency,
            weighted_backend=weighted_backend,
            arrival=arrival,
            session=SessionConfig(
                cache_bytes=cache_blocks * BLOCK,
                block_bytes=BLOCK,
                initial_bandwidth_bytes_per_s=float(bw),
                lookahead=lookahead,
            ),
        ),
    )
    return sim, fleet, backend


class TestArrivalConfig:
    def test_default_is_static(self):
        assert ArrivalConfig().is_static
        assert not ArrivalConfig(rate_per_s=1.0).is_static
        assert not ArrivalConfig(mean_dwell_s=5.0).is_static
        assert not ArrivalConfig(max_concurrent=2).is_static

    def test_plan_is_deterministic(self):
        cfg = ArrivalConfig(rate_per_s=0.5, mean_dwell_s=4.0, seed=3)
        assert cfg.plan(10) == cfg.plan(10)
        other = ArrivalConfig(rate_per_s=0.5, mean_dwell_s=4.0, seed=4)
        assert cfg.plan(10) != other.plan(10)

    def test_static_plan_puts_everyone_at_t0_forever(self):
        plans = ArrivalConfig().plan(4)
        assert [p.arrival_s for p in plans] == [0.0, 0.0, 0.0, 0.0]
        assert all(p.dwell_s is None for p in plans)

    def test_poisson_arrivals_are_ordered_and_positive(self):
        plans = ArrivalConfig(rate_per_s=2.0, seed=1).plan(20)
        times = [p.arrival_s for p in plans]
        assert times == sorted(times)
        assert times[0] > 0.0

    def test_dwells_follow_the_configured_mean(self):
        plans = ArrivalConfig(rate_per_s=1.0, mean_dwell_s=6.0, seed=0).plan(400)
        mean = sum(p.dwell_s for p in plans) / len(plans)
        assert mean == pytest.approx(6.0, rel=0.15)

    def test_zero_sigma_makes_dwell_exact(self):
        plans = ArrivalConfig(mean_dwell_s=3.0, dwell_sigma=0.0).plan(5)
        assert all(p.dwell_s == pytest.approx(3.0) for p in plans)

    def test_expected_concurrency_is_littles_law_capped(self):
        assert ArrivalConfig().expected_concurrency(8) == 8.0
        # rate x dwell = 2 live sessions expected.
        assert ArrivalConfig(rate_per_s=0.5, mean_dwell_s=4.0).expected_concurrency(8) == 2.0
        assert ArrivalConfig(rate_per_s=10.0, mean_dwell_s=10.0, max_concurrent=3).expected_concurrency(8) == 3.0
        assert ArrivalConfig(rate_per_s=0.001, mean_dwell_s=1.0).expected_concurrency(8) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrivalConfig(rate_per_s=-1.0)
        with pytest.raises(ValueError):
            ArrivalConfig(mean_dwell_s=0.0)
        with pytest.raises(ValueError):
            ArrivalConfig(dwell_sigma=-0.1)
        with pytest.raises(ValueError):
            ArrivalConfig(max_concurrent=0)
        with pytest.raises(ValueError):
            ArrivalConfig().plan(0)
        with pytest.raises(ValueError):
            FleetConfig(num_sessions=2, weighted_backend=True)  # needs a budget


class TestDegenerateCase:
    def test_manager_path_with_static_process_matches_static_fleet(self):
        """Rate-0 arrivals through the SessionManager must reproduce the
        eagerly built fleet bit for bit (same requests, same outcomes)."""
        n_sessions = 3

        def drive_static():
            sim, fleet, backend = make_fleet(n_sessions)
            assert fleet.manager is None
            for i, session in enumerate(fleet.sessions):
                sim.schedule_at(0.1 * (i + 1), session.client.request, i)
            fleet.start()
            sim.run(until=2.0)
            fleet.stop()
            return fleet

        def drive_dynamic():
            # max_concurrent forces the manager path; the process itself
            # is still "everyone at t=0, no departures".
            arrival = ArrivalConfig(max_concurrent=n_sessions)
            sim, fleet, backend = make_fleet(n_sessions, arrival=arrival)
            assert fleet.manager is not None

            def on_admit(record):
                sim.schedule_at(
                    0.1 * (record.index + 1),
                    record.session.client.request,
                    record.index,
                )

            fleet.manager.on_admit = on_admit
            fleet.start()
            sim.run(until=2.0)
            fleet.stop()
            return fleet

        static = drive_static()
        dynamic = drive_dynamic()
        assert len(dynamic.sessions) == n_sessions

        def fingerprint(fleet):
            return [
                [
                    (o.request, o.logical_ts, o.registered_at, o.served_at,
                     o.cache_hit, o.preempted, o.blocks_at_upcall)
                    for o in outcomes
                ]
                for outcomes in fleet.outcomes_by_session()
            ]

        assert fingerprint(static) == fingerprint(dynamic)
        assert [s.sender.blocks_sent for s in static.sessions] == [
            s.sender.blocks_sent for s in dynamic.sessions
        ]
        assert [p.bytes_delivered for p in static.ports] == [
            p.bytes_delivered for p in dynamic.ports
        ]


class TestAdmissionControl:
    def test_oversubscribed_fleet_rejects_at_the_door(self):
        # 4 planned arrivals, nobody departs, at most 2 admitted.
        arrival = ArrivalConfig(rate_per_s=5.0, max_concurrent=2, seed=2)
        sim, fleet, backend = make_fleet(4, arrival=arrival)
        fleet.start()
        sim.run(until=5.0)
        fleet.stop()
        stats = fleet.manager.stats
        assert stats.arrivals == 4
        assert stats.admitted == 2
        assert stats.rejected == 2
        assert stats.peak_concurrent == 2
        assert len(fleet.sessions) == 2
        rejected = [r for r in fleet.manager.records if r.rejected]
        assert len(rejected) == 2
        assert all(r.session is None for r in rejected)

    def test_departures_free_admission_slots(self):
        # Short dwells: by the time later users arrive, earlier ones left.
        arrival = ArrivalConfig(
            rate_per_s=1.0, mean_dwell_s=0.3, dwell_sigma=0.0,
            max_concurrent=1, seed=5,
        )
        sim, fleet, backend = make_fleet(4, arrival=arrival)
        fleet.start()
        sim.run(until=30.0)
        fleet.stop()
        stats = fleet.manager.stats
        assert stats.admitted > 1  # the cap of 1 did not block everyone
        assert stats.admitted + stats.rejected == stats.arrivals == 4
        assert stats.departed == stats.admitted


class TestPatienceQueue:
    def test_validation(self):
        with pytest.raises(ValueError):
            ArrivalConfig(patience_s=-1.0)
        with pytest.raises(ValueError):
            ArrivalConfig(queue_depth=0)

    def test_zero_patience_is_bit_identical_to_reject_at_cap(self):
        """patience_s=0 must take the original binary-reject path byte
        for byte: same outcomes, same stats, whatever queue_depth says."""

        def drive(arrival):
            sim, fleet, backend = make_fleet(4, arrival=arrival)
            fleet.start()
            sim.run(until=5.0)
            fleet.stop()
            fingerprint = [
                [
                    (o.request, o.logical_ts, o.registered_at, o.served_at,
                     o.cache_hit, o.preempted)
                    for o in outcomes
                ]
                for outcomes in fleet.outcomes_by_session()
            ]
            return fingerprint, fleet.manager.stats.snapshot()

        legacy = drive(ArrivalConfig(rate_per_s=5.0, max_concurrent=2, seed=2))
        queued = drive(
            ArrivalConfig(
                rate_per_s=5.0, max_concurrent=2, seed=2,
                patience_s=0.0, queue_depth=8,
            )
        )
        assert queued == legacy
        assert queued[1]["queued"] == 0  # the queue never formed

    def test_queued_arrival_is_admitted_when_a_slot_frees(self):
        # One slot; the first tenant dwells 0.3 s, the second arrives
        # while it is attached and waits out the departure.
        arrival = ArrivalConfig(
            rate_per_s=20.0, mean_dwell_s=0.3, dwell_sigma=0.0,
            max_concurrent=1, seed=5, patience_s=5.0,
        )
        sim, fleet, backend = make_fleet(2, arrival=arrival)
        fleet.start()
        sim.run(until=10.0)
        fleet.stop()
        stats = fleet.manager.stats
        assert stats.admitted == 2
        assert stats.rejected == 0
        assert stats.queued == 1
        assert stats.admitted_from_queue == 1
        waiter = next(r for r in fleet.manager.records if r.admitted_at != r.arrived_at)
        assert waiter.admitted_at > waiter.arrived_at  # it actually waited
        assert stats.arrivals == stats.admitted + stats.rejected

    def test_patience_expiry_sheds_the_waiter(self):
        # Nobody departs: the queued arrival gives up after patience_s.
        arrival = ArrivalConfig(
            rate_per_s=20.0, max_concurrent=1, seed=5, patience_s=0.5,
        )
        sim, fleet, backend = make_fleet(2, arrival=arrival)
        fleet.start()
        sim.run(until=10.0)
        fleet.stop()
        stats = fleet.manager.stats
        assert stats.admitted == 1
        assert stats.queued == 1
        assert stats.shed_patience == 1
        assert stats.rejected == 1
        assert stats.arrivals == stats.admitted + stats.rejected
        waiter = next(r for r in fleet.manager.records if not r.admitted)
        assert waiter.rejected
        assert waiter.session is None

    def test_full_queue_sheds_the_lightest_waiter(self):
        # Cap 1, queue depth 1.  s0 admitted; s1 (weight 0.5) queues;
        # s2 (weight 2.0) arrives at a full queue and displaces s1.
        arrival = ArrivalConfig(
            rate_per_s=50.0, max_concurrent=1, seed=1,
            patience_s=30.0, queue_depth=1,
        )
        sim, fleet, backend = make_fleet(
            3, weights=[1.0, 0.5, 2.0], arrival=arrival
        )
        fleet.start()
        sim.run(until=2.0)
        stats = fleet.manager.stats
        assert stats.queued == 2  # both later arrivals entered the queue
        assert stats.shed_capacity == 1  # ...but s1 was pushed out by s2
        # A waiter still in the queue also reads as not-admitted, so
        # identify the shed arrival by exclusion.
        waiting = {r.index for r in fleet.manager._queue}
        shed = next(
            r for r in fleet.manager.records
            if r.rejected and r.index not in waiting
        )
        assert shed.index == 1
        assert fleet.manager.queued_count == 1
        fleet.stop()

    def test_light_newcomer_is_rejected_at_a_full_queue(self):
        # Same shape, weights reversed: the newcomer is the lightest,
        # so the incumbent waiter keeps its place.
        arrival = ArrivalConfig(
            rate_per_s=50.0, max_concurrent=1, seed=1,
            patience_s=30.0, queue_depth=1,
        )
        sim, fleet, backend = make_fleet(
            3, weights=[1.0, 2.0, 0.5], arrival=arrival
        )
        fleet.start()
        sim.run(until=2.0)
        stats = fleet.manager.stats
        assert stats.queued == 1  # s2 never got in
        assert stats.shed_capacity == 1
        waiting = {r.index for r in fleet.manager._queue}
        shed = next(
            r for r in fleet.manager.records
            if r.rejected and r.index not in waiting
        )
        assert shed.index == 2
        fleet.stop()

    def test_stop_sheds_remaining_waiters(self):
        arrival = ArrivalConfig(
            rate_per_s=50.0, max_concurrent=1, seed=1, patience_s=60.0,
        )
        sim, fleet, backend = make_fleet(3, arrival=arrival)
        fleet.start()
        sim.run(until=1.0)
        assert fleet.manager.queued_count == 2
        fleet.stop()
        stats = fleet.manager.stats
        assert fleet.manager.queued_count == 0
        assert stats.shed_patience == 2
        assert stats.arrivals == stats.admitted + stats.rejected == 3


class TestDeparture:
    def test_departure_releases_port_and_stops_session(self):
        arrival = ArrivalConfig(mean_dwell_s=0.5, dwell_sigma=0.0, max_concurrent=4)
        sim, fleet, backend = make_fleet(2, arrival=arrival, predictor="uniform")
        fleet.start()
        sim.run(until=3.0)
        fleet.stop()
        assert fleet.manager.stats.departed == 2
        for session, port in zip(fleet.sessions, fleet.ports):
            assert not session.active
            assert port.closed
        # Retired ports left the arbiter entirely.
        assert fleet.shared_downlink.ports == []
        assert fleet.shared_downlink.ports_retired == 2

    def test_no_events_after_departure(self):
        arrival = ArrivalConfig(mean_dwell_s=0.4, dwell_sigma=0.0, max_concurrent=4)
        sim, fleet, backend = make_fleet(1, arrival=arrival)

        def on_admit(record):
            # One request before departure, one after.
            sim.schedule_at(0.1, record.session.client.request, 0)
            sim.schedule_at(1.0, record.session.client.request, 1)

        fleet.manager.on_admit = on_admit
        fleet.start()
        sim.run(until=3.0)
        fleet.stop()
        session = fleet.sessions[0]
        outcomes = session.cache_manager.outcomes
        # Only the pre-departure request registered.
        assert [o.request for o in outcomes] == [0]
        # And nothing upcalled after the departure instant.
        departed_at = fleet.manager.records[0].departed_at
        assert departed_at == pytest.approx(0.4)
        for outcome in outcomes:
            if outcome.served:
                assert outcome.served_at <= departed_at

    def test_departing_backlog_does_not_starve_survivor(self):
        """A departure with queued downlink bytes must hand the wire to
        the surviving session immediately."""
        arrival = ArrivalConfig(mean_dwell_s=1.0, dwell_sigma=0.0, max_concurrent=2)
        # Session 1 would depart at t=1.0 too; keep only session 0's
        # departure interesting by looking at deliveries after t=1.0.
        sim, fleet, backend = make_fleet(
            2, n=20, nb=6, arrival=arrival, predictor="uniform", cache_blocks=120
        )
        fleet.start()
        sim.run(until=0.9)
        live_ports = list(fleet.ports)
        delivered_before = [p.bytes_delivered for p in live_ports]
        sim.run(until=1.0)  # departures fire
        assert all(p.closed for p in live_ports)
        dropped = fleet.manager.stats.bytes_dropped_on_departure
        assert dropped >= 0  # backlog (if any) was reclaimed, not stranded
        # The wire itself never stalls: the physical link kept busy
        # right through the churn while senders were backlogged.
        assert sum(p.bytes_delivered for p in live_ports) >= sum(delivered_before)

    def test_stop_cancels_pending_arrivals(self):
        """A stopped fleet admits nobody, even if the simulator keeps
        running past pending arrival events."""
        arrival = ArrivalConfig(rate_per_s=0.5, max_concurrent=4, seed=1)
        sim, fleet, backend = make_fleet(4, arrival=arrival)
        fleet.start()
        sim.run(until=0.5)  # before most arrivals (mean gap 2 s)
        admitted_before = fleet.manager.stats.admitted
        fleet.stop()
        sim.run(until=60.0)  # shared simulator keeps going
        assert fleet.manager.stats.admitted == admitted_before
        assert len(fleet.sessions) == admitted_before
        fleet.stop()  # idempotent

    def test_churn_fairness_normalizes_by_attached_time(self):
        """Lifetime byte totals under churn conflate fairness with
        dwell; the reported index divides by attached duration."""
        arrival = ArrivalConfig(rate_per_s=1.0, seed=4, max_concurrent=8)
        sim, fleet, backend = make_fleet(
            4, n=40, nb=6, arrival=arrival, predictor="uniform", cache_blocks=240
        )
        fleet.start()
        sim.run(until=6.0)
        fleet.stop()
        # Staggered arrivals make lifetime totals unequal even though
        # the arbiter shared the wire fairly while each was attached.
        assert fleet.churn_link_fairness() >= fleet.link_fairness()
        assert fleet.report()["link_fairness"] == fleet.churn_link_fairness()

    def test_session_start_stop_idempotent(self):
        sim, fleet, backend = make_fleet(1)
        session = fleet.sessions[0]
        session.start()
        session.start()
        assert session.active
        session.stop()
        session.stop()
        assert not session.active
        assert session.client.request(0) is None  # closed client


class TestOracleUnderChurn:
    def test_oracle_trace_is_rebased_to_the_arrival_instant(self):
        """The oracle reads the future by absolute sim time; a session
        admitted at t > 0 must read a trace shifted to its arrival, or
        it would predict from the wrong point in the user's session."""
        from repro.experiments.runner import _fleet_predictor_factory
        from repro.workloads.image_app import ImageExplorationApp
        from repro.workloads.trace import InteractionTrace, TraceEvent

        # One row of 10 cells; the user sweeps one cell per second, so
        # at trace-time t they hover request int(t).
        app = ImageExplorationApp(rows=1, cols=10, cell_px=10.0)
        trace = InteractionTrace(
            [
                TraceEvent(float(t), 10.0 * t + 5.0, 5.0, request=t)
                for t in range(10)
            ],
            name="sweep",
        )
        sim = Simulator()
        make_predictor, _ = _fleet_predictor_factory(app, "oracle", [trace], sim)
        built = {}
        # The factory is invoked at admission time, here t = 3.0.
        sim.schedule_at(3.0, lambda: built.setdefault("p", make_predictor(0)))
        sim.run(until=3.0)
        dist = built["p"].server.decode(sim.now + 0.1, (0.05,))
        # Just after arrival the user is at the *start* of their trace
        # (trace-time 0.15 -> request 0); the unshifted reading would
        # be absolute time 3.15 -> request 3.
        assert dist.prob_of(0, 0.05) == pytest.approx(1.0)
        assert dist.prob_of(3, 0.05) < 0.01


class TestWeightedBackendFleet:
    def test_sessions_get_weighted_throttle_shares(self):
        sim, fleet, backend = make_fleet(
            2,
            weights=[2.0, 1.0],
            backend_concurrency=6,
            weighted_backend=True,
        )
        heavy, light = (s.throttle for s in fleet.sessions)
        assert isinstance(heavy, SessionThrottleShare)
        assert heavy.slot_share == 4
        assert light.slot_share == 2

    def test_weighted_contention_respects_shares(self):
        """Under backend contention each session speculates within its
        weighted slice: the weight-2 session holds ~2x the in-flight
        fetches of the weight-1 session."""
        sim, fleet, backend = make_fleet(
            2,
            n=24,
            nb=1,
            fetch_delay=0.5,
            weights=[2.0, 1.0],
            backend_concurrency=6,
            weighted_backend=True,
            predictor="uniform",
            lookahead=8,
            cache_blocks=48,
        )
        heavy, light = (s.throttle for s in fleet.sessions)
        peaks = {"heavy": 0, "light": 0}

        def sample():
            peaks["heavy"] = max(peaks["heavy"], heavy.active_requests)
            peaks["light"] = max(peaks["light"], light.active_requests)

        fleet.start()
        sim.every(0.01, sample)
        sim.run(until=2.0)
        fleet.stop()
        assert peaks["heavy"] <= 4  # never exceeds its slice
        assert peaks["light"] <= 2
        assert peaks["heavy"] >= 3  # actually used the bigger slice
        assert peaks["light"] >= 1
        # Global §5.4 invariant: combined slices fit the budget.
        assert backend.stats.peak_concurrency <= 6

    def test_departed_share_returns_to_pool(self):
        arrival = ArrivalConfig(mean_dwell_s=0.5, dwell_sigma=0.0, max_concurrent=2)
        sim, fleet, backend = make_fleet(
            2,
            weights=[1.0, 1.0],
            backend_concurrency=4,
            weighted_backend=True,
            arrival=arrival,
        )
        fleet.start()
        sim.run(until=0.3)
        first = fleet.sessions[0].throttle
        assert first.slot_share == 2  # two tenants attached
        sim.run(until=5.0)
        fleet.stop()
        assert fleet.throttle.attached == 0  # both departed and detached

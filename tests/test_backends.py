"""Tests for backends: fetch semantics, database, scalable sim, throttle."""

import numpy as np
import pytest

from repro.backends import (
    BackendThrottle,
    ColumnTable,
    FileSystemBackend,
    HistogramQuery,
    KeyValueBackend,
    RangeFilter,
    ScalableSQLDatabase,
    SimulatedSQLDatabase,
    WeightedBackendThrottle,
    throttle_schedule,
)
from repro.encoding import ImageAsset, ProgressiveImageEncoder
from repro.sim import Simulator


def make_fs_backend(sim, delay=0.075, images=4):
    assets = {
        i: ImageAsset(image_id=i, size_bytes=150_000) for i in range(images)
    }
    encoder = ProgressiveImageEncoder(assets, block_size_bytes=50_000)
    return FileSystemBackend(sim, encoder, fetch_delay_s=delay)


class TestFileSystemBackend:
    def test_fetch_completes_after_delay(self):
        sim = Simulator()
        backend = make_fs_backend(sim, delay=0.075)
        done = []
        backend.fetch(1, lambda r: done.append((r.request, sim.now)))
        sim.run()
        assert done == [(1, pytest.approx(0.075))]

    def test_second_fetch_hits_cache(self):
        sim = Simulator()
        backend = make_fs_backend(sim)
        backend.fetch(1, lambda r: None)
        sim.run()
        done = []
        backend.fetch(1, lambda r: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(0.075)]  # immediate (same instant)
        assert backend.stats.cache_hits == 1

    def test_concurrent_fetch_same_request_piggybacks(self):
        sim = Simulator()
        backend = make_fs_backend(sim)
        done = []
        backend.fetch(1, lambda r: done.append("a"))
        backend.fetch(1, lambda r: done.append("b"))
        sim.run()
        assert sorted(done) == ["a", "b"]
        assert backend.stats.fetches_started == 1

    def test_active_requests_tracked(self):
        sim = Simulator()
        backend = make_fs_backend(sim)
        backend.fetch(0, lambda r: None)
        backend.fetch(1, lambda r: None)
        assert backend.active_requests == 2
        sim.run()
        assert backend.active_requests == 0
        assert backend.stats.peak_concurrency == 2

    def test_evict_forces_refetch(self):
        sim = Simulator()
        backend = make_fs_backend(sim)
        backend.fetch(1, lambda r: None)
        sim.run()
        backend.evict(1)
        assert not backend.is_cached(1)

    def test_unbounded_scalability(self):
        sim = Simulator()
        assert make_fs_backend(sim).scalable_concurrency is None


class TestKeyValueBackend:
    def test_value_passed_to_encoder(self):
        from repro.encoding import SingleBlockEncoder

        sim = Simulator()
        backend = KeyValueBackend(
            sim,
            SingleBlockEncoder(size_of=lambda r: 100),
            value_of=lambda r: f"value-{r}",
            get_latency_s=0.002,
        )
        done = []
        backend.fetch(3, lambda r: done.append(r.blocks[0].payload))
        sim.run()
        assert done == ["value-3"]
        assert sim.now == pytest.approx(0.002)


def flights_table(n=10_000, seed=0):
    rng = np.random.default_rng(seed)
    return ColumnTable(
        {
            "dep_delay": rng.gamma(2.0, 15.0, n) - 10.0,
            "arr_delay": rng.gamma(2.0, 18.0, n) - 12.0,
            "distance": rng.uniform(100, 3000, n),
        }
    )


class TestColumnTable:
    def test_histogram_matches_numpy_reference(self):
        table = flights_table()
        q = HistogramQuery("dep_delay", bins=20, domain=(-10, 190))
        counts = table.histogram(q)
        expected, _ = np.histogram(
            table.column("dep_delay"), bins=20, range=(-10, 190)
        )
        assert np.array_equal(counts, expected)

    def test_filtered_histogram(self):
        table = flights_table()
        q = HistogramQuery(
            "dep_delay",
            bins=10,
            domain=(-10, 190),
            filters=(RangeFilter("distance", 100, 500),),
        )
        counts = table.histogram(q)
        mask = (table.column("distance") >= 100) & (table.column("distance") < 500)
        expected, _ = np.histogram(
            table.column("dep_delay")[mask], bins=10, range=(-10, 190)
        )
        assert np.array_equal(counts, expected)

    def test_conjunction_of_filters(self):
        table = flights_table()
        filters = (
            RangeFilter("distance", 100, 500),
            RangeFilter("arr_delay", 0, 50),
        )
        q = HistogramQuery("dep_delay", bins=5, domain=(-10, 190), filters=filters)
        mask = table.mask(filters)
        assert table.histogram(q).sum() == np.count_nonzero(
            mask
            & (table.column("dep_delay") >= -10)
            & (table.column("dep_delay") <= 190)
        )

    def test_histogram_rows_format(self):
        table = flights_table()
        q = HistogramQuery("distance", bins=8, domain=(0, 3000))
        rows = table.histogram_rows(q)
        assert rows.shape == (8, 2)
        assert np.array_equal(rows[:, 0], np.arange(8))

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError):
            ColumnTable({"a": np.zeros(3), "b": np.zeros(4)})

    def test_unknown_column(self):
        with pytest.raises(KeyError):
            flights_table().column("nope")

    def test_query_validation(self):
        with pytest.raises(ValueError):
            HistogramQuery("x", bins=0, domain=(0, 1))
        with pytest.raises(ValueError):
            HistogramQuery("x", bins=5, domain=(1, 1))
        with pytest.raises(ValueError):
            RangeFilter("x", 5, 5)


class TestSimulatedSQLDatabase:
    def test_isolated_latency_within_jitter_band(self):
        sim = Simulator()
        db = SimulatedSQLDatabase(sim, flights_table(), base_latency_s=0.8, jitter=0.25)
        q = HistogramQuery("dep_delay", bins=10, domain=(-10, 190))
        lat = db.isolated_latency_s(q)
        assert 0.8 * 0.875 <= lat <= 0.8 * 1.125

    def test_isolated_latency_deterministic(self):
        sim = Simulator()
        db = SimulatedSQLDatabase(sim, flights_table(), base_latency_s=0.8)
        q = HistogramQuery("dep_delay", bins=10, domain=(-10, 190))
        assert db.isolated_latency_s(q) == db.isolated_latency_s(q)

    def test_execute_returns_correct_rows(self):
        sim = Simulator()
        table = flights_table()
        db = SimulatedSQLDatabase(sim, table, base_latency_s=0.1)
        q = HistogramQuery("distance", bins=6, domain=(0, 3000))
        results = []
        db.execute(q, results.append)
        sim.run()
        assert np.array_equal(results[0], table.histogram_rows(q))

    def test_concurrency_degradation(self):
        """Queries beyond the limit take proportionally longer."""
        sim = Simulator()
        db = SimulatedSQLDatabase(
            sim, flights_table(), base_latency_s=0.5, concurrency_limit=2, jitter=0.0
        )
        q = HistogramQuery("distance", bins=4, domain=(0, 3000))
        lat1 = db.current_latency_s(q)
        db.execute(q, lambda r: None)
        db.execute(q, lambda r: None)
        lat3 = db.current_latency_s(q)  # third concurrent query
        assert lat1 == pytest.approx(0.5)
        assert lat3 == pytest.approx(0.5 * 1.5)

    def test_active_count_recovers(self):
        sim = Simulator()
        db = SimulatedSQLDatabase(sim, flights_table(), base_latency_s=0.1)
        q = HistogramQuery("distance", bins=4, domain=(0, 3000))
        db.execute(q, lambda r: None)
        assert db.active_queries == 1
        sim.run()
        assert db.active_queries == 0


class TestScalableSQLDatabase:
    def test_no_concurrency_degradation(self):
        sim = Simulator()
        db = ScalableSQLDatabase(sim, flights_table(), base_latency_s=0.5, jitter=0.0)
        q1 = HistogramQuery("distance", bins=4, domain=(0, 3000))
        q2 = HistogramQuery("dep_delay", bins=4, domain=(-10, 190))
        done = []
        db.execute(q1, lambda r: done.append(sim.now))
        db.execute(q2, lambda r: done.append(sim.now))
        sim.run()
        assert all(t == pytest.approx(0.5) for t in done)

    def test_repeat_query_served_from_cache_instantly(self):
        sim = Simulator()
        db = ScalableSQLDatabase(sim, flights_table(), base_latency_s=0.5)
        q = HistogramQuery("distance", bins=4, domain=(0, 3000))
        db.execute(q, lambda r: None)
        sim.run()
        t0 = sim.now
        done = []
        db.execute(q, lambda r: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(t0)]
        assert db.result_cache_hits == 1

    def test_matches_postgres_isolated_latency(self):
        """Same per-query latency model as the simulated PostgreSQL."""
        sim = Simulator()
        table = flights_table()
        pg = SimulatedSQLDatabase(sim, table, base_latency_s=0.8, seed=3)
        sc = ScalableSQLDatabase(sim, table, base_latency_s=0.8, seed=3)
        q = HistogramQuery("arr_delay", bins=12, domain=(-12, 200))
        assert sc.isolated_latency_s(q) == pytest.approx(pg.isolated_latency_s(q))


class TestThrottle:
    def test_admits_within_budget(self):
        schedule = [(r, b) for r, b in [(1, 0), (2, 0), (1, 1), (3, 0)]]
        admitted, deferred = throttle_schedule(
            schedule, lambda it: it[0], lambda r: False, available_slots=2
        )
        assert admitted == [(1, 0), (2, 0), (1, 1)]
        assert deferred == [(3, 0)]

    def test_materialized_requests_bypass_budget(self):
        schedule = [(1, 0), (2, 0), (3, 0)]
        admitted, deferred = throttle_schedule(
            schedule, lambda it: it[0], lambda r: r == 3, available_slots=1
        )
        assert admitted == [(1, 0), (3, 0)]
        assert deferred == [(2, 0)]

    def test_zero_budget_defers_all_new(self):
        schedule = [(1, 0), (2, 0)]
        admitted, deferred = throttle_schedule(
            schedule, lambda it: it[0], lambda r: False, available_slots=0
        )
        assert admitted == []
        assert deferred == schedule

    def test_stateful_throttle_tracks_live_load(self):
        active = [0]
        throttle = BackendThrottle(capacity=3, active=lambda: active[0])
        assert throttle.available_slots == 3
        active[0] = 2
        assert throttle.available_slots == 1
        admitted, deferred = throttle.apply(
            [(1, 0), (2, 0)], lambda it: it[0], lambda r: False
        )
        assert len(admitted) == 1
        assert throttle.deferred_blocks == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            BackendThrottle(0, lambda: 0)
        with pytest.raises(ValueError):
            throttle_schedule([], lambda it: 0, lambda r: False, -1)

    def test_global_throttle_charge_is_a_noop(self):
        throttle = BackendThrottle(capacity=2, active=lambda: 0)
        throttle.charge(7)
        assert throttle.available_slots == 2


class TestWeightedThrottle:
    def test_shares_split_by_weight(self):
        """A weight-2 session owns ~2x the speculation slots (§5.4)."""
        inflight = set()
        throttle = WeightedBackendThrottle(6, is_inflight=inflight.__contains__)
        heavy = throttle.attach(2.0, label="heavy")
        light = throttle.attach(1.0, label="light")
        assert heavy.slot_share == 4
        assert light.slot_share == 2
        assert heavy.available_slots == 2 * light.available_slots

    def test_contention_admits_by_weight(self):
        """Under contention each session fills exactly its own slice."""
        inflight = set()
        throttle = WeightedBackendThrottle(6, is_inflight=inflight.__contains__)
        heavy = throttle.attach(2.0)
        light = throttle.attach(1.0)
        request = iter(range(100))

        def fill(share):
            admitted = 0
            while share.available_slots > 0:
                r = next(request)
                share.charge(r)
                inflight.add(r)  # fetch starts and stays in flight
                admitted += 1
            return admitted

        assert fill(heavy) == 4
        assert fill(light) == 2
        # Saturated: neither admits another new request.
        assert heavy.available_slots == 0
        assert light.available_slots == 0

    def test_charges_expire_when_fetches_complete(self):
        inflight = {1, 2}
        throttle = WeightedBackendThrottle(4, is_inflight=inflight.__contains__)
        share = throttle.attach(1.0)
        share.charge(1)
        share.charge(2)
        assert share.available_slots == 2
        inflight.discard(1)  # backend finished request 1
        assert share.active_requests == 1
        assert share.available_slots == 3

    def test_detach_returns_share_to_survivors(self):
        inflight = set()
        throttle = WeightedBackendThrottle(6, is_inflight=inflight.__contains__)
        a = throttle.attach(1.0)
        b = throttle.attach(1.0)
        assert a.slot_share == 3
        throttle.detach(b)
        assert a.slot_share == 6
        throttle.detach(b)  # idempotent
        assert throttle.attached == 1

    def test_global_headroom_caps_slices_during_churn(self):
        """Around attach/detach the slices alone can transiently exceed
        C (a leaver's fetches still draining, a newcomer's fresh slice);
        the live global headroom keeps the hard §5.4 budget intact."""
        inflight = set()
        active = [0]
        throttle = WeightedBackendThrottle(
            5, is_inflight=inflight.__contains__, active=lambda: active[0]
        )
        lone = throttle.attach(1.0)
        # The lone tenant filled the whole budget ...
        for r in range(5):
            lone.charge(r)
            inflight.add(r)
        active[0] = 5
        # ... then a second tenant attaches: its slice says 2, but the
        # backend is already processing C requests.
        late = throttle.attach(1.0)
        assert late.slot_share == 2
        assert late.available_slots == 0
        # Slots open up only as the backend actually drains.
        active[0] = 4
        assert late.available_slots == 1

    def test_slices_sum_to_capacity(self):
        """Largest-remainder apportionment: no slot stranded, none
        double-counted, even when quotas don't divide evenly."""
        throttle = WeightedBackendThrottle(5, is_inflight=lambda r: False)
        a = throttle.attach(1.0)
        b = throttle.attach(1.0)
        assert a.slot_share + b.slot_share == 5
        assert a.slot_share == 3  # attach order breaks the remainder tie
        c = throttle.attach(1.0)
        assert a.slot_share + b.slot_share + c.slot_share == 5
        throttle.detach(a)
        assert b.slot_share + c.slot_share == 5

    def test_minimum_one_slot_per_tenant(self):
        """Low-weight tenants keep a speculation floor of one slot."""
        throttle = WeightedBackendThrottle(2, is_inflight=lambda r: False)
        throttle.attach(100.0)
        tiny = throttle.attach(0.01)
        assert tiny.slot_share == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            WeightedBackendThrottle(0, is_inflight=lambda r: False)
        throttle = WeightedBackendThrottle(2, is_inflight=lambda r: False)
        with pytest.raises(ValueError):
            throttle.attach(0.0)

"""Tests for the request-response baseline architectures."""

import pytest

from repro.baselines.classic import ClassicConfig, ClassicSession
from repro.core.utility import LinearUtility
from repro.encoding.image import ImageAsset, ProgressiveImageEncoder
from repro.backends.filesystem import FileSystemBackend
from repro.sim.engine import Simulator
from repro.sim.link import ControlChannel, FixedRateLink


def build(variant="full", cache_bytes=10_000_000, bandwidth=1_000_000,
          fetch_delay=0.05, uplink_latency=0.01, images=6, image_bytes=200_000):
    sim = Simulator()
    assets = {
        i: ImageAsset(image_id=i, size_bytes=image_bytes) for i in range(images)
    }
    encoder = ProgressiveImageEncoder(assets, block_size_bytes=50_000)
    backend = FileSystemBackend(sim, encoder, fetch_delay_s=fetch_delay)
    session = ClassicSession(
        sim=sim,
        backend=backend,
        utility=LinearUtility(),
        num_blocks_of=encoder.num_blocks,
        downlink=FixedRateLink(sim, bandwidth, propagation_delay_s=0.01),
        uplink=ControlChannel(sim, latency_s=uplink_latency),
        config=ClassicConfig(cache_bytes=cache_bytes, variant=variant),
    )
    return sim, session


class TestRequestResponse:
    def test_miss_then_full_response(self):
        sim, session = build()
        outcome = session.request(2)
        sim.run()
        assert outcome.served
        assert not outcome.cache_hit
        assert outcome.utility_at_upcall == 1.0
        # Latency = uplink 10ms + fetch 50ms + serialization 200ms + prop 10ms.
        assert outcome.latency_s == pytest.approx(0.27, rel=0.05)

    def test_repeat_request_hits_lru(self):
        sim, session = build()
        session.request(2)
        sim.run()
        outcome = session.request(2)
        assert outcome.cache_hit
        assert outcome.latency_s == 0.0

    def test_first_block_variant_transfers_one_block(self):
        sim, session = build(variant="first_block")
        outcome = session.request(0)
        sim.run()
        assert outcome.served
        assert outcome.blocks_at_upcall == 1
        assert 0.0 < outcome.utility_at_upcall < 1.0
        # One 50 KB block at 1 MB/s: far faster than the 200 KB response.
        assert outcome.latency_s < 0.15

    def test_preemption_drops_older_pending(self):
        sim, session = build()
        old = session.request(0)
        sim.run_for(0.001)
        new = session.request(1)
        sim.run()
        assert new.served
        # Request 0's response arrives first (FIFO), serving it before
        # request 1 lands — or it is preempted if 1 is served first.
        assert old.served or old.preempted

    def test_newest_pending_served_on_response(self):
        """When the same id is requested twice, the response answers
        the newest registration and preempts the older."""
        sim, session = build()
        first = session.request(3)
        second = session.request(3)
        sim.run()
        assert second.served
        assert first.preempted and not first.served

    def test_lru_eviction_under_pressure(self):
        sim, session = build(cache_bytes=450_000)  # fits two 200 KB entries
        for r in (0, 1, 2):
            session.request(r)
            sim.run()
        assert session.cache.peek(0) is None  # evicted
        assert session.cache.peek(2) is not None

    def test_outstanding_counts_in_flight(self):
        sim, session = build()
        session.request(0)
        session.request(1)
        assert session.outstanding == 2
        sim.run()
        assert session.outstanding == 0

    def test_duplicate_requests_share_flight(self):
        sim, session = build()
        session.request(4)
        session.request(4)
        assert session.outstanding == 1
        sim.run()
        assert session.requests_sent == 1


class TestPrefetchAccounting:
    def test_prefetch_fills_cache(self):
        sim, session = build()
        assert session.prefetch(5)
        sim.run()
        outcome = session.request(5)
        assert outcome.cache_hit

    def test_prefetch_dedupes(self):
        sim, session = build()
        assert session.prefetch(5)
        assert not session.prefetch(5)  # already in flight
        sim.run()
        assert not session.prefetch(5)  # already cached

    def test_unused_prefetches_counted(self):
        sim, session = build()
        session.prefetch(1)
        session.prefetch(2)
        sim.run()
        session.request(1)
        assert session.unused_prefetches == 1  # only 2 never used

    def test_variant_validation(self):
        with pytest.raises(ValueError):
            ClassicConfig(variant="half")
        with pytest.raises(ValueError):
            ClassicConfig(cache_bytes=0)


class TestCongestionBehaviour:
    def test_burst_queues_on_shared_link(self):
        """Back-to-back misses share the downlink FIFO: the k-th
        response waits behind k-1 serializations — the §3.1 congestion
        story."""
        sim, session = build(images=8)
        outcomes = [session.request(r) for r in range(6)]
        sim.run()
        served = [o for o in outcomes if o.served]
        assert served, "at least the newest requests get responses"
        latencies = [o.latency_s for o in outcomes if o.served]
        # Later responses wait behind earlier ones.
        assert max(latencies) > 3 * min(latencies)

"""Property tests for the consistent-hash ring (repro.fleet.ring).

The ring's whole reason to exist is a *structural* guarantee: when the
membership changes by one node, only the keys whose ownership involves
that node may move.  That is stronger than the usual statistical
"about 1/W of keys remap" claim, and it is checkable key-by-key:

* **join**:  every key routes to its old owner or to the new node;
* **leave**: every key keeps its owner unless the owner departed;
* the two are inverses — remove after add restores the exact map.

Balance, by contrast, *is* statistical (vnode positions are hash
draws), so the balance test asserts a generous envelope rather than a
tight bound.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.ring import DEFAULT_VNODES, HashRing
from repro.fleet.sharding import shard_of

node_sets = st.lists(
    st.integers(min_value=0, max_value=63), min_size=1, max_size=8, unique=True
)
keys = st.lists(st.integers(min_value=0, max_value=10_000), max_size=64)


class TestRouting:
    @given(nodes=node_sets, ks=keys)
    def test_deterministic_and_membership_pure(self, nodes, ks):
        """Equal membership routes identically, whatever the history."""
        a = HashRing(nodes)
        b = HashRing(reversed(nodes))
        # A ring that saw extra members come and go is still the same ring.
        c = HashRing(nodes)
        c.add(999)
        c.remove(999)
        for k in ks:
            assert a.route(k) == b.route(k) == c.route(k)

    @given(nodes=node_sets, ks=keys)
    def test_routes_to_members_only(self, nodes, ks):
        ring = HashRing(nodes)
        for k in ks:
            assert ring.route(k) in ring.nodes

    @given(nodes=node_sets)
    def test_assign_partitions_all_keys(self, nodes):
        ring = HashRing(nodes)
        assigned = ring.assign(range(100))
        assert sorted(k for ks in assigned.values() for k in ks) == list(range(100))
        assert set(assigned) == set(nodes)

    def test_empty_ring_refuses_to_route(self):
        with pytest.raises(ValueError, match="empty ring"):
            HashRing().route(0)


class TestMembershipChurn:
    @settings(max_examples=25)
    @given(nodes=node_sets, new=st.integers(min_value=100, max_value=199))
    def test_join_steals_only_for_the_newcomer(self, nodes, new):
        """Structural remap bound: a join moves keys only *to* the joiner."""
        before = HashRing(nodes)
        after = HashRing(nodes)
        after.add(new)
        for k in range(500):
            old, now = before.route(k), after.route(k)
            assert now == old or now == new

    @settings(max_examples=25)
    @given(nodes=st.lists(
        st.integers(min_value=0, max_value=63), min_size=2, max_size=8, unique=True
    ))
    def test_leave_moves_only_the_departed_nodes_keys(self, nodes):
        before = HashRing(nodes)
        gone = nodes[0]
        after = before.without(gone)
        for k in range(500):
            old = before.route(k)
            if old == gone:
                assert after.route(k) in after.nodes
            else:
                assert after.route(k) == old

    @given(nodes=node_sets, new=st.integers(min_value=100, max_value=199))
    def test_add_then_remove_is_identity(self, nodes, new):
        ring = HashRing(nodes)
        grown = HashRing(nodes)
        grown.add(new)
        grown.remove(new)
        for k in range(200):
            assert grown.route(k) == ring.route(k)

    def test_duplicate_add_and_absent_remove_raise(self):
        ring = HashRing([1, 2])
        with pytest.raises(ValueError, match="already"):
            ring.add(1)
        with pytest.raises(ValueError, match="not on the ring"):
            ring.remove(7)


class TestBalance:
    def test_share_spread_is_bounded(self):
        """Statistical balance: with 128 vnodes no node's share of 4096
        keys strays past ~2x of fair (observed spread is far tighter;
        the envelope just catches clustering regressions)."""
        for w in (2, 4, 8):
            ring = HashRing(range(w))
            counts = {n: len(ks) for n, ks in ring.assign(range(4096)).items()}
            fair = 4096 / w
            assert max(counts.values()) < 2.0 * fair
            assert min(counts.values()) > fair / 2.5

    def test_more_vnodes_mean_tighter_spread(self):
        wide = HashRing(range(8), vnodes=1)
        tight = HashRing(range(8), vnodes=DEFAULT_VNODES)

        def spread(ring):
            counts = [len(ks) for ks in ring.assign(range(4096)).values()]
            return max(counts) - min(counts)

        assert spread(tight) < spread(wide)

    def test_rejects_zero_vnodes(self):
        with pytest.raises(ValueError, match="vnodes"):
            HashRing(vnodes=0)


class TestShardOfDelegation:
    def test_shard_of_is_ring_routing(self):
        """The fleet router *is* the ring: shard_of(i, W) must agree
        with a fresh HashRing over range(W) for every index."""
        for w in (1, 2, 3, 5, 8):
            ring = HashRing(range(w))
            for i in range(256):
                assert shard_of(i, w) == ring.route(i)

    def test_w1_owns_everything(self):
        assert {shard_of(i, 1) for i in range(64)} == {0}

"""Tests for the connection-pool backend."""

import pytest

from repro.backends.pool import ConnectionPoolBackend
from repro.encoding.naive import SingleBlockEncoder
from repro.sim.engine import Simulator


def make(pool_size=2, service=0.1):
    sim = Simulator()
    backend = ConnectionPoolBackend(
        sim,
        SingleBlockEncoder(lambda r: 100),
        pool_size=pool_size,
        service_time_s=service,
    )
    return sim, backend


class TestAdmission:
    def test_within_pool_runs_concurrently(self):
        sim, backend = make(pool_size=2, service=0.1)
        done = []
        backend.fetch(0, lambda r: done.append(sim.now))
        backend.fetch(1, lambda r: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(0.1), pytest.approx(0.1)]

    def test_excess_queues_fifo(self):
        sim, backend = make(pool_size=1, service=0.1)
        done = []
        for r in range(3):
            backend.fetch(r, lambda resp, r=r: done.append((r, sim.now)))
        assert backend.queue_depth == 2
        sim.run()
        assert [r for r, _t in done] == [0, 1, 2]
        assert done[2][1] == pytest.approx(0.3)
        assert backend.max_queue_depth == 2

    def test_queue_drains_as_connections_free(self):
        sim, backend = make(pool_size=2, service=0.1)
        for r in range(5):
            backend.fetch(r, lambda resp: None)
        sim.run()
        assert backend.queue_depth == 0
        assert backend.stats.fetches_completed == 5

    def test_cache_hits_skip_the_pool(self):
        sim, backend = make(pool_size=1, service=0.1)
        backend.fetch(0, lambda r: None)
        sim.run()
        done = []
        backend.fetch(0, lambda r: done.append(sim.now))
        backend.fetch(1, lambda r: done.append(sim.now))
        sim.run()
        assert done[0] < done[1]  # hit returns before the pooled fetch

    def test_scalable_concurrency_reports_pool_size(self):
        _sim, backend = make(pool_size=3)
        assert backend.scalable_concurrency == 3

    def test_validation(self):
        sim = Simulator()
        enc = SingleBlockEncoder(lambda r: 1)
        with pytest.raises(ValueError):
            ConnectionPoolBackend(sim, enc, pool_size=0)
        with pytest.raises(ValueError):
            ConnectionPoolBackend(sim, enc, service_time_s=-1.0)

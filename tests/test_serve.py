"""Tests for the live serving frontend (repro.serve).

Three layers, bottom-up:

* the from-scratch RFC 6455 framing (mask/unmask, length encodings,
  control frames) round-trips over a loopback socket pair;
* the wire protocol encodes/decodes control messages and block frames;
* the full app — real WallClock, real TCP listener on port 0, the
  scripted :class:`~repro.serve.client.LiveClient` — admits a session,
  pushes scheduled blocks down the socket, answers ``bye`` with stats,
  detaches cleanly, and enforces the admission cap with a ``reject``.
"""

import asyncio

import pytest

from repro.core.blocks import Block
from repro.experiments.configs import DEFAULT_ENV, FleetEnvironment
from repro.fleet import ArrivalConfig
from repro.metrics.fleet import TRANSPORT_COUNTER_ZERO
from repro.serve import create_app
from repro.serve import protocol, ws
from repro.serve.client import AdmissionRejected, LiveClient


def run(coro, timeout=30.0):
    return asyncio.run(asyncio.wait_for(coro, timeout=timeout))


# ---------------------------------------------------------------------------
# WebSocket framing
# ---------------------------------------------------------------------------


class TestWebSocketFraming:
    @pytest.mark.parametrize("size", [0, 1, 125, 126, 65535, 65536, 200_000])
    def test_payload_length_encodings_roundtrip(self, size):
        """7-bit, 16-bit and 64-bit payload lengths all survive the wire."""
        payload = bytes(i % 251 for i in range(size))
        for mask in (False, True):
            frame = ws._encode_frame(ws.OP_BINARY, payload, mask=mask)
            if mask:
                assert frame[1] & 0x80  # mask bit set
            else:
                assert not frame[1] & 0x80

    def test_masking_is_reversible(self):
        data = bytes(range(256)) * 3
        key = b"\x12\x34\x56\x78"
        assert ws._apply_mask(ws._apply_mask(data, key), key) == data

    def test_accept_key_matches_rfc_example(self):
        # The worked example from RFC 6455 §1.3.
        assert (
            ws._accept_key("dGhlIHNhbXBsZSBub25jZQ==")
            == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
        )

    def test_echo_over_loopback(self):
        """Server accept + client connect + bidirectional text/binary."""

        async def main():
            async def on_conn(reader, writer):
                sock = await ws.accept(reader, writer)
                while True:
                    item = await sock.recv()
                    if item is None:
                        break
                    opcode, payload = item
                    if opcode == ws.OP_TEXT:
                        sock.send_text(payload.decode() + "!")
                    else:
                        sock.send_binary(payload[::-1])
                    await sock.drain()
                await sock.close()

            server = await asyncio.start_server(on_conn, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = await ws.connect("127.0.0.1", port)
            client.send_text("hello")
            client.send_binary(b"\x01\x02\x03")
            await client.drain()
            first = await client.recv()
            second = await client.recv()
            assert first == (ws.OP_TEXT, b"hello!")
            assert second == (ws.OP_BINARY, b"\x03\x02\x01")
            await client.close()
            server.close()
            await server.wait_closed()

        run(main())

    def test_ping_is_answered_with_pong(self):
        async def main():
            pongs = []

            async def on_conn(reader, writer):
                sock = await ws.accept(reader, writer)
                sock._send(ws.OP_PING, b"beat")
                await sock.drain()
                # recv() swallows pongs by design, so watch the raw
                # frame stream: the client must answer ping with pong.
                frame = await sock._read_frame()
                pongs.append(frame)
                await sock.close()
                writer.close()

            server = await asyncio.start_server(on_conn, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            client = await ws.connect("127.0.0.1", port)
            assert await client.recv() is None  # server closed after pong
            await client.close()
            server.close()
            await server.wait_closed()
            assert pongs == [(ws.OP_PONG, b"beat")]

        run(main())

    def test_plain_http_request_is_rejected(self):
        async def main():
            async def on_conn(reader, writer):
                with pytest.raises(ws.WebSocketError):
                    await ws.accept(reader, writer)
                writer.close()

            server = await asyncio.start_server(on_conn, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n")
            await writer.drain()
            reply = await reader.read(64)
            assert reply.startswith(b"HTTP/1.1 400")
            writer.close()
            server.close()
            await server.wait_closed()

        run(main())


# ---------------------------------------------------------------------------
# Wire protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_message_roundtrip(self):
        text = protocol.encode_message("hello", protocol=1, weight=2.5)
        msg = protocol.decode_message(text)
        assert msg == {"type": "hello", "protocol": 1, "weight": 2.5}

    def test_garbage_decodes_to_none(self):
        assert protocol.decode_message("{not json") is None
        assert protocol.decode_message('{"no_type": 1}') is None

    def test_block_frame_roundtrip(self):
        block = Block(request=7, index=3, size_bytes=50_000)
        frame = protocol.encode_block(block)
        assert len(frame) == protocol.BLOCK_HEADER.size + 50_000
        decoded = protocol.decode_block(frame)
        assert (decoded.request, decoded.index, decoded.size_bytes) == (7, 3, 50_000)

    def test_bad_magic_rejected(self):
        frame = b"XXXX" + bytes(12)
        with pytest.raises(ValueError):
            protocol.decode_block(frame)


# ---------------------------------------------------------------------------
# Full app over a real port
# ---------------------------------------------------------------------------


def make_env(max_concurrent=None):
    return FleetEnvironment(
        num_sessions=2,
        env=DEFAULT_ENV.with_bandwidth(2_000_000.0),
        arrival=(
            ArrivalConfig(max_concurrent=max_concurrent)
            if max_concurrent is not None
            else None
        ),
    )


class TestServeApp:
    def test_session_receives_pushed_blocks_and_detaches_cleanly(self):
        async def main():
            app = create_app(
                make_env(), rows=6, cols=6, predictor="uniform", port=0
            )
            await app.start()
            try:
                client = await LiveClient.connect("127.0.0.1", app.port)
                welcome = client.report.welcome
                assert welcome["num_requests"] == 36
                assert welcome["rows"] == welcome["cols"] == 6
                # Hover the top-left cell, request it, then wander; the
                # uniform prior pushes blocks for everything.
                client.send_event(5.0, 5.0)
                await client.drain()
                await asyncio.sleep(1.2)
                client.send_request(0)
                await client.drain()
                await asyncio.sleep(1.0)
                report = await client.bye()

                assert report.blocks, "server never pushed a block"
                assert report.prefetched_hits >= 1, (
                    "request 0 should have been answered by a block "
                    "pushed before it was issued"
                )
                assert report.unrequested_blocks > 0  # speculation is real
                assert report.server_stats is not None
                assert report.server_stats["blocks_pushed"] == len(report.blocks)
                summary = report.summary()
                assert summary.num_requests == 1
                assert summary.cache_hit_rate == 1.0
            finally:
                await app.stop()
            assert app.stats.sessions_admitted == 1
            assert app.stats.sessions_detached == 1
            assert app.stats.blocks_pushed > 0
            assert app.stats.frames_dropped == 0

        run(main())

    def test_admission_cap_rejects_excess_sessions(self):
        async def main():
            app = create_app(
                make_env(max_concurrent=1), rows=6, cols=6,
                predictor="uniform", port=0,
            )
            await app.start()
            try:
                first = await LiveClient.connect("127.0.0.1", app.port)
                with pytest.raises(AdmissionRejected):
                    await LiveClient.connect("127.0.0.1", app.port)
                await first.bye()
                # Capacity freed: a third connect now succeeds.
                third = await LiveClient.connect("127.0.0.1", app.port)
                await third.bye()
            finally:
                await app.stop()
            assert app.stats.sessions_admitted == 2
            assert app.stats.sessions_rejected == 1

        run(main())

    def test_abrupt_disconnect_detaches_without_stopping_fleet(self):
        async def main():
            app = create_app(
                make_env(), rows=6, cols=6, predictor="uniform", port=0
            )
            await app.start()
            try:
                client = await LiveClient.connect("127.0.0.1", app.port)
                client.send_event(5.0, 5.0)
                await client.drain()
                await asyncio.sleep(0.3)
                await client.close()  # no bye: TCP just goes away
                await asyncio.sleep(0.5)
                assert app.stats.sessions_detached == 1
                # The server survives to serve someone else.
                again = await LiveClient.connect("127.0.0.1", app.port)
                await again.bye()
            finally:
                await app.stop()
            assert app.stats.sessions_admitted == 2

        run(main())

    def test_weight_is_clamped_into_fair_share_bounds(self):
        async def main():
            app = create_app(
                make_env(), rows=6, cols=6, predictor="uniform", port=0
            )
            await app.start()
            try:
                client = await LiveClient.connect(
                    "127.0.0.1", app.port, weight=1e9
                )
                assert app.fleet.config.weights[0] == pytest.approx(10.0)
                await client.bye()
            finally:
                await app.stop()

        run(main())


async def http_get(port, path):
    """Plain HTTP/1.1 GET against the serve port; returns (status, body)."""
    import json

    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: x\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read(65536)
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ")[1])
    return status, (json.loads(body) if body else None)


class TestStatusEndpoint:
    def test_status_reports_live_fleet_stats(self):
        async def main():
            app = create_app(
                make_env(), rows=6, cols=6, predictor="shared-markov", port=0
            )
            await app.start()
            try:
                client = await LiveClient.connect("127.0.0.1", app.port)
                client.send_event(5.0, 5.0)
                await client.drain()
                await asyncio.sleep(0.8)
                status, body = await http_get(app.port, "/status")
                assert status == 200
                assert body["sessions_live"] == 1
                assert body["sessions_admitted"] == 1
                assert body["predictor"] == "shared-markov"
                assert body["outbox_depth"] == app.outbox_depth
                assert body["blocks_pushed"] >= 0
                assert body["prior_version_mass"] >= 0
                # One process, no coordinator wire: the transport block
                # is present (same shape as a sharded fleet's pooled
                # totals) and structurally zero.
                assert body["transport"]["driver"] == "local"
                assert body["transport"]["totals"] == TRANSPORT_COUNTER_ZERO
                assert body == app.status_snapshot()
                await client.bye()
                # The WebSocket side is untouched by the HTTP sidecar.
                status, body = await http_get(app.port, "/status")
                assert body["sessions_detached"] == 1
            finally:
                await app.stop()

        run(main())

    def test_unknown_path_gets_404(self):
        async def main():
            app = create_app(
                make_env(), rows=6, cols=6, predictor="uniform", port=0
            )
            await app.start()
            try:
                status, body = await http_get(app.port, "/nope")
                assert status == 404
                assert body == {"error": "not found"}
            finally:
                await app.stop()

        run(main())


class TestOutboxBackpressure:
    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError, match="outbox_depth"):
            create_app(make_env(), rows=6, cols=6, outbox_depth=0)

    def test_overflow_counts_per_connection_and_globally(self):
        """A full outbox sheds the frame and bumps both drop counters."""
        from repro.serve.app import _Connection

        app = create_app(
            make_env(), rows=6, cols=6, predictor="uniform", outbox_depth=1
        )
        conn = _Connection(
            index=0,
            session=None,
            socket=None,
            outbox=asyncio.Queue(maxsize=app.outbox_depth),
        )
        block = Block(request=0, index=0, size_bytes=1000, payload=b"\0" * 1000)
        app._push_block(conn, block)  # fills the depth-1 outbox
        app._push_block(conn, block)  # overflows: shed + counted
        assert conn.blocks_pushed == 1
        assert conn.frames_dropped == 1
        assert app.stats.blocks_pushed == 1
        assert app.stats.frames_dropped == 1

    def test_stats_message_surfaces_drop_counter(self):
        async def main():
            app = create_app(
                make_env(), rows=6, cols=6, predictor="uniform", port=0
            )
            await app.start()
            try:
                client = await LiveClient.connect("127.0.0.1", app.port)
                client.send_event(5.0, 5.0)
                await client.drain()
                await asyncio.sleep(0.5)
                report = await client.bye()
                assert report.server_stats is not None
                assert report.server_stats["frames_dropped"] == 0
            finally:
                await app.stop()

        run(main())


# ---------------------------------------------------------------------------
# Ping liveness
# ---------------------------------------------------------------------------


class TestPingLiveness:
    def test_unresponsive_peer_is_ping_closed(self):
        """A client that completes the hello and then never reads again
        sends no pongs (auto-pong happens inside recv), so the server
        pings it ping_max_misses times and then closes the socket."""

        async def main():
            app = create_app(
                make_env(), rows=6, cols=6, predictor="uniform", port=0,
                ping_interval_s=0.2, ping_max_misses=2,
            )
            await app.start()
            try:
                socket = await ws.connect("127.0.0.1", app.port)
                socket.send_text(
                    protocol.encode_message(
                        "hello", protocol=protocol.PROTOCOL_VERSION, weight=1.0
                    )
                )
                await socket.drain()
                msg = protocol.decode_message((await socket.recv())[1])
                assert msg["type"] == "welcome"
                # ...and now go silent: no recv() means no auto-pongs.
                deadline = asyncio.get_running_loop().time() + 10.0
                while (
                    app.stats.idle_closed == 0
                    and asyncio.get_running_loop().time() < deadline
                ):
                    await asyncio.sleep(0.1)
                assert app.stats.idle_closed == 1
                assert app.stats.pings_sent >= 2
                status = app.status_snapshot()
                assert status["idle_closed"] == 1
                assert status["pings_sent"] >= 2
                assert status["ping_interval_s"] == pytest.approx(0.2)
            finally:
                await app.stop()
            assert app.stats.sessions_detached == 1

        run(main())

    def test_responsive_client_is_never_ping_closed(self):
        """LiveClient pumps recv() continuously, so every ping is ponged
        and the connection stays up across many ping intervals."""

        async def main():
            app = create_app(
                make_env(), rows=6, cols=6, predictor="uniform", port=0,
                ping_interval_s=0.1, ping_max_misses=1,
            )
            await app.start()
            try:
                client = await LiveClient.connect("127.0.0.1", app.port)
                await asyncio.sleep(1.0)  # ~10 ping intervals of idleness
                assert app.stats.idle_closed == 0
                report = await client.bye()
                assert report.server_stats is not None
            finally:
                await app.stop()
            assert app.stats.idle_closed == 0
            assert app.stats.pings_sent >= 2

        run(main())

    def test_ping_config_validation(self):
        with pytest.raises(ValueError):
            create_app(make_env(), rows=6, cols=6, ping_interval_s=-1.0)
        with pytest.raises(ValueError):
            create_app(make_env(), rows=6, cols=6, ping_max_misses=0)


# ---------------------------------------------------------------------------
# Durable sessions: park / resume / drain
# ---------------------------------------------------------------------------


class TestReconnectAndResume:
    def test_abrupt_disconnect_parks_then_token_resumes(self):
        """Kill the TCP connection without a bye: the session parks
        (pipeline keeps running) and a fresh socket presenting the
        welcome token reattaches with metrics intact."""

        async def main():
            app = create_app(
                make_env(), rows=6, cols=6, predictor="uniform", port=0,
                resume_grace_s=10.0,
            )
            await app.start()
            try:
                client = await LiveClient.connect("127.0.0.1", app.port)
                token = client.report.welcome["token"]
                assert token
                assert client.report.welcome.get("resumed") is False
                client.send_event(5.0, 5.0)
                await client.drain()
                await asyncio.sleep(0.4)
                # abrupt loss: RST the transport, no close frame
                client.socket.writer.transport.abort()
                await asyncio.sleep(0.3)
                assert app.stats.sessions_parked == 1
                assert app.stats.sessions_detached == 0
                snap = app.status_snapshot()
                assert snap["sessions_parked_now"] == 1
                assert snap["sessions_live"] == 0

                socket = await ws.connect("127.0.0.1", app.port)
                socket.send_text(
                    protocol.encode_message(
                        "hello",
                        protocol=protocol.PROTOCOL_VERSION,
                        resume=token,
                    )
                )
                await socket.drain()
                msg = protocol.decode_message((await socket.recv())[1])
                assert msg["type"] == "welcome"
                assert msg["resumed"] is True
                assert msg["token"] == token
                assert msg["session"] == client.report.welcome["session"]
                assert app.stats.sessions_resumed == 1
                snap = app.status_snapshot()
                assert snap["sessions_parked_now"] == 0
                assert snap["sessions_live"] == 1
                assert snap["sessions_resumed"] == 1
                # the resumed socket keeps receiving pushed blocks
                got_block = False
                deadline = asyncio.get_running_loop().time() + 5.0
                while asyncio.get_running_loop().time() < deadline:
                    item = await asyncio.wait_for(socket.recv(), timeout=5.0)
                    if item is not None and item[0] == ws.OP_BINARY:
                        got_block = True
                        break
                assert got_block, "no blocks pushed after resume"
                await socket.close()
            finally:
                await app.stop()
            # one admission, resumed once, never double-counted
            assert app.stats.sessions_admitted == 1

        run(main())

    def test_unknown_token_is_rejected_and_counted(self):
        async def main():
            app = create_app(
                make_env(), rows=6, cols=6, predictor="uniform", port=0,
                resume_grace_s=5.0,
            )
            await app.start()
            try:
                socket = await ws.connect("127.0.0.1", app.port)
                socket.send_text(
                    protocol.encode_message(
                        "hello",
                        protocol=protocol.PROTOCOL_VERSION,
                        resume="no-such-token",
                    )
                )
                await socket.drain()
                msg = protocol.decode_message((await socket.recv())[1])
                assert msg["type"] == "reject"
                assert "token" in msg["reason"]
                assert app.stats.resume_rejected == 1
                assert app.status_snapshot()["resume_rejected"] == 1
                await socket.close()
            finally:
                await app.stop()

        run(main())

    def test_grace_expiry_detaches_parked_session(self):
        async def main():
            app = create_app(
                make_env(), rows=6, cols=6, predictor="uniform", port=0,
                resume_grace_s=0.3,
            )
            await app.start()
            try:
                client = await LiveClient.connect("127.0.0.1", app.port)
                client.socket.writer.transport.abort()
                await asyncio.sleep(0.1)
                assert app.stats.sessions_parked == 1
                deadline = asyncio.get_running_loop().time() + 5.0
                while (
                    app.stats.sessions_detached == 0
                    and asyncio.get_running_loop().time() < deadline
                ):
                    await asyncio.sleep(0.05)
                assert app.stats.sessions_detached == 1
                assert app.status_snapshot()["sessions_parked_now"] == 0
            finally:
                await app.stop()

        run(main())

    def test_zero_grace_keeps_legacy_detach_behavior(self):
        async def main():
            app = create_app(
                make_env(), rows=6, cols=6, predictor="uniform", port=0,
            )
            await app.start()
            try:
                client = await LiveClient.connect("127.0.0.1", app.port)
                client.socket.writer.transport.abort()
                await asyncio.sleep(0.3)
                assert app.stats.sessions_parked == 0
                assert app.stats.sessions_detached == 1
            finally:
                await app.stop()

        run(main())

    def test_live_client_auto_reconnects_through_chaos_disconnect(self):
        """The server-side fault injector aborts the socket mid-session;
        LiveClient redials with its token and the same report object
        keeps accumulating blocks."""
        from repro.chaos import ChaosConfig

        async def main():
            app = create_app(
                make_env(), rows=6, cols=6, predictor="uniform", port=0,
                resume_grace_s=10.0,
                chaos=ChaosConfig.parse("disconnect:0@0.5"),
            )
            await app.start()
            try:
                client = await LiveClient.connect(
                    "127.0.0.1", app.port, auto_reconnect=True
                )
                deadline = asyncio.get_running_loop().time() + 10.0
                while (
                    client.report.resumes == 0
                    and asyncio.get_running_loop().time() < deadline
                ):
                    client.send_event(10.0, 10.0)
                    try:
                        await client.drain()
                    except (ConnectionError, OSError):
                        pass
                    await asyncio.sleep(0.1)
                assert client.report.resumes == 1
                assert len(client.report.resumed_at) == 1
                assert app.stats.disconnects_injected == 1
                assert app.stats.sessions_resumed == 1
                await client.close()
            finally:
                await app.stop()

        run(main())


class TestGracefulDrain:
    def test_stop_closes_with_going_away_1001(self):
        """stop() must say 1001 "going away" before detaching, so
        well-behaved reconnect logic knows not to retry."""

        async def main():
            app = create_app(
                make_env(), rows=6, cols=6, predictor="uniform", port=0,
                resume_grace_s=10.0,
            )
            await app.start()
            client = await LiveClient.connect(
                "127.0.0.1", app.port, auto_reconnect=True
            )
            await asyncio.sleep(0.2)
            await app.stop()
            # give the client's read loop the close frame
            await asyncio.wait_for(client._done.wait(), timeout=5.0)
            assert client.socket.close_code == 1001
            assert "drain" in client.socket.close_reason
            # 1001 is deliberate: auto-reconnect must NOT have fired
            assert client.report.resumes == 0
            await client.close()
            assert app.stats.sessions_detached == 1

        run(main())

    def test_draining_server_rejects_new_hellos(self):
        async def main():
            app = create_app(
                make_env(), rows=6, cols=6, predictor="uniform", port=0,
            )
            await app.start()
            app._draining = True  # what stop()/SIGTERM sets first
            try:
                with pytest.raises(AdmissionRejected, match="drain"):
                    await LiveClient.connect("127.0.0.1", app.port)
                assert app.stats.sessions_rejected == 1
            finally:
                app._draining = False
                await app.stop()

        run(main())

    def test_checkpoint_out_in_cycle_restores_tokens_and_prior(self, tmp_path):
        """Drain writes {tokens, prior}; a restarted server warms the
        prior and honors the old token as a fresh resumed session."""
        import json

        path = str(tmp_path / "serve.ckpt.json")

        async def main():
            app = create_app(
                make_env(), rows=6, cols=6, predictor="shared-markov",
                port=0, resume_grace_s=30.0, checkpoint_out=path,
            )
            await app.start()
            client = await LiveClient.connect("127.0.0.1", app.port)
            token = client.report.welcome["token"]
            client.send_event(5.0, 5.0)
            await client.drain()
            await asyncio.sleep(0.6)
            await app.stop()
            await client.close()

            with open(path) as fh:
                payload = json.load(fh)
            assert payload["format"] == "khameleon-serve-checkpoint"
            assert payload["format_version"] == 1
            assert payload["n"] == 36
            assert token in payload["tokens"]

            app2 = create_app(
                make_env(), rows=6, cols=6, predictor="shared-markov",
                port=0, resume_grace_s=30.0, checkpoint_in=path,
            )
            await app2.start()
            try:
                socket = await ws.connect("127.0.0.1", app2.port)
                socket.send_text(
                    protocol.encode_message(
                        "hello",
                        protocol=protocol.PROTOCOL_VERSION,
                        resume=token,
                    )
                )
                await socket.drain()
                msg = protocol.decode_message((await socket.recv())[1])
                assert msg["type"] == "welcome"
                assert msg["resumed"] is True
                assert app2.stats.sessions_resumed == 1
                await socket.close()
            finally:
                await app2.stop()

        run(main())

    def test_checkpoint_in_rejects_wrong_universe(self, tmp_path):
        import json

        path = str(tmp_path / "bad.ckpt.json")
        with open(path, "w") as fh:
            json.dump(
                {
                    "format": "khameleon-serve-checkpoint",
                    "format_version": 1,
                    "n": 999,
                    "tokens": {},
                    "prior": {"transitions_observed": 0, "coo": []},
                },
                fh,
            )

        async def main():
            app = create_app(
                make_env(), rows=6, cols=6, predictor="uniform", port=0,
                checkpoint_in=path,
            )
            with pytest.raises(ValueError, match="999"):
                await app.start()

        run(main())

    def test_resume_grace_validation(self):
        with pytest.raises(ValueError, match="resume_grace_s"):
            create_app(make_env(), rows=6, cols=6, resume_grace_s=-1.0)

"""Tests for the Falcon port: app, backend, and trace generator."""

import numpy as np
import pytest

from repro.backends.database import RangeFilter
from repro.encoding.rowsample import decode_prefix
from repro.sim.engine import Simulator
from repro.workloads.falcon import (
    FalconApp,
    FalconTrace,
    FalconTraceGenerator,
    SelectionEvent,
)


@pytest.fixture()
def app() -> FalconApp:
    return FalconApp(blocks_per_response=2)


class TestFalconApp:
    def test_six_linked_charts(self, app):
        assert app.num_requests == 6
        assert app.queries_per_request == 5
        assert app.num_blocks == [2] * 6

    def test_queries_exclude_hovered_and_target_filters(self, app):
        """Hovering chart 0: five queries, none over chart 0's column;
        each target's filters exclude both its own and chart 0's
        selection (the slice's free dimensions)."""
        queries = app.queries_for(0)
        assert len(queries) == 5
        hovered_col = app.charts[0].column
        targets = [t for t in range(6) if t != 0]
        for target, q in zip(targets, queries):
            assert q.column == app.charts[target].column
            filter_cols = {f.column for f in q.filters}
            assert q.column not in filter_cols
            assert hovered_col not in filter_cols
            # The other four charts' selections are applied.
            assert len(q.filters) == 4

    def test_selection_change_bumps_version(self, app):
        v0 = app.selection_version
        app.set_selection(1, RangeFilter(app.charts[1].column, 0.0, 10.0))
        assert app.selection_version == v0 + 1

    def test_apply_selection_event(self, app):
        event = SelectionEvent(time_s=1.0, chart=2, lo=5.0, hi=50.0)
        app.apply_selection(event)
        f = app.selections[2]
        assert f is not None and (f.lo, f.hi) == (5.0, 50.0)

    def test_max_concurrent_requests(self, app):
        # 15 concurrent queries / 5 queries per request = 3 requests.
        assert app.max_concurrent_requests == 3

    def test_rejects_single_chart(self):
        from repro.workloads.flights import FLIGHT_CHARTS

        with pytest.raises(ValueError):
            FalconApp(charts=FLIGHT_CHARTS[:1])

    def test_unknown_db_scale_rejected(self, app):
        with pytest.raises(ValueError):
            app.make_db(Simulator(), scale="huge")


class TestFalconBackend:
    def test_fetch_runs_five_queries_and_encodes(self, app):
        sim = Simulator()
        db = app.make_db(sim, scale="small")
        backend = app.make_backend(sim, db)
        got = []
        backend.fetch(0, got.append)
        sim.run()
        assert len(got) == 1
        assert got[0].num_blocks == 2
        assert db.queries_executed == 5
        # Decoded rows carry (bin, count, target-chart) triples for the
        # five non-hovered charts.
        rows = decode_prefix(got[0].blocks)
        assert rows.shape[1] == 3
        assert set(np.unique(rows[:, 2])) == {1, 2, 3, 4, 5}

    def test_concurrent_fetches_share_inflight(self, app):
        sim = Simulator()
        db = app.make_db(sim, scale="small")
        backend = app.make_backend(sim, db)
        got = []
        backend.fetch(3, got.append)
        backend.fetch(3, got.append)  # piggybacks; no duplicate queries
        sim.run()
        assert len(got) == 2
        assert db.queries_executed == 5

    def test_cached_fetch_is_free(self, app):
        sim = Simulator()
        db = app.make_db(sim, scale="small")
        backend = app.make_backend(sim, db)
        backend.fetch(1, lambda r: None)
        sim.run()
        before = db.queries_executed
        backend.fetch(1, lambda r: None)
        sim.run()
        assert db.queries_executed == before

    def test_selection_change_invalidates_response_cache(self, app):
        sim = Simulator()
        db = app.make_db(sim, scale="small")
        backend = app.make_backend(sim, db)
        backend.fetch(1, lambda r: None)
        sim.run()
        app.set_selection(0, RangeFilter(app.charts[0].column, 0.0, 100.0))
        backend.fetch(1, lambda r: None)
        sim.run()
        assert db.queries_executed == 10  # recomputed after invalidation

    def test_results_reflect_current_selections(self, app):
        """The backend computes real histograms: narrowing a selection
        shrinks the counts other charts see."""
        sim = Simulator()
        db = app.make_db(sim, scale="small")
        backend = app.make_backend(sim, db)
        got = []
        backend.fetch(0, got.append)
        sim.run()
        wide = decode_prefix(got[0].blocks)
        spec = app.charts[1]
        app.set_selection(1, RangeFilter(spec.column, spec.domain[0], spec.domain[0] + 1e-6))
        got.clear()
        backend.fetch(0, got.append)
        sim.run()
        narrow = decode_prefix(got[0].blocks)
        # Chart 2's slice is filtered by chart 1's selection.
        wide_c2 = wide[wide[:, 2] == 2][:, 1].sum()
        narrow_c2 = narrow[narrow[:, 2] == 2][:, 1].sum()
        assert narrow_c2 < wide_c2


class TestFalconTraceGenerator:
    def test_generates_falcon_trace(self, app):
        trace = FalconTraceGenerator(app, seed=1).generate(60.0)
        assert isinstance(trace, FalconTrace)
        assert trace.duration_s <= 60.0
        assert trace.num_requests >= 1

    def test_requests_are_chart_entries(self, app):
        trace = FalconTraceGenerator(app, seed=2).generate(120.0)
        for e in trace.interaction.requests():
            assert app.layout.request_at(e.x, e.y) == e.request

    def test_consecutive_requests_differ(self, app):
        trace = FalconTraceGenerator(app, seed=3).generate(120.0)
        ids = [e.request for e in trace.interaction.requests()]
        assert all(a != b for a, b in zip(ids, ids[1:]))

    def test_selections_are_valid_subranges(self, app):
        trace = FalconTraceGenerator(app, seed=4).generate(120.0)
        assert trace.selections, "long brushes should commit selections"
        for sel in trace.selections:
            lo_d, hi_d = app.charts[sel.chart].domain
            assert lo_d <= sel.lo < sel.hi <= hi_d
            assert 0.0 <= sel.time_s <= trace.duration_s

    def test_deterministic(self, app):
        a = FalconTraceGenerator(app, seed=5).generate(30.0)
        b = FalconTraceGenerator(app, seed=5).generate(30.0)
        assert len(a.interaction.events) == len(b.interaction.events)
        assert a.selections == b.selections

"""Stacked Markov/shared-chain decode: byte-identity and plumbing.

The fleet's coalesced tick batches the Markov predictor families the
same way it batches Kalman: one pass per delivery group, with learning
side effects in group order and chain rows gathered once per version.
The contract is byte-identity — flipping ``batched_decode`` must not
change a single probability, matrix, schedule, or metric, including
when one member's observation mutates a row an earlier member reads
(the freeze path) and under session churn (arrivals mid-tick).
"""

import numpy as np
import pytest

from repro.experiments.configs import DEFAULT_ENV, FleetEnvironment
from repro.experiments.runner import run_fleet
from repro.fleet import ArrivalConfig
from repro.predictors.markov import MarkovModel, MarkovServerPredictor
from repro.predictors.shared import (
    SharedMarkovServerPredictor,
    SharedTransitionPrior,
)
from repro.workloads.image_app import ImageExplorationApp
from repro.workloads.mouse import MouseTraceGenerator

DELTAS = (0.05, 0.15, 0.25, 0.5)
N = 30


def assert_dists_equal(a, b):
    np.testing.assert_array_equal(a.explicit_ids, b.explicit_ids)
    np.testing.assert_array_equal(a.explicit_probs, b.explicit_probs)
    np.testing.assert_array_equal(a.residual, b.residual)
    np.testing.assert_array_equal(a.deltas_s, b.deltas_s)


def drive_markov(sp, stream):
    for request in stream:
        sp.decode(request, DELTAS)


class TestMarkovDecodeBatch:
    def _twin_predictors(self, seed=0, sessions=6):
        """Two identical session sets over private chains."""
        rng = np.random.default_rng(seed)
        twins = ([], [])
        for i in range(sessions):
            history = rng.integers(0, N, size=int(rng.integers(0, 12)))
            for side in twins:
                sp = MarkovServerPredictor(MarkovModel(N))
                drive_markov(sp, history)
                side.append(sp)
        return twins

    def test_batch_matches_sequential_decode(self):
        scalar, batched = self._twin_predictors()
        rng = np.random.default_rng(5)
        states = [
            None if rng.random() < 0.2 else int(rng.integers(0, N))
            for _ in scalar
        ]
        want = [sp.decode(s, DELTAS) for sp, s in zip(scalar, states)]
        got = MarkovServerPredictor.decode_batch(
            [(sp, s, DELTAS) for sp, s in zip(batched, states)]
        )
        for a, b in zip(want, got):
            assert_dists_equal(a, b)

    def test_shared_model_freeze_on_conflict(self):
        """Two predictors over ONE chain: the second member's learning
        mutates the row the first member reads (the first decode sets
        the chain's last request), so the first's row must be frozen at
        its pre-mutation version."""
        def build():
            model = MarkovModel(N)
            sp1, sp2 = MarkovServerPredictor(model), MarkovServerPredictor(model)
            drive_markov(sp1, [3, 7, 3, 9, 3])  # row 3 well populated
            return sp1, sp2

        a1, a2 = build()
        want = [a1.decode(3, DELTAS), a2.decode(8, DELTAS)]
        b1, b2 = build()
        got = MarkovServerPredictor.decode_batch(
            [(b1, 3, DELTAS), (b2, 8, DELTAS)]
        )
        for a, b in zip(want, got):
            assert_dists_equal(a, b)

    def test_same_row_version_shares_one_distribution(self):
        model = MarkovModel(N)
        sp1, sp2 = MarkovServerPredictor(model), MarkovServerPredictor(model)
        drive_markov(sp1, [2, 4])
        sp2._last_decoded = 4  # aligned with the chain: no re-learn
        got = MarkovServerPredictor.decode_batch(
            [(sp1, 4, DELTAS), (sp2, 4, DELTAS)]
        )
        assert got[0] is got[1]


class TestSharedDecodeBatch:
    @staticmethod
    def _build(seed=0, sessions=6):
        rng = np.random.default_rng(seed)
        prior = SharedTransitionPrior(N)
        for _ in range(80):
            prior.observe(int(rng.integers(0, N)), int(rng.integers(0, N)))
        sps = []
        for _ in range(sessions):
            sp = SharedMarkovServerPredictor(MarkovModel(N), prior)
            for request in rng.integers(0, N, size=int(rng.integers(0, 10))):
                sp.decode(int(request), DELTAS)
            sps.append(sp)
        return sps

    def test_batch_matches_sequential_decode(self):
        rng = np.random.default_rng(9)
        states = [
            None if rng.random() < 0.2 else int(rng.integers(0, N))
            for _ in range(6)
        ]
        scalar = self._build()
        want = [sp.decode(s, DELTAS) for sp, s in zip(scalar, states)]
        batched = self._build()
        got = SharedMarkovServerPredictor.decode_batch(
            [(sp, s, DELTAS) for sp, s in zip(batched, states)]
        )
        for a, b in zip(want, got):
            assert_dists_equal(a, b)

    def test_freeze_on_crowd_row_conflict(self):
        """Member 2's transition leaves the exact row member 1 reads:
        the scalar sequence reads the crowd row *before* the pooled
        observation bumps it, so the batch must freeze member 1's
        blend at the pre-mutation version."""
        def build():
            prior = SharedTransitionPrior(N)
            for nxt in (2, 5, 2, 11):
                prior.observe(7, nxt)
            sp1 = SharedMarkovServerPredictor(MarkovModel(N), prior)
            sp2 = SharedMarkovServerPredictor(MarkovModel(N), prior)
            sp2.decode(7, DELTAS)  # sp2's chain now sits at request 7
            return sp1, sp2

        a1, a2 = build()
        # Scalar order: sp1 reads crowd row 7, then sp2 observes 7->9.
        want = [a1.decode(7, DELTAS), a2.decode(9, DELTAS)]
        b1, b2 = build()
        got = SharedMarkovServerPredictor.decode_batch(
            [(b1, 7, DELTAS), (b2, 9, DELTAS)]
        )
        for a, b in zip(want, got):
            assert_dists_equal(a, b)
        # The conflict really exists: the crowd row changed under sp1.
        assert b2.prior.row_mass(7) == 5

    def test_cold_members_share_one_distribution(self):
        prior = SharedTransitionPrior(N)
        for nxt in (1, 2, 3):
            prior.observe(6, nxt)
        sp1 = SharedMarkovServerPredictor(MarkovModel(N), prior)
        sp2 = SharedMarkovServerPredictor(MarkovModel(N), prior)
        got = SharedMarkovServerPredictor.decode_batch(
            [(sp1, 6, DELTAS), (sp2, 6, DELTAS)]
        )
        # Both members are cold on row 6 (no private counts: decoding 6
        # observes nothing out of 6), land on the same crowd version,
        # and may therefore share the object — byte-identity for free.
        assert got[0] is got[1]
        assert_dists_equal(got[0], sp1.decode(6, DELTAS))


def run_markov_fleet(predictor, batched_decode, arrival=None, num=4, duration=1.2):
    app = ImageExplorationApp(rows=8, cols=8)
    traces = [
        MouseTraceGenerator(app.layout, seed=40 + i).generate(duration_s=duration)
        for i in range(num)
    ]
    env = FleetEnvironment(
        num_sessions=num,
        env=DEFAULT_ENV,
        batched_decode=batched_decode,
        arrival=arrival,
    )
    return run_fleet(app, traces, env, predictor=predictor, drain_s=0.5)


CHURN = ArrivalConfig(rate_per_s=4.0, mean_dwell_s=0.8, max_concurrent=3, seed=7)


class TestFleetByteIdentity:
    @pytest.mark.parametrize("predictor", ["markov", "shared-markov"])
    @pytest.mark.parametrize(
        "arrival", [None, CHURN], ids=["static", "churn"]
    )
    def test_flag_flip_changes_nothing(self, predictor, arrival):
        """Satellite acceptance: Markov-family fleets produce
        byte-identical results under batched vs per-session decode —
        including under churn, where states collected before an arrival
        or departure are applied mid-tick."""
        a = run_markov_fleet(predictor, batched_decode=False, arrival=arrival)
        b = run_markov_fleet(predictor, batched_decode=True, arrival=arrival)
        assert b.diagnostics["prediction"]["decode_batches"] > 0
        assert a.diagnostics["prediction"]["decode_batches"] == 0
        for key in ("blocks_sent", "bytes_sent", "blocks_deferred"):
            assert a.diagnostics[key] == b.diagnostics[key], key
        sa, sb = a.summary, b.summary
        assert sa.aggregate.as_dict() == sb.aggregate.as_dict()
        assert [
            s.as_dict() if s is not None else None for s in sa.per_session
        ] == [s.as_dict() if s is not None else None for s in sb.per_session]

    def test_probability_matrices_byte_identical(self):
        """Directly compare the installed scheduler matrices across the
        flag flip for the shared-chain fleet."""
        from repro.core.greedy import GreedyScheduler

        captured = {}
        original = GreedyScheduler.install_distribution
        for mode in (False, True):
            log = []

            def recording(self, dist, slot, pmat, pres, _log=log):
                _log.append((pmat.tobytes(), pres.tobytes()))
                return original(self, dist, slot, pmat, pres)

            GreedyScheduler.install_distribution = recording
            try:
                run_markov_fleet(
                    "shared-markov", batched_decode=mode, num=3, duration=0.8
                )
            finally:
                GreedyScheduler.install_distribution = original
            captured[mode] = log
        assert captured[True]  # matrices were actually installed
        assert captured[False] == captured[True]

"""Importable worker entry points for the sharding protocol tests.

Spawned shard workers resolve their entry by ``module:function``
import in a fresh interpreter, so these must live in a real module —
a function defined inside a test class would not be importable there.
(The tests directory rides along on ``sys.path``, which multiprocessing
forwards to spawn children.)
"""


def echo_worker(spec, channel):
    """One exchange: return the peers' payloads."""
    return channel.exchange(spec)


def failing_worker(spec, channel):
    raise RuntimeError("deliberate test failure")


def crashable_worker(spec, channel):
    """Multi-round worker that can hard-crash mid-protocol.

    ``spec`` is a dict: ``rounds`` barrier exchanges to run; when
    ``crash_before_round`` matches the upcoming round the process dies
    via ``os._exit`` — no exception message, no close frame, exactly
    like an OOM-kill — which is the failure mode supervised
    ``run_sharded`` must recover from.  Optional ``sleep_s`` wedges the
    worker before its first exchange (for heartbeat-timeout tests).
    """
    import os
    import time

    if spec.get("sleep_s"):
        time.sleep(spec["sleep_s"])
    peers = []
    for r in range(spec["rounds"]):
        if spec.get("crash_before_round") == r:
            os._exit(23)
        peers.append(channel.exchange(f"{spec['tag']}:r{r}"))
    return {"tag": spec["tag"], "rounds_done": spec["rounds"], "peers": peers}

"""Importable worker entry points for the sharding protocol tests.

Spawned shard workers resolve their entry by ``module:function``
import in a fresh interpreter, so these must live in a real module —
a function defined inside a test class would not be importable there.
(The tests directory rides along on ``sys.path``, which multiprocessing
forwards to spawn children.)
"""


def echo_worker(spec, channel):
    """One exchange: return the peers' payloads."""
    return channel.exchange(spec)


def failing_worker(spec, channel):
    raise RuntimeError("deliberate test failure")

"""Tests for failure injection (outage links, flaky backends)."""

import pytest

from repro.backends.filesystem import FileSystemBackend
from repro.encoding.naive import SingleBlockEncoder
from repro.sim.engine import Simulator
from repro.sim.failures import FlakyBackend, OutageLink
from repro.sim.link import FixedRateLink


class TestOutageLink:
    def make(self, outages, rate=1000.0):
        sim = Simulator()
        inner = FixedRateLink(sim, bytes_per_second=rate)
        return sim, OutageLink(inner, outages)

    def test_transfer_before_outage_unaffected(self):
        sim, link = self.make([(10.0, 20.0)])
        got = []
        link.send(1000, got.append, "a")  # 1 second at 1000 B/s
        sim.run()
        assert sim.now == pytest.approx(1.0)

    def test_start_inside_outage_stalls_to_end(self):
        sim, link = self.make([(0.0, 5.0)])
        got = []
        link.send(1000, got.append, "a")
        sim.run()
        assert got == ["a"]
        assert sim.now == pytest.approx(6.0)  # 5 s stall + 1 s transfer

    def test_transfer_spanning_outage_pauses(self):
        sim, link = self.make([(0.5, 3.5)])
        got = []
        link.send(1000, got.append, "a")  # would finish at 1.0
        sim.run()
        assert sim.now == pytest.approx(4.0)  # + 3 s outage

    def test_queue_backs_up_behind_outage(self):
        sim, link = self.make([(0.0, 5.0)])
        arrivals = []
        link.send(1000, lambda p: arrivals.append(sim.now), "a")
        link.send(1000, lambda p: arrivals.append(sim.now), "b")
        sim.run()
        assert arrivals == [pytest.approx(6.0), pytest.approx(7.0)]

    def test_empty_window_rejected(self):
        sim = Simulator()
        inner = FixedRateLink(sim, 1000.0)
        with pytest.raises(ValueError):
            OutageLink(inner, [(5.0, 5.0)])


class TestFlakyBackend:
    def make(self, period=2, retry=0.5):
        sim = Simulator()
        encoder = SingleBlockEncoder(lambda r: 100)
        inner = FileSystemBackend(sim, encoder, fetch_delay_s=0.1)
        return sim, FlakyBackend(inner, failure_period=period, retry_delay_s=retry)

    def test_callbacks_always_fire(self):
        """Failures delay completion but never lose it — the invariant
        the sender depends on."""
        sim, backend = self.make(period=2)
        got = []
        for r in range(6):
            backend.fetch(r, got.append)
        sim.run()
        assert len(got) == 6

    def test_failures_counted_and_delayed(self):
        sim, backend = self.make(period=1, retry=0.5)  # every fetch fails once
        done_at = []
        backend.fetch(0, lambda resp: done_at.append(sim.now))
        sim.run()
        assert backend.failures_injected == 1
        assert done_at[0] == pytest.approx(0.6)  # 0.5 retry + 0.1 fetch

    def test_cached_fetches_never_fail(self):
        sim, backend = self.make(period=1)
        backend.fetch(0, lambda r: None)
        sim.run()
        failures = backend.failures_injected
        backend.fetch(0, lambda r: None)  # served from cache
        sim.run()
        assert backend.failures_injected == failures

    def test_parameter_validation(self):
        sim, backend = self.make()
        with pytest.raises(ValueError):
            FlakyBackend(backend.inner, failure_period=0)
        with pytest.raises(ValueError):
            FlakyBackend(backend.inner, retry_delay_s=-1.0)


class TestEndToEndDegradation:
    def test_khameleon_survives_an_outage(self):
        """A mid-session outage degrades metrics without wedging the
        pipeline: blocks flow again after the link recovers."""
        from repro.core.session import KhameleonSession, SessionConfig
        from repro.experiments.configs import DEFAULT_ENV, make_uplink
        from repro.workloads.image_app import ImageExplorationApp
        from repro.workloads.mouse import MouseTraceGenerator
        from repro.predictors.base import MouseEvent

        sim = Simulator()
        app = ImageExplorationApp(rows=5, cols=5)
        trace = MouseTraceGenerator(app.layout, seed=2).generate(6.0)
        inner = FixedRateLink(sim, 2_000_000.0, propagation_delay_s=0.0125)
        downlink = OutageLink(inner, [(2.0, 4.0)])
        session = KhameleonSession(
            sim=sim,
            backend=app.make_backend(sim, fetch_delay_s=0.05),
            predictor=app.make_predictor("kalman"),
            utility=app.utility,
            num_blocks=app.num_blocks,
            downlink=downlink,
            uplink=make_uplink(sim, DEFAULT_ENV),
            config=SessionConfig(cache_bytes=5_000_000),
        )
        for e in trace.events:
            sim.schedule_at(e.time_s, session.client.observe, MouseEvent(e.x, e.y))
            if e.request is not None:
                sim.schedule_at(e.time_s, session.client.request, e.request)
        session.start()
        sim.run(until=2.0)
        before_outage = session.client.blocks_received
        sim.run(until=4.0)
        during = session.client.blocks_received
        sim.run(until=7.0)
        after = session.client.blocks_received
        session.stop()
        assert before_outage > 0
        # Nothing (or almost nothing: one in-flight block) lands mid-outage.
        assert during - before_outage <= 1
        assert after > during  # recovery

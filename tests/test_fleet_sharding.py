"""Tests for the multiprocess sharded fleet (repro.fleet.sharding).

The load-bearing contract is **W=1 bit-identity**: a single-shard
``run_fleet_sharded`` must reproduce the unsharded :func:`run_fleet`
exactly — same summary floats, same diagnostics counters, same cohort
tables — because every sharding transform (hash route, bandwidth
share, expected-population override, chunked ``sim.run`` at sync
barriers) degenerates to the identity at W=1.  That is what licenses
trusting the W>1 fleet: the machinery provably adds nothing of its
own.

The rest covers the generic machinery (stable hash routing, the
barrier protocol, worker-failure propagation) and the W=2 pooled
report (session conservation, pooled counters, prior aggregation).
"""

import dataclasses

import pytest

from repro.experiments.configs import DEFAULT_ENV, FleetEnvironment
from repro.experiments.runner import run_fleet, run_fleet_sharded
from repro.fleet import (
    ArrivalConfig,
    ShardError,
    ShardRecovery,
    ShardTask,
    SupervisionPolicy,
    assign_shards,
    run_sharded,
    shard_of,
)
from repro.metrics.fleet import pool_snapshots
from repro.workloads.image_app import ImageExplorationApp
from repro.workloads.mouse import MouseTraceGenerator


def small_fleet(num_sessions=4, trace_duration_s=3.0, arrival=None):
    app = ImageExplorationApp(rows=8, cols=8)
    traces = [
        MouseTraceGenerator(app.layout, seed=100 + i).generate(
            duration_s=trace_duration_s
        )
        for i in range(num_sessions)
    ]
    fleet_env = FleetEnvironment(
        num_sessions=num_sessions, env=DEFAULT_ENV, arrival=arrival
    )
    return app, traces, fleet_env


def strip_sharding(result):
    diagnostics = dict(result.diagnostics)
    diagnostics.pop("sharding")
    return dataclasses.replace(result, diagnostics=diagnostics)


class TestHashRouting:
    def test_stable_across_calls(self):
        assert [shard_of(i, 4) for i in range(16)] == [
            shard_of(i, 4) for i in range(16)
        ]

    def test_partition_is_total_and_disjoint(self):
        shards = assign_shards(range(100), 4)
        assert sorted(i for shard in shards for i in shard) == list(range(100))

    def test_single_shard_owns_everything(self):
        assert assign_shards(range(10), 1) == [list(range(10))]

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            shard_of(1, 0)


class TestBarrierProtocol:
    def test_exchange_relays_peer_payloads(self):
        tasks = [
            ShardTask(
                entry="_shard_helpers:echo_worker",
                spec=f"hello-{k}",
                shard=k,
                num_shards=3,
            )
            for k in range(3)
        ]
        results = run_sharded(tasks, sync_rounds=1, timeout_s=60.0)
        for k, got in enumerate(results):
            expected = sorted(f"hello-{j}" for j in range(3) if j != k)
            assert sorted(got) == expected

    def test_worker_exception_raises_shard_error(self):
        tasks = [
            ShardTask(
                entry="_shard_helpers:failing_worker",
                spec=None,
                shard=0,
                num_shards=1,
            )
        ]
        with pytest.raises(ShardError, match="deliberate"):
            run_sharded(tasks, timeout_s=60.0)

    def test_shard_indices_must_cover_range(self):
        task = ShardTask(entry="x:y", spec=None, shard=1, num_shards=2)
        with pytest.raises(ValueError, match="0..W-1"):
            run_sharded([task])


def crashable_task(shard, num_shards, rounds, crash_before_round=None, **extra):
    return ShardTask(
        entry="_shard_helpers:crashable_worker",
        spec={
            "tag": f"s{shard}",
            "rounds": rounds,
            "crash_before_round": crash_before_round,
            **extra,
        },
        shard=shard,
        num_shards=num_shards,
    )


class TestSupervision:
    """Supervised run_sharded: restart, recover, or degrade — never hang."""

    POLICY = SupervisionPolicy(max_restarts=2, backoff_s=0.01)

    def test_hard_crash_without_supervision_raises(self):
        tasks = [crashable_task(0, 1, rounds=2, crash_before_round=1)]
        with pytest.raises(ShardError, match="mid-protocol|pipe closed"):
            run_sharded(tasks, sync_rounds=2, timeout_s=60.0)

    def test_crashed_worker_is_respawned_and_finishes(self):
        rounds = 3
        tasks = [
            crashable_task(0, 2, rounds),
            crashable_task(1, 2, rounds, crash_before_round=1),
        ]
        recovery = ShardRecovery()

        def respawn(shard, next_round):
            # The replacement re-runs only the remaining barriers and
            # does not crash again — the chaos schedule fired already.
            return crashable_task(shard, 2, rounds - next_round)

        results = run_sharded(
            tasks,
            sync_rounds=rounds,
            timeout_s=60.0,
            supervision=self.POLICY,
            respawn=respawn,
            recovery=recovery,
        )
        assert recovery.recovered_shards == [1]
        assert recovery.lost_shards == []
        assert [s for s, _, _ in recovery.restarts] == [1]
        assert results[0]["rounds_done"] == rounds
        assert results[1]["rounds_done"] == rounds - 1  # resumed mid-run
        assert recovery.snapshot() == {
            "shards_recovered": 1,
            "shards_lost": 0,
            "restarts": 1,
        }

    def test_budget_exhaustion_drops_shard_but_survivors_finish(self):
        rounds = 2
        tasks = [
            crashable_task(0, 2, rounds),
            crashable_task(1, 2, rounds, crash_before_round=0),
        ]
        recovery = ShardRecovery()

        def respawn(shard, next_round):
            # The replacement is just as doomed: budget must run out.
            return crashable_task(
                shard, 2, rounds - next_round, crash_before_round=0
            )

        results = run_sharded(
            tasks,
            sync_rounds=rounds,
            timeout_s=60.0,
            supervision=SupervisionPolicy(max_restarts=1, backoff_s=0.01),
            respawn=respawn,
            recovery=recovery,
        )
        assert recovery.lost_shards == [1]
        assert recovery.recovered_shards == []
        assert results[1] is None  # the loss is surfaced, not raised
        assert results[0]["rounds_done"] == rounds
        # Once the peer was dropped, the survivor synced with nobody.
        assert results[0]["peers"][-1] == []

    def test_all_shards_lost_still_raises(self):
        tasks = [crashable_task(0, 1, rounds=1, crash_before_round=0)]

        def respawn(shard, next_round):
            return crashable_task(shard, 1, 1 - next_round, crash_before_round=0)

        with pytest.raises(ShardError, match="all shards lost"):
            run_sharded(
                tasks,
                sync_rounds=1,
                timeout_s=60.0,
                supervision=SupervisionPolicy(max_restarts=0),
                respawn=respawn,
            )

    def test_wedged_worker_trips_heartbeat_timeout_and_recovers(self):
        """A worker that stops making progress — but whose process is
        alive — is recycled via the quiet timeout, not the (much
        longer) total timeout.  Beacons are configured slower than the
        quiet window, so the wedge is detected."""
        rounds = 1
        wedged = crashable_task(0, 1, rounds, sleep_s=30.0)
        wedged.heartbeat_interval_s = 60.0  # no beacon before the wedge trips
        recovery = ShardRecovery()

        def respawn(shard, next_round):
            return crashable_task(shard, 1, rounds - next_round)

        results = run_sharded(
            [wedged],
            sync_rounds=rounds,
            timeout_s=120.0,
            supervision=SupervisionPolicy(
                max_restarts=1, backoff_s=0.01, heartbeat_timeout_s=1.0
            ),
            respawn=respawn,
            recovery=recovery,
        )
        assert recovery.recovered_shards == [0]
        assert results[0]["rounds_done"] == rounds

    def test_supervision_requires_respawn_factory(self):
        tasks = [crashable_task(0, 1, rounds=0)]
        with pytest.raises(ValueError, match="respawn"):
            run_sharded(tasks, supervision=self.POLICY)


class TestSingleShardBitIdentity:
    def test_static_shared_markov(self):
        app, traces, fleet_env = small_fleet()
        baseline = run_fleet(app, traces, fleet_env, predictor="shared-markov")
        sharded = run_fleet_sharded(
            app, traces, fleet_env, num_shards=1, predictor="shared-markov",
            sync_interval_s=0.5,
        )
        assert sharded.diagnostics["sharding"]["sync_rounds"] > 0
        assert strip_sharding(sharded) == baseline

    def test_static_kalman_no_sync(self):
        app, traces, fleet_env = small_fleet(num_sessions=3)
        baseline = run_fleet(app, traces, fleet_env, predictor="kalman")
        sharded = run_fleet_sharded(
            app, traces, fleet_env, num_shards=1, predictor="kalman"
        )
        assert sharded.diagnostics["sharding"]["sync_rounds"] == 0
        assert strip_sharding(sharded) == baseline

    def test_churn_shared_markov(self):
        arrival = ArrivalConfig(
            rate_per_s=1.5, mean_dwell_s=2.0, max_concurrent=3, seed=11
        )
        app, traces, fleet_env = small_fleet(num_sessions=5, arrival=arrival)
        baseline = run_fleet(app, traces, fleet_env, predictor="shared-markov")
        sharded = run_fleet_sharded(
            app, traces, fleet_env, num_shards=1, predictor="shared-markov",
            sync_interval_s=1.0,
        )
        assert strip_sharding(sharded) == baseline


class TestMultiShard:
    def test_two_shards_conserve_sessions_and_pool(self):
        app, traces, fleet_env = small_fleet(num_sessions=6)
        sharded = run_fleet_sharded(
            app, traces, fleet_env, num_shards=2, predictor="shared-markov",
            sync_interval_s=0.5,
        )
        d = sharded.diagnostics
        assert d["sessions"] == 6
        assert d["sharding"]["shards"] == 2
        assert sum(d["sharding"]["sessions_per_shard"]) == 6
        # Both shards observed transitions and the exchange pooled them:
        # the aggregate prior holds every shard's contribution.
        per_shard = assign_shards(range(6), 2)
        assert all(len(s) > 0 for s in per_shard)
        assert d["shared_prior"]["transitions_observed"] > 0
        assert d["shared_prior"]["transitions_observed"] == (
            d["sharding"]["transitions_merged"]
        )
        assert sharded.summary is not None
        assert len(sharded.summary.per_session) == 6
        # Global plan indices label the rows (positions are per-shard).
        assert sorted(int(l) for l in sharded.session_labels) == list(range(6))

    def test_warm_start_and_prior_out_round_trip(self, tmp_path):
        from repro.predictors.shared import SharedTransitionPrior

        app, traces, fleet_env = small_fleet(num_sessions=4)
        seed_prior = SharedTransitionPrior(app.num_requests)
        seed_prior.observe(0, 1)
        seed_prior.observe(1, 2)
        out = tmp_path / "pooled.npz"
        sharded = run_fleet_sharded(
            app, traces, fleet_env, num_shards=2, predictor="shared-markov",
            sync_interval_s=0.5, shared_prior=seed_prior, prior_out=out,
        )
        pooled = SharedTransitionPrior.load(out, n=app.num_requests)
        # Pooled = warm-start seed + every shard's own contribution.
        assert pooled.transitions_observed == (
            2 + sharded.diagnostics["sharding"]["transitions_merged"]
        )
        assert pooled.transitions_observed == (
            sharded.diagnostics["shared_prior"]["transitions_observed"]
        )


class TestPoolSnapshots:
    def test_single_snapshot_is_identity(self):
        snap = {"a": 3, "nested": {"b": 1.5, "flag": True}, "name": "x"}
        assert pool_snapshots([snap]) == snap

    def test_sums_counters_keeps_flags_maxes_peaks(self):
        a = {"n": 2, "peak_concurrency": 3, "flag": True, "inner": {"m": 1}}
        b = {"n": 5, "peak_concurrency": 2, "flag": True, "inner": {"m": 4}}
        assert pool_snapshots([a, b]) == {
            "n": 7,
            "peak_concurrency": 3,
            "flag": True,
            "inner": {"m": 5},
        }

    def test_disagreeing_flags_raise(self):
        with pytest.raises(ValueError, match="disagree"):
            pool_snapshots([{"flag": True}, {"flag": False}])

    def test_mismatched_keys_raise(self):
        with pytest.raises(ValueError, match="keys differ"):
            pool_snapshots([{"a": 1}, {"b": 1}])


class TestTcpTransportFleet:
    """The transport seam contract: run_sharded over loopback TCP is
    *the same computation* as over pipes — frames, CRCs, acks, and
    retransmits must be invisible to the DES above them."""

    def test_w1_tcp_is_bit_identical_to_pipe(self):
        app, traces, fleet_env = small_fleet()
        over_pipe = run_fleet_sharded(
            app, traces, fleet_env, num_shards=1, predictor="shared-markov",
            sync_interval_s=0.5, transport="pipe",
        )
        over_tcp = run_fleet_sharded(
            app, traces, fleet_env, num_shards=1, predictor="shared-markov",
            sync_interval_s=0.5, transport="tcp",
        )
        assert over_tcp.diagnostics["sharding"]["transport"]["driver"] == "tcp"
        assert strip_sharding(over_tcp) == strip_sharding(over_pipe)
        # The baseline too: the seam nests, it does not just cancel out.
        baseline = run_fleet(app, traces, fleet_env, predictor="shared-markov")
        assert strip_sharding(over_tcp) == baseline

    def test_net_chaos_requires_tcp(self):
        from repro.chaos import ChaosConfig

        app, traces, fleet_env = small_fleet()
        fleet_env = dataclasses.replace(
            fleet_env, chaos=ChaosConfig.parse("corrupt:0.1")
        )
        with pytest.raises(ValueError, match="requires"):
            run_fleet_sharded(
                app, traces, fleet_env, num_shards=2,
                predictor="shared-markov", transport="pipe",
            )


class TestChaoticWireEquivalence:
    """Wire faults must change *counters*, never *results*: a noisy or
    mid-run-partitioned link yields the same pooled summary as a clean
    run, with the defenses' firing visible in the transport totals."""

    def _clean_and_chaotic(self, chaos_str, **kw):
        from repro.chaos import ChaosConfig

        app, traces, fleet_env = small_fleet(num_sessions=6)
        clean = run_fleet_sharded(
            app, traces, fleet_env, num_shards=2, predictor="shared-markov",
            sync_interval_s=1.0, transport="tcp",
        )
        noisy_env = dataclasses.replace(
            fleet_env, chaos=ChaosConfig.parse(chaos_str)
        )
        chaotic = run_fleet_sharded(
            app, traces, noisy_env, num_shards=2, predictor="shared-markov",
            sync_interval_s=1.0, transport="tcp", **kw,
        )
        return clean, chaotic

    def test_corrupt_and_dup_wire_is_result_invisible(self):
        clean, chaotic = self._clean_and_chaotic("corrupt:0.05,dup:0.1")
        assert chaotic.summary == clean.summary
        assert chaotic.session_labels == clean.session_labels
        totals = chaotic.diagnostics["sharding"]["transport"]["totals"]
        assert totals["crc_rejects"] + totals["dup_drops"] > 0

    def test_healed_partition_matches_clean_run(self):
        clean, chaotic = self._clean_and_chaotic(
            "partition:0-1@1", partition_heal_s=0.8
        )
        assert chaotic.summary == clean.summary
        totals = chaotic.diagnostics["sharding"]["transport"]["totals"]
        assert totals["partitions_detected"] >= 1


class TestElasticMembership:
    """Ring-routed resharding: a worker leaving past its restart budget
    or joining mid-run moves only the ring-affected sessions, as
    checkpoint payloads over the transport — no session is lost."""

    def _elastic_fleet(self):
        app = ImageExplorationApp(rows=8, cols=8)
        traces = [
            MouseTraceGenerator(app.layout, seed=100 + i).generate(duration_s=4.0)
            for i in range(8)
        ]
        fleet_env = FleetEnvironment(num_sessions=8, env=DEFAULT_ENV)
        return app, traces, fleet_env

    def test_leave_migrates_sessions_to_survivors(self):
        from repro.chaos import ChaosConfig
        from repro.fleet import CheckpointConfig

        app, traces, fleet_env = self._elastic_fleet()
        fleet_env = dataclasses.replace(
            fleet_env,
            chaos=ChaosConfig.parse("worker-crash:1@2"),
            checkpoint=CheckpointConfig(cadence_rounds=1),
        )
        result = run_fleet_sharded(
            app, traces, fleet_env, num_shards=3, predictor="shared-markov",
            sync_interval_s=1.0, transport="tcp",
            supervision=SupervisionPolicy(max_restarts=0, backoff_s=0.01),
        )
        d = result.diagnostics["sharding"]
        assert d["shards_lost"] == 1
        assert d["shards_migrated"] == 1
        assert d["sessions_lost"] == 0
        assert d["sessions_migrated"] > 0
        # Every session still reports: the dead shard's sessions resumed
        # on survivors from their checkpointed positions.
        assert len(result.summary.per_session) == 8
        assert sorted(int(l) for l in result.session_labels) == list(range(8))

    def test_join_migrates_sessions_to_newcomer(self):
        app, traces, fleet_env = self._elastic_fleet()
        result = run_fleet_sharded(
            app, traces, fleet_env, num_shards=2, predictor="shared-markov",
            sync_interval_s=1.0, transport="tcp", join_at_round=1,
        )
        d = result.diagnostics["sharding"]
        assert d["members"] == 3
        assert d["joined_at_round"] == 1
        assert d["sessions_migrated"] > 0
        assert d["sessions_lost"] == 0
        assert len(result.summary.per_session) == 8
        assert sorted(int(l) for l in result.session_labels) == list(range(8))
        # The joiner really ran sessions: three restart columns now.
        assert len(d["restarts_by_shard"]) == 3

    def test_join_over_pipe_works_too(self):
        """Elastic membership is transport-independent: the same join
        rides the pipe driver's checkpoint payloads."""
        app, traces, fleet_env = self._elastic_fleet()
        result = run_fleet_sharded(
            app, traces, fleet_env, num_shards=2, predictor="shared-markov",
            sync_interval_s=1.0, transport="pipe", join_at_round=1,
        )
        d = result.diagnostics["sharding"]
        assert d["members"] == 3
        assert d["sessions_migrated"] > 0
        assert d["sessions_lost"] == 0

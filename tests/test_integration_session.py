"""End-to-end integration: a full Khameleon session over a simulated link.

These tests exercise the whole §3.2 architecture at once: predictor
manager → control channel → server decode → scheduler → sender →
downlink → client cache → upcalls.
"""

import pytest

from repro.backends import FileSystemBackend
from repro.core import KhameleonSession, SessionConfig, ssim_image_utility
from repro.encoding import ImageAsset, ProgressiveImageEncoder
from repro.predictors import (
    GridLayout,
    MouseEvent,
    make_kalman_predictor,
    make_point_predictor,
    make_uniform_predictor,
)
from repro.sim import ControlChannel, FixedRateLink, Simulator


def build_session(
    n_side=5,
    image_bytes=150_000,
    block=50_000,
    bw=1_000_000,
    cache_bytes=600_000,
    latency_s=0.0125,
    predictor=None,
):
    sim = Simulator()
    grid = GridLayout(rows=n_side, cols=n_side, cell_width=50, cell_height=50)
    n = grid.num_requests
    assets = {i: ImageAsset(image_id=i, size_bytes=image_bytes) for i in range(n)}
    encoder = ProgressiveImageEncoder(assets, block_size_bytes=block)
    backend = FileSystemBackend(sim, encoder, fetch_delay_s=0.0375)
    downlink = FixedRateLink(sim, bytes_per_second=bw, propagation_delay_s=latency_s)
    uplink = ControlChannel(sim, latency_s=latency_s)
    predictor = predictor or make_kalman_predictor(grid)
    session = KhameleonSession(
        sim=sim,
        backend=backend,
        predictor=predictor,
        utility=ssim_image_utility(),
        num_blocks=[encoder.num_blocks(r) for r in range(n)],
        downlink=downlink,
        uplink=uplink,
        config=SessionConfig(
            cache_bytes=cache_bytes,
            block_bytes=block,
            initial_bandwidth_bytes_per_s=bw,
        ),
    )
    return sim, session, grid


class TestPushPipeline:
    def test_blocks_flow_without_any_request(self):
        """The server hedges uniformly from t=0 — push, not pull."""
        sim, session, grid = build_session()
        session.start()
        sim.run(until=1.0)
        assert session.client.blocks_received > 10

    def test_client_cache_and_mirror_agree(self):
        """The server's FIFO mirror replicates the client cache exactly.

        The mirror records blocks at *send* time and the client at
        *delivery* time, so the comparison is made after stopping the
        sender and draining in-flight blocks.
        """
        sim, session, grid = build_session()
        session.start()
        sim.run(until=2.0)
        session.sender.stop()
        sim.run(until=3.0)  # drain the delivery pipeline
        client_view = {
            r: session.cache.block_indices(r) for r in session.cache.cached_requests()
        }
        mirror_view = {
            r: session.mirror.block_indices(r) for r in session.mirror.cached_requests()
        }
        assert client_view == mirror_view

    def test_request_for_cached_data_hits(self):
        sim, session, grid = build_session()
        session.start()
        sim.run(until=2.0)
        cached = sorted(session.cache.cached_requests())
        assert cached
        outcome = session.client.request(cached[0])
        assert outcome.cache_hit
        assert outcome.latency_s == 0.0

    def test_request_for_uncached_data_waits_for_push(self):
        """A point predictor steers the stream to the missed request."""
        sim, session, grid = build_session(predictor=make_point_predictor(25))
        session.start()

        outcomes = []
        sim.schedule(0.2, lambda: outcomes.append(session.client.request(24)))
        sim.run(until=3.0)
        outcome = outcomes[0]
        assert outcome.served
        assert outcome.latency_s < 1.0

    def test_mouse_events_steer_the_stream(self):
        """Hovering near a cell makes its blocks arrive preferentially."""
        sim, session, grid = build_session()
        session.start()
        target = grid.request_at(125, 125)  # centre cell

        def hover(i):
            session.client.observe(MouseEvent(125.0, 125.0))

        for i in range(40):
            sim.schedule(0.02 * i, hover, i)
        sim.run(until=1.5)
        assert session.cache.block_count(target) > 0

    def test_bandwidth_estimator_converges_to_link_rate(self):
        sim, session, grid = build_session(bw=2_000_000)
        # Deliberately misconfigure the initial estimate.
        session.estimator._initial = 500_000.0
        session.start()
        sim.run(until=3.0)
        assert session.estimator.estimate == pytest.approx(2_000_000, rel=0.2)

    def test_utility_converges_when_user_pauses(self):
        """Fig. 10 mechanism: paused request climbs to utility 1."""
        sim, session, grid = build_session(predictor=make_point_predictor(25))
        session.start()
        outcomes = []
        sim.schedule(0.1, lambda: outcomes.append(session.client.request(12)))
        sim.run(until=4.0)
        outcome = outcomes[0]
        assert outcome.served
        final_utility = (
            outcome.improvements[-1].utility
            if outcome.improvements
            else outcome.utility_at_upcall
        )
        assert final_utility == pytest.approx(1.0)

    def test_stop_cancels_periodic_work(self):
        sim, session, grid = build_session()
        session.start()
        sim.run(until=0.5)
        session.stop()
        before = sim.events_processed
        sim.run(until=0.6)
        # Sender idle-retry may still tick, but predictor/rate tasks are gone.
        assert session.predictor_manager._task.cancelled


class TestResourceSensitivity:
    def test_more_bandwidth_fills_cache_faster(self):
        def occupancy(bw):
            sim, session, grid = build_session(bw=bw)
            session.start()
            sim.run(until=1.0)
            return session.cache.occupancy()

        assert occupancy(2_000_000) > occupancy(500_000)

    def test_cache_never_exceeds_configured_blocks(self):
        sim, session, grid = build_session(cache_bytes=300_000, block=50_000)
        session.start()
        sim.run(until=3.0)
        assert session.cache.occupancy() <= 6

    def test_uniform_predictor_spreads_cache_across_requests(self):
        sim, session, grid = build_session(
            predictor=make_uniform_predictor(25), cache_bytes=1_200_000
        )
        session.start()
        sim.run(until=3.0)
        assert len(session.cache.cached_requests()) >= 8

"""Tests for the wavelet-style progressive encoder."""

import pytest

from repro.encoding.wavelet import WaveletEncoder, WaveletPass, wavelet_utility


class TestWaveletEncoder:
    def test_block_structure(self):
        enc = WaveletEncoder(lambda r: 220_000, block_size_bytes=50_000)
        response = enc.encode(7)
        assert response.num_blocks == enc.num_blocks(7) == 5
        for i, block in enumerate(response.blocks):
            assert isinstance(block.payload, WaveletPass)
            assert block.payload.pass_index == i
            assert block.payload.item_id == 7

    def test_significance_decays_and_normalizes(self):
        enc = WaveletEncoder(lambda r: 200_000, block_size_bytes=50_000, decay=0.5)
        response = enc.encode(0)
        sigs = [b.payload.significance for b in response.blocks]
        assert all(a > b for a, b in zip(sigs, sigs[1:]))
        assert sum(sigs) == pytest.approx(1.0)
        assert sigs[0] == pytest.approx(2 * sigs[1])

    def test_validation(self):
        with pytest.raises(ValueError):
            WaveletEncoder(lambda r: 1, block_size_bytes=0)
        with pytest.raises(ValueError):
            WaveletEncoder(lambda r: 1, decay=1.0)


class TestWaveletUtility:
    def test_endpoints_and_monotonicity(self):
        u = wavelet_utility()
        assert u(0.0) == 0.0
        assert u(1.0) == 1.0
        samples = [u(i / 50) for i in range(51)]
        assert all(b >= a for a, b in zip(samples, samples[1:]))

    def test_steeper_than_linear(self):
        """Wavelet quality is front-loaded: the first quarter of the
        passes carries most of the quality."""
        u = wavelet_utility(decay=0.5)
        assert u(0.25) > 0.9

    def test_decay_controls_concavity(self):
        gentle = wavelet_utility(decay=0.9)
        steep = wavelet_utility(decay=0.3)
        assert steep(0.2) > gentle(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            wavelet_utility(num_points=1)
        with pytest.raises(ValueError):
            wavelet_utility(decay=0.0)

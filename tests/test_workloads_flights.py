"""Tests for the synthetic flights dataset."""

import numpy as np
import pytest

from repro.backends.database import RangeFilter
from repro.workloads.flights import FLIGHT_CHARTS, ChartSpec, FlightsDataset


class TestChartSpec:
    def test_query_carries_domain_and_bins(self):
        spec = FLIGHT_CHARTS[0]
        q = spec.query()
        assert q.column == spec.column
        assert q.bins == spec.bins
        assert q.domain == spec.domain

    def test_middle_filter_centered(self):
        spec = ChartSpec("X", "x", bins=10, domain=(0.0, 100.0))
        f = spec.middle_filter(0.5)
        assert f.lo == pytest.approx(25.0)
        assert f.hi == pytest.approx(75.0)

    def test_middle_filter_rejects_bad_fraction(self):
        spec = ChartSpec("X", "x", bins=10, domain=(0.0, 100.0))
        with pytest.raises(ValueError):
            spec.middle_filter(0.0)

    def test_rejects_empty_domain(self):
        with pytest.raises(ValueError):
            ChartSpec("X", "x", bins=10, domain=(5.0, 5.0))


class TestFlightsDataset:
    @pytest.fixture(scope="class")
    def table(self):
        return FlightsDataset(seed=42).generate(20_000)

    def test_schema_covers_all_charts(self, table):
        for spec in FLIGHT_CHARTS:
            assert spec.column in table.columns

    def test_deterministic(self):
        a = FlightsDataset(seed=1).generate(1_000)
        b = FlightsDataset(seed=1).generate(1_000)
        assert np.array_equal(a.column("distance"), b.column("distance"))

    def test_air_time_correlates_with_distance(self, table):
        r = np.corrcoef(table.column("distance"), table.column("air_time"))[0, 1]
        assert r > 0.9

    def test_arrival_tracks_departure_delay(self, table):
        r = np.corrcoef(table.column("dep_delay"), table.column("arr_delay"))[0, 1]
        assert r > 0.7

    def test_domains_cover_bulk_of_data(self, table):
        """Chart domains should capture >= 95% of rows (fixed axes)."""
        for spec in FLIGHT_CHARTS:
            col = table.column(spec.column)
            lo, hi = spec.domain
            inside = ((col >= lo) & (col < hi)).mean()
            assert inside >= 0.95, spec.name

    def test_histograms_respond_to_filters(self, table):
        spec = FLIGHT_CHARTS[0]
        unfiltered = table.histogram(spec.query())
        filtered = table.histogram(
            spec.query(filters=(RangeFilter("dep_delay", 30.0, 600.0),))
        )
        assert filtered.sum() < unfiltered.sum()
        assert (filtered <= unfiltered).all()

    def test_scale_helpers(self):
        ds = FlightsDataset(seed=0)
        assert ds.small(scale=0.001).num_rows == 1_000
        assert ds.big(scale=0.001).num_rows == 7_000

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FlightsDataset().generate(0)

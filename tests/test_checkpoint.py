"""Durable sessions: shard checkpoint/restore contracts.

Three layers of guarantees, strongest last:

* **Format round-trip** (hypothesis): an arbitrary generated
  :class:`FleetCheckpoint` survives save→load bit-identically — every
  digest, every session entry, every prior-delta cell — and corrupt /
  truncated / wrong-universe files are rejected fail-fast with
  distinct, actionable errors (mirroring
  :meth:`SharedTransitionPrior.load`).
* **Inertness**: a cadence-0 pathless :class:`CheckpointConfig` is
  invisible — the sharded runner's results are bit-identical to a run
  with no checkpoint config at all (timing floats excluded).
* **The acceptance gate**: a worker-crash run with checkpointing on
  reports ``sessions_lost == 0`` and ``sessions_resumed >= 1``, the
  respawned shard restores in place with a *verified* digest match,
  and the pooled summary is bit-identical to an uninterrupted run of
  the same seed.  Drain → ``--checkpoint-out`` → ``--checkpoint-in``
  completes the lifecycle.
"""

import dataclasses
import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import ChaosConfig
from repro.experiments.configs import DEFAULT_ENV, FleetEnvironment
from repro.experiments.runner import run_fleet_sharded
from repro.fleet import (
    CheckpointConfig,
    CheckpointStore,
    FleetCheckpoint,
    SessionCheckpoint,
    ShardCheckpoint,
)
from repro.fleet.checkpoint import unwrap_sync_payload, wrap_sync_payload
from repro.workloads.image_app import ImageExplorationApp
from repro.workloads.mouse import MouseTraceGenerator


def small_fleet(num_sessions=6, trace_duration_s=3.0, chaos=None, checkpoint=None):
    app = ImageExplorationApp(rows=8, cols=8)
    traces = [
        MouseTraceGenerator(app.layout, seed=100 + i).generate(
            duration_s=trace_duration_s
        )
        for i in range(num_sessions)
    ]
    fleet_env = FleetEnvironment(
        num_sessions=num_sessions,
        env=DEFAULT_ENV,
        chaos=chaos,
        checkpoint=checkpoint,
    )
    return app, traces, fleet_env


def strip_sharding(result):
    diagnostics = dict(result.diagnostics)
    diagnostics.pop("sharding")
    return dataclasses.replace(result, diagnostics=diagnostics)


# -- strategies -------------------------------------------------------

counts = st.integers(min_value=0, max_value=2**31 - 1)

session_checkpoints = st.builds(
    SessionCheckpoint,
    index=st.integers(min_value=0, max_value=1023),
    requests_seen=counts,
    blocks_received=counts,
    blocks_sent=counts,
    bytes_sent=counts,
    cache_digest=counts,
    rng_digest=counts,
)


@st.composite
def shard_checkpoints(draw, n=64):
    num_shards = draw(st.integers(min_value=1, max_value=8))
    shard = draw(st.integers(min_value=0, max_value=num_shards - 1))
    sessions = draw(st.lists(session_checkpoints, max_size=6))
    prior = None
    if draw(st.booleans()):
        cells = draw(
            st.dictionaries(
                st.tuples(
                    st.integers(0, n - 1), st.integers(0, n - 1)
                ),
                st.integers(min_value=1, max_value=1000),
                max_size=8,
            )
        )
        rows: dict[str, dict[str, int]] = {}
        mass: dict[str, int] = {}
        for (p, q), c in cells.items():
            rows.setdefault(str(p), {})[str(q)] = c
            mass[str(p)] = mass.get(str(p), 0) + c
        prior = {
            "origin": f"shard-{shard}",
            "n": n,
            "rows": rows,
            "row_mass": mass,
        }
    return ShardCheckpoint(
        shard=shard,
        num_shards=num_shards,
        round_index=draw(st.integers(min_value=0, max_value=500)),
        sim_time_s=draw(
            st.floats(min_value=0, max_value=1e6, allow_nan=False)
        ),
        n=n,
        sessions=tuple(sessions),
        prior_delta=prior,
    )


@st.composite
def fleet_checkpoints(draw, n=64):
    num_shards = draw(st.integers(min_value=1, max_value=4))
    shards = {}
    for k in range(num_shards):
        if draw(st.booleans()):
            ckpt = draw(shard_checkpoints(n=n))
            shards[k] = dataclasses.replace(
                ckpt, shard=k, num_shards=num_shards
            )
    return FleetCheckpoint(
        n=n,
        num_shards=num_shards,
        sync_interval_s=draw(
            st.floats(min_value=0.01, max_value=60, allow_nan=False)
        ),
        drained_at_round=draw(
            st.one_of(st.none(), st.integers(min_value=0, max_value=500))
        ),
        shards=shards,
    )


class TestSaveLoadRoundTrip:
    @given(bundle=fleet_checkpoints())
    def test_save_load_is_bit_identical(self, bundle, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("ckpt") / "fleet.json")
        bundle.save(path)
        loaded = FleetCheckpoint.load(path, n=bundle.n)
        assert loaded == bundle
        # digest equality per shard is the resume-verification currency
        for k, ckpt in bundle.shards.items():
            assert loaded.shards[k].digest() == ckpt.digest()

    @given(ckpt=shard_checkpoints())
    def test_shard_payload_round_trip(self, ckpt):
        assert ShardCheckpoint.from_payload(ckpt.to_payload()) == ckpt

    @given(ckpt=shard_checkpoints())
    def test_prior_delta_reconstructs(self, ckpt):
        delta = ckpt.prior_delta_object()
        if ckpt.prior_delta is None:
            assert delta is None
        else:
            assert delta.n == ckpt.n
            total = sum(
                c for row in delta.rows.values() for c in row.values()
            )
            assert total == sum(delta.row_mass.values())


class TestLoadFailsFast:
    def test_not_json(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("this is not json{")
        with pytest.raises(ValueError, match="is not a saved checkpoint"):
            FleetCheckpoint.load(str(path))

    def test_wrong_magic(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match="is not a saved checkpoint"):
            FleetCheckpoint.load(str(path))

    def test_unsupported_version(self, tmp_path):
        bundle = FleetCheckpoint(n=64, num_shards=1, sync_interval_s=1.0)
        path = tmp_path / "v999.json"
        bundle.save(str(path))
        payload = json.loads(path.read_text())
        payload["format_version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="format v999 unsupported"):
            FleetCheckpoint.load(str(path))

    def test_wrong_universe(self, tmp_path):
        bundle = FleetCheckpoint(n=64, num_shards=1, sync_interval_s=1.0)
        path = tmp_path / "wrong_n.json"
        bundle.save(str(path))
        with pytest.raises(ValueError, match="over 64 requests, expected 144"):
            FleetCheckpoint.load(str(path), n=144)

    def test_truncated_file(self, tmp_path):
        bundle = FleetCheckpoint(n=64, num_shards=1, sync_interval_s=1.0)
        path = tmp_path / "truncated.json"
        bundle.save(str(path))
        blob = path.read_text()
        path.write_text(blob[: len(blob) // 2])
        with pytest.raises(ValueError, match="is not a saved checkpoint"):
            FleetCheckpoint.load(str(path))

    @given(
        bundle=fleet_checkpoints(),
        key=st.sampled_from(
            ["index", "requests_seen", "cache_digest", "rng_digest"]
        ),
    )
    @settings(max_examples=10)
    def test_corrupt_session_entry_rejected(
        self, bundle, key, tmp_path_factory
    ):
        populated = [
            k for k, c in bundle.shards.items() if c.sessions
        ]
        if not populated:
            return
        path = str(tmp_path_factory.mktemp("ckpt") / "corrupt.json")
        bundle.save(path)
        with open(path) as fh:
            payload = json.load(fh)
        shard_payload = payload["shards"][str(populated[0])]
        shard_payload["sessions"][0][key] = -1
        with open(path, "w") as fh:
            json.dump(payload, fh)
        with pytest.raises(ValueError, match="corrupt"):
            FleetCheckpoint.load(path)

    def test_shard_slot_mismatch_rejected(self, tmp_path):
        ckpt = ShardCheckpoint(
            shard=0, num_shards=2, round_index=0, sim_time_s=0.0,
            n=64, sessions=(),
        )
        bundle = FleetCheckpoint(
            n=64, num_shards=2, sync_interval_s=1.0, shards={1: ckpt}
        )
        path = tmp_path / "slot.json"
        bundle.save(str(path))
        with pytest.raises(ValueError, match="claims shard 0"):
            FleetCheckpoint.load(str(path))

    def test_corrupt_prior_entry_rejected(self, tmp_path):
        ckpt = ShardCheckpoint(
            shard=0, num_shards=1, round_index=0, sim_time_s=0.0, n=64,
            sessions=(),
            prior_delta={
                "origin": "shard-0", "n": 64,
                "rows": {"0": {"999": 3}},  # next-request out of universe
                "row_mass": {"0": 3},
            },
        )
        bundle = FleetCheckpoint(
            n=64, num_shards=1, sync_interval_s=1.0, shards={0: ckpt}
        )
        path = tmp_path / "prior.json"
        bundle.save(str(path))
        with pytest.raises(ValueError, match="corrupt checkpoint prior"):
            FleetCheckpoint.load(str(path))


class TestConfigAndStore:
    def test_inert_detection(self):
        assert CheckpointConfig().is_inert
        assert not CheckpointConfig(cadence_rounds=1).is_inert
        assert not CheckpointConfig(out_path="x.json").is_inert
        assert not CheckpointConfig(in_path="x.json").is_inert

    def test_negative_cadence_rejected(self):
        with pytest.raises(ValueError):
            CheckpointConfig(cadence_rounds=-1)

    def test_cadence_due(self):
        cfg = CheckpointConfig(cadence_rounds=3)
        assert [cfg.due(r) for r in range(6)] == [
            False, False, True, False, False, True,
        ]

    def test_path_only_config_captures_every_round(self):
        cfg = CheckpointConfig(out_path="x.json")
        assert cfg.captures
        assert all(cfg.due(r) for r in range(4))

    def test_store_keeps_latest_round(self):
        store = CheckpointStore()
        mk = lambda r: ShardCheckpoint(
            shard=0, num_shards=1, round_index=r, sim_time_s=float(r),
            n=64, sessions=(),
        )
        store.put(mk(3))
        store.put(mk(1))  # stale: must not regress
        assert store.latest(0).round_index == 3
        assert store.taken == 2
        assert store.last_rounds(2) == [3, None]
        assert store.ages(2, final_round=5) == [2, None]

    def test_sync_payload_wrap_round_trip(self):
        ckpt = ShardCheckpoint(
            shard=0, num_shards=1, round_index=0, sim_time_s=0.0,
            n=64, sessions=(),
        )
        assert unwrap_sync_payload(wrap_sync_payload("delta", ckpt)) == (
            "delta", ckpt,
        )
        # bare legacy payloads pass through untouched
        assert unwrap_sync_payload("delta") == ("delta", None)
        assert unwrap_sync_payload(None) == (None, None)


class TestInertCheckpointIsInvisible:
    def test_inert_config_is_bit_identical_to_no_config(self):
        app, traces, fleet_env = small_fleet()
        baseline = run_fleet_sharded(
            app, traces, fleet_env, num_shards=2, predictor="kalman",
            timeout_s=120.0,
        )
        app, traces, fleet_env = small_fleet(checkpoint=CheckpointConfig())
        wrapped = run_fleet_sharded(
            app, traces, fleet_env, num_shards=2, predictor="kalman",
            timeout_s=120.0,
        )
        # Timing floats in the sharding block are measurements, not
        # behavior; everything else must match exactly.
        assert strip_sharding(
            dataclasses.replace(wrapped, fleet_env=baseline.fleet_env)
        ) == strip_sharding(baseline)


class TestCrashRecoveryGate:
    def test_crash_with_checkpointing_resumes_bit_identically(self):
        """The PR's acceptance gate: worker-crash + checkpointing →
        nothing lost, ≥1 session resumed in place, restore digest
        verified, and the pooled report bit-identical to the same seed
        run uninterrupted."""
        app, traces, fleet_env = small_fleet(
            chaos=ChaosConfig.parse("worker-crash:1"),
            checkpoint=CheckpointConfig(cadence_rounds=1),
        )
        faulted = run_fleet_sharded(
            app, traces, fleet_env, num_shards=2, predictor="kalman",
            sync_interval_s=1.0, timeout_s=120.0,
        )
        sharding = faulted.diagnostics["sharding"]
        assert sharding["sessions_lost"] == 0
        assert sharding["sessions_resumed"] >= 1
        assert sharding["shards_recovered"] == 1
        assert sharding["restore_verified"] is True
        assert sharding["restarts_by_shard"] == [1, 0]
        assert sharding["checkpoints_taken"] >= 1

        app, traces, fleet_env = small_fleet()
        clean = run_fleet_sharded(
            app, traces, fleet_env, num_shards=2, predictor="kalman",
            sync_interval_s=1.0, timeout_s=120.0,
        )
        assert faulted.summary == clean.summary
        assert faulted.session_labels == clean.session_labels
        faulted_d = dict(faulted.diagnostics)
        clean_d = dict(clean.diagnostics)
        faulted_d.pop("sharding"), clean_d.pop("sharding")
        faulted_d.pop("chaos", None), clean_d.pop("chaos", None)
        assert faulted_d == clean_d

    def test_report_carries_staleness_columns(self):
        app, traces, fleet_env = small_fleet(
            checkpoint=CheckpointConfig(cadence_rounds=2),
        )
        result = run_fleet_sharded(
            app, traces, fleet_env, num_shards=2, predictor="kalman",
            sync_interval_s=1.0, timeout_s=120.0,
        )
        sharding = result.diagnostics["sharding"]
        assert sharding["sessions_resumed"] == 0
        assert sharding["restarts_by_shard"] == [0, 0]
        assert len(sharding["last_checkpoint_round"]) == 2
        assert all(
            age is not None and age >= 0
            for age in sharding["checkpoint_age_rounds"]
        )


class TestDrainRestoreLifecycle:
    def test_drain_writes_bundle_and_resume_completes(self, tmp_path):
        path = str(tmp_path / "fleet.ckpt.json")
        app, traces, fleet_env = small_fleet(
            chaos=ChaosConfig.parse("drain:1"),
            checkpoint=CheckpointConfig(cadence_rounds=1, out_path=path),
        )
        drained = run_fleet_sharded(
            app, traces, fleet_env, num_shards=2, predictor="shared-markov",
            sync_interval_s=1.0, timeout_s=120.0,
        )
        sharding = drained.diagnostics["sharding"]
        assert sharding["drained_at_round"] == 1
        assert sharding["sync_rounds"] == 2  # truncated at the drain
        assert os.path.exists(path)
        bundle = FleetCheckpoint.load(path, n=64)
        assert bundle.drained_at_round == 1
        assert sorted(bundle.shards) == [0, 1]
        assert sum(len(c.sessions) for c in bundle.shards.values()) == 6

        app, traces, fleet_env = small_fleet(
            checkpoint=CheckpointConfig(cadence_rounds=1, in_path=path),
        )
        resumed = run_fleet_sharded(
            app, traces, fleet_env, num_shards=2, predictor="shared-markov",
            sync_interval_s=1.0, timeout_s=120.0,
        )
        sharding = resumed.diagnostics["sharding"]
        assert sharding["sessions_resumed"] == 6
        assert sharding["sessions_lost"] == 0
        assert resumed.summary is not None
        assert len(resumed.summary.per_session) == 6

        # the resumed fleet pools exactly the crowd prior an
        # uninterrupted run would have accumulated (CRDT dedup exact)
        app, traces, fleet_env = small_fleet()
        clean = run_fleet_sharded(
            app, traces, fleet_env, num_shards=2, predictor="shared-markov",
            sync_interval_s=1.0, timeout_s=120.0,
        )
        assert (
            resumed.diagnostics["shared_prior"]
            == clean.diagnostics["shared_prior"]
        )

    def test_resume_wrong_shard_count_rejected(self, tmp_path):
        path = str(tmp_path / "fleet.ckpt.json")
        FleetCheckpoint(n=64, num_shards=4, sync_interval_s=1.0).save(path)
        app, traces, fleet_env = small_fleet(
            checkpoint=CheckpointConfig(cadence_rounds=1, in_path=path),
        )
        with pytest.raises(ValueError, match="taken with 4 shards"):
            run_fleet_sharded(
                app, traces, fleet_env, num_shards=2, predictor="kalman",
                sync_interval_s=1.0, timeout_s=120.0,
            )

"""Tests for the weighted fair-shared downlink."""

import pytest

from repro.sim import FixedRateLink, SharedDownlink, Simulator
from repro.sim.traces import MahimahiTrace
from repro.sim.link import TraceDrivenLink


def make_shared(bw=1_000_000, delay=0.0):
    sim = Simulator()
    link = FixedRateLink(sim, bytes_per_second=bw, propagation_delay_s=delay)
    return sim, SharedDownlink(sim, link)


def saturate(sim, port, nbytes, count, record):
    """Keep ``count`` payloads of ``nbytes`` flowing through ``port``."""
    for _ in range(count):
        port.send(nbytes, lambda p: record.append((sim.now, p)), port.label)


class TestSinglePort:
    def test_sole_port_gets_full_capacity(self):
        sim, shared = make_shared(bw=1_000_000)
        port = shared.port()
        got = []
        saturate(sim, port, 50_000, 20, got)
        sim.run()
        # 20 x 50 KB at 1 MB/s: last delivery at t = 1.0 exactly.
        assert sim.now == pytest.approx(1.0)
        assert port.bytes_delivered == 1_000_000

    def test_fifo_order_within_port(self):
        sim, shared = make_shared()
        port = shared.port()
        got = []
        for i in range(5):
            port.send(10_000, got.append, i)
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_propagation_delay_applied(self):
        sim, shared = make_shared(bw=1_000_000, delay=0.1)
        port = shared.port()
        got = []
        port.send(50_000, lambda p: got.append(sim.now), None)
        sim.run()
        assert got == [pytest.approx(0.15)]


class TestFairness:
    def test_equal_weights_split_evenly(self):
        sim, shared = make_shared(bw=1_000_000)
        a, b = shared.port(label="a"), shared.port(label="b")
        got = []
        saturate(sim, a, 50_000, 40, got)
        saturate(sim, b, 50_000, 40, got)
        sim.run(until=1.0)
        # While both are backlogged each should get ~500 KB/s.
        assert a.bytes_delivered == pytest.approx(500_000, rel=0.15)
        assert b.bytes_delivered == pytest.approx(500_000, rel=0.15)

    def test_weighted_split_follows_weights(self):
        sim, shared = make_shared(bw=1_200_000)
        heavy = shared.port(weight=2.0, label="heavy")
        light = shared.port(weight=1.0, label="light")
        got = []
        saturate(sim, heavy, 40_000, 60, got)
        saturate(sim, light, 40_000, 60, got)
        sim.run(until=1.0)
        assert heavy.bytes_delivered / light.bytes_delivered == pytest.approx(
            2.0, rel=0.2
        )

    def test_aggressive_sender_cannot_starve_late_joiner(self):
        """The core multi-tenant guarantee: a port that dumps its whole
        backlog first must not monopolize the wire once another port
        has traffic."""
        sim, shared = make_shared(bw=1_000_000)
        hog, meek = shared.port(label="hog"), shared.port(label="meek")
        got = []
        # The hog enqueues 5 MB (5 seconds of wire time) at t=0.
        saturate(sim, hog, 100_000, 50, got)

        # The meek port sends one block shortly after.
        arrival = []
        sim.schedule(0.05, lambda: meek.send(50_000, lambda p: arrival.append(sim.now)))
        sim.run(until=6.0)
        # On a raw FIFO link the meek block would wait behind 5 MB
        # (~5 s); fair queueing serves it within a couple of payloads.
        assert arrival and arrival[0] < 0.5

    def test_unbacklogged_port_does_not_waste_capacity(self):
        """Work-conserving: an idle port's share goes to the busy one."""
        sim, shared = make_shared(bw=1_000_000)
        busy, idle = shared.port(), shared.port()
        got = []
        saturate(sim, busy, 50_000, 20, got)
        sim.run()
        assert sim.now == pytest.approx(1.0)  # full rate despite 2 ports


class TestQueueDelay:
    def test_queue_delay_reflects_fair_share_rate(self):
        sim, shared = make_shared(bw=1_000_000)
        a, b = shared.port(), shared.port()
        got = []
        saturate(sim, a, 100_000, 5, got)
        saturate(sim, b, 100_000, 5, got)
        # Each port holds ~500KB backlog minus what is serializing; at a
        # fair rate of 500 KB/s that is close to 1 s, far more than the
        # 0.5 s a raw-rate estimate would give.
        assert a.queue_delay() > 0.6
        assert b.queue_delay() > 0.6

    def test_empty_port_sees_only_physical_delay(self):
        sim, shared = make_shared(bw=1_000_000)
        a, b = shared.port(), shared.port()
        got = []
        saturate(sim, a, 100_000, 2, got)
        assert b.queue_delay() <= a.queue_delay()

    def test_trace_driven_link_rate_is_learned(self):
        sim = Simulator()
        trace = MahimahiTrace.constant_rate(1_500_000)
        shared = SharedDownlink(sim, TraceDrivenLink(sim, trace))
        port = shared.port()
        assert shared.rate_hint() is None
        got = []
        saturate(sim, port, 15_000, 10, got)
        sim.run(until=0.5)
        assert shared.rate_hint() == pytest.approx(1_500_000, rel=0.2)


class TestRetirement:
    """Session departure: a port closed mid-backlog must not stall the
    arbiter's virtual clock or strand capacity the survivors should get."""

    def test_close_drops_backlog_and_reports_it(self):
        sim, shared = make_shared(bw=1_000_000)
        port = shared.port(label="leaver")
        got = []
        saturate(sim, port, 100_000, 10, got)
        sim.run(until=0.15)  # one payload serialized, one on the wire
        dropped = port.close()
        assert port.closed
        assert dropped > 0
        assert port.backlog_bytes == 0
        assert shared.bytes_dropped == dropped
        assert shared.ports_retired == 1
        sim.run()
        # Only what was already on the physical serializer still lands.
        assert port.bytes_delivered < 10 * 100_000

    def test_close_is_idempotent(self):
        sim, shared = make_shared()
        port = shared.port()
        got = []
        saturate(sim, port, 50_000, 4, got)
        first = port.close()
        assert first > 0
        assert port.close() == 0
        assert shared.ports_retired == 1

    def test_departing_backlog_does_not_starve_survivors(self):
        """Regression: the departed port's queued megabytes must neither
        stall the virtual clock nor steal wire time from the survivor."""
        sim, shared = make_shared(bw=1_000_000)
        leaver = shared.port(label="leaver")
        stayer = shared.port(label="stayer")
        got = []
        # The leaver parks 5 MB (5 s of wire time); the stayer has 1 MB.
        saturate(sim, leaver, 100_000, 50, got)
        saturate(sim, stayer, 50_000, 20, got)
        sim.schedule(0.2, leaver.close)
        arrivals = []
        original_deliver = stayer._on_delivered

        def tracking(nbytes):
            arrivals.append(sim.now)
            original_deliver(nbytes)

        stayer._on_delivered = tracking
        sim.run(until=3.0)
        # After the departure the stayer owns the full 1 MB/s: its last
        # payload lands well before the shared-to-the-end ~1.9 s point,
        # and nothing the leaver queued occupies the wire after ~0.2 s.
        assert stayer.bytes_delivered == 1_000_000
        assert arrivals[-1] < 1.5
        # Survivor keeps transmitting after the departure (no stall).
        assert any(t > 0.25 for t in arrivals)

    def test_new_port_after_retirement_gets_capacity(self):
        """The arbiter keeps scheduling arrivals that come after a churn."""
        sim, shared = make_shared(bw=1_000_000)
        first = shared.port(label="first")
        got = []
        saturate(sim, first, 100_000, 10, got)
        sim.schedule(0.1, first.close)

        late_got = []

        def join():
            late = shared.port(label="late")
            saturate(sim, late, 50_000, 4, late_got)

        sim.schedule(0.2, join)
        sim.run()
        assert len(late_got) == 4

    def test_send_on_closed_port_is_an_error(self):
        sim, shared = make_shared()
        port = shared.port()
        port.close()
        with pytest.raises(ValueError):
            port.send(1_000, lambda p: None)


class TestValidation:
    def test_rejects_bad_weight_and_size(self):
        sim, shared = make_shared()
        with pytest.raises(ValueError):
            shared.port(weight=0.0)
        port = shared.port()
        with pytest.raises(ValueError):
            port.send(-1, lambda p: None)

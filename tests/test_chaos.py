"""Tests for the chaos harness config (repro.chaos)."""

import pytest

from repro.backends.filesystem import FileSystemBackend
from repro.backends.retry import RetryingBackend
from repro.chaos import ChaosConfig
from repro.encoding.naive import SingleBlockEncoder
from repro.sim.engine import Simulator
from repro.sim.failures import ErraticBackend, FlakyBackend, OutageLink
from repro.sim.link import FixedRateLink


def make_backend(sim):
    encoder = SingleBlockEncoder(lambda r: 100)
    return FileSystemBackend(sim, encoder, fetch_delay_s=0.0)


class TestParse:
    def test_full_spec(self):
        cfg = ChaosConfig.parse(
            "worker-crash:1,backend-err:0.05,spike:0.02@1.5,outage:2-3,flaky:7",
            seed=9,
        )
        assert cfg.worker_crashes == ((0, 1),)
        assert cfg.backend_error_rate == pytest.approx(0.05)
        assert cfg.backend_spike_rate == pytest.approx(0.02)
        assert cfg.backend_spike_s == pytest.approx(1.5)
        assert cfg.link_outages == ((2.0, 3.0),)
        assert cfg.flaky_period == 7
        assert cfg.seed == 9

    def test_worker_crash_shard_at_round(self):
        cfg = ChaosConfig.parse("worker-crash:2@4")
        assert cfg.worker_crashes == ((2, 4),)
        assert cfg.crash_round(2) == 4
        assert cfg.crash_round(0) is None

    def test_spike_without_duration_keeps_default(self):
        cfg = ChaosConfig.parse("spike:0.1")
        assert cfg.backend_spike_rate == pytest.approx(0.1)
        assert cfg.backend_spike_s == pytest.approx(1.0)

    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos fault"):
            ChaosConfig.parse("meteor:0.5")

    def test_missing_value_rejected(self):
        with pytest.raises(ValueError, match="name:value"):
            ChaosConfig.parse("backend-err")

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError, match="bad chaos fault value"):
            ChaosConfig.parse("backend-err:lots")

    def test_validation(self):
        with pytest.raises(ValueError):
            ChaosConfig(backend_error_rate=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(flaky_period=-1)
        with pytest.raises(ValueError):
            ChaosConfig(worker_crashes=((-1, 0),))
        with pytest.raises(ValueError):
            ChaosConfig(disconnects=(((-1, 0.5)),))
        with pytest.raises(ValueError):
            ChaosConfig(disconnects=((0, -0.5),))
        with pytest.raises(ValueError):
            ChaosConfig(drain_round=-1)

    def test_disconnect_session_at_time(self):
        cfg = ChaosConfig.parse("disconnect:3@1.5")
        assert cfg.disconnects == ((3, 1.5),)
        assert cfg.disconnect_at(3) == pytest.approx(1.5)
        assert cfg.disconnect_at(0) is None

    def test_disconnect_bare_time_targets_session_zero(self):
        cfg = ChaosConfig.parse("disconnect:2.5")
        assert cfg.disconnects == ((0, 2.5),)
        assert cfg.disconnect_at(0) == pytest.approx(2.5)

    def test_drain_at_round(self):
        cfg = ChaosConfig.parse("drain:4")
        assert cfg.drain_round == 4
        assert cfg.has_drain
        assert not cfg.is_inert

    def test_drain_combines_with_other_faults(self):
        cfg = ChaosConfig.parse("drain:2,worker-crash:1,disconnect:0@1")
        assert cfg.drain_round == 2
        assert cfg.worker_crashes == ((0, 1),)
        assert cfg.disconnects == ((0, 1.0),)


class TestIntrospection:
    def test_default_is_inert(self):
        cfg = ChaosConfig()
        assert cfg.is_inert
        assert not cfg.has_backend_faults
        assert not cfg.has_link_faults
        assert not cfg.has_worker_faults

    def test_fault_classes_flip_the_right_flags(self):
        assert ChaosConfig(backend_error_rate=0.1).has_backend_faults
        assert ChaosConfig(backend_spike_rate=0.1).has_backend_faults
        assert ChaosConfig(flaky_period=3).has_backend_faults
        assert ChaosConfig(link_outages=((0.0, 1.0),)).has_link_faults
        assert ChaosConfig(worker_crashes=((0, 1),)).has_worker_faults
        assert not ChaosConfig(worker_crashes=((0, 1),)).is_inert
        assert ChaosConfig(disconnects=((0, 1.0),)).has_connection_faults
        assert not ChaosConfig(disconnects=((0, 1.0),)).is_inert
        assert ChaosConfig(drain_round=0).has_drain
        assert not ChaosConfig(drain_round=0).is_inert

    def test_describe(self):
        assert ChaosConfig().describe() == "none"
        text = ChaosConfig.parse("worker-crash:1,backend-err:0.05").describe()
        assert "crash s0@r1" in text
        assert "err 0.05" in text
        text = ChaosConfig.parse("disconnect:1@2.5,drain:3").describe()
        assert "disconnect c1@2.5s" in text
        assert "drain @r3" in text


class TestWrapBackend:
    def test_inert_config_returns_backend_unchanged(self):
        sim = Simulator()
        backend = make_backend(sim)
        stack = ChaosConfig().wrap_backend(backend)
        assert stack.top is backend
        assert stack.flaky is None
        assert stack.erratic is None
        assert stack.retry is None
        assert stack.snapshot() == {}

    def test_error_rate_builds_erratic_under_retry(self):
        sim = Simulator()
        stack = ChaosConfig(backend_error_rate=0.5).wrap_backend(make_backend(sim))
        assert isinstance(stack.top, RetryingBackend)
        assert isinstance(stack.erratic, ErraticBackend)
        assert stack.flaky is None
        assert set(stack.snapshot()) == {
            "errors_injected",
            "spikes_injected",
            "fetches_failed",
            "retries_scheduled",
            "fetches_abandoned",
        }

    def test_spike_only_needs_no_retry_layer(self):
        sim = Simulator()
        stack = ChaosConfig(backend_spike_rate=0.5).wrap_backend(make_backend(sim))
        assert isinstance(stack.top, ErraticBackend)
        assert stack.retry is None

    def test_flaky_layer_sits_innermost(self):
        sim = Simulator()
        stack = ChaosConfig(
            flaky_period=2, backend_error_rate=0.5
        ).wrap_backend(make_backend(sim))
        assert isinstance(stack.flaky, FlakyBackend)
        assert stack.erratic.inner is stack.flaky
        assert stack.top is stack.retry

    def test_wrapped_stack_still_completes_fetches(self):
        sim = Simulator()
        stack = ChaosConfig(
            backend_error_rate=0.3, flaky_period=3, seed=1
        ).wrap_backend(make_backend(sim))
        got = []
        for r in range(12):
            stack.top.fetch(r, got.append)
        sim.run()
        # Every injected error was absorbed by a retry; no fetch lost.
        snapshot = stack.snapshot()
        assert snapshot["errors_injected"] > 0
        assert snapshot["fetches_abandoned"] == 0
        assert len(got) == 12


class TestWrapLink:
    def test_no_outages_is_identity(self):
        sim = Simulator()
        link = FixedRateLink(sim, 1000.0)
        assert ChaosConfig().wrap_link(link) is link

    def test_outages_build_an_outage_link(self):
        sim = Simulator()
        link = FixedRateLink(sim, 1000.0)
        wrapped = ChaosConfig(link_outages=((1.0, 2.0),)).wrap_link(link)
        assert isinstance(wrapped, OutageLink)
        assert wrapped.outages == ((1.0, 2.0),)


class TestDeterminism:
    def test_same_seed_same_fault_schedule(self):
        def draw_schedule(seed):
            sim = Simulator()
            stack = ChaosConfig(
                backend_error_rate=0.3, seed=seed
            ).wrap_backend(make_backend(sim))
            for r in range(20):
                stack.top.fetch(r, lambda resp: None)
            sim.run()
            return stack.snapshot()

        assert draw_schedule(7) == draw_schedule(7)
        assert draw_schedule(7) != draw_schedule(8)


class TestNetFaultGrammar:
    """The wire-fault grammar rides the same --chaos string as backend
    faults but lands in the transport driver, not the backend wrap."""

    def test_full_net_spec(self):
        cfg = ChaosConfig.parse(
            "partition:0-1@2,netdelay:25:0.3,dup:0.1,corrupt:0.05", seed=4
        )
        assert cfg.partitions == ((0, 1, 2),)
        assert cfg.netdelay_ms == pytest.approx(25.0)
        assert cfg.netdelay_rate == pytest.approx(0.3)
        assert cfg.dup_rate == pytest.approx(0.1)
        assert cfg.corrupt_rate == pytest.approx(0.05)
        assert cfg.has_net_faults
        assert not cfg.is_inert
        assert not cfg.has_backend_faults

    def test_single_shard_partition_shorthand(self):
        assert ChaosConfig.parse("partition:2@1").partitions == ((2, 2, 1),)

    def test_partitions_at_filters_by_round(self):
        cfg = ChaosConfig.parse("partition:0-1@1,partition:1-2@3")
        assert cfg.partitions_at(1) == [(0, 1)]
        assert cfg.partitions_at(3) == [(1, 2)]
        assert cfg.partitions_at(0) == []

    def test_net_spec_carries_rates_and_seed(self):
        cfg = ChaosConfig.parse("netdelay:25:0.3,corrupt:0.05", seed=7)
        spec = cfg.net_spec()
        assert spec.netdelay_ms == pytest.approx(25.0)
        assert spec.netdelay_rate == pytest.approx(0.3)
        assert spec.corrupt_rate == pytest.approx(0.05)
        assert spec.dup_rate == 0.0
        assert spec.seed == 7
        assert not spec.is_inert
        # Partition-only chaos has an inert frame-level spec: cuts are
        # coordinator-anchored, not probabilistic.
        assert ChaosConfig.parse("partition:0-1@1").net_spec().is_inert

    def test_net_faults_do_not_wrap_the_backend(self):
        cfg = ChaosConfig.parse("corrupt:0.2,dup:0.2")
        backend = object()
        stack = cfg.wrap_backend(backend)
        assert stack.top is backend  # no fault layer was added
        assert stack.flaky is None and stack.erratic is None

    def test_describe_mentions_net_faults(self):
        text = ChaosConfig.parse(
            "partition:0-1@2,netdelay:25:0.3,dup:0.1,corrupt:0.05"
        ).describe()
        assert "partition s0-1@r2" in text
        assert "netdelay 25ms p0.3" in text
        assert "dup 0.1" in text
        assert "corrupt 0.05" in text

    def test_validation_rejects_bad_net_values(self):
        with pytest.raises(ValueError, match="corrupt_rate"):
            ChaosConfig(corrupt_rate=1.5)
        with pytest.raises(ValueError, match="netdelay_ms"):
            ChaosConfig(netdelay_ms=-1.0)
        with pytest.raises(ValueError, match="bad partition"):
            ChaosConfig(partitions=((2, 1, 0),))

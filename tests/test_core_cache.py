"""Tests for the ring-buffer and LRU caches."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.blocks import Block
from repro.core.cache import LRUCache, RingBufferCache


def blk(request, index, size=10):
    return Block(request=request, index=index, size_bytes=size)


class TestRingBufferCache:
    def test_put_and_lookup(self):
        cache = RingBufferCache(4)
        cache.put(blk(1, 0))
        assert cache.has(1)
        assert cache.block_count(1) == 1
        assert not cache.has(2)

    def test_fifo_eviction_order(self):
        """Slot i % C: the (C+1)-th block overwrites the first."""
        cache = RingBufferCache(2)
        cache.put(blk(1, 0))
        cache.put(blk(2, 0))
        evicted = cache.put(blk(3, 0))
        assert evicted == blk(1, 0)
        assert not cache.has(1)
        assert cache.has(2) and cache.has(3)

    def test_eviction_is_deterministic_function_of_sequence(self):
        """Two caches fed the same sequence agree exactly (server mirror)."""
        a, b = RingBufferCache(5), RingBufferCache(5)
        seq = [blk(i % 3, i % 4) for i in range(23)]
        for block in seq:
            a.put(block)
            b.put(block)
        assert a.cached_requests() == b.cached_requests()
        for r in a.cached_requests():
            assert a.block_indices(r) == b.block_indices(r)

    def test_prefix_len_contiguous(self):
        cache = RingBufferCache(10)
        cache.put(blk(1, 0))
        cache.put(blk(1, 1))
        cache.put(blk(1, 3))
        assert cache.prefix_len(1) == 2
        cache.put(blk(1, 2))
        assert cache.prefix_len(1) == 4

    def test_prefix_len_requires_block_zero(self):
        cache = RingBufferCache(10)
        cache.put(blk(1, 1))
        assert cache.prefix_len(1) == 0
        assert cache.has(1)  # >= 1 block -> still answerable

    def test_duplicate_block_keeps_latest_slot(self):
        cache = RingBufferCache(3)
        cache.put(blk(1, 0))
        cache.put(blk(1, 0))
        cache.put(blk(2, 0))
        # Counter is at 3; the next put lands on slot 0 (stale copy).
        cache.put(blk(3, 0))
        assert cache.has(1)  # live copy in slot 1 survives
        assert cache.block_count(1) == 1

    def test_get_returns_block(self):
        cache = RingBufferCache(3)
        block = blk(5, 2)
        cache.put(block)
        assert cache.get(5, 2) == block
        assert cache.get(5, 0) is None

    def test_clear(self):
        cache = RingBufferCache(3)
        cache.put(blk(1, 0))
        cache.clear()
        assert not cache.has(1)
        assert cache.blocks_received == 0
        assert cache.occupancy() == 0

    def test_occupancy_and_counter(self):
        cache = RingBufferCache(3)
        for i in range(5):
            cache.put(blk(i, 0))
        assert cache.blocks_received == 5
        assert cache.occupancy() == 3

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            RingBufferCache(0)

    def test_mirror_put(self):
        cache = RingBufferCache(2)
        cache.mirror_put(7, 1)
        assert cache.block_indices(7) == {1}


class TestLRUCache:
    def test_put_get(self):
        cache = LRUCache(100)
        assert cache.put("a", "va", 40)
        assert cache.get("a") == "va"
        assert cache.get("b") is None

    def test_eviction_of_least_recent(self):
        cache = LRUCache(100)
        cache.put("a", 1, 50)
        cache.put("b", 2, 50)
        cache.get("a")  # refresh a
        cache.put("c", 3, 50)  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_peek_does_not_refresh(self):
        cache = LRUCache(100)
        cache.put("a", 1, 50)
        cache.put("b", 2, 50)
        cache.peek("a")
        cache.put("c", 3, 50)  # evicts a (peek didn't refresh)
        assert "a" not in cache

    def test_oversized_entry_rejected(self):
        cache = LRUCache(100)
        assert not cache.put("big", 1, 101)
        assert len(cache) == 0

    def test_replace_updates_bytes(self):
        cache = LRUCache(100)
        cache.put("a", 1, 60)
        cache.put("a", 2, 30)
        assert cache.used_bytes == 30
        assert cache.get("a") == 2

    def test_remove(self):
        cache = LRUCache(100)
        cache.put("a", 1, 60)
        assert cache.remove("a")
        assert not cache.remove("a")
        assert cache.used_bytes == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            LRUCache(0)
        cache = LRUCache(10)
        with pytest.raises(ValueError):
            cache.put("a", 1, -1)


# -- property tests ---------------------------------------------------

puts = st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, 5)), min_size=1, max_size=200
)


@given(puts=puts, capacity=st.integers(min_value=1, max_value=16))
def test_property_ring_buffer_never_exceeds_capacity(puts, capacity):
    cache = RingBufferCache(capacity)
    for request, index in puts:
        cache.put(blk(request, index))
    assert cache.occupancy() <= capacity
    total_indexed = sum(cache.block_count(r) for r in cache.cached_requests())
    assert total_indexed <= capacity


@given(puts=puts, capacity=st.integers(min_value=1, max_value=16))
def test_property_ring_buffer_keeps_most_recent_blocks(puts, capacity):
    """The last min(C, len) distinct (request, index) pairs are present."""
    cache = RingBufferCache(capacity)
    for request, index in puts:
        cache.put(blk(request, index))
    # Walk backwards over the put sequence: the final C puts occupy the
    # C slots, so any pair whose *last* occurrence is in that window and
    # is not shadowed by a duplicate landing in a different slot must
    # be findable... the simple invariant: the very last put is present.
    last_request, last_index = puts[-1]
    assert last_index in cache.block_indices(last_request)


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["put", "get"]), st.integers(0, 5), st.integers(1, 40)),
        max_size=100,
    )
)
def test_property_lru_bytes_accounting(ops):
    cache = LRUCache(100)
    for op, key, size in ops:
        if op == "put":
            cache.put(key, key, size)
        else:
            cache.get(key)
        assert 0 <= cache.used_bytes <= 100

"""Tests for think-time rescaling (§6.2)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.workloads.thinktime import mean_think_time_s, rescale_think_times, scale_time
from repro.workloads.trace import InteractionTrace, TraceEvent


def make_trace(request_times, name="t"):
    events = []
    t = 0.0
    for rt in request_times:
        events.append(TraceEvent(t, 0.0, 0.0))
        events.append(TraceEvent(rt, 1.0, 1.0, request=len(events)))
        t = rt
    return InteractionTrace(events, name=name)


class TestMeanThinkTime:
    def test_simple_mean(self):
        trace = make_trace([1.0, 2.0, 4.0])
        # Gaps: 1.0 and 2.0 -> mean 1.5
        assert mean_think_time_s(trace) == pytest.approx(1.5)

    def test_single_request_is_zero(self):
        trace = InteractionTrace(
            [TraceEvent(0.0, 0, 0, request=1), TraceEvent(1.0, 0, 0)]
        )
        assert mean_think_time_s(trace) == 0.0


class TestRescale:
    def test_hits_target_mean(self):
        trace = make_trace([0.5, 1.5, 3.5])
        warped = rescale_think_times(trace, 0.1)
        assert mean_think_time_s(warped) == pytest.approx(0.1)

    def test_request_sequence_preserved(self):
        trace = make_trace([0.5, 1.5, 3.5])
        warped = rescale_think_times(trace, 0.2)
        assert [e.request for e in warped.events] == [
            e.request for e in trace.events
        ]

    def test_positions_untouched(self):
        trace = make_trace([0.5, 1.5])
        warped = rescale_think_times(trace, 0.05)
        assert [(e.x, e.y) for e in warped.events] == [
            (e.x, e.y) for e in trace.events
        ]

    def test_rejects_nonpositive_target(self):
        trace = make_trace([1.0, 2.0])
        with pytest.raises(ValueError):
            rescale_think_times(trace, 0.0)

    def test_rejects_trace_without_gaps(self):
        trace = InteractionTrace(
            [TraceEvent(0.0, 0, 0, request=1), TraceEvent(1.0, 0, 0)]
        )
        with pytest.raises(ValueError):
            rescale_think_times(trace, 0.1)


class TestScaleTime:
    def test_uniform_scaling(self):
        trace = make_trace([1.0, 3.0])
        scaled = scale_time(trace, 0.5)
        assert scaled.events[-1].time_s == pytest.approx(1.5)

    def test_rejects_nonpositive_factor(self):
        trace = make_trace([1.0])
        with pytest.raises(ValueError):
            scale_time(trace, -1.0)


@given(
    gaps=st.lists(st.floats(0.01, 5.0), min_size=2, max_size=20),
    target=st.floats(0.005, 2.0),
)
def test_property_rescale_preserves_gap_ratios(gaps, target):
    """Rescaling multiplies every gap by the same factor, so the
    distribution's shape (ratios between gaps) is preserved."""
    times = list(np.cumsum(gaps))
    trace = make_trace(times)
    warped = rescale_think_times(trace, target)
    original = trace.think_times_s()
    new = warped.think_times_s()
    assert mean_think_time_s(warped) == pytest.approx(target, rel=1e-6)
    ratio = new / original
    assert np.allclose(ratio, ratio[0], rtol=1e-6)

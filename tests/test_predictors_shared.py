"""Tests for the fleet-wide shared transition prior (SeLeP-style)."""

import numpy as np
import pytest

from repro.backends import FileSystemBackend
from repro.core import LinearUtility, SessionConfig
from repro.core.session import KhameleonSession
from repro.encoding import ImageAsset, ProgressiveImageEncoder
from repro.metrics import early_hit_rate
from repro.predictors.markov import MarkovModel, make_markov_predictor
from repro.predictors.shared import (
    SharedTransitionPrior,
    SharedMarkovServerPredictor,
    make_shared_markov_predictor,
)
from repro.sim import ControlChannel, FixedRateLink, Simulator

DELTAS = (0.05, 0.15)


class TestSharedTransitionPrior:
    def test_rows_normalize_to_observed_frequencies(self):
        prior = SharedTransitionPrior(10)
        prior.observe(0, 1)
        prior.observe(0, 1)
        prior.observe(0, 2)
        ids, probs = prior.row(0)
        assert list(ids) == [1, 2]
        assert probs == pytest.approx([2 / 3, 1 / 3])
        assert prior.row_mass(0) == 3
        assert prior.transitions_observed == 3

    def test_unseen_row_is_empty(self):
        prior = SharedTransitionPrior(4)
        ids, probs = prior.row(2)
        assert len(ids) == 0 and len(probs) == 0
        assert prior.row_mass(2) == 0

    def test_snapshot(self):
        prior = SharedTransitionPrior(4)
        prior.observe(0, 1)
        prior.observe(1, 2)
        assert prior.snapshot() == {"transitions_observed": 2, "rows_warmed": 2}

    def test_validation(self):
        with pytest.raises(ValueError):
            SharedTransitionPrior(0)
        prior = SharedTransitionPrior(3)
        with pytest.raises(ValueError):
            prior.observe(0, 3)
        with pytest.raises(ValueError):
            prior.observe(-1, 0)


class TestBlendedDecoding:
    def test_cold_session_decodes_the_crowd_distribution(self):
        """No private history: the blend is the prior (plus smoothing)."""
        n = 50
        prior = SharedTransitionPrior(n)
        for _ in range(20):
            prior.observe(3, 4)
        server = SharedMarkovServerPredictor(
            MarkovModel(n), prior, prior_strength=8.0
        )
        dist = server.decode(3, DELTAS)
        # The crowd's successor carries the pseudo-count mass:
        # (strength + smoothing) / (strength + smoothing * n) ~ 7.8x
        # the uniform 1/n floor.
        assert dist.prob_of(4, 0.05) == pytest.approx(9 / 58)
        assert dist.prob_of(4, 0.05) > 5 / n
        # Everything else stays near the smoothing floor.
        assert dist.prob_of(7, 0.05) < 2 / n

    def test_private_history_overrides_the_prior(self):
        """A session whose own behaviour contradicts the crowd
        personalizes once its observations outweigh the pseudo-counts."""
        n = 20
        prior = SharedTransitionPrior(n)
        for _ in range(50):
            prior.observe(0, 1)  # the crowd goes 0 -> 1
        server = SharedMarkovServerPredictor(
            MarkovModel(n), prior, prior_strength=4.0
        )
        model = server.model
        # This user keeps going 0 -> 2 instead.
        for _ in range(40):
            model.observe(0)
            model.observe(2)
        dist = server.decode(0, DELTAS)
        assert dist.prob_of(2, 0.05) > dist.prob_of(1, 0.05)

    def test_decode_observes_into_both_model_and_prior(self):
        n = 10
        prior = SharedTransitionPrior(n)
        server = SharedMarkovServerPredictor(MarkovModel(n), prior)
        server.decode(1, DELTAS)
        server.decode(2, DELTAS)
        assert server.model.last_request == 2
        assert prior.row_mass(1) == 1  # the 1 -> 2 transition was pooled

    def test_repeated_state_is_not_double_counted(self):
        n = 10
        prior = SharedTransitionPrior(n)
        server = SharedMarkovServerPredictor(MarkovModel(n), prior)
        server.decode(1, DELTAS)
        server.decode(2, DELTAS)
        server.decode(2, DELTAS)  # periodic reship of unchanged state
        assert prior.transitions_observed == 1

    def test_none_state_is_uniform(self):
        prior = SharedTransitionPrior(5)
        server = SharedMarkovServerPredictor(MarkovModel(5), prior)
        dist = server.decode(None, DELTAS)
        assert dist.prob_of(0, 0.05) == pytest.approx(1 / 5)

    def test_distribution_sums_to_one(self):
        n = 12
        prior = SharedTransitionPrior(n)
        for nxt in (1, 2, 3):
            prior.observe(0, nxt)
        server = SharedMarkovServerPredictor(MarkovModel(n), prior)
        dist = server.decode(0, DELTAS)
        total = sum(dist.prob_of(q, 0.05) for q in range(n))
        assert total == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SharedMarkovServerPredictor(MarkovModel(4), SharedTransitionPrior(5))
        with pytest.raises(ValueError):
            SharedMarkovServerPredictor(
                MarkovModel(4), SharedTransitionPrior(4), prior_strength=-1.0
            )


# -- cold-start benefit (end to end) ----------------------------------

BLOCK = 50_000
N_REQUESTS = 200  # big universe: uniform hedging cannot cover it quickly
HOT_PATH = list(range(30))  # the walk every user takes
THINK_S = 0.5


def run_cold_session(predictor, requests, think_s=THINK_S):
    """Replay a request walk against a fresh single session; return outcomes."""
    sim = Simulator()
    nb = 2
    assets = {
        i: ImageAsset(image_id=i, size_bytes=nb * BLOCK) for i in range(N_REQUESTS)
    }
    encoder = ProgressiveImageEncoder(assets, block_size_bytes=BLOCK)
    backend = FileSystemBackend(sim, encoder, fetch_delay_s=0.02)
    session = KhameleonSession(
        sim=sim,
        backend=backend,
        predictor=predictor,
        utility=LinearUtility(),
        num_blocks=[nb] * N_REQUESTS,
        downlink=FixedRateLink(sim, bytes_per_second=1_000_000, propagation_delay_s=0.01),
        uplink=ControlChannel(sim, latency_s=0.01),
        config=SessionConfig(
            cache_bytes=100 * BLOCK,
            block_bytes=BLOCK,
            initial_bandwidth_bytes_per_s=1_000_000.0,
        ),
    )
    for k, request in enumerate(requests):
        sim.schedule_at(0.3 + k * think_s, session.client.request, request)
    session.start()
    sim.run(until=0.3 + len(requests) * think_s + 1.0)
    session.stop()
    return session.cache_manager.outcomes


def warm_prior_with_crowd(cycles=2):
    """The crowd walks the hot path; its transitions pool into the prior."""
    prior = SharedTransitionPrior(N_REQUESTS)
    walk = (HOT_PATH * cycles) + [HOT_PATH[0]]
    run_cold_session(
        make_shared_markov_predictor(N_REQUESTS, prior), walk, think_s=0.4
    )
    return prior


class TestColdStartBenefit:
    def test_shared_prior_beats_fresh_private_predictor_early(self):
        """The satellite acceptance test: a session arriving after the
        crowd has walked the hot path gets a better early hit rate with
        the crowd-warmed prior than with a fresh private chain
        (deterministic seeds, tolerance-based margin)."""
        prior = warm_prior_with_crowd()
        assert prior.transitions_observed >= len(HOT_PATH)

        walk = HOT_PATH[:8]
        shared_outcomes = run_cold_session(
            make_shared_markov_predictor(N_REQUESTS, prior), walk
        )
        private_outcomes = run_cold_session(
            make_markov_predictor(N_REQUESTS), walk
        )
        shared_rate = early_hit_rate(shared_outcomes, first_k=8)
        private_rate = early_hit_rate(private_outcomes, first_k=8)
        # The crowd-warmed arrival should be sharply better; the 0.25
        # margin absorbs scheduler-sampling noise at these seeds.
        assert shared_rate >= private_rate + 0.25

    def test_prior_strength_zero_matches_private_behaviour(self):
        """With no pseudo-counts the blend degenerates to the private
        chain, so the crowd cannot help (sanity check on the knob)."""
        prior = warm_prior_with_crowd()
        walk = HOT_PATH[:8]
        unblended = run_cold_session(
            make_shared_markov_predictor(N_REQUESTS, prior, prior_strength=0.0),
            walk,
        )
        private = run_cold_session(make_markov_predictor(N_REQUESTS), walk)
        assert early_hit_rate(unblended, first_k=8) == pytest.approx(
            early_hit_rate(private, first_k=8), abs=0.15
        )


class TestRowAndBlendCaches:
    """Version-keyed caches: crowd rows and blended rows re-decode only
    when a transition has been observed out of the row."""

    def test_prior_row_cached_until_invalidated(self):
        prior = SharedTransitionPrior(10)
        prior.observe(0, 1)
        prior.observe(0, 2)
        ids_a, probs_a = prior.row(0)
        ids_b, probs_b = prior.row(0)
        assert ids_a is ids_b and probs_a is probs_b  # cache hit
        prior.observe(0, 1)  # bumps row 0's version
        ids_c, probs_c = prior.row(0)
        assert ids_c is not ids_a
        assert probs_c == pytest.approx([2 / 3, 1 / 3])
        # An observation out of a *different* row leaves the cache warm.
        prior.observe(5, 1)
        assert prior.row(0)[1] is probs_c

    def test_row_mass_is_the_version(self):
        prior = SharedTransitionPrior(10)
        assert prior.row_mass(3) == 0
        prior.observe(3, 4)
        prior.observe(3, 4)
        assert prior.row_mass(3) == 2

    def test_blended_row_cached_and_invalidated_on_observe(self):
        prior = SharedTransitionPrior(10)
        for nxt in (1, 2, 1):
            prior.observe(0, nxt)
        sp = SharedMarkovServerPredictor(MarkovModel(10), prior)
        first = sp._blended_row(0)
        assert sp.blend_cache_misses == 1
        again = sp._blended_row(0)
        assert sp.blend_cache_hits == 1
        assert again[0] is first[0] and again[1] is first[1]
        # Any session pooling a transition out of row 0 invalidates it...
        prior.observe(0, 7)
        refreshed = sp._blended_row(0)
        assert sp.blend_cache_misses == 2
        assert 7 in refreshed[0]
        # ...and a *private* observation out of the row does too.
        sp.model.observe(0)
        sp.model.observe(3)  # 0 -> 3 lands in the private chain
        blended = sp._blended_row(0)
        assert sp.blend_cache_misses == 3
        assert 3 in blended[0]

    def test_cache_hits_are_byte_identical_to_recompute(self):
        rng = np.random.default_rng(2)
        prior = SharedTransitionPrior(40)
        for _ in range(200):
            prior.observe(int(rng.integers(40)), int(rng.integers(40)))
        sp = SharedMarkovServerPredictor(MarkovModel(40), prior)
        cached = {r: sp._blended_row(r) for r in range(40)}
        fresh = SharedMarkovServerPredictor(MarkovModel(40), prior)
        for r in range(40):
            hit = sp._blended_row(r)  # cache hit
            miss = fresh._blended_row(r)  # fresh compute
            assert hit[0] is cached[r][0]
            np.testing.assert_array_equal(hit[0], miss[0])
            np.testing.assert_array_equal(hit[1], miss[1])
            assert hit[2] == miss[2]

    def test_markov_model_row_caches(self):
        model = MarkovModel(10)
        for request in (0, 1, 0, 2, 0, 1):
            model.observe(request)
        assert model.row_mass(0) == 3  # 0->1, 0->2, 0->1
        ids_a, counts_a = model.row_arrays(0)
        assert ids_a is model.row_arrays(0)[0]  # cache hit
        probs_a = model.transition_probs(0)[1]
        assert probs_a is model.transition_probs(0)[1]
        model.observe(0)
        model.observe(5)  # 0 -> 5
        ids_b, counts_b = model.row_arrays(0)
        assert ids_b is not ids_a
        assert list(ids_b) == [1, 2, 5]
        assert model.transition_probs(0)[1] is not probs_a

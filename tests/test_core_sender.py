"""Tests for the paced, pipelined sender."""

import pytest

from repro.backends import BackendThrottle, FileSystemBackend
from repro.core import (
    GainTable,
    GreedyScheduler,
    LinearUtility,
    RequestDistribution,
    RingBufferCache,
    Sender,
)
from repro.encoding import ImageAsset, ProgressiveImageEncoder
from repro.sim import FixedRateLink, HarmonicMeanEstimator, Simulator


def make_world(
    n=4,
    nb=3,
    block=50_000,
    bw=1_000_000,
    fetch_delay=0.0,
    C=12,
    throttle_capacity=None,
    hedge=False,
):
    sim = Simulator()
    assets = {i: ImageAsset(image_id=i, size_bytes=nb * block) for i in range(n)}
    encoder = ProgressiveImageEncoder(assets, block_size_bytes=block)
    backend = FileSystemBackend(sim, encoder, fetch_delay_s=fetch_delay)
    link = FixedRateLink(sim, bytes_per_second=bw)
    estimator = HarmonicMeanEstimator(bw)
    gains = GainTable(LinearUtility(), [nb] * n)
    mirror = RingBufferCache(C)
    scheduler = GreedyScheduler(
        gains, cache_blocks=C, mirror=mirror, hedge_when_idle=hedge, seed=0
    )
    received = []
    throttle = None
    if throttle_capacity is not None:
        throttle = BackendThrottle(
            throttle_capacity, active=lambda: backend.active_requests
        )
    sender = Sender(
        sim=sim,
        scheduler=scheduler,
        backend=backend,
        link=link,
        estimator=estimator,
        deliver=lambda b: received.append((b, sim.now)),
        mirror=mirror,
        throttle=throttle,
        lookahead=4,
    )
    return sim, scheduler, sender, backend, received, mirror


class TestSending:
    def test_sends_scheduled_blocks_in_order(self):
        sim, sched, sender, backend, received, _ = make_world()
        sched.update_distribution(RequestDistribution.point(4, 2), 0.05)
        sender.start()
        sim.run(until=2.0)
        blocks = [b for b, t in received]
        assert [(b.request, b.index) for b in blocks[:3]] == [(2, 0), (2, 1), (2, 2)]

    def test_pacing_matches_bandwidth_estimate(self):
        """50 KB blocks at 1 MB/s: one block every 50 ms."""
        sim, sched, sender, backend, received, _ = make_world()
        sched.update_distribution(RequestDistribution.point(4, 1), 0.05)
        sender.start()
        sim.run(until=0.2)
        times = [t for b, t in received]
        assert times[0] == pytest.approx(0.05)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g == pytest.approx(0.05, abs=1e-6) for g in gaps)

    def test_fetch_delay_overlaps_with_transmission(self):
        """Fetch-ahead: backend latency shouldn't serialize with sends."""
        sim, sched, sender, backend, received, _ = make_world(
            n=8, fetch_delay=0.075, hedge=True
        )
        sched.update_distribution(RequestDistribution.uniform(8), 0.05)
        sender.start()
        sim.run(until=1.0)
        # 1 MB/s / 50 KB = 20 blocks/s.  After the initial fetch stall
        # (75 ms) the stream must run at wire rate — a serial
        # fetch+send loop would manage only 1/(0.075+0.05) = 8 blocks/s.
        assert len(received) >= 15
        times = [t for b, t in received]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g == pytest.approx(0.05, abs=1e-6) for g in gaps)

    def test_mirror_tracks_sent_blocks(self):
        sim, sched, sender, backend, received, mirror = make_world()
        sched.update_distribution(RequestDistribution.point(4, 0), 0.05)
        sender.start()
        sim.run(until=0.5)
        assert mirror.block_count(0) == 3

    def test_counters(self):
        sim, sched, sender, backend, received, _ = make_world()
        sched.update_distribution(RequestDistribution.point(4, 0), 0.05)
        sender.start()
        sim.run(until=0.5)
        assert sender.blocks_sent == 3
        assert sender.bytes_sent == 3 * 50_000


class TestRefresh:
    def test_new_distribution_reroutes_unsent_blocks(self):
        sim, sched, sender, backend, received, _ = make_world(fetch_delay=0.2)
        sched.update_distribution(RequestDistribution.point(4, 0), 0.05)
        sender.start()

        def switch():
            sched.update_distribution(RequestDistribution.point(4, 3), 0.05)
            sender.refresh()

        sim.schedule(0.01, switch)  # before the first fetch completes
        sim.run(until=2.0)
        requests = [b.request for b, t in received]
        # After the switch, request 3's blocks dominate the stream.
        assert 3 in requests
        assert requests.count(3) == 3

    def test_refresh_before_start_is_safe(self):
        sim, sched, sender, backend, received, _ = make_world()
        sender.refresh()
        assert received == []


class TestStop:
    def test_stop_mid_pipeline_freezes_sends(self):
        """stop() must silence transmit events already on the heap.

        At 1 MB/s, 50 KB blocks go out at t = 0, 0.03, 0.08 (backlog
        pacing); stopping at t = 0.05 leaves the third transmit already
        scheduled — it must not put a block on the wire.
        """
        sim, sched, sender, backend, received, _ = make_world()
        sched.update_distribution(RequestDistribution.point(4, 0), 0.05)
        sender.start()
        frozen = {}

        def stop_now():
            sender.stop()
            frozen["blocks"] = sender.blocks_sent
            frozen["bytes"] = sender.bytes_sent

        sim.schedule(0.05, stop_now)
        sim.run(until=5.0)
        assert frozen["blocks"] == 2  # fails without the _started guard
        assert sender.blocks_sent == frozen["blocks"]
        assert sender.bytes_sent == frozen["bytes"]
        # In-flight deliveries still land (the stop() contract).
        assert len(received) == frozen["blocks"]

    def test_stop_before_run_sends_nothing(self):
        sim, sched, sender, backend, received, _ = make_world()
        sched.update_distribution(RequestDistribution.point(4, 0), 0.05)
        sender.start()  # schedules the first transmit at t=0
        sender.stop()
        sim.run(until=1.0)
        assert sender.blocks_sent == 0
        assert received == []


class TestThrottle:
    def test_backend_concurrency_respected(self):
        """With capacity 1, at most one uncached request fetches at a time."""
        sim, sched, sender, backend, received, _ = make_world(
            fetch_delay=0.5, throttle_capacity=1, hedge=True
        )
        sched.update_distribution(RequestDistribution.uniform(4), 0.05)
        sender.start()
        peak = []
        sim.every(0.01, lambda: peak.append(backend.active_requests))
        sim.run(until=0.4)
        assert max(peak) <= 1
        assert sender.blocks_deferred > 0

    def test_inflight_fetch_counts_as_materialized_after_refresh(self):
        """§5.4 admits "cached or in flight" requests without a slot.

        refresh() clears the pipeline while the head request's backend
        fetch is still running; re-admitting that request must ride the
        in-flight fetch instead of being deferred against the exhausted
        slot budget.
        """
        sim, sched, sender, backend, received, _ = make_world(
            fetch_delay=0.5, throttle_capacity=1
        )
        sched.update_distribution(RequestDistribution.point(4, 0), 0.05)
        sender.start()

        def preempt():
            assert backend.is_inflight(0)
            sender.refresh()  # same distribution: request 0 reschedules

        sim.schedule(0.1, preempt)
        sim.run(until=2.0)
        assert sender.blocks_deferred == 0  # fails without is_inflight()
        assert [(b.request, b.index) for b, t in received] == [(0, 0), (0, 1), (0, 2)]


class TestPipelineCounts:
    """The O(1) _admit membership structure must mirror the deque exactly."""

    @staticmethod
    def counts_of(sender):
        actual = {}
        for entry in sender._pipeline:
            actual[entry.request] = actual.get(entry.request, 0) + 1
        return actual

    def test_counts_track_append_and_popleft(self):
        sim, sched, sender, backend, received, _ = make_world(n=8, hedge=True)
        sched.update_distribution(RequestDistribution.uniform(8), 0.05)
        sender.start()
        for until in (0.05, 0.15, 0.3, 0.6):
            sim.run(until=until)
            assert sender._pipeline_counts == self.counts_of(sender)

    def test_counts_cleared_on_refresh(self):
        sim, sched, sender, backend, received, _ = make_world(fetch_delay=0.2)
        sched.update_distribution(RequestDistribution.point(4, 0), 0.05)
        sender.start()

        def preempt():
            sender.refresh()
            assert sender._pipeline_counts == self.counts_of(sender)

        sim.schedule(0.01, preempt)
        sim.run(until=1.0)
        assert sender._pipeline_counts == self.counts_of(sender)

    def test_take_pipeline_hands_back_blocks_and_clears(self):
        sim, sched, sender, backend, received, _ = make_world(fetch_delay=0.5)
        sched.update_distribution(RequestDistribution.point(4, 1), 0.05)
        sender.start()
        sim.run(until=0.01)
        assert len(sender._pipeline) > 0
        blocks = sender.take_pipeline()
        assert blocks
        assert len(sender._pipeline) == 0
        assert sender._pipeline_counts == {}
        # Contract: the caller owns the rollback.
        sched.rollback(blocks)
        assert sched.position == 0

    def test_throttled_fill_survives_batch_reset_boundary(self):
        """A deferral's rollback must never straddle a batch reset.

        With a tiny batch (C=3 < lookahead) the fill crosses resets
        constantly; if a window were drawn across one, rolling its tail
        back would hit cleared per-batch counts and raise.  The fill
        caps each pull at the remaining batch instead.
        """
        sim = Simulator()
        n, nb, block, C = 8, 3, 50_000, 3
        assets = {i: ImageAsset(image_id=i, size_bytes=nb * block) for i in range(n)}
        encoder = ProgressiveImageEncoder(assets, block_size_bytes=block)
        backend = FileSystemBackend(sim, encoder, fetch_delay_s=0.3)
        gains = GainTable(LinearUtility(), [nb] * n)
        # No mirror: per-batch counts clear on reset, so a rollback
        # that crossed the boundary would hit unallocated blocks.
        sched = GreedyScheduler(gains, cache_blocks=C, hedge_when_idle=True, seed=0)
        sender = Sender(
            sim=sim,
            scheduler=sched,
            backend=backend,
            link=FixedRateLink(sim, bytes_per_second=1_000_000),
            estimator=HarmonicMeanEstimator(1_000_000.0),
            deliver=lambda b: None,
            throttle=BackendThrottle(1, active=lambda: backend.active_requests),
            lookahead=8,
        )
        sched.update_distribution(RequestDistribution.uniform(n), 0.05)
        sender.start()
        sim.run(until=2.0)  # raises without the batch-boundary cap
        assert sender.blocks_sent > 0

    def test_admit_uses_counts_not_scan(self):
        """An in-pipeline request must admit without consuming a slot
        even when the backend has not materialized it yet."""
        sim, sched, sender, backend, received, _ = make_world(
            fetch_delay=0.5, throttle_capacity=1
        )
        sched.update_distribution(RequestDistribution.point(4, 2), 0.05)
        sender.start()
        sim.run(until=0.05)
        # Multiple blocks of request 2 sit in the pipeline behind one
        # in-flight fetch holding the only slot; none were deferred.
        assert sender._pipeline_counts.get(2, 0) >= 2
        assert sender.blocks_deferred == 0


class TestValidation:
    def test_bad_params(self):
        sim, sched, sender, backend, received, _ = make_world()
        with pytest.raises(ValueError):
            Sender(
                sim=sim,
                scheduler=sched,
                backend=backend,
                link=FixedRateLink(sim, 1.0),
                estimator=HarmonicMeanEstimator(1.0),
                deliver=lambda b: None,
                lookahead=0,
            )
        with pytest.raises(ValueError):
            Sender(
                sim=sim,
                scheduler=sched,
                backend=backend,
                link=FixedRateLink(sim, 1.0),
                estimator=HarmonicMeanEstimator(1.0),
                deliver=lambda b: None,
                idle_retry_s=0.0,
            )

"""Cross-module property tests on core invariants.

These target the contracts the paper's design depends on, rather than
any single module's behaviour:

* greedy schedules are always *valid* (block indices form prefixes,
  never exceed Nb, batches fill exactly C);
* rollback is an inverse: allocate-then-rollback leaves the scheduler
  able to re-produce a full batch;
* a live end-to-end session conserves blocks (sent = delivered after
  drain) and never caches an invalid index.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.distribution import RequestDistribution
from repro.core.greedy import GreedyScheduler
from repro.core.scheduler import GainTable
from repro.core.utility import LinearUtility, PowerUtility


def distributions(n):
    """Strategy: a sparse distribution over n requests, 2 horizons."""

    def build(seed, residual_mass):
        rng = np.random.default_rng(seed)
        k = max(1, n // 3)
        ids = np.sort(rng.choice(n, size=k, replace=False)).astype(np.int64)
        raw = rng.random((2, k)) + 1e-6
        probs = (1.0 - residual_mass) * raw / raw.sum(axis=1, keepdims=True)
        return RequestDistribution(
            n=n,
            deltas_s=np.array([0.05, 0.25]),
            explicit_ids=ids,
            explicit_probs=probs,
            residual=np.full(2, residual_mass),
        )

    return st.builds(
        build,
        seed=st.integers(0, 10_000),
        residual_mass=st.floats(0.0, 0.9),
    )


class TestGreedyScheduleValidity:
    @given(
        dist=distributions(12),
        nb=st.integers(1, 6),
        cache=st.integers(1, 40),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_batches_are_valid_prefix_allocations(self, dist, nb, cache, seed):
        gains = GainTable(LinearUtility(), [nb] * 12)
        scheduler = GreedyScheduler(gains, cache_blocks=cache, seed=seed)
        scheduler.update_distribution(dist, slot_duration_s=0.01)
        schedule = scheduler.schedule_batch()
        counts: dict[int, int] = {}
        for block in schedule:
            # Each allocation extends that request's prefix by one.
            assert block.index == counts.get(block.request, 0)
            counts[block.request] = block.index + 1
            assert counts[block.request] <= nb
        # The batch fills C slots unless every block of every request
        # was allocated first.
        total_capacity = 12 * nb
        assert len(schedule) == min(cache, total_capacity)

    @given(dist=distributions(10), seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_rollback_then_reschedule_still_fills_batch(self, dist, seed):
        gains = GainTable(PowerUtility(0.5), [4] * 10)
        scheduler = GreedyScheduler(gains, cache_blocks=12, seed=seed)
        scheduler.update_distribution(dist, slot_duration_s=0.01)
        first = scheduler.schedule_batch(max_blocks=7)
        scheduler.rollback(first)
        assert scheduler.position == 0
        redone = scheduler.schedule_batch()
        assert len(redone) == 12
        counts: dict[int, int] = {}
        for block in redone:
            assert block.index == counts.get(block.request, 0)
            counts[block.request] = block.index + 1


class TestEndToEndConservation:
    @given(seed=st.integers(0, 30), bandwidth=st.sampled_from([5e5, 2e6, 8e6]))
    @settings(max_examples=8, deadline=None)
    def test_blocks_sent_equal_blocks_delivered(self, seed, bandwidth):
        from repro.core.session import KhameleonSession, SessionConfig
        from repro.experiments.configs import EnvironmentConfig, make_downlink, make_uplink
        from repro.sim.engine import Simulator
        from repro.workloads.image_app import ImageExplorationApp

        env = EnvironmentConfig(bandwidth_bytes_per_s=bandwidth, cache_bytes=4_000_000)
        sim = Simulator()
        app = ImageExplorationApp(rows=4, cols=4, seed=seed)
        session = KhameleonSession(
            sim=sim,
            backend=app.make_backend(sim, fetch_delay_s=0.02),
            predictor=app.make_predictor("uniform"),
            utility=app.utility,
            num_blocks=app.num_blocks,
            downlink=make_downlink(sim, env),
            uplink=make_uplink(sim, env),
            config=SessionConfig(cache_bytes=env.cache_bytes,
                                 scheduler_seed=seed),
        )
        session.start()
        sim.run(until=2.0)
        session.sender.stop()
        sim.run(until=4.0)  # drain in-flight deliveries

        assert session.client.blocks_received == session.sender.blocks_sent
        assert session.client.bytes_received == session.sender.bytes_sent
        # The link delivered no more than its capacity.
        assert session.sender.bytes_sent <= bandwidth * 4.0 * 1.01
        # Every cached index is within its request's block count.
        for request in session.cache.cached_requests():
            nb = app.encoder.num_blocks(request)
            assert all(i < nb for i in session.cache.block_indices(request))

"""Tests for windowed time-series metrics."""

import pytest

from repro.metrics.timeseries import bin_outcomes
from tests.test_metrics import outcome


class TestBinOutcomes:
    def test_windows_cover_horizon(self):
        series = bin_outcomes([], window_s=1.0, duration_s=3.5)
        assert len(series) == 4
        assert series[0].start_s == 0.0
        assert series[-1].end_s == 4.0

    def test_outcomes_assigned_by_registration_time(self):
        outcomes = [
            outcome(ts=0, registered=0.2, served=0.3, hit=True, utility=0.5),
            outcome(ts=1, registered=1.7, served=2.0, utility=1.0),
            outcome(ts=2, registered=1.9, preempted=True),
        ]
        series = bin_outcomes(outcomes, window_s=1.0)
        assert series[0].num_requests == 1
        assert series[1].num_requests == 2
        assert series[1].num_preempted == 1

    def test_window_metrics_follow_collector_accounting(self):
        outcomes = [
            outcome(ts=0, registered=0.1, served=0.2, hit=True, utility=0.4),
            outcome(ts=1, registered=0.3, served=0.8, utility=0.8),
        ]
        w = bin_outcomes(outcomes, window_s=1.0)[0]
        assert w.cache_hit_rate == pytest.approx(0.5)
        assert w.mean_latency_s == pytest.approx((0.1 + 0.5) / 2)
        assert w.mean_utility == pytest.approx(0.6)

    def test_empty_window_is_zeroed(self):
        series = bin_outcomes(
            [outcome(registered=2.5, served=2.6)], window_s=1.0
        )
        assert series[0].num_requests == 0
        assert series[0].mean_latency_s == 0.0
        assert series[2].num_requests == 1

    def test_late_outcomes_clamp_to_last_window(self):
        series = bin_outcomes(
            [outcome(registered=5.0, served=5.1)], window_s=1.0, duration_s=3.0
        )
        assert series[-1].num_requests == 1

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            bin_outcomes([], window_s=0.0)

    def test_series_aligns_across_systems(self):
        """Two runs binned with the same duration produce comparable
        series lengths regardless of when their requests landed."""
        a = bin_outcomes([outcome(registered=0.5, served=0.6)], 1.0, duration_s=5.0)
        b = bin_outcomes([outcome(registered=4.5, served=4.6)], 1.0, duration_s=5.0)
        assert len(a) == len(b) == 5
        assert [w.midpoint_s for w in a] == [w.midpoint_s for w in b]

"""Fault injection through the fleet paths: degraded, never crashed.

The chaos harness (repro.chaos) threads backend errors, latency
spikes, flaky retries, link outages, and worker crash schedules
through ``FleetConfig`` into both the in-process churning fleet and
the multiprocess sharded fleet.  These tests pin the two contracts the
harness exists to prove:

* every fault schedule *degrades* the run — fewer bytes, later
  upcalls, shed arrivals — while the run still completes and conserves
  its sessions;
* an inert ``ChaosConfig`` is invisible: the wrapped paths are
  bit-identical to a run with no chaos config at all.
"""

import dataclasses

import pytest

from repro.chaos import ChaosConfig
from repro.experiments.configs import DEFAULT_ENV, FleetEnvironment
from repro.experiments.runner import run_fleet, run_fleet_sharded
from repro.fleet import ArrivalConfig
from repro.workloads.image_app import ImageExplorationApp
from repro.workloads.mouse import MouseTraceGenerator


def small_fleet(num_sessions=4, trace_duration_s=3.0, arrival=None, chaos=None):
    app = ImageExplorationApp(rows=8, cols=8)
    traces = [
        MouseTraceGenerator(app.layout, seed=100 + i).generate(
            duration_s=trace_duration_s
        )
        for i in range(num_sessions)
    ]
    fleet_env = FleetEnvironment(
        num_sessions=num_sessions, env=DEFAULT_ENV, arrival=arrival, chaos=chaos
    )
    return app, traces, fleet_env


class TestInertChaosIsInvisible:
    def test_inert_config_is_bit_identical_to_no_config(self):
        app, traces, fleet_env = small_fleet()
        baseline = run_fleet(app, traces, fleet_env, predictor="kalman")
        app, traces, fleet_env = small_fleet(chaos=ChaosConfig())
        wrapped = run_fleet(app, traces, fleet_env, predictor="kalman")
        # The config objects differ by construction (None vs inert);
        # everything the run *produced* must not.
        assert dataclasses.replace(
            wrapped, fleet_env=baseline.fleet_env
        ) == baseline


class TestChurningFleetUnderFaults:
    def test_flaky_backend_and_outage_degrade_not_crash(self):
        arrival = ArrivalConfig(
            rate_per_s=1.5, mean_dwell_s=2.0, max_concurrent=3, seed=11
        )
        chaos = ChaosConfig(flaky_period=4, link_outages=((1.0, 2.0),))
        app, traces, fleet_env = small_fleet(
            num_sessions=5, arrival=arrival, chaos=chaos
        )
        result = run_fleet(app, traces, fleet_env, predictor="kalman")
        d = result.diagnostics
        assert d["chaos"]["flaky_failures_injected"] >= 1
        churn = d["churn"]
        assert churn["arrivals"] == 5
        assert churn["admitted"] + churn["rejected"] == 5
        assert result.summary is not None  # somebody was served end-to-end

    def test_outage_costs_bytes(self):
        app, traces, fleet_env = small_fleet()
        clean = run_fleet(app, traces, fleet_env, predictor="kalman")
        app, traces, fleet_env = small_fleet(
            chaos=ChaosConfig(link_outages=((0.5, 2.5),))
        )
        faulted = run_fleet(app, traces, fleet_env, predictor="kalman")
        assert (
            faulted.diagnostics["bytes_sent"] < clean.diagnostics["bytes_sent"]
        )

    def test_backend_errors_are_absorbed_by_retries(self):
        chaos = ChaosConfig(backend_error_rate=0.1, seed=3)
        app, traces, fleet_env = small_fleet(chaos=chaos)
        result = run_fleet(app, traces, fleet_env, predictor="kalman")
        snap = result.diagnostics["chaos"]
        assert snap["errors_injected"] > 0
        assert snap["retries_scheduled"] > 0
        assert result.diagnostics["sessions"] == 4


class TestShardedFleetUnderFaults:
    def test_backend_errors_pool_across_shards(self):
        chaos = ChaosConfig(backend_error_rate=0.05, seed=1)
        app, traces, fleet_env = small_fleet(num_sessions=6, chaos=chaos)
        result = run_fleet_sharded(
            app, traces, fleet_env, num_shards=2, predictor="kalman",
            timeout_s=120.0,
        )
        d = result.diagnostics
        assert d["sessions"] == 6
        assert d["chaos"]["errors_injected"] > 0
        assert d["chaos"]["fetches_abandoned"] == 0
        assert d["sharding"]["shards_lost"] == 0
        assert d["sharding"]["sessions_lost"] == 0

    def test_mid_run_worker_crash_recovers(self):
        """The acceptance gate: a worker killed mid-run is respawned
        from the last sync round and the pooled report still covers
        every session — shards_recovered == 1, nothing lost."""
        chaos = ChaosConfig.parse("worker-crash:1,backend-err:0.05")
        app, traces, fleet_env = small_fleet(num_sessions=6, chaos=chaos)
        result = run_fleet_sharded(
            app, traces, fleet_env, num_shards=2, predictor="kalman",
            sync_interval_s=1.0, timeout_s=120.0,
        )
        d = result.diagnostics
        sharding = d["sharding"]
        assert sharding["shards_recovered"] == 1
        assert sharding["shards_lost"] == 0
        assert sharding["sessions_lost"] == 0
        assert sharding["restarts"] >= 1
        assert d["sessions"] == 6
        assert result.summary is not None
        assert len(result.summary.per_session) == 6
        assert sorted(int(l) for l in result.session_labels) == list(range(6))

    def test_crash_recovery_preserves_crowd_prior_pooling(self):
        """Recovery under shared-markov: the respawned worker re-enters
        the CRDT exchange and the pooled prior still aggregates every
        shard's contribution without double counting."""
        chaos = ChaosConfig.parse("worker-crash:0@1")
        app, traces, fleet_env = small_fleet(num_sessions=6, chaos=chaos)
        result = run_fleet_sharded(
            app, traces, fleet_env, num_shards=2, predictor="shared-markov",
            sync_interval_s=1.0, timeout_s=120.0,
        )
        d = result.diagnostics
        assert d["sharding"]["shards_recovered"] == 1
        assert d["sharding"]["shards_lost"] == 0
        assert d["shared_prior"]["transitions_observed"] > 0
        assert d["sessions"] == 6

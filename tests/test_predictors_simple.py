"""Tests for point/uniform/hover/oracle/markov predictors."""

import pytest

from repro.predictors import (
    BoundingBox,
    ChartLayout,
    MarkovModel,
    MouseEvent,
    make_hover_predictor,
    make_markov_predictor,
    make_oracle_predictor,
    make_point_predictor,
    make_uniform_predictor,
)


class TestPointPredictor:
    def test_uniform_before_any_request(self):
        p = make_point_predictor(10)
        dist = p.distribution_now(0.0)
        assert dist.prob_of(3, 0.05) == pytest.approx(0.1)

    def test_point_mass_on_last_request(self):
        p = make_point_predictor(10)
        p.client.observe_request(0.0, 7)
        dist = p.distribution_now(0.0)
        assert dist.prob_of(7, 0.05) == 1.0
        assert dist.prob_of(7, 0.5) == 1.0

    def test_latest_request_wins(self):
        p = make_point_predictor(10)
        p.client.observe_request(0.0, 3)
        p.client.observe_request(0.1, 9)
        assert p.distribution_now(0.1).prob_of(9, 0.05) == 1.0


class TestUniformPredictor:
    def test_always_uniform(self):
        p = make_uniform_predictor(4)
        p.client.observe_request(0.0, 2)
        dist = p.distribution_now(0.0)
        for r in range(4):
            assert dist.prob_of(r, 0.05) == pytest.approx(0.25)


class TestHoverPredictor:
    def make_layout(self):
        return ChartLayout([BoundingBox(i * 100, 0, i * 100 + 90, 80) for i in range(6)])

    def test_tracks_hovered_chart(self):
        p = make_hover_predictor(self.make_layout())
        p.client.observe_event(0.0, MouseEvent(250, 40))  # chart 2
        assert p.distribution_now(0.0).prob_of(2, 0.05) == 1.0

    def test_keeps_last_hover_when_in_gutter(self):
        p = make_hover_predictor(self.make_layout())
        p.client.observe_event(0.0, MouseEvent(250, 40))
        p.client.observe_event(0.1, MouseEvent(295, 40))  # gutter
        assert p.distribution_now(0.1).prob_of(2, 0.05) == 1.0

    def test_uniform_before_any_hover(self):
        p = make_hover_predictor(self.make_layout())
        assert p.distribution_now(0.0).prob_of(0, 0.05) == pytest.approx(1 / 6)


class TestOraclePredictor:
    def test_reads_future_from_trace(self):
        future = {0.05: 3, 0.15: 4, 0.25: 4, 0.5: 5}
        p = make_oracle_predictor(10, lambda t: future.get(round(t, 2)))
        dist = p.distribution_now(0.0)
        assert dist.prob_of(3, 0.05) == 1.0
        assert dist.prob_of(4, 0.15) == 1.0
        assert dist.prob_of(5, 0.5) == 1.0

    def test_unknown_future_is_uniform(self):
        p = make_oracle_predictor(10, lambda t: None)
        dist = p.distribution_now(0.0)
        assert dist.prob_of(0, 0.05) == pytest.approx(0.1)

    def test_mixed_known_unknown_horizons(self):
        p = make_oracle_predictor(4, lambda t: 2 if t < 0.1 else None)
        dist = p.distribution_now(0.0)
        assert dist.prob_of(2, 0.05) == 1.0
        assert dist.prob_of(0, 0.5) == pytest.approx(0.25)


class TestMarkovModel:
    def test_learns_transitions(self):
        m = MarkovModel(4, smoothing=0.0)
        for r in (0, 1, 0, 1, 0, 2):
            m.observe(r)
        ids, probs, residual = m.transition_probs(0)
        by_id = dict(zip(ids.tolist(), probs.tolist()))
        assert by_id[1] == pytest.approx(2 / 3)
        assert by_id[2] == pytest.approx(1 / 3)
        assert residual == 0.0

    def test_smoothing_leaves_residual(self):
        m = MarkovModel(10, smoothing=1.0)
        m.observe(0)
        m.observe(1)
        ids, probs, residual = m.transition_probs(0)
        total = probs.sum() + residual
        assert total == pytest.approx(1.0)
        assert residual > 0

    def test_top_k(self):
        m = MarkovModel(4, smoothing=0.0)
        for r in (0, 1, 0, 1, 0, 2):
            m.observe(r)
        top = m.top_k_distribution(0, 1)
        assert top[0][0] == 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            MarkovModel(4).observe(4)


class TestMarkovPredictor:
    def test_end_to_end_prediction(self):
        p = make_markov_predictor(4, smoothing=0.1)
        # Teach the chain 0 -> 1 by replaying the stream through states.
        for r in (0, 1, 0, 1, 0):
            p.client.observe_request(0.0, r)
            p.distribution_now(0.0)
        dist = p.distribution_now(0.0)
        assert dist.prob_of(1, 0.05) > dist.prob_of(3, 0.05)

    def test_uniform_before_any_request(self):
        p = make_markov_predictor(4)
        assert p.distribution_now(0.0).prob_of(2, 0.05) == pytest.approx(0.25)

"""Tests for the metrics collector and report formatting."""

import pytest

from repro.core.cache_manager import RequestOutcome, Upcall
from repro.metrics.collector import collect, convergence_curve, overpush_rate
from repro.metrics.report import format_series, format_table


def outcome(
    request=0, ts=0, registered=0.0, served=None, hit=False, preempted=False,
    utility=0.0, blocks=0,
):
    o = RequestOutcome(request=request, logical_ts=ts, registered_at=registered)
    o.cache_hit = hit
    o.preempted = preempted
    if served is not None:
        o.served_at = served
        o.utility_at_upcall = utility
        o.blocks_at_upcall = blocks
    return o


class TestCollect:
    def test_basic_aggregation(self):
        outcomes = [
            outcome(ts=0, registered=0.0, served=0.010, hit=True, utility=0.8, blocks=4),
            outcome(ts=1, registered=1.0, served=1.200, hit=False, utility=1.0, blocks=8),
            outcome(ts=2, registered=2.0, preempted=True),
            outcome(ts=3, registered=3.0),  # unanswered
        ]
        s = collect(outcomes)
        assert s.num_requests == 4
        assert s.num_served == 2
        assert s.num_preempted == 1
        assert s.num_unanswered == 1
        assert s.preempted_rate == 0.25
        # Hits over served + unanswered (preempted excluded).
        assert s.cache_hit_rate == pytest.approx(1 / 3)
        assert s.mean_latency_s == pytest.approx((0.010 + 0.200) / 2)
        assert s.mean_utility == pytest.approx(0.9)

    def test_all_preempted(self):
        s = collect([outcome(ts=i, preempted=True) for i in range(3)])
        assert s.preempted_rate == 1.0
        assert s.mean_latency_s == 0.0
        assert s.mean_utility == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            collect([])

    def test_log_latency(self):
        s = collect([outcome(served=1.0)])  # 1000 ms
        assert s.log10_latency_ms == pytest.approx(3.0)

    def test_as_dict_percentages(self):
        s = collect([outcome(served=0.5, hit=True)])
        d = s.as_dict()
        assert d["cache_hit_%"] == 100.0
        assert d["latency_ms"] == pytest.approx(500.0)


class TestConvergence:
    def test_step_function_sampling(self):
        o = outcome(registered=10.0, served=10.1, utility=0.3, blocks=3)
        o.improvements = [
            Upcall(request=0, logical_ts=0, time_s=10.5, blocks_available=6,
                   utility=0.6, is_improvement=True),
            Upcall(request=0, logical_ts=0, time_s=11.0, blocks_available=10,
                   utility=1.0, is_improvement=True),
        ]
        curve = convergence_curve(o, horizon_s=2.0, points=[0.05, 0.2, 0.6, 1.5])
        assert curve == [(0.05, 0.0), (0.2, 0.3), (0.6, 0.6), (1.5, 1.0)]

    def test_unserved_outcome_is_flat_zero(self):
        o = outcome()
        curve = convergence_curve(o, horizon_s=1.0, points=[0.1, 0.5])
        assert curve == [(0.1, 0.0), (0.5, 0.0)]

    def test_horizon_truncates(self):
        o = outcome(registered=0.0, served=0.1, utility=1.0)
        curve = convergence_curve(o, horizon_s=0.5, points=[0.2, 0.9])
        assert curve == [(0.2, 1.0)]


class TestOverpush:
    def test_counts_peak_blocks_per_outcome(self):
        o = outcome(served=0.1, utility=0.5, blocks=3)
        o.improvements = [
            Upcall(request=0, logical_ts=0, time_s=0.2, blocks_available=7,
                   utility=0.9, is_improvement=True)
        ]
        # 7 of 10 pushed blocks were used.
        assert overpush_rate(10, [o]) == pytest.approx(0.3)

    def test_none_for_no_pushes(self):
        assert overpush_rate(0, []) is None

    def test_clamped_at_zero(self):
        o = outcome(served=0.1, blocks=10)
        assert overpush_rate(5, [o]) == 0.0


class TestReport:
    def test_table_alignment_and_missing_cells(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "c": "x"}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1] and "c" in lines[1]
        assert len(lines) == 5

    def test_empty_table(self):
        assert "(no rows)" in format_table([])

    def test_series(self):
        text = format_series("s", [1, 2], [3.0, 4.0], "x", "y")
        assert text.startswith("s [x -> y]:")
        assert "(1, 3.000)" in text

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", [1], [1, 2])


class TestChurnMetrics:
    def test_collect_cohorts_groups_by_arrival_bucket(self):
        from repro.metrics.fleet import collect_cohorts

        streams = [
            [outcome(ts=0, registered=0.1, served=0.2, utility=0.5)],
            [outcome(ts=0, registered=1.0, served=1.1, utility=0.7)],
            [outcome(ts=0, registered=11.0, served=11.4, utility=0.9)],
        ]
        cohorts = collect_cohorts(streams, [0.0, 2.0, 10.5], cohort_width_s=5.0)
        assert [c.cohort_start_s for c in cohorts] == [0.0, 10.0]
        assert [c.num_sessions for c in cohorts] == [2, 1]
        assert cohorts[0].summary.num_requests == 2
        assert cohorts[1].summary.mean_utility == pytest.approx(0.9)
        row = cohorts[0].row(system="x")
        assert row["cohort_s"] == 0.0 and row["sessions"] == 2
        assert "latency_ms" in row

    def test_collect_cohorts_empty_cohort_has_no_summary(self):
        from repro.metrics.fleet import collect_cohorts

        cohorts = collect_cohorts([[]], [0.0], cohort_width_s=1.0)
        assert cohorts[0].summary is None
        assert "latency_ms" not in cohorts[0].row()

    def test_collect_cohorts_validation(self):
        from repro.metrics.fleet import collect_cohorts

        with pytest.raises(ValueError):
            collect_cohorts([[]], [0.0, 1.0], cohort_width_s=1.0)
        with pytest.raises(ValueError):
            collect_cohorts([[]], [0.0], cohort_width_s=0.0)

    def test_collect_windows_pools_sessions(self):
        from repro.metrics.fleet import collect_windows

        streams = [
            [outcome(ts=0, registered=0.2, served=0.3)],
            [outcome(ts=0, registered=1.7, served=1.9)],
        ]
        windows = collect_windows(streams, window_s=1.0)
        assert len(windows) == 2
        assert windows[0].num_requests == 1
        assert windows[1].num_requests == 1
        assert windows[1].start_s == 1.0

    def test_early_hit_rate_counts_first_k_registrations(self):
        from repro.metrics.fleet import early_hit_rate

        outcomes = [
            outcome(ts=0, hit=False, served=0.1),
            outcome(ts=1, hit=True, served=0.2),
            outcome(ts=2, hit=True, served=0.3),
            outcome(ts=3, hit=True, served=0.4),  # beyond first_k
        ]
        assert early_hit_rate(outcomes, first_k=3) == pytest.approx(2 / 3)

    def test_early_hit_rate_skips_preempted(self):
        from repro.metrics.fleet import early_hit_rate

        outcomes = [
            outcome(ts=0, preempted=True),
            outcome(ts=1, hit=True, served=0.2),
        ]
        assert early_hit_rate(outcomes, first_k=2) == 1.0
        assert early_hit_rate([outcome(ts=0, preempted=True)], first_k=2) == 0.0
        with pytest.raises(ValueError):
            early_hit_rate(outcomes, first_k=0)

"""Tests for link models: serialization, queueing, propagation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import (
    ControlChannel,
    FixedRateLink,
    MahimahiTrace,
    Simulator,
    TraceDrivenLink,
)


class TestFixedRateLink:
    def test_serialization_delay(self):
        sim = Simulator()
        link = FixedRateLink(sim, bytes_per_second=1000)
        arrivals = []
        link.send(500, lambda p: arrivals.append(sim.now))
        sim.run()
        assert arrivals == [0.5]

    def test_propagation_adds_latency(self):
        sim = Simulator()
        link = FixedRateLink(sim, bytes_per_second=1000, propagation_delay_s=0.1)
        arrivals = []
        link.send(500, lambda p: arrivals.append(sim.now))
        sim.run()
        assert arrivals == [pytest.approx(0.6)]

    def test_fifo_queueing(self):
        """Back-to-back sends serialize one after another."""
        sim = Simulator()
        link = FixedRateLink(sim, bytes_per_second=1000)
        arrivals = []
        link.send(1000, lambda p: arrivals.append((p, sim.now)), "a")
        link.send(1000, lambda p: arrivals.append((p, sim.now)), "b")
        sim.run()
        assert arrivals == [("a", 1.0), ("b", 2.0)]

    def test_queue_delay_reflects_backlog(self):
        sim = Simulator()
        link = FixedRateLink(sim, bytes_per_second=1000)
        link.send(2000, lambda p: None)
        assert link.queue_delay() == pytest.approx(2.0)
        sim.run()
        assert link.queue_delay() == 0.0

    def test_idle_gap_resets_queue(self):
        sim = Simulator()
        link = FixedRateLink(sim, bytes_per_second=1000)
        link.send(1000, lambda p: None)
        sim.run()
        sim.run_for(5.0)
        arrivals = []
        link.send(1000, lambda p: arrivals.append(sim.now))
        sim.run()
        assert arrivals == [pytest.approx(7.0)]

    def test_counters(self):
        sim = Simulator()
        link = FixedRateLink(sim, bytes_per_second=1000)
        link.send(300, lambda p: None)
        link.send(700, lambda p: None)
        sim.run()
        assert link.bytes_accepted == 1000
        assert link.bytes_delivered == 1000
        assert link.payloads_delivered == 2

    def test_rejects_bad_params(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FixedRateLink(sim, bytes_per_second=0)
        with pytest.raises(ValueError):
            FixedRateLink(sim, bytes_per_second=1, propagation_delay_s=-1)
        link = FixedRateLink(sim, bytes_per_second=1)
        with pytest.raises(ValueError):
            link.send(-5, lambda p: None)

    def test_zero_byte_payload_arrives_after_latency_only(self):
        sim = Simulator()
        link = FixedRateLink(sim, bytes_per_second=1000, propagation_delay_s=0.25)
        arrivals = []
        link.send(0, lambda p: arrivals.append(sim.now))
        sim.run()
        assert arrivals == [pytest.approx(0.25)]


class TestTraceDrivenLink:
    def test_delivery_follows_trace_opportunities(self):
        sim = Simulator()
        trace = MahimahiTrace((10, 20, 30), period_ms=30)
        link = TraceDrivenLink(sim, trace)
        arrivals = []
        link.send(100, lambda p: arrivals.append(sim.now))
        link.send(100, lambda p: arrivals.append(sim.now))
        sim.run()
        assert arrivals == [pytest.approx(0.010), pytest.approx(0.020)]

    def test_mean_rate_matches_trace(self):
        sim = Simulator()
        trace = MahimahiTrace.constant_rate(150_000)  # 100 packets/s
        link = TraceDrivenLink(sim, trace)
        arrivals = []
        total = 0
        for _ in range(100):
            link.send(1500, lambda p: arrivals.append(sim.now))
            total += 1500
        sim.run()
        # 150 KB at 150 KB/s should take ~1s end to end.
        assert arrivals[-1] == pytest.approx(1.0, rel=0.05)


class TestControlChannel:
    def test_latency_only(self):
        sim = Simulator()
        chan = ControlChannel(sim, latency_s=0.05)
        arrivals = []
        chan.send(lambda p: arrivals.append((p, sim.now)), "msg")
        sim.run()
        assert arrivals == [("msg", 0.05)]

    def test_fifo_ordering_preserved(self):
        sim = Simulator()
        chan = ControlChannel(sim, latency_s=0.05)
        arrivals = []
        chan.send(lambda p: arrivals.append(p), 1)
        chan.send(lambda p: arrivals.append(p), 2)
        sim.run()
        assert arrivals == [1, 2]

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            ControlChannel(Simulator(), latency_s=-0.1)


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=100_000), min_size=1, max_size=40),
    rate=st.integers(min_value=1_000, max_value=10_000_000),
)
def test_property_fixed_link_conserves_bandwidth(sizes, rate):
    """Total delivery time >= total bytes / rate, and FIFO order holds."""
    sim = Simulator()
    link = FixedRateLink(sim, bytes_per_second=rate)
    order = []
    for i, size in enumerate(sizes):
        link.send(size, order.append, i)
    sim.run()
    assert order == list(range(len(sizes)))
    assert sim.now >= sum(sizes) / rate - 1e-9
    assert sim.now == pytest.approx(sum(sizes) / rate)

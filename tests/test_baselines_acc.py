"""Tests for the idealized ACC-<acc>-<hor> prefetchers."""

import pytest

from repro.baselines.acc import ACCPrefetcher, acc_threshold
from tests.test_baselines_classic import build


class TestThreshold:
    def test_scales_with_bandwidth(self):
        assert acc_threshold(15e6, 1.65e6) > acc_threshold(1.5e6, 1.65e6)

    def test_minimum_floor(self):
        assert acc_threshold(1.0, 1e9, minimum=2) == 2

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            acc_threshold(0.0, 1.0)
        with pytest.raises(ValueError):
            acc_threshold(1.0, 0.0)


def make_prefetcher(session, future, acc=1.0, hor=2, limit=10, n=6, seed=0):
    return ACCPrefetcher(
        session=session,
        future_requests=future,
        accuracy=acc,
        horizon=hor,
        outstanding_limit=limit,
        num_requests=n,
        seed=seed,
    )


class TestPrefetching:
    def test_perfect_accuracy_prefetches_the_future(self):
        sim, session = build()
        future = [0, 1, 2, 3]
        pf = make_prefetcher(session, future, acc=1.0, hor=2)
        pf.on_user_request(0)  # predicts positions 1 and 2
        sim.run()
        assert session.cache.peek(1) is not None
        assert session.cache.peek(2) is not None
        assert pf.empirical_accuracy == 1.0

    def test_horizon_respected_at_trace_end(self):
        sim, session = build()
        pf = make_prefetcher(session, [0, 1], acc=1.0, hor=5)
        pf.on_user_request(0)  # only position 1 exists
        sim.run()
        assert pf.predictions_made == 1

    def test_zero_accuracy_always_wrong(self):
        sim, session = build()
        pf = make_prefetcher(session, [0, 1, 2], acc=0.0, hor=2, seed=3)
        pf.on_user_request(0)
        sim.run()
        assert pf.empirical_accuracy == 0.0
        # Wrong predictions still land in the cache (as waste).
        assert session.prefetches_sent >= 1

    def test_outstanding_limit_suppresses(self):
        sim, session = build()
        session.request(0)  # one outstanding user request
        pf = make_prefetcher(session, [0, 1, 2, 3, 4], acc=1.0, hor=3, limit=1)
        pf.on_user_request(0)
        assert pf.prefetches_issued == 0
        assert pf.prefetches_suppressed == 3

    def test_deterministic_per_seed(self):
        sim1, s1 = build()
        sim2, s2 = build()
        a = make_prefetcher(s1, list(range(6)), acc=0.5, hor=3, seed=7)
        b = make_prefetcher(s2, list(range(6)), acc=0.5, hor=3, seed=7)
        a.on_user_request(0)
        b.on_user_request(0)
        assert a.predictions_correct == b.predictions_correct

    def test_position_bounds_checked(self):
        sim, session = build()
        pf = make_prefetcher(session, [0, 1])
        with pytest.raises(IndexError):
            pf.on_user_request(5)

    def test_parameter_validation(self):
        sim, session = build()
        with pytest.raises(ValueError):
            make_prefetcher(session, [0], acc=1.5)
        with pytest.raises(ValueError):
            make_prefetcher(session, [0], hor=0)
        with pytest.raises(ValueError):
            make_prefetcher(session, [0], limit=0)
        with pytest.raises(ValueError):
            make_prefetcher(session, [0], n=0)

    def test_empirical_accuracy_none_before_predictions(self):
        sim, session = build()
        pf = make_prefetcher(session, [0, 1])
        assert pf.empirical_accuracy is None

"""Tests for the Kalman-filter mouse predictor."""

import numpy as np
import pytest

from repro.predictors import (
    GridLayout,
    MouseEvent,
    make_kalman_predictor,
)
from repro.predictors.kalman import (
    ConstantVelocityKalman,
    KalmanClientPredictor,
    KalmanServerPredictor,
)


class TestConstantVelocityKalman:
    def test_uninitialized_predict_raises(self):
        with pytest.raises(RuntimeError):
            ConstantVelocityKalman().predict_at(1.0)

    def test_first_observation_anchors_position(self):
        kf = ConstantVelocityKalman()
        kf.observe(0.0, 100.0, 200.0)
        mean, cov = kf.predict_at(0.0)
        assert mean[0] == pytest.approx(100.0, abs=1.0)
        assert mean[1] == pytest.approx(200.0, abs=1.0)

    def test_learns_constant_velocity(self):
        """Samples moving at 100 px/s predict ahead along the motion."""
        kf = ConstantVelocityKalman()
        for i in range(20):
            t = i * 0.02
            kf.observe(t, 100.0 * t, 50.0)
        mean, _ = kf.predict_at(0.38 + 0.1)  # 100 ms ahead of last sample
        assert mean[0] == pytest.approx(48.0, abs=5.0)
        assert mean[1] == pytest.approx(50.0, abs=2.0)

    def test_uncertainty_grows_with_horizon(self):
        kf = ConstantVelocityKalman()
        for i in range(10):
            kf.observe(i * 0.02, float(i), 0.0)
        _, cov_near = kf.predict_at(0.18 + 0.05)
        _, cov_far = kf.predict_at(0.18 + 0.5)
        assert cov_far[0, 0] > cov_near[0, 0]

    def test_predict_is_pure(self):
        kf = ConstantVelocityKalman()
        kf.observe(0.0, 0.0, 0.0)
        kf.observe(0.02, 1.0, 1.0)
        m1, _ = kf.predict_at(0.5)
        m2, _ = kf.predict_at(0.5)
        assert np.allclose(m1, m2)

    def test_stationary_mouse_predicts_in_place(self):
        kf = ConstantVelocityKalman()
        for i in range(30):
            kf.observe(i * 0.02, 300.0, 300.0)
        mean, _ = kf.predict_at(0.58 + 0.25)
        assert mean[0] == pytest.approx(300.0, abs=2.0)
        assert abs(mean[2]) < 5.0  # learned velocity ~ 0

    def test_covariance_stays_symmetric_psd(self):
        kf = ConstantVelocityKalman()
        rng = np.random.default_rng(0)
        for i in range(200):
            kf.observe(i * 0.01, rng.normal(0, 100), rng.normal(0, 100))
        _, cov = kf.predict_at(2.1)
        assert np.allclose(cov, cov.T)
        assert (np.linalg.eigvalsh(cov) > -1e-6).all()


class TestKalmanClientPredictor:
    def test_state_none_before_observations(self):
        client = KalmanClientPredictor()
        assert client.state(0.0) is None

    def test_state_has_one_gaussian_per_horizon(self):
        client = KalmanClientPredictor(deltas_s=(0.05, 0.15, 0.25, 0.5))
        client.observe_event(0.0, MouseEvent(10, 10))
        state = client.state(0.0)
        assert len(state.means) == 4
        assert len(state.stds) == 4

    def test_long_horizon_marked_uniform(self):
        client = KalmanClientPredictor(deltas_s=(0.05, 0.5), uniform_after_s=0.5)
        client.observe_event(0.0, MouseEvent(10, 10))
        state = client.state(0.0)
        assert state.uniform == (False, True)

    def test_state_size_is_six_floats_per_horizon(self):
        client = KalmanClientPredictor(deltas_s=(0.05, 0.15, 0.25, 0.5))
        client.observe_event(0.0, MouseEvent(10, 10))
        state = client.state(0.0)
        assert client.state_size_bytes(state) == 4 * 6 * 4

    def test_ignores_non_mouse_events(self):
        client = KalmanClientPredictor()
        client.observe_event(0.0, "not-a-mouse-event")
        assert client.state(0.0) is None


class TestKalmanServerPredictor:
    def test_decodes_none_as_uniform(self):
        grid = GridLayout(10, 10, 50, 50)
        server = KalmanServerPredictor(grid)
        dist = server.decode(None, (0.05,))
        assert dist.prob_of(0, 0.05) == pytest.approx(0.01)

    def test_end_to_end_tracks_moving_mouse(self):
        """Moving right: short-horizon mass should sit ahead of the mouse."""
        grid = GridLayout(10, 10, 50, 50)
        predictor = make_kalman_predictor(grid)
        for i in range(25):
            t = i * 0.02
            predictor.client.observe_event(t, MouseEvent(50 + 400 * t, 275.0))
        now = 24 * 0.02
        dist = predictor.distribution_now(now)
        x_now = 50 + 400 * now
        current = grid.request_at(x_now, 275.0)
        # Mass at the 150 ms horizon should centre near x_now + 60 px.
        ahead = grid.request_at(min(x_now + 400 * 0.15, 499), 275.0)
        p_ahead = dist.prob_of(ahead, 0.15)
        assert p_ahead > 0.05
        assert dist.dense_at(0.15).sum() == pytest.approx(1.0, abs=1e-5)
        assert current is not None

    def test_500ms_horizon_uniform(self):
        grid = GridLayout(10, 10, 50, 50)
        predictor = make_kalman_predictor(grid)
        predictor.client.observe_event(0.0, MouseEvent(275, 275))
        dist = predictor.distribution_now(0.0)
        assert dist.prob_of(0, 0.5) == pytest.approx(
            dist.prob_of(99, 0.5), abs=1e-9
        )

"""Tests for synthetic cellular trace generation."""

import numpy as np
import pytest

from repro.sim import ATT_LTE, VERIZON_LTE, CellularProfile, CellularTraceGenerator


class TestProfiles:
    def test_builtin_profiles_valid(self):
        assert VERIZON_LTE.mean_rate_mbps > ATT_LTE.mean_rate_mbps

    def test_verizon_mean_in_published_range(self):
        assert 8.0 <= VERIZON_LTE.mean_rate_mbps <= 12.0

    def test_att_mean_in_published_range(self):
        assert 4.0 <= ATT_LTE.mean_rate_mbps <= 7.0

    def test_validation_weights_sum(self):
        with pytest.raises(ValueError):
            CellularProfile("x", (1.0, 2.0), (0.5, 0.6))

    def test_validation_length_mismatch(self):
        with pytest.raises(ValueError):
            CellularProfile("x", (1.0,), (0.5, 0.5))

    def test_validation_dwell(self):
        with pytest.raises(ValueError):
            CellularProfile("x", (1.0,), (1.0,), mean_dwell_ms=0)


class TestGenerator:
    def test_deterministic_for_seed(self):
        a = CellularTraceGenerator(VERIZON_LTE, seed=7).generate(10_000)
        b = CellularTraceGenerator(VERIZON_LTE, seed=7).generate(10_000)
        assert a.opportunities_ms == b.opportunities_ms

    def test_different_seeds_differ(self):
        a = CellularTraceGenerator(VERIZON_LTE, seed=1).generate(10_000)
        b = CellularTraceGenerator(VERIZON_LTE, seed=2).generate(10_000)
        assert a.opportunities_ms != b.opportunities_ms

    def test_mean_rate_tracks_profile(self):
        for profile in (VERIZON_LTE, ATT_LTE):
            trace = CellularTraceGenerator(profile, seed=0).generate(60_000)
            target = profile.mean_rate_mbps * 1e6 / 8
            assert trace.mean_rate_bytes_per_s == pytest.approx(target, rel=0.25)

    def test_rate_varies_over_time(self):
        """The whole point of the cellular experiments: rate is not flat."""
        gen = CellularTraceGenerator(ATT_LTE, seed=3)
        timeline = gen.rate_timeline(30_000)
        assert np.std(timeline) > 0.2 * np.mean(timeline)

    def test_trace_period_matches_duration(self):
        trace = CellularTraceGenerator(VERIZON_LTE, seed=0).generate(5_000)
        assert trace.period_ms == 5_000

    def test_timeline_covers_duration(self):
        timeline = CellularTraceGenerator(VERIZON_LTE, seed=0).rate_timeline(2_500)
        assert timeline.shape == (2_500,)
        assert (timeline > 0).all()

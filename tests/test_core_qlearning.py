"""Tests for the §8 Q-learning scheduler extension."""

import numpy as np
import pytest

from repro.core.distribution import RequestDistribution
from repro.core.greedy import GreedyScheduler
from repro.core.qlearning import QLearningConfig, QLearningScheduler
from repro.core.scheduler import GainTable, expected_utility
from repro.core.utility import LinearUtility


def skewed_distribution(n=4, hot=0, mass=0.9):
    probs = np.full((2, 1), mass)
    return RequestDistribution(
        n=n,
        deltas_s=np.array([0.05, 0.25]),
        explicit_ids=np.array([hot], dtype=np.int64),
        explicit_probs=probs,
        residual=np.full(2, 1.0 - mass),
    )


class TestTraining:
    def test_schedule_fills_batch_with_valid_blocks(self):
        gains = GainTable(LinearUtility(), [3] * 4)
        ql = QLearningScheduler(gains, cache_blocks=6,
                                config=QLearningConfig(episodes=300))
        ql.train(skewed_distribution())
        schedule = ql.schedule_batch()
        assert len(schedule) == 6
        counts: dict[int, int] = {}
        for block in schedule:
            assert block.index == counts.get(block.request, 0)
            counts[block.request] = block.index + 1
            assert block.index < gains.blocks_of(block.request)

    def test_learned_policy_prefers_the_hot_request(self):
        gains = GainTable(LinearUtility(), [3] * 4)
        ql = QLearningScheduler(gains, cache_blocks=4,
                                config=QLearningConfig(episodes=1_500, seed=1))
        dist = skewed_distribution(hot=2)
        ql.train(dist)
        schedule = ql.schedule_batch()
        hot_blocks = sum(1 for b in schedule if b.request == 2)
        assert hot_blocks >= 3  # nearly the whole batch goes to the hot item

    def test_learned_close_to_greedy_value(self):
        """On micro instances the learned policy should reach at least
        the greedy heuristic's expected utility."""
        gains = GainTable(LinearUtility(), [3] * 4)
        dist = skewed_distribution(hot=1)
        slot = 0.01

        ql = QLearningScheduler(gains, cache_blocks=5,
                                config=QLearningConfig(episodes=2_000, seed=2))
        ql.train(dist, slot_duration_s=slot)
        learned = expected_utility(ql.schedule_batch(), dist, gains, slot)

        greedy = GreedyScheduler(gains, cache_blocks=5, seed=2)
        greedy.update_distribution(dist, slot)
        baseline = expected_utility(greedy.schedule_batch(), dist, gains, slot)
        assert learned >= baseline * 0.9

    def test_states_visited_grows_with_horizon(self):
        gains = GainTable(LinearUtility(), [2] * 3)
        small = QLearningScheduler(gains, cache_blocks=2,
                                   config=QLearningConfig(episodes=100))
        big = QLearningScheduler(gains, cache_blocks=4,
                                 config=QLearningConfig(episodes=100))
        dist = skewed_distribution(n=3)
        small.train(dist)
        big.train(dist)
        assert big.states_visited > small.states_visited

    def test_schedule_before_train_rejected(self):
        gains = GainTable(LinearUtility(), [2] * 3)
        ql = QLearningScheduler(gains, cache_blocks=2)
        with pytest.raises(RuntimeError):
            ql.schedule_batch()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            QLearningConfig(episodes=0)
        with pytest.raises(ValueError):
            QLearningConfig(learning_rate=0.0)
        with pytest.raises(ValueError):
            QLearningConfig(epsilon=2.0)

    def test_invalid_slot_duration(self):
        gains = GainTable(LinearUtility(), [2] * 3)
        ql = QLearningScheduler(gains, cache_blocks=2)
        with pytest.raises(ValueError):
            ql.train(skewed_distribution(n=3), slot_duration_s=0.0)

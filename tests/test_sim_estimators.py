"""Tests for the alternative bandwidth estimators."""

import pytest

from repro.sim.estimators import EWMAEstimator, SlidingMaxEstimator


class TestEWMA:
    def test_initial_estimate(self):
        est = EWMAEstimator(1000.0)
        assert est.estimate == 1000.0

    def test_moves_toward_reports(self):
        est = EWMAEstimator(1000.0, alpha=0.5)
        est.report(2000.0)
        assert est.estimate == pytest.approx(1500.0)
        est.report(2000.0)
        assert est.estimate == pytest.approx(1750.0)

    def test_ignores_idle_zero_reports(self):
        est = EWMAEstimator(1000.0)
        est.report(0.0)
        assert est.estimate == 1000.0
        assert est.report_count == 0

    def test_cap_applies(self):
        est = EWMAEstimator(1000.0, alpha=1.0, cap_bytes_per_s=1200.0)
        est.report(5000.0)
        assert est.estimate == 1200.0

    def test_validation(self):
        with pytest.raises(ValueError):
            EWMAEstimator(0.0)
        with pytest.raises(ValueError):
            EWMAEstimator(1.0, alpha=0.0)
        with pytest.raises(ValueError):
            EWMAEstimator(1.0, cap_bytes_per_s=0.0)


class TestSlidingMax:
    def test_initial_until_first_report(self):
        est = SlidingMaxEstimator(500.0)
        assert est.estimate == 500.0
        est.report(900.0)
        assert est.estimate == 900.0

    def test_max_over_window(self):
        est = SlidingMaxEstimator(100.0, window=3)
        for rate in (500.0, 900.0, 300.0):
            est.report(rate)
        assert est.estimate == 900.0
        # Two more reports push the 900 out of the 3-report window.
        est.report(200.0)
        est.report(250.0)
        assert est.estimate == 300.0

    def test_cap_applies(self):
        est = SlidingMaxEstimator(100.0, cap_bytes_per_s=250.0)
        est.report(900.0)
        assert est.estimate == 250.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingMaxEstimator(1.0, window=0)


class TestSessionCompatibility:
    def test_drop_in_replacement(self):
        """Alternative estimators satisfy the session's interface and
        drive a live run end to end."""
        from repro.core.session import KhameleonSession, SessionConfig
        from repro.experiments.configs import DEFAULT_ENV, make_downlink, make_uplink
        from repro.sim.engine import Simulator
        from repro.workloads.image_app import ImageExplorationApp

        sim = Simulator()
        app = ImageExplorationApp(rows=4, cols=4)
        session = KhameleonSession(
            sim=sim,
            backend=app.make_backend(sim, fetch_delay_s=0.05),
            predictor=app.make_predictor("uniform"),
            utility=app.utility,
            num_blocks=app.num_blocks,
            downlink=make_downlink(sim, DEFAULT_ENV),
            uplink=make_uplink(sim, DEFAULT_ENV),
            config=SessionConfig(cache_bytes=5_000_000),
        )
        session.estimator = EWMAEstimator(1_000_000.0)  # swap before start
        session.server.estimator = session.estimator
        session.sender.estimator = session.estimator
        session.start()
        sim.run(until=1.0)
        session.stop()
        assert session.client.blocks_received > 0

"""Tests for blocks, responses, and the request space."""

import pytest

from repro.core.blocks import Block, ProgressiveResponse, RequestSpace


def make_response(request=0, nb=4, size=100):
    return ProgressiveResponse(
        request=request,
        blocks=tuple(Block(request, i, size) for i in range(nb)),
    )


class TestBlock:
    def test_valid_block(self):
        b = Block(request=3, index=0, size_bytes=50_000)
        assert (b.request, b.index, b.size_bytes) == (3, 0, 50_000)

    def test_payload_excluded_from_equality(self):
        assert Block(0, 0, 10, payload="a") == Block(0, 0, 10, payload="b")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"request": -1, "index": 0, "size_bytes": 1},
            {"request": 0, "index": -1, "size_bytes": 1},
            {"request": 0, "index": 0, "size_bytes": 0},
        ],
    )
    def test_invalid_block(self, kwargs):
        with pytest.raises(ValueError):
            Block(**kwargs)


class TestProgressiveResponse:
    def test_valid_response(self):
        r = make_response(nb=3)
        assert r.num_blocks == 3
        assert r.total_bytes == 300

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ProgressiveResponse(request=0, blocks=())

    def test_wrong_request_rejected(self):
        with pytest.raises(ValueError):
            ProgressiveResponse(request=0, blocks=(Block(1, 0, 10),))

    def test_out_of_order_indices_rejected(self):
        with pytest.raises(ValueError):
            ProgressiveResponse(
                request=0, blocks=(Block(0, 1, 10), Block(0, 0, 10))
            )

    def test_prefix(self):
        r = make_response(nb=4)
        assert len(r.prefix(2)) == 2
        assert r.prefix(0) == ()
        assert r.prefix(4) == r.blocks

    def test_prefix_out_of_range(self):
        with pytest.raises(ValueError):
            make_response(nb=2).prefix(3)

    def test_iteration(self):
        assert [b.index for b in make_response(nb=3)] == [0, 1, 2]


class TestRequestSpace:
    def test_roundtrip(self):
        space = RequestSpace(["a", "b", "c"])
        assert len(space) == 3
        assert space.id_of("b") == 1
        assert space.key_of(1) == "b"

    def test_tuple_keys(self):
        keys = [(r, c) for r in range(3) for c in range(3)]
        space = RequestSpace(keys)
        assert space.key_of(space.id_of((2, 1))) == (2, 1)

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError):
            RequestSpace(["a", "a"])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RequestSpace([])

    def test_unknown_key(self):
        space = RequestSpace(["a"])
        with pytest.raises(KeyError):
            space.id_of("z")
        assert space.get_id("z") is None
        assert "z" not in space
        assert "a" in space

    def test_bad_id(self):
        space = RequestSpace(["a"])
        with pytest.raises(IndexError):
            space.key_of(5)

    def test_iteration_preserves_order(self):
        assert list(RequestSpace(["x", "y"])) == ["x", "y"]

"""Tests for crowd-prior persistence (SharedTransitionPrior.save/load).

The fleet's shared Markov prior is the one piece of state worth keeping
across serving processes: transitions pooled from yesterday's tenants
warm today's cold sessions.  These tests cover the npz round trip, the
failure modes (wrong file, wrong version, wrong universe size, corrupt
entries), and the ``run_fleet(shared_prior=<path>)`` wiring that lets
experiments warm-start straight from a file.
"""

import numpy as np
import pytest

from repro.experiments.configs import DEFAULT_ENV, FleetEnvironment
from repro.experiments.runner import run_fleet
from repro.predictors.shared import SharedTransitionPrior
from repro.workloads.image_app import ImageExplorationApp
from repro.workloads.mouse import MouseTraceGenerator


def make_prior(n=9):
    prior = SharedTransitionPrior(n)
    for prev, nxt, times in [(0, 1, 3), (0, 2, 1), (4, 4, 2), (8, 0, 5)]:
        for _ in range(times):
            prior.observe(prev, nxt)
    return prior


class TestRoundTrip:
    def test_save_load_preserves_every_count(self, tmp_path):
        prior = make_prior()
        path = tmp_path / "prior.npz"
        prior.save(path)
        loaded = SharedTransitionPrior.load(path)
        assert loaded.n == prior.n
        assert loaded.transitions_observed == prior.transitions_observed
        for request in range(prior.n):
            ids, counts = prior.row(request)
            lids, lcounts = loaded.row(request)
            assert ids.tolist() == lids.tolist()
            assert counts.tolist() == lcounts.tolist()
            assert loaded.row_mass(request) == prior.row_mass(request)

    def test_empty_prior_round_trips(self, tmp_path):
        path = tmp_path / "empty.npz"
        SharedTransitionPrior(5).save(path)
        loaded = SharedTransitionPrior.load(path, n=5)
        assert loaded.transitions_observed == 0
        assert loaded.row_mass(0) == 0

    def test_loaded_prior_keeps_learning(self, tmp_path):
        path = tmp_path / "prior.npz"
        make_prior().save(path)
        loaded = SharedTransitionPrior.load(path)
        before = loaded.row_mass(0)
        loaded.observe(0, 1)
        assert loaded.row_mass(0) == before + 1


class TestValidation:
    def test_n_mismatch_fails_fast(self, tmp_path):
        path = tmp_path / "prior.npz"
        make_prior(n=9).save(path)
        with pytest.raises(ValueError, match="9 requests, expected 16"):
            SharedTransitionPrior.load(path, n=16)

    def test_unrelated_npz_is_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, weights=np.ones(3))
        with pytest.raises(ValueError, match="not a saved prior"):
            SharedTransitionPrior.load(path)

    def test_future_format_version_is_rejected(self, tmp_path):
        path = tmp_path / "prior.npz"
        make_prior().save(path)
        with np.load(path) as data:
            fields = dict(data)
        fields["format_version"] = np.int64(99)
        np.savez_compressed(path, **fields)
        with pytest.raises(ValueError, match="v99 unsupported"):
            SharedTransitionPrior.load(path)

    def test_out_of_range_entry_is_rejected(self, tmp_path):
        path = tmp_path / "prior.npz"
        make_prior(n=9).save(path)
        with np.load(path) as data:
            fields = dict(data)
        fields["next"] = fields["next"].copy()
        fields["next"][0] = 1000  # points outside the request universe
        np.savez_compressed(path, **fields)
        with pytest.raises(ValueError, match="corrupt prior entry"):
            SharedTransitionPrior.load(path)


class TestRunFleetWiring:
    def test_run_fleet_accepts_a_prior_path(self, tmp_path):
        app = ImageExplorationApp(rows=4, cols=4)
        traces = [
            MouseTraceGenerator(app.layout, seed=60 + i).generate(duration_s=3.0)
            for i in range(2)
        ]
        fleet_env = FleetEnvironment(num_sessions=2, env=DEFAULT_ENV)

        # Warm a prior in one run (passed by object, pooled in place),
        # persist it, then feed the *path* to the next run.
        prior = SharedTransitionPrior(app.num_requests)
        first = run_fleet(
            app, traces, fleet_env, predictor="shared-markov", shared_prior=prior
        )
        warmed_count = prior.transitions_observed
        assert warmed_count > 0
        assert first.diagnostics["shared_prior"]["transitions_observed"] == (
            warmed_count
        )
        path = tmp_path / "crowd.npz"
        prior.save(path)

        second = run_fleet(
            app, traces, fleet_env, predictor="shared-markov", shared_prior=path
        )
        # The loaded prior arrives warm and keeps pooling new traffic.
        assert (
            second.diagnostics["shared_prior"]["transitions_observed"]
            > warmed_count
        )

    def test_prior_path_with_wrong_universe_fails_fast(self, tmp_path):
        path = tmp_path / "crowd.npz"
        make_prior(n=9).save(path)
        app = ImageExplorationApp(rows=4, cols=4)  # 16 requests
        traces = [
            MouseTraceGenerator(app.layout, seed=3).generate(duration_s=2.0)
        ]
        fleet_env = FleetEnvironment(num_sessions=1, env=DEFAULT_ENV)
        with pytest.raises(ValueError, match="expected 16"):
            run_fleet(
                app, traces, fleet_env,
                predictor="shared-markov", shared_prior=path,
            )

"""Tests for the §6.1 environment configurations."""

import pytest

from repro.experiments.configs import (
    DEFAULT_ENV,
    HIGH_RESOURCE,
    LOW_RESOURCE,
    EnvironmentConfig,
    make_downlink,
    make_uplink,
)
from repro.sim.engine import Simulator
from repro.sim.link import FixedRateLink, TraceDrivenLink


class TestLatencySplit:
    def test_paper_endpoints(self):
        """§6.1: 20 ms request latency = 5 ms network + 15 ms backend;
        400 ms = 100 + 300."""
        short = DEFAULT_ENV.with_request_latency(0.020)
        assert short.network_rtt_s == pytest.approx(0.005)
        assert short.backend_delay_s == pytest.approx(0.015)
        long = DEFAULT_ENV.with_request_latency(0.400)
        assert long.network_rtt_s == pytest.approx(0.100)
        assert long.backend_delay_s == pytest.approx(0.300)

    def test_one_way_is_half_rtt(self):
        env = DEFAULT_ENV.with_request_latency(0.100)
        assert env.one_way_latency_s == pytest.approx(env.network_rtt_s / 2)

    def test_min_rtt_override(self):
        env = EnvironmentConfig(min_rtt_s=0.100, request_latency_s=0.100)
        assert env.network_rtt_s == 0.100
        assert env.one_way_latency_s == 0.050


class TestResourceSettings:
    def test_paper_values(self):
        assert LOW_RESOURCE.bandwidth_bytes_per_s == 1_500_000.0
        assert LOW_RESOURCE.cache_bytes == 10_000_000
        assert HIGH_RESOURCE.bandwidth_bytes_per_s == 15_000_000.0
        assert HIGH_RESOURCE.cache_bytes == 100_000_000

    def test_with_helpers_leave_original(self):
        env = DEFAULT_ENV.with_bandwidth(1.0e6)
        assert env.bandwidth_bytes_per_s == 1.0e6
        assert DEFAULT_ENV.bandwidth_bytes_per_s == 5_625_000.0


class TestValidation:
    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            EnvironmentConfig(bandwidth_bytes_per_s=0.0)

    def test_rejects_bad_cache(self):
        with pytest.raises(ValueError):
            EnvironmentConfig(cache_bytes=0)

    def test_rejects_unknown_cellular(self):
        with pytest.raises(ValueError):
            EnvironmentConfig(cellular="tmobile")


class TestLinkFactories:
    def test_fixed_link_by_default(self):
        sim = Simulator()
        link = make_downlink(sim, DEFAULT_ENV)
        assert isinstance(link, FixedRateLink)
        assert link.bytes_per_second == DEFAULT_ENV.bandwidth_bytes_per_s
        assert link.propagation_delay_s == DEFAULT_ENV.one_way_latency_s

    def test_cellular_link(self):
        sim = Simulator()
        env = EnvironmentConfig(cellular="verizon", min_rtt_s=0.100)
        link = make_downlink(sim, env)
        assert isinstance(link, TraceDrivenLink)
        assert link.propagation_delay_s == pytest.approx(0.050)

    def test_cellular_deterministic_per_seed(self):
        sim = Simulator()
        env = EnvironmentConfig(cellular="att")
        a = make_downlink(sim, env, seed=1)
        b = make_downlink(sim, env, seed=1)
        assert a.trace.opportunities_ms == b.trace.opportunities_ms

    def test_uplink_latency(self):
        sim = Simulator()
        uplink = make_uplink(sim, DEFAULT_ENV)
        assert uplink.latency_s == DEFAULT_ENV.one_way_latency_s

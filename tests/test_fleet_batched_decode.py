"""Fleet-batched Kalman predict/decode: byte-identity and plumbing.

The coalesced prediction tick can additionally batch the *predictor*
work: one stacked state extrapolation
(:func:`~repro.predictors.kalman.predict_gaussians`) at collect time
and one truncated-Gaussian block-mass pass per layout at apply time.
The contract is byte-identity — flipping ``batched_decode`` must not
change a single probability, matrix, schedule, or metric.
"""

import numpy as np
import pytest

from repro.experiments.configs import DEFAULT_ENV, FleetEnvironment
from repro.experiments.runner import run_fleet
from repro.predictors import GridLayout, MouseEvent
from repro.predictors.kalman import (
    KalmanClientPredictor,
    KalmanServerPredictor,
    predict_gaussians,
)
from repro.predictors.layout import BoundingBox, ChartLayout
from repro.workloads.image_app import ImageExplorationApp
from repro.workloads.mouse import MouseTraceGenerator

DELTAS = (0.05, 0.15, 0.25, 0.5)


def driven_clients(num, samples=25, seed=0):
    rng = np.random.default_rng(seed)
    clients = []
    for i in range(num):
        client = KalmanClientPredictor(deltas_s=DELTAS)
        for j in range(int(rng.integers(2, samples))):
            client.observe_event(
                j * 0.02,
                MouseEvent(float(rng.uniform(0, 500)), float(rng.uniform(0, 500))),
            )
        clients.append(client)
    return clients


class TestPredictGaussians:
    def test_matches_scalar_predict_at_bitwise(self):
        """A row of an N-row call equals the same row passed alone —
        the property the fleet's stacked predictor pass rests on."""
        clients = driven_clients(10, seed=3)
        xs = np.stack([c.filter._x for c in clients])
        Ps = np.stack([c.filter._P for c in clients])
        dts = np.linspace(0.0, 0.6, len(clients))
        qs = np.array([c.filter.q for c in clients])
        means, covs = predict_gaussians(xs, Ps, dts, qs)
        for i, c in enumerate(clients):
            mean_1, cov_1 = predict_gaussians(
                xs[i : i + 1], Ps[i : i + 1], dts[i : i + 1], qs[i : i + 1]
            )
            np.testing.assert_array_equal(means[i], mean_1[0])
            np.testing.assert_array_equal(covs[i], cov_1[0])
            # predict_at routes through the same kernel: identical at
            # the dt it derives from an absolute timestamp.
            t_abs = c.filter._last_t + dts[i]
            dt_rt = max(0.0, t_abs - c.filter._last_t)
            mean_rt, cov_rt = predict_gaussians(
                xs[i : i + 1], Ps[i : i + 1], np.array([dt_rt]), qs[i : i + 1]
            )
            mean_s, cov_s = c.filter.predict_at(t_abs)
            np.testing.assert_array_equal(mean_rt[0], mean_s)
            np.testing.assert_array_equal(cov_rt[0], cov_s)

    def test_zero_dt_adds_no_noise(self):
        clients = driven_clients(1, seed=5)
        f = clients[0].filter
        mean, cov = f.predict_at(f._last_t)
        np.testing.assert_array_equal(mean, f._x)
        np.testing.assert_array_equal(cov, f._P)


class TestBatchStates:
    def test_bit_identical_to_per_client_state(self):
        clients = driven_clients(8, seed=1)
        clients.append(KalmanClientPredictor(deltas_s=DELTAS))  # uninitialized
        now = 0.9
        batched = KalmanClientPredictor.batch_states(clients, now)
        for client, state in zip(clients, batched):
            assert client.state(now) == state

    def test_custom_filter_falls_back_to_scalar_state(self):
        class FakeFilter:
            initialized = True

        client = KalmanClientPredictor(filter_factory=FakeFilter)
        sentinel = []
        client.state = lambda t: sentinel  # type: ignore[method-assign]
        out = KalmanClientPredictor.batch_states([client], 0.0)
        assert out[0] is sentinel

    def test_subclassed_filter_falls_back_to_scalar_state(self):
        """A ConstantVelocityKalman subclass may override the dynamics;
        the stacked kernel must not silently bypass that override."""
        from repro.predictors.kalman import ConstantVelocityKalman

        class StoppingKalman(ConstantVelocityKalman):
            def predict_at(self, time_s):  # ignores velocity entirely
                mean, cov = super().predict_at(self._last_t)
                return mean, cov

        client = KalmanClientPredictor(filter_factory=StoppingKalman)
        client.observe_event(0.0, MouseEvent(10.0, 10.0))
        client.observe_event(0.02, MouseEvent(30.0, 50.0))
        out = KalmanClientPredictor.batch_states([client], 0.5)
        assert out[0] == client.state(0.5)


class TestDecodeBatch:
    def test_grid_byte_identical_to_scalar_decode(self):
        grid = GridLayout(30, 30, 17.0, 17.0, origin_x=1.0, origin_y=-3.0)
        server = KalmanServerPredictor(grid)
        clients = driven_clients(7, seed=2)
        states = [c.state(0.6) for c in clients] + [None]
        batched = server.decode_batch(states, DELTAS)
        for state, got in zip(states, batched):
            want = server.decode(state, DELTAS)
            np.testing.assert_array_equal(want.explicit_ids, got.explicit_ids)
            np.testing.assert_array_equal(want.explicit_probs, got.explicit_probs)
            np.testing.assert_array_equal(want.residual, got.residual)
            np.testing.assert_array_equal(want.deltas_s, got.deltas_s)

    def test_fractional_cells_byte_identical_to_bbox_masses(self):
        """Cell edges are bbox()'s exact floats: with fractional cell
        sizes (where origin + (c+1)*w differs from (origin + c*w) + w
        by one ULP), the factorized decode must still reproduce each
        BoundingBox.gaussian_mass bit-for-bit."""
        grid = GridLayout(25, 25, 0.7, 1.3, origin_x=0.1, origin_y=-0.3)
        dist = grid.gaussian_distribution([(8.0, 12.0)], [(1.1, 2.3)], (0.05,))
        assert len(dist.explicit_ids) > 4
        for col, rid in enumerate(dist.explicit_ids):
            want = grid.bbox(int(rid)).gaussian_mass(8.0, 12.0, 1.1, 2.3)
            assert float(dist.explicit_probs[0, col]) == want

    def test_chart_layout_falls_back_per_state(self):
        charts = ChartLayout(
            [BoundingBox(0, 0, 100, 100), BoundingBox(120, 0, 220, 100)]
        )
        server = KalmanServerPredictor(charts)
        states = [c.state(0.5) for c in driven_clients(3, seed=4)]
        batched = server.decode_batch(states, DELTAS)
        for state, got in zip(states, batched):
            want = server.decode(state, DELTAS)
            np.testing.assert_array_equal(want.explicit_probs, got.explicit_probs)


def run_kalman_fleet(batched_decode, num=4, duration=1.2):
    app = ImageExplorationApp(rows=8, cols=8)
    traces = [
        MouseTraceGenerator(app.layout, seed=40 + i).generate(duration_s=duration)
        for i in range(num)
    ]
    env = FleetEnvironment(
        num_sessions=num, env=DEFAULT_ENV, batched_decode=batched_decode
    )
    return run_fleet(app, traces, env, predictor="kalman", drain_s=0.5)


class TestStaticFleetByteIdentity:
    def test_flag_flip_changes_nothing(self):
        """Satellite acceptance: a static Kalman fleet produces
        byte-identical results under batched vs per-session decode."""
        a = run_kalman_fleet(batched_decode=False)
        b = run_kalman_fleet(batched_decode=True)
        assert b.diagnostics["prediction"]["predict_batches"] > 0
        assert b.diagnostics["prediction"]["decode_batches"] > 0
        assert a.diagnostics["prediction"]["predict_batches"] == 0
        assert a.diagnostics["prediction"]["decode_batches"] == 0
        for key in ("blocks_sent", "bytes_sent", "blocks_deferred"):
            assert a.diagnostics[key] == b.diagnostics[key], key
        sa, sb = a.summary, b.summary
        assert sa.aggregate.as_dict() == sb.aggregate.as_dict()
        assert [
            s.as_dict() if s is not None else None for s in sa.per_session
        ] == [s.as_dict() if s is not None else None for s in sb.per_session]

    def test_probability_matrices_byte_identical(self):
        """Directly compare the installed scheduler matrices: collect
        every (Pmat, Pres) install across the run in both modes."""
        captured = {}
        from repro.core.greedy import GreedyScheduler

        original = GreedyScheduler.install_distribution

        for mode in (False, True):
            log = []

            def recording(self, dist, slot, pmat, pres, _log=log):
                _log.append((pmat.tobytes(), pres.tobytes()))
                return original(self, dist, slot, pmat, pres)

            GreedyScheduler.install_distribution = recording
            try:
                run_kalman_fleet(batched_decode=mode, num=3, duration=0.8)
            finally:
                GreedyScheduler.install_distribution = original
            captured[mode] = log
        assert captured[True]  # matrices were actually installed
        assert captured[False] == captured[True]


class TestPlumbing:
    def test_snapshot_reports_decode_flag(self):
        result = run_kalman_fleet(batched_decode=True, num=2, duration=0.6)
        prediction = result.diagnostics["prediction"]
        assert prediction["batched_decode"] is True
        result = run_kalman_fleet(batched_decode=False, num=2, duration=0.6)
        assert result.diagnostics["prediction"]["batched_decode"] is False

    def test_fleet_environment_passes_flag_through(self):
        env = FleetEnvironment(num_sessions=2, batched_decode=False)
        from repro.core.session import SessionConfig

        cfg = env.fleet_config(SessionConfig())
        assert cfg.batched_decode is False

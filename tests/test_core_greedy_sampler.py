"""Sampler-mode contracts: bit-identity, statistical equivalence, perf state.

The ``sampler`` knob on :class:`~repro.core.greedy.GreedyScheduler`
selects the draw kernel.  ``reference`` and ``vectorized`` keep the
PR-3 bit-identical-schedules contract; ``fenwick`` trades the shared
RNG stream for O(log m) tail draws and promises *statistical*
equivalence instead.  Pinned here:

1. ``reference`` and ``vectorized`` emit identical block streams (the
   knob does not perturb the existing contract).
2. ``fenwick`` per-draw frequencies match the reference weight vector
   (chi-squared test over repeated draw/rollback trials).
3. All three modes land within epsilon of each other on expected
   utility for the Fig. 16 micro-workload at fixed seeds.
4. The Fenwick tree stays consistent with the incremental gain arrays
   through allocations, ``on_sent``, rollbacks, and mirror evictions.
"""

import numpy as np
import pytest
from scipy import stats

from repro.core import (
    GainTable,
    GreedyScheduler,
    LinearUtility,
    RequestDistribution,
    RingBufferCache,
)
from repro.core.greedy import SAMPLER_MODES
from repro.core.scheduler import expected_utility
from repro.experiments.figures import _micro_distribution


def make_sched(mode, n=60, nb=3, C=24, seed=0, dist=None, mirror=None):
    gains = GainTable(LinearUtility(), [nb] * n)
    sched = GreedyScheduler(
        gains, cache_blocks=C, mirror=mirror, sampler=mode, seed=seed
    )
    if dist is not None:
        sched.update_distribution(dist, 0.01)
    return sched


def skewed_dist(n, seed=0, k_explicit=10, residual=0.2, deltas=(0.05,)):
    rng = np.random.default_rng(seed)
    ids = np.sort(rng.choice(n, size=k_explicit, replace=False)).astype(np.int64)
    raw = rng.random((len(deltas), k_explicit)) + 0.05
    probs = (1.0 - residual) * raw / raw.sum(axis=1, keepdims=True)
    return RequestDistribution(
        n=n,
        deltas_s=np.asarray(deltas, dtype=float),
        explicit_ids=ids,
        explicit_probs=probs,
        residual=np.full(len(deltas), residual),
    )


class TestModeKnob:
    def test_rejects_unknown_sampler(self):
        gains = GainTable(LinearUtility(), [3] * 4)
        with pytest.raises(ValueError):
            GreedyScheduler(gains, cache_blocks=4, sampler="alias")

    @pytest.mark.parametrize("mode", SAMPLER_MODES)
    def test_every_mode_fills_the_batch(self, mode):
        dist = skewed_dist(80, seed=3, deltas=(0.05, 0.25))
        sched = make_sched(mode, n=80, C=30, seed=5, dist=dist)
        batch = sched.schedule_batch()
        assert len(batch) == 30
        assert all(0 <= b.request < 80 for b in batch)

    def test_reference_and_vectorized_streams_identical(self):
        """The knob must not perturb the PR-3 bit-identity contract."""
        for seed in range(6):
            dist = skewed_dist(100, seed=seed, deltas=(0.05, 0.15, 0.5))
            streams = {}
            for mode in ("reference", "vectorized"):
                sched = make_sched(mode, n=100, C=40, seed=seed, dist=dist)
                streams[mode] = [
                    (b.request, b.index) for b in sched.schedule_batch()
                ]
            assert streams["reference"] == streams["vectorized"]


class TestFenwickPerDrawFrequencies:
    """Chi-squared: fenwick first-draw frequencies vs reference weights."""

    TRIALS = 4000

    def _expected_weights(self, sched):
        """Reference per-draw weights at t=0: explicit ids + meta bucket."""
        m = len(sched._ids)
        weights = sched._Pmat[0, :m] * sched._gain[:m]
        meta = sched._meta_weight()
        return np.concatenate([weights, [meta]])

    def _observed(self, mode, seed=11):
        dist = skewed_dist(60, seed=2)
        sched = make_sched(mode, n=60, C=24, seed=seed, dist=dist)
        expected = self._expected_weights(sched)
        explicit_pos = {int(r): i for i, r in enumerate(sched._ids)}
        counts = np.zeros(len(expected))
        for _ in range(self.TRIALS):
            batch = sched.schedule_batch(1)
            assert len(batch) == 1
            pos = explicit_pos.get(batch[0].request, len(expected) - 1)
            counts[pos] += 1
            sched.rollback(batch)
        return counts, expected

    @pytest.mark.parametrize("mode", ["fenwick", "vectorized"])
    def test_first_draw_matches_reference_weights(self, mode):
        counts, weights = self._observed(mode)
        expected = self.TRIALS * weights / weights.sum()
        assert (expected > 5).all()  # chi-squared validity
        result = stats.chisquare(counts, expected)
        assert result.pvalue > 1e-3, (mode, result)

    def test_fenwick_uses_the_tree_on_the_first_draw(self):
        """Single-horizon distributions have no interpolation head, so
        the whole batch — including draw one — is tail-sampled."""
        dist = skewed_dist(60, seed=2)
        sched = make_sched("fenwick", n=60, C=24, seed=0, dist=dist)
        assert sched._tail_start == 0
        assert sched._fen_size == len(dist.explicit_ids)


class TestUtilityWithinEpsilon:
    def test_fig16_workload_all_modes(self):
        """Fixed-seed utility on the Fig. 16 micro-workload: every mode
        within 5% of the reference mode's mean."""
        n, C, slot = 2_000, 150, 0.01
        dist = _micro_distribution(n, seed=0)
        gains = GainTable(LinearUtility(), [20] * n)
        means = {}
        for mode in SAMPLER_MODES:
            values = []
            for seed in range(3):
                sched = GreedyScheduler(
                    gains, cache_blocks=C, sampler=mode, seed=seed
                )
                sched.update_distribution(dist, slot)
                schedule = sched.schedule_batch()
                assert len(schedule) == C
                values.append(expected_utility(schedule, dist, gains, slot))
            means[mode] = float(np.mean(values))
        ref = means["reference"]
        assert means["vectorized"] == ref  # bit-identical schedules
        assert means["fenwick"] == pytest.approx(ref, rel=0.05)


class TestFenwickTreeConsistency:
    def test_tree_tracks_gain_arrays_through_full_workout(self):
        """Allocations, sent confirmations, rollbacks, and mirror
        evictions must leave the tree equal to gain x base_p."""
        n, C = 120, 20
        rng = np.random.default_rng(9)
        gains = GainTable(LinearUtility(), rng.integers(1, 6, size=n))
        mirror = RingBufferCache(8)  # small: forces evictions
        sched = GreedyScheduler(
            gains, cache_blocks=C, mirror=mirror, sampler="fenwick", seed=4
        )
        script = np.random.default_rng(21)
        for _ in range(10):
            dense = script.random((2, n)) + 1e-9
            sched.update_distribution(
                RequestDistribution.from_dense(
                    dense, deltas_s=[0.05, 0.25], threshold=0.02
                ),
                0.01,
            )
            batch = sched.schedule_batch(int(script.integers(1, C + 3)))
            if batch and script.random() < 0.5:
                tail = min(
                    int(script.integers(0, len(batch) + 1)), sched.position
                )
                if tail:
                    sched.rollback(batch[len(batch) - tail :])
                    batch = batch[: len(batch) - tail]
            for block in batch:
                mirror.mirror_put(block.request, block.index)
                sched.on_sent(block)
            mlen = sched._mlen
            np.testing.assert_array_equal(
                np.array(sched._fen_leaf),
                sched._gain[:mlen] * sched._base_p[:mlen],
            )
            assert sched._fen_total == pytest.approx(
                float(np.sum(sched._fen_leaf)), abs=1e-12
            )

    def test_promotion_appends_leaf(self):
        dist = RequestDistribution.uniform(50, deltas_s=[0.05])
        sched = make_sched("fenwick", n=50, C=12, dist=dist)
        assert sched._fen_size == 0
        batch = sched.schedule_batch()
        assert len(batch) == 12
        # Every meta draw promoted a request into the tree.
        assert sched._fen_size == len(sched._promoted)
        assert sched._fen_size > 0

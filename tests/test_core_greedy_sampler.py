"""Sampler-mode contracts: bit-identity, statistical equivalence, perf state.

The ``sampler`` knob on :class:`~repro.core.greedy.GreedyScheduler`
selects the draw kernel.  ``reference`` and ``vectorized`` keep the
PR-3 bit-identical-schedules contract; ``fenwick`` trades the shared
RNG stream for O(k log m) draws through the horizon forest and
promises *statistical* equivalence instead.  Pinned here:

1. ``reference`` and ``vectorized`` emit identical block streams (the
   knob does not perturb the existing contract).
2. ``fenwick`` per-draw frequencies match the reference weight vector
   (chi-squared test over repeated draw/rollback trials) — for tail
   draws *and* for head draws before the last prediction horizon,
   which the horizon forest now serves without falling back to the
   O(m) vectorized kernel (asserted via ``draw_counts``).
3. All three modes land within epsilon of each other on expected
   utility for the Fig. 16 micro-workload at fixed seeds, including a
   head-dominated short-slot variant.
4. Every live tree of the forest stays consistent with the incremental
   gain arrays through allocations, ``on_sent``, rollbacks, and mirror
   evictions.
"""

import numpy as np
import pytest
from scipy import stats

from repro.core import (
    GainTable,
    GreedyScheduler,
    LinearUtility,
    RequestDistribution,
    RingBufferCache,
)
from repro.core.greedy import SAMPLER_MODES
from repro.core.scheduler import expected_utility
from repro.experiments.figures import _micro_distribution


def make_sched(mode, n=60, nb=3, C=24, seed=0, dist=None, mirror=None):
    gains = GainTable(LinearUtility(), [nb] * n)
    sched = GreedyScheduler(
        gains, cache_blocks=C, mirror=mirror, sampler=mode, seed=seed
    )
    if dist is not None:
        sched.update_distribution(dist, 0.01)
    return sched


def skewed_dist(n, seed=0, k_explicit=10, residual=0.2, deltas=(0.05,)):
    rng = np.random.default_rng(seed)
    ids = np.sort(rng.choice(n, size=k_explicit, replace=False)).astype(np.int64)
    raw = rng.random((len(deltas), k_explicit)) + 0.05
    probs = (1.0 - residual) * raw / raw.sum(axis=1, keepdims=True)
    return RequestDistribution(
        n=n,
        deltas_s=np.asarray(deltas, dtype=float),
        explicit_ids=ids,
        explicit_probs=probs,
        residual=np.full(len(deltas), residual),
    )


class TestModeKnob:
    def test_rejects_unknown_sampler(self):
        gains = GainTable(LinearUtility(), [3] * 4)
        with pytest.raises(ValueError):
            GreedyScheduler(gains, cache_blocks=4, sampler="alias")

    @pytest.mark.parametrize("mode", SAMPLER_MODES)
    def test_every_mode_fills_the_batch(self, mode):
        dist = skewed_dist(80, seed=3, deltas=(0.05, 0.25))
        sched = make_sched(mode, n=80, C=30, seed=5, dist=dist)
        batch = sched.schedule_batch()
        assert len(batch) == 30
        assert all(0 <= b.request < 80 for b in batch)

    def test_reference_and_vectorized_streams_identical(self):
        """The knob must not perturb the PR-3 bit-identity contract."""
        for seed in range(6):
            dist = skewed_dist(100, seed=seed, deltas=(0.05, 0.15, 0.5))
            streams = {}
            for mode in ("reference", "vectorized"):
                sched = make_sched(mode, n=100, C=40, seed=seed, dist=dist)
                streams[mode] = [
                    (b.request, b.index) for b in sched.schedule_batch()
                ]
            assert streams["reference"] == streams["vectorized"]


class TestFenwickPerDrawFrequencies:
    """Chi-squared: fenwick first-draw frequencies vs reference weights."""

    TRIALS = 4000

    def _expected_weights(self, sched):
        """Reference per-draw weights at t=0: explicit ids + meta bucket."""
        m = len(sched._ids)
        weights = sched._Pmat[0, :m] * sched._gain[:m]
        meta = sched._meta_weight()
        return np.concatenate([weights, [meta]])

    def _observed(self, mode, seed=11):
        dist = skewed_dist(60, seed=2)
        sched = make_sched(mode, n=60, C=24, seed=seed, dist=dist)
        expected = self._expected_weights(sched)
        explicit_pos = {int(r): i for i, r in enumerate(sched._ids)}
        counts = np.zeros(len(expected))
        for _ in range(self.TRIALS):
            batch = sched.schedule_batch(1)
            assert len(batch) == 1
            pos = explicit_pos.get(batch[0].request, len(expected) - 1)
            counts[pos] += 1
            sched.rollback(batch)
        return counts, expected

    @pytest.mark.parametrize("mode", ["fenwick", "vectorized"])
    def test_first_draw_matches_reference_weights(self, mode):
        counts, weights = self._observed(mode)
        expected = self.TRIALS * weights / weights.sum()
        assert (expected > 5).all()  # chi-squared validity
        result = stats.chisquare(counts, expected)
        assert result.pvalue > 1e-3, (mode, result)

    def test_fenwick_uses_the_tree_on_the_first_draw(self):
        """Single-horizon distributions have no interpolation head, so
        the whole batch — including draw one — is tail-sampled from a
        one-tree forest."""
        dist = skewed_dist(60, seed=2)
        sched = make_sched("fenwick", n=60, C=24, seed=0, dist=dist)
        sched.schedule_batch(1)
        assert sched._tail_start == 0
        assert sched._fen_size == len(dist.explicit_ids)
        assert len(sched._fen_trees) == 1
        assert sched.draw_counts == {"reference": 0, "vectorized": 0, "forest": 1}


class TestForestHeadDraws:
    """Chi-squared: head-draw frequencies vs reference weights.

    With a multi-horizon distribution whose last horizon lies past the
    batch end, *every* slot is a head slot (``clamp_split`` tail is
    empty) — the forest must serve those draws from multiple
    coefficient-weighted trees, never the O(m) fallback.
    """

    TRIALS = 4000

    def _expected_weights(self, sched):
        m = len(sched._ids)
        weights = sched._Pmat[0, :m] * sched._gain[:m]
        meta = sched._meta_weight()
        return np.concatenate([weights, [meta]])

    def _observed(self, mode, seed=13):
        dist = skewed_dist(60, seed=2, deltas=(0.05, 0.25))
        sched = make_sched(mode, n=60, C=24, seed=seed, dist=dist)
        expected = self._expected_weights(sched)
        explicit_pos = {int(r): i for i, r in enumerate(sched._ids)}
        counts = np.zeros(len(expected))
        for _ in range(self.TRIALS):
            batch = sched.schedule_batch(1)
            assert len(batch) == 1
            pos = explicit_pos.get(batch[0].request, len(expected) - 1)
            counts[pos] += 1
            sched.rollback(batch)
        return counts, expected, sched

    @pytest.mark.parametrize("mode", ["fenwick", "vectorized"])
    def test_first_head_draw_matches_reference_weights(self, mode):
        counts, weights, _sched = self._observed(mode)
        expected = self.TRIALS * weights / weights.sum()
        assert (expected > 5).all()  # chi-squared validity
        result = stats.chisquare(counts, expected)
        assert result.pvalue > 1e-3, (mode, result)

    def test_head_draws_never_fall_back(self):
        counts, _weights, sched = self._observed("fenwick")
        assert counts.sum() == self.TRIALS
        assert sched.draw_counts["vectorized"] == 0
        assert sched.draw_counts["forest"] == self.TRIALS
        # Every slot really is a head slot: the clamped tail is empty
        # and the first slot combines both horizons' trees.
        assert sched._tail_start == sched.C
        assert len(sched._fen_trees) == 2
        assert len(sched._slot_pairs[0]) == 2

    def test_fig16_workload_zero_fallback_draws(self):
        """Acceptance: on the Fig. 16 workload (4 horizons, 10k
        requests, 500 blocks) the fenwick sampler serves every draw —
        the 49-slot interpolation head included — from the forest."""
        from repro.experiments.figures import _micro_distribution

        n, C = 10_000, 500
        dist = _micro_distribution(n, seed=0)
        gains = GainTable(LinearUtility(), [50] * n)
        sched = GreedyScheduler(gains, cache_blocks=C, sampler="fenwick", seed=0)
        sched.update_distribution(dist, 0.01)
        assert len(sched.schedule_batch()) == C
        assert sched._tail_start == 49  # the head exists...
        assert sched.draw_counts["vectorized"] == 0  # ...yet never falls back
        assert sched.draw_counts["forest"] == C


class TestUtilityWithinEpsilon:
    @pytest.mark.parametrize(
        "slot",
        [
            pytest.param(0.01, id="fig16"),
            # Short slots keep every draw before the 0.5 s horizon: the
            # whole batch is head draws through the horizon forest.
            pytest.param(0.003, id="head-dominated"),
        ],
    )
    def test_fig16_workload_all_modes(self, slot):
        """Fixed-seed utility on the Fig. 16 micro-workload: every mode
        within 5% of the reference mode's mean."""
        n, C = 2_000, 150
        dist = _micro_distribution(n, seed=0)
        gains = GainTable(LinearUtility(), [20] * n)
        means = {}
        for mode in SAMPLER_MODES:
            values = []
            for seed in range(3):
                sched = GreedyScheduler(
                    gains, cache_blocks=C, sampler=mode, seed=seed
                )
                sched.update_distribution(dist, slot)
                schedule = sched.schedule_batch()
                assert len(schedule) == C
                values.append(expected_utility(schedule, dist, gains, slot))
            means[mode] = float(np.mean(values))
        ref = means["reference"]
        assert means["vectorized"] == ref  # bit-identical schedules
        assert means["fenwick"] == pytest.approx(ref, rel=0.05)


class TestForestConsistency:
    @staticmethod
    def _expected_base(sched, h):
        """Per-horizon mass vector the forest should carry for tree h."""
        dist = sched._dist
        m, mlen = len(sched._ids), sched._mlen
        pool = sched.gains.n - m
        uni = float(dist.residual[h]) / pool if pool > 0 else 0.0
        base = np.empty(mlen)
        base[:m] = dist.explicit_probs[h]
        base[m:] = uni
        return base

    def _check_live_trees(self, sched):
        """Every live tree must equal gain x per-horizon mass."""
        mlen = sched._mlen
        t = min(sched.position, sched.C - 1)
        live = sched._slot_pairs[t]
        assert live, "no live horizons at the current slot"
        for h, _c in live:
            expected = sched._gain[:mlen] * self._expected_base(sched, h)
            np.testing.assert_array_equal(
                np.array(sched._fen_leaves[h]), expected
            )
            assert sched._fen_totals[h] == pytest.approx(
                float(expected.sum()), abs=1e-12
            )

    def test_live_trees_track_gain_arrays_through_full_workout(self):
        """Allocations, sent confirmations, rollbacks, and mirror
        evictions must leave every *live* tree equal to gain x
        per-horizon mass (expired trees may go stale — their slot
        coefficients are zero)."""
        n, C = 120, 20
        rng = np.random.default_rng(9)
        gains = GainTable(LinearUtility(), rng.integers(1, 6, size=n))
        mirror = RingBufferCache(8)  # small: forces evictions
        sched = GreedyScheduler(
            gains, cache_blocks=C, mirror=mirror, sampler="fenwick", seed=4
        )
        script = np.random.default_rng(21)
        for _ in range(10):
            dense = script.random((2, n)) + 1e-9
            sched.update_distribution(
                RequestDistribution.from_dense(
                    dense, deltas_s=[0.05, 0.25], threshold=0.02
                ),
                0.01,
            )
            batch = sched.schedule_batch(int(script.integers(1, C + 3)))
            if batch and script.random() < 0.5:
                tail = min(
                    int(script.integers(0, len(batch) + 1)), sched.position
                )
                if tail:
                    sched.rollback(batch[len(batch) - tail :])
                    batch = batch[: len(batch) - tail]
            # A rollback swaps epochs (lazy rebuild pending); force the
            # build so the on_sent/evict updates below are exercised as
            # *incremental* maintenance against a fresh forest.
            if sched._forest_dirty:
                sched._forest_build()
            for block in batch:
                mirror.mirror_put(block.request, block.index)
                sched.on_sent(block)
            self._check_live_trees(sched)

    def test_promotion_appends_leaf_to_every_tree(self):
        dist = RequestDistribution.uniform(50, deltas_s=[0.05, 0.15])
        sched = make_sched("fenwick", n=50, C=12, dist=dist)
        batch = sched.schedule_batch()
        assert len(batch) == 12
        # Every meta draw promoted a request into the forest, and all
        # trees stayed leaf-aligned.
        assert sched._fen_size == len(sched._promoted)
        assert sched._fen_size > 0
        for h in range(len(dist.deltas_s)):
            assert len(sched._fen_leaves[h]) == sched._fen_size
            assert len(sched._fen_base[h]) == sched._fen_size

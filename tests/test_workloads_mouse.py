"""Tests for the saccade/dwell mouse trace generator."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.predictors.layout import GridLayout
from repro.workloads.mouse import MouseTraceGenerator, SaccadeDwellParams


@pytest.fixture()
def layout() -> GridLayout:
    return GridLayout(10, 10, cell_width=20.0, cell_height=20.0)


class TestGeneration:
    def test_deterministic_for_same_seed(self, layout):
        a = MouseTraceGenerator(layout, seed=5).generate(10.0, trace_id=3)
        b = MouseTraceGenerator(layout, seed=5).generate(10.0, trace_id=3)
        assert [(e.time_s, e.x, e.y, e.request) for e in a.events] == [
            (e.time_s, e.x, e.y, e.request) for e in b.events
        ]

    def test_distinct_users_differ(self, layout):
        gen = MouseTraceGenerator(layout, seed=5)
        a = gen.generate(10.0, trace_id=0)
        b = gen.generate(10.0, trace_id=1)
        assert [(e.x, e.y) for e in a.events[:50]] != [
            (e.x, e.y) for e in b.events[:50]
        ]

    def test_duration_respected(self, layout):
        trace = MouseTraceGenerator(layout, seed=1).generate(duration_s=7.5)
        assert trace.duration_s <= 7.5

    def test_positions_stay_inside_layout(self, layout):
        trace = MouseTraceGenerator(layout, seed=2).generate(15.0)
        for e in trace.events:
            assert 0.0 <= e.x <= layout.width
            assert 0.0 <= e.y <= layout.height

    def test_requests_fire_on_cell_change_only(self, layout):
        """A request id always matches the cell under the new position,
        and consecutive identical cells never re-fire."""
        trace = MouseTraceGenerator(layout, seed=3).generate(15.0)
        current = None
        for e in trace.events:
            cell = layout.request_at(e.x, e.y)
            if e.request is not None:
                assert e.request == cell
                assert e.request != current
                current = e.request

    def test_request_rate_is_bursty_but_bounded(self, layout):
        """Bursts exist (sub-10 ms gaps) but stay near the paper's
        ~32 requests/s; the mean think time is tens of milliseconds."""
        trace = MouseTraceGenerator(layout, seed=4).generate(30.0)
        thinks = trace.think_times_s()
        assert thinks.min() < 0.020
        assert 0.01 < thinks.mean() < 0.5

    def test_corpus_size_and_names(self, layout):
        traces = MouseTraceGenerator(layout, seed=1).generate_corpus(3, 5.0)
        assert [t.name for t in traces] == ["mouse-0", "mouse-1", "mouse-2"]

    def test_invalid_duration_rejected(self, layout):
        with pytest.raises(ValueError):
            MouseTraceGenerator(layout).generate(duration_s=0.0)

    def test_invalid_corpus_rejected(self, layout):
        with pytest.raises(ValueError):
            MouseTraceGenerator(layout).generate_corpus(0)


class TestParams:
    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            SaccadeDwellParams(sample_rate_hz=0.0)

    def test_negative_speed_rejected(self):
        with pytest.raises(ValueError):
            SaccadeDwellParams(speed_px_s=-1.0)

    def test_bad_pause_prob_rejected(self):
        with pytest.raises(ValueError):
            SaccadeDwellParams(long_pause_prob=1.5)


@given(seed=st.integers(0, 1_000), duration=st.floats(1.0, 20.0))
def test_property_traces_are_time_ordered_and_sampled(seed, duration):
    layout = GridLayout(6, 6, cell_width=25.0, cell_height=25.0)
    trace = MouseTraceGenerator(layout, seed=seed).generate(duration)
    times = [e.time_s for e in trace.events]
    assert all(b >= a for a, b in zip(times, times[1:]))
    # Sampling gaps never exceed one sample interval (plus float slack).
    dt = 1.0 / SaccadeDwellParams().sample_rate_hz
    assert all((b - a) <= dt * 1.01 for a, b in zip(times, times[1:]))


class TestTraceShift:
    def test_shifted_rebases_every_event(self, layout):
        from repro.workloads.trace import InteractionTrace, TraceEvent

        trace = InteractionTrace(
            [TraceEvent(0.0, 1.0, 2.0, request=5), TraceEvent(1.0, 3.0, 4.0)],
            name="t",
        )
        moved = trace.shifted(2.5)
        assert [e.time_s for e in moved.events] == [2.5, 3.5]
        assert moved.events[0].request == 5
        assert moved.position_at(3.5) == (3.0, 4.0)
        # The original timeline's position now lives offset later.
        assert moved.position_at(2.5) == trace.position_at(0.0)

    def test_shift_zero_is_identity(self, layout):
        from repro.workloads.trace import InteractionTrace, TraceEvent

        trace = InteractionTrace([TraceEvent(0.0, 0.0, 0.0)])
        assert trace.shifted(0.0) is trace
        with pytest.raises(ValueError):
            trace.shifted(-1.0)

"""Sender/scheduler bookkeeping under preemption (§5.3.2).

The scheduler's pending overlay (allocated-but-unsent blocks) and the
sender's pipeline are two views of the same set; every
``refresh() → rollback → on_sent`` interleaving must keep them equal,
or gains are computed against phantom blocks and allocations leak.
"""

import pytest

from repro.core import (
    Block,
    GainTable,
    GreedyScheduler,
    LinearUtility,
    RequestDistribution,
    RingBufferCache,
)
from test_core_sender import make_world


def make_mirrored_scheduler(n=6, nb=4, C=12, seed=0):
    gains = GainTable(LinearUtility(), [nb] * n)
    mirror = RingBufferCache(C)
    sched = GreedyScheduler(
        gains, cache_blocks=C, mirror=mirror, hedge_when_idle=False, seed=seed
    )
    return sched, mirror


def send(sched, mirror, scheduled, block_bytes=50_000):
    """What the sender does when a scheduled block hits the wire."""
    mirror.put(Block(scheduled.request, scheduled.index, block_bytes))
    sched.on_sent(scheduled)


class TestSchedulerSequences:
    def test_send_then_rollback_tail_restores_consistent_state(self):
        sched, mirror = make_mirrored_scheduler()
        sched.update_distribution(RequestDistribution.point(6, 2), 0.05)
        batch = sched.schedule_batch(4)
        send(sched, mirror, batch[0])
        sched.rollback(batch[1:])

        assert sched._pending == {}
        assert sched.position == 1
        assert sched.blocks_allocated == 1
        # The next allocation continues the mirrored prefix, not the
        # rolled-back indices.
        nxt = sched.next_block()
        assert (nxt.request, nxt.index) == (2, 1)

    def test_interleaved_rollback_and_on_sent(self):
        """Preemption can confirm and roll back out of order: blocks
        already on the wire are confirmed after the unsent tail was
        handed back."""
        sched, mirror = make_mirrored_scheduler()
        sched.update_distribution(RequestDistribution.point(6, 1), 0.05)
        batch = sched.schedule_batch(4)
        sched.rollback(batch[2:])  # refresh hands back the unsent tail
        send(sched, mirror, batch[0])  # wire confirmations land later
        send(sched, mirror, batch[1])

        assert sched._pending == {}
        assert sched.blocks_allocated == 2
        assert mirror.prefix_len(1) == 2

    def test_repeated_refresh_cycles_leave_no_residue(self):
        sched, mirror = make_mirrored_scheduler(n=8, C=16)
        for target in (0, 3, 5, 3, 7, 0):
            sched.update_distribution(RequestDistribution.point(8, target), 0.05)
            batch = sched.schedule_batch(3)
            sent, tail = batch[:1], batch[1:]
            for b in sent:
                send(sched, mirror, b)
            sched.rollback(tail)  # the refresh preempts the tail

        assert sched._pending == {}
        assert sched.blocks_allocated == 6  # one survivor per cycle
        assert sched.position == 6


class TestSenderPipelineInvariant:
    def test_pending_equals_pipeline_under_refresh_storm(self):
        """At every quiescent instant, the scheduler's pending overlay
        counts exactly the sender's unsent pipeline."""
        sim, sched, sender, backend, received, mirror = make_world(
            n=6, nb=4, fetch_delay=0.08, C=16
        )
        sender.start()

        step = [0]

        def preempt():
            sched.update_distribution(
                RequestDistribution.point(6, step[0] % 6), 0.05
            )
            sender.refresh()
            step[0] += 1

        samples = []

        def check():
            pending_total = sum(sched._pending.values())
            samples.append((pending_total, len(sender._pipeline)))
            assert pending_total == len(sender._pipeline)

        sim.every(0.06, preempt)
        sim.every(0.013, check)
        sim.run(until=1.5)

        assert len(samples) > 50
        assert sender.blocks_sent > 5
        # Total allocations = confirmed sends + still-pipelined blocks.
        assert sched.blocks_allocated == sender.blocks_sent + len(sender._pipeline)

    def test_stop_then_refresh_returns_pipeline_to_scheduler(self):
        sim, sched, sender, backend, received, mirror = make_world(fetch_delay=0.2)
        sched.update_distribution(RequestDistribution.point(4, 0), 0.05)
        sender.start()
        sim.run(until=0.1)  # fetch still in flight; pipeline is full
        assert len(sender._pipeline) > 0
        sender.stop()
        sender.refresh()  # hands the whole pipeline back, sends nothing
        assert len(sender._pipeline) == 0
        assert sum(sched._pending.values()) == 0
        assert sched.blocks_allocated == sender.blocks_sent == 0
        sim.run(until=2.0)
        assert sender.blocks_sent == 0  # stopped sender stays stopped

"""Tests for the figure-regeneration CLI."""

import pytest

from repro.cli import FIGURES, main


class TestCLI:
    def test_list_prints_every_figure(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in FIGURES:
            assert name in out

    def test_fig3_runs_and_prints_table(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "image_utility" in out

    def test_out_file_written(self, tmp_path, capsys):
        target = tmp_path / "fig3.txt"
        assert main(["fig3", "--out", str(target)]) == 0
        capsys.readouterr()
        assert "vis_utility" in target.read_text()

    def test_fig15_micro_driver(self, capsys):
        assert main(["fig15"]) == 0
        assert "runtime_ms" in capsys.readouterr().out

    def test_fleet_command_prints_per_session_and_aggregate(self, capsys):
        assert main(["fleet", "--sessions", "2", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "link fairness" in out
        assert "fleet" in out

    def test_fleet_churn_command_reports_admissions(self, capsys):
        assert (
            main(
                [
                    "fleet", "--sessions", "3", "--scale", "quick",
                    "--arrivals", "0.8", "--dwell", "3",
                    "--max-concurrent", "2", "--predictor", "shared-markov",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "admitted" in out
        assert "early hit" in out
        assert "cohort_s" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig6", "--scale", "galactic"])


class TestServeCLI:
    def test_prior_flags_require_shared_markov(self, tmp_path):
        with pytest.raises(SystemExit, match="shared-markov"):
            main(["serve", "--prior-out", str(tmp_path / "p.npz")])

    def test_serve_run_for_boots_and_exits_cleanly(self, capsys):
        """Full boot on an ephemeral port: bind, announce, drain, stats."""
        assert main(["serve", "--port", "0", "--run-for", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "serving on ws://127.0.0.1:" in out
        assert "served: 0 admitted" in out

    def test_serve_prior_out_persists_crowd_prior(self, tmp_path, capsys):
        from repro.predictors.shared import SharedTransitionPrior

        path = tmp_path / "crowd.npz"
        assert (
            main(
                [
                    "serve", "--port", "0", "--run-for", "0.2",
                    "--predictor", "shared-markov",
                    "--prior-out", str(path),
                ]
            )
            == 0
        )
        assert "prior: saved 0 transitions" in capsys.readouterr().out
        loaded = SharedTransitionPrior.load(path)
        assert loaded.transitions_observed == 0

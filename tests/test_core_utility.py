"""Tests for utility functions and per-block gains."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.utility import (
    LinearUtility,
    PiecewiseUtility,
    PowerUtility,
    ssim_image_utility,
)


class TestLinearUtility:
    def test_identity_on_unit_interval(self):
        u = LinearUtility()
        assert u(0.0) == 0.0
        assert u(0.5) == 0.5
        assert u(1.0) == 1.0

    def test_clamps(self):
        u = LinearUtility()
        assert u(-1.0) == 0.0
        assert u(2.0) == 1.0

    def test_gains_uniform(self):
        g = LinearUtility().gains(4)
        assert np.allclose(g, 0.25)

    def test_validate_passes(self):
        LinearUtility().validate()


class TestPowerUtility:
    def test_concave_exponent_front_loads_gains(self):
        g = PowerUtility(0.3).gains(10)
        assert g[0] > g[-1]
        assert (np.diff(g) <= 1e-12).all()

    def test_exponent_one_is_linear(self):
        assert np.allclose(PowerUtility(1.0).gains(5), LinearUtility().gains(5))

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            PowerUtility(0.0)

    def test_validate_passes(self):
        PowerUtility(0.5).validate()


class TestPiecewiseUtility:
    def test_interpolation(self):
        u = PiecewiseUtility([(0.0, 0.0), (0.5, 0.8), (1.0, 1.0)])
        assert u(0.25) == pytest.approx(0.4)
        assert u(0.75) == pytest.approx(0.9)

    def test_rejects_decreasing(self):
        with pytest.raises(ValueError):
            PiecewiseUtility([(0.0, 0.0), (0.5, 0.9), (1.0, 0.8)])

    def test_rejects_bad_span(self):
        with pytest.raises(ValueError):
            PiecewiseUtility([(0.1, 0.0), (1.0, 1.0)])
        with pytest.raises(ValueError):
            PiecewiseUtility([(0.0, 0.0), (0.9, 1.0)])

    def test_rejects_nonzero_origin(self):
        with pytest.raises(ValueError):
            PiecewiseUtility([(0.0, 0.1), (1.0, 1.0)])

    def test_rejects_duplicate_fractions(self):
        with pytest.raises(ValueError):
            PiecewiseUtility([(0.0, 0.0), (0.5, 0.5), (0.5, 0.6), (1.0, 1.0)])


class TestSSIMImageUtility:
    """Fig. 3's red curve: steep start, saturation."""

    def test_satisfies_contract(self):
        ssim_image_utility().validate()

    def test_quarter_blocks_give_80_percent(self):
        assert ssim_image_utility()(0.25) == pytest.approx(0.80, abs=0.02)

    def test_concave_vs_linear(self):
        """Image curve dominates linear everywhere (approximation tolerance)."""
        u, lin = ssim_image_utility(), LinearUtility()
        for x in np.linspace(0.01, 0.99, 20):
            assert u(x) >= lin(x)

    def test_first_block_carries_most_utility(self):
        g = ssim_image_utility().gains(20)
        assert g[0] > 5 * g[-1]


class TestGains:
    def test_gains_sum_to_full_utility(self):
        for u in (LinearUtility(), PowerUtility(0.4), ssim_image_utility()):
            for nb in (1, 3, 10):
                assert np.sum(u.gains(nb)) == pytest.approx(u(1.0))

    def test_gains_nonnegative(self):
        for u in (LinearUtility(), PowerUtility(0.4), ssim_image_utility()):
            assert (u.gains(17) >= -1e-12).all()

    def test_bad_block_count(self):
        with pytest.raises(ValueError):
            LinearUtility().gains(0)


@given(
    exponent=st.floats(min_value=0.05, max_value=3.0),
    nb=st.integers(min_value=1, max_value=64),
)
def test_property_power_gains_partition_unity(exponent, nb):
    g = PowerUtility(exponent).gains(nb)
    assert g.shape == (nb,)
    assert np.sum(g) == pytest.approx(1.0)
    assert (g >= -1e-12).all()


@given(
    ys=st.lists(
        st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=8
    ).map(sorted),
    nb=st.integers(min_value=1, max_value=32),
)
def test_property_piecewise_gains_match_endpoint(ys, nb):
    """gains sum to U(1) for any monotone piecewise curve anchored at 0."""
    ys = [0.0] + list(ys)
    xs = np.linspace(0.0, 1.0, len(ys))
    u = PiecewiseUtility(list(zip(xs, ys)))
    assert np.sum(u.gains(nb)) == pytest.approx(u(1.0), abs=1e-9)

"""Tests for multi-session fleet serving over shared resources."""

import pytest

from repro.backends import FileSystemBackend
from repro.core import LinearUtility, SessionConfig
from repro.encoding import ImageAsset, ProgressiveImageEncoder
from repro.fleet import FleetConfig, KhameleonFleet
from repro.metrics import collect_fleet, jain_fairness
from repro.predictors.simple import make_point_predictor, make_uniform_predictor
from repro.sim import ControlChannel, FixedRateLink, Simulator

BLOCK = 50_000


def make_fleet(
    num_sessions,
    n=6,
    nb=3,
    bw=1_000_000,
    fetch_delay=0.0,
    weights=None,
    backend_concurrency=None,
    predictor="point",
    cache_blocks=24,
):
    sim = Simulator()
    assets = {i: ImageAsset(image_id=i, size_bytes=nb * BLOCK) for i in range(n)}
    encoder = ProgressiveImageEncoder(assets, block_size_bytes=BLOCK)
    backend = FileSystemBackend(sim, encoder, fetch_delay_s=fetch_delay)
    link = FixedRateLink(sim, bytes_per_second=bw, propagation_delay_s=0.01)
    make = make_point_predictor if predictor == "point" else make_uniform_predictor
    fleet = KhameleonFleet(
        sim=sim,
        backend=backend,
        make_predictor=lambda i: make(n),
        utility=LinearUtility(),
        num_blocks=[nb] * n,
        downlink=link,
        make_uplink=lambda i: ControlChannel(sim, latency_s=0.01),
        config=FleetConfig(
            num_sessions=num_sessions,
            weights=weights,
            backend_concurrency=backend_concurrency,
            session=SessionConfig(
                cache_bytes=cache_blocks * BLOCK,
                block_bytes=BLOCK,
                initial_bandwidth_bytes_per_s=float(bw),
                # Small fetch-ahead window so pipeline fills keep
                # happening after fetches complete (exercises the
                # cached-reuse accounting, not just piggybacking).
                lookahead=4,
            ),
        ),
    )
    return sim, fleet, backend


class TestAssembly:
    def test_sessions_are_independent_stacks_over_shared_resources(self):
        sim, fleet, backend = make_fleet(3)
        assert len(fleet) == 3
        schedulers = {id(s.scheduler) for s in fleet.sessions}
        caches = {id(s.cache) for s in fleet.sessions}
        assert len(schedulers) == len(caches) == 3
        assert all(s.backend is backend for s in fleet.sessions)
        ports = {id(s.downlink) for s in fleet.sessions}
        assert len(ports) == 3  # one fair-share port each

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(num_sessions=0)
        with pytest.raises(ValueError):
            FleetConfig(num_sessions=2, weights=[1.0])

    def test_single_session_fleet_runs_at_wire_rate(self):
        """N = 1 must degenerate to the plain single-session path."""
        sim, fleet, backend = make_fleet(1)
        fleet.start()
        sim.schedule(0.0, fleet.sessions[0].client.request, 2)
        sim.run(until=1.0)
        fleet.stop()
        # 3 blocks of 50 KB at 1 MB/s arrive within ~0.2 s; the user's
        # request is served.
        summary = fleet.summary()
        assert summary.aggregate.num_served == 1
        assert fleet.sessions[0].cache.block_count(2) == 3


class TestBackendSharing:
    def test_cross_session_fetch_dedup(self):
        """One backend fetch per distinct request, fleet-wide."""
        sim, fleet, backend = make_fleet(
            4, n=6, fetch_delay=0.05, predictor="uniform"
        )
        fleet.start()
        sim.run(until=3.0)
        fleet.stop()
        # Four uniform-hedging senders want all 6 requests each; the
        # shared cache + in-flight piggybacking collapse that to at
        # most one real fetch per request.
        assert backend.stats.fetches_started <= 6
        assert fleet.shared_hit_rate() > 0.0
        assert backend.stats.piggybacked > 0  # overlapped in-flight fetches
        assert backend.stats.cache_hits > 0  # post-completion cache reuse

    def test_shared_throttle_caps_global_backend_concurrency(self):
        sim, fleet, backend = make_fleet(
            3, n=12, fetch_delay=0.3, predictor="uniform", backend_concurrency=2
        )
        assert fleet.throttle is not None
        assert all(s.throttle is fleet.throttle for s in fleet.sessions)
        fleet.start()
        peak = []
        sim.every(0.01, lambda: peak.append(backend.active_requests))
        sim.run(until=2.0)
        fleet.stop()
        assert max(peak) <= 2
        assert backend.stats.peak_concurrency <= 2


class TestLinkSharing:
    def test_concurrent_sessions_share_capacity_fairly(self):
        sim, fleet, backend = make_fleet(2, n=20, nb=6, predictor="uniform")
        fleet.start()
        sim.run(until=2.0)
        fleet.stop()
        assert fleet.link_fairness() > 0.95
        a, b = fleet.ports
        assert a.bytes_delivered > 0 and b.bytes_delivered > 0

    def test_weighted_sessions_split_by_weight(self):
        sim, fleet, backend = make_fleet(
            2, n=40, nb=6, predictor="uniform", weights=[3.0, 1.0], cache_blocks=240
        )
        fleet.start()
        sim.run(until=2.0)
        fleet.stop()
        a, b = fleet.ports
        assert a.bytes_delivered / b.bytes_delivered == pytest.approx(3.0, rel=0.25)
        # Weight-normalized fairness is still near perfect.
        assert fleet.link_fairness() > 0.9


class TestReporting:
    def test_summary_pools_outcomes_across_sessions(self):
        sim, fleet, backend = make_fleet(3)
        fleet.start()
        for i, session in enumerate(fleet.sessions):
            sim.schedule(0.1 * (i + 1), session.client.request, i)
        sim.run(until=3.0)
        fleet.stop()
        summary = fleet.summary()
        assert summary.num_sessions == 3
        assert summary.aggregate.num_requests == 3
        per = [s for s in summary.per_session if s is not None]
        assert sum(s.num_requests for s in per) == 3
        rows = summary.rows()
        assert rows[-1]["session"] == "fleet"
        assert len(rows) == 4

    def test_report_diagnostics(self):
        sim, fleet, backend = make_fleet(2, predictor="uniform")
        fleet.start()
        sim.run(until=1.0)
        fleet.stop()
        report = fleet.report()
        assert report["sessions"] == 2
        assert report["blocks_sent"] == sum(
            s.sender.blocks_sent for s in fleet.sessions
        )
        assert 0.0 <= report["shared_hit_rate"] <= 1.0
        assert 0.0 < report["link_fairness"] <= 1.0

    def test_collect_fleet_skips_empty_sessions(self):
        sim, fleet, backend = make_fleet(2)
        fleet.start()
        sim.schedule(0.1, fleet.sessions[0].client.request, 1)
        sim.run(until=2.0)
        fleet.stop()
        summary = collect_fleet(fleet.outcomes_by_session())
        assert summary.per_session[1] is None
        assert summary.aggregate.num_requests == 1

    def test_collect_fleet_rejects_all_empty(self):
        with pytest.raises(ValueError):
            collect_fleet([[], []])


class TestJainFairness:
    def test_even_allocation_is_one(self):
        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_hog_is_one_over_n(self):
        assert jain_fairness([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            jain_fairness([])

"""Tests for the deadline/retry/backoff fetch path (repro.backends.retry)."""

import asyncio

import pytest

from repro.backends.base import BackendFetchError, BackendWrapper
from repro.backends.filesystem import FileSystemBackend
from repro.backends.retry import RetryingBackend, RetryPolicy
from repro.clock import WallClock
from repro.encoding.naive import SingleBlockEncoder
from repro.sim.engine import Simulator


class FailNTimes(BackendWrapper):
    """Raise BackendFetchError for the first ``failures`` fetch calls."""

    def __init__(self, inner, failures):
        super().__init__(inner)
        self.remaining = failures
        self.attempts_seen = 0

    def fetch(self, request, on_complete):
        self.attempts_seen += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise BackendFetchError(request, "transient test failure")
        self.inner.fetch(request, on_complete)


def make_stack(clock, failures, policy):
    encoder = SingleBlockEncoder(lambda r: 100)
    inner = FileSystemBackend(clock, encoder, fetch_delay_s=0.0)
    flaky = FailNTimes(inner, failures)
    return flaky, RetryingBackend(flaky, policy)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(deadline_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            base_backoff_s=0.1, backoff_factor=2.0, max_backoff_s=0.3, jitter=0.0
        )
        assert policy.backoff_s(0, 1) == pytest.approx(0.1)
        assert policy.backoff_s(0, 2) == pytest.approx(0.2)
        assert policy.backoff_s(0, 3) == pytest.approx(0.3)  # capped, not 0.4
        assert policy.backoff_s(0, 9) == pytest.approx(0.3)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_backoff_s=1.0, max_backoff_s=1.0, jitter=0.25)
        for request in range(5):
            for attempt in range(1, 4):
                first = policy.backoff_s(request, attempt)
                again = policy.backoff_s(request, attempt)
                assert first == again  # crc32-derived, not a live RNG
                assert 0.75 <= first <= 1.25

    def test_jitter_actually_spreads(self):
        policy = RetryPolicy(base_backoff_s=1.0, jitter=0.25)
        delays = {policy.backoff_s(r, 1) for r in range(20)}
        assert len(delays) > 10


class TestRetryingBackend:
    def test_retries_until_success(self):
        sim = Simulator()
        policy = RetryPolicy(max_attempts=4, base_backoff_s=0.05, jitter=0.0)
        flaky, backend = make_stack(sim, failures=2, policy=policy)
        got = []
        backend.fetch(0, got.append)
        sim.run()
        assert len(got) == 1
        assert flaky.attempts_seen == 3  # two failures + the success
        assert backend.fetches_failed == 2
        assert backend.retries_scheduled == 2
        assert backend.fetches_abandoned == 0
        # Third attempt lands after both backoffs: 0.05 + 0.10.
        assert sim.now == pytest.approx(0.15)

    def test_abandons_after_attempt_budget(self):
        sim = Simulator()
        policy = RetryPolicy(max_attempts=2, base_backoff_s=0.01, jitter=0.0)
        flaky, backend = make_stack(sim, failures=10, policy=policy)
        got = []
        backend.fetch(0, got.append)
        sim.run()
        assert got == []  # the callback never fires — degraded, not wedged
        assert backend.fetches_failed == 2
        assert backend.retries_scheduled == 1
        assert backend.fetches_abandoned == 1

    def test_abandons_past_deadline(self):
        sim = Simulator()
        # The first retry's backoff alone would blow the deadline.
        policy = RetryPolicy(
            max_attempts=10, base_backoff_s=0.5, deadline_s=0.1, jitter=0.0
        )
        flaky, backend = make_stack(sim, failures=10, policy=policy)
        got = []
        backend.fetch(0, got.append)
        sim.run()
        assert got == []
        assert backend.fetches_failed == 1
        assert backend.retries_scheduled == 0
        assert backend.fetches_abandoned == 1

    def test_clean_fetch_is_pass_through(self):
        sim = Simulator()
        flaky, backend = make_stack(sim, failures=0, policy=RetryPolicy())
        got = []
        backend.fetch(3, got.append)
        sim.run()
        assert len(got) == 1
        assert backend.snapshot() == {
            "fetches_failed": 0,
            "retries_scheduled": 0,
            "fetches_abandoned": 0,
        }

    def test_same_policy_runs_on_the_wall_clock(self):
        """The retry path lives on the Clock seam: the identical policy
        and fault schedule produce the identical counters under asyncio
        real time as under the discrete-event simulator."""
        policy = RetryPolicy(max_attempts=4, base_backoff_s=0.01, jitter=0.1)

        sim = Simulator()
        _, sim_backend = make_stack(sim, failures=2, policy=policy)
        sim_got = []
        sim_backend.fetch(0, sim_got.append)
        sim.run()

        async def main():
            clock = WallClock(asyncio.get_running_loop())
            _, backend = make_stack(clock, failures=2, policy=policy)
            got = []
            backend.fetch(0, got.append)
            await asyncio.sleep(0.3)
            return got, backend.snapshot()

        wall_got, wall_snapshot = asyncio.run(asyncio.wait_for(main(), timeout=30.0))
        assert len(sim_got) == len(wall_got) == 1
        assert wall_snapshot == sim_backend.snapshot()

"""Tests for the image exploration application bundle."""

import pytest

from repro.sim.engine import Simulator
from repro.workloads.image_app import ImageExplorationApp, SyntheticImageStore
from repro.workloads.mouse import MouseTraceGenerator


class TestSyntheticImageStore:
    def test_sizes_in_paper_range(self):
        store = SyntheticImageStore(200)
        for asset in store.assets.values():
            assert 1_300_000 <= asset.size_bytes <= 2_000_000

    def test_deterministic(self):
        a = SyntheticImageStore(50, seed=9)
        b = SyntheticImageStore(50, seed=9)
        assert [x.size_bytes for x in a.assets.values()] == [
            x.size_bytes for x in b.assets.values()
        ]

    def test_different_seeds_differ(self):
        a = SyntheticImageStore(50, seed=1)
        b = SyntheticImageStore(50, seed=2)
        assert [x.size_bytes for x in a.assets.values()] != [
            x.size_bytes for x in b.assets.values()
        ]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SyntheticImageStore(0)

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            SyntheticImageStore(5, min_bytes=100, max_bytes=50)


class TestImageExplorationApp:
    def test_block_counts_match_encoder(self):
        app = ImageExplorationApp(rows=5, cols=5)
        blocks = app.num_blocks
        assert len(blocks) == 25
        for request, nb in enumerate(blocks):
            assert nb == app.encoder.num_blocks(request)
            # 1.3-2 MB at 50 KB blocks: 26-40 blocks.
            assert 26 <= nb <= 40

    def test_mean_response_bytes(self):
        app = ImageExplorationApp(rows=4, cols=4)
        mean = app.mean_response_bytes()
        assert 1_300_000 <= mean <= 2_000_000

    def test_backend_encodes_matching_blocks(self):
        sim = Simulator()
        app = ImageExplorationApp(rows=3, cols=3)
        backend = app.make_backend(sim, fetch_delay_s=0.05)
        got = []
        backend.fetch(4, got.append)
        sim.run()
        assert len(got) == 1
        assert got[0].num_blocks == app.num_blocks[4]

    def test_predictor_factory_names(self):
        app = ImageExplorationApp(rows=3, cols=3)
        trace = MouseTraceGenerator(app.layout, seed=0).generate(2.0)
        assert app.make_predictor("kalman").name == "kalman"
        assert app.make_predictor("uniform").name == "uniform"
        assert app.make_predictor("point").name == "point"
        assert app.make_predictor("oracle", trace=trace).name == "oracle"

    def test_oracle_requires_trace(self):
        app = ImageExplorationApp(rows=3, cols=3)
        with pytest.raises(ValueError):
            app.make_predictor("oracle")

    def test_unknown_predictor_rejected(self):
        app = ImageExplorationApp(rows=3, cols=3)
        with pytest.raises(ValueError):
            app.make_predictor("psychic")

    def test_oracle_reads_future_position(self):
        """The oracle's distribution at time t concentrates on the cell
        the trace visits at t + delta."""
        app = ImageExplorationApp(rows=4, cols=4)
        trace = MouseTraceGenerator(app.layout, seed=1).generate(5.0)
        predictor = app.make_predictor("oracle", trace=trace)
        t = 2.0
        dist = predictor.server.decode(t, predictor.deltas_s)
        x, y = trace.position_at(t + predictor.deltas_s[0])
        expected = app.layout.request_at(x, y)
        assert dist.prob_of(expected, predictor.deltas_s[0]) > 0.5

"""Property tests: the sharded crowd prior merges as a CRDT.

A sharded fleet runs one ``SharedTransitionPrior`` replica per worker
and exchanges ``PriorDelta`` snapshots.  Correctness of the whole
sharding subsystem rests on the merge being a join-semilattice: deltas
may arrive in any order, more than once, or batched differently at
every replica, and the pooled table must still converge to the exact
elementwise sum of every origin's local contribution.  These tests
state that contract directly:

* merge **commutativity** and **associativity** (any permutation, any
  grouping of deltas yields the same pooled table);
* merge **idempotence** (replaying a delta applies nothing);
* **delta-then-merge ≡ full-state merge** (incremental sync via
  ``delta_since(version_vector)`` lands on the same state as shipping
  the full snapshot once at the end).
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.predictors.shared import PriorDelta, SharedTransitionPrior

N = 7  # request-universe size: small enough that rows collide often

# One origin's workload: a list of (prev, nxt) transitions.
observations = st.lists(
    st.tuples(st.integers(0, N - 1), st.integers(0, N - 1)), max_size=40
)


def replica(origin, obs):
    prior = SharedTransitionPrior(N)
    prior.enable_sharding(origin)
    for prev, nxt in obs:
        prior.observe(prev, nxt)
    return prior


def canonical(counts, mass, total):
    """Order-free view of a pooled table (dicts remember insertion)."""
    return (
        tuple(
            (prev, tuple(sorted((nxt, c) for nxt, c in row.items() if c)))
            for prev, row in sorted(counts.items())
            if any(row.values())
        ),
        tuple(sorted((prev, m) for prev, m in mass.items() if m)),
        total,
    )


def table(prior):
    """Canonical pooled state: counts, row masses, and the total."""
    return canonical(prior._counts, prior._row_mass, prior.transitions_observed)


def ground_truth(*workloads):
    counts: dict[int, dict[int, int]] = {}
    for obs in workloads:
        for prev, nxt in obs:
            row = counts.setdefault(prev, {})
            row[nxt] = row.get(nxt, 0) + 1
    mass = {prev: sum(row.values()) for prev, row in counts.items()}
    return canonical(counts, mass, sum(mass.values()))


class TestMergeSemilattice:
    @given(a=observations, b=observations, c=observations)
    @settings(max_examples=60, deadline=None)
    def test_any_permutation_converges(self, a, b, c):
        """Commutative + associative: order of merges never matters."""
        deltas = [
            replica(origin, obs).delta_since()
            for origin, obs in [("a", a), ("b", b), ("c", c)]
        ]
        states = set()
        for perm in itertools.permutations(deltas):
            pool = SharedTransitionPrior(N)
            for delta in perm:
                pool.merge_delta(delta)
            states.add(table(pool))
        assert len(states) == 1
        assert table(pool) == ground_truth(a, b, c)

    @given(a=observations, b=observations)
    @settings(max_examples=60, deadline=None)
    def test_grouping_never_matters(self, a, b):
        """Associativity via an intermediate replica: merging a shard
        that already absorbed a peer equals merging both directly."""
        ra, rb = replica("a", a), replica("b", b)
        # rb absorbs a's contribution, then a pool merges rb's local
        # delta AND a relay of a's delta (rb re-shares what it merged).
        rb.merge_delta(ra.delta_since())
        pool = SharedTransitionPrior(N)
        pool.merge_delta(rb.delta_since())  # rb's own local counts only
        pool.merge_delta(ra.delta_since())
        direct = SharedTransitionPrior(N)
        direct.merge_delta(ra.delta_since())
        direct.merge_delta(rb.delta_since())
        assert table(pool) == table(direct) == ground_truth(a, b)

    @given(a=observations, b=observations)
    @settings(max_examples=60, deadline=None)
    def test_idempotent_replay(self, a, b):
        delta_a = replica("a", a).delta_since()
        delta_b = replica("b", b).delta_since()
        pool = SharedTransitionPrior(N)
        pool.merge_delta(delta_a)
        pool.merge_delta(delta_b)
        once = table(pool)
        assert pool.merge_delta(delta_a) == 0
        assert pool.merge_delta(delta_b) == 0
        assert table(pool) == once

    @given(obs=observations)
    @settings(max_examples=60, deadline=None)
    def test_own_delta_is_a_noop(self, obs):
        rep = replica("a", obs)
        before = table(rep)
        assert rep.merge_delta(rep.delta_since()) == 0
        assert table(rep) == before


class TestDeltaEqualsFullState:
    @given(
        phases=st.lists(observations, min_size=1, max_size=4),
        peer=observations,
    )
    @settings(max_examples=60, deadline=None)
    def test_incremental_sync_matches_full_merge(self, phases, peer):
        """delta_since(vv) after each phase ≡ one full delta at the end."""
        src = SharedTransitionPrior(N)
        src.enable_sharding("src")
        incremental = replica("peer", peer)
        vv: dict[int, int] = {}
        for obs in phases:
            for prev, nxt in obs:
                src.observe(prev, nxt)
            delta = src.delta_since(vv)
            incremental.merge_delta(delta)
            vv = src.local_version_vector()
        full = replica("peer", peer)
        full.merge_delta(src.delta_since())
        assert table(incremental) == table(full)
        assert table(full) == ground_truth(peer, *phases)

    @given(a=observations, b=observations)
    @settings(max_examples=40, deadline=None)
    def test_stale_delta_subsumed_by_newer(self, a, b):
        """A newer snapshot of a row subsumes any older one: applying
        old-then-new equals applying new alone."""
        src = SharedTransitionPrior(N)
        src.enable_sharding("src")
        for prev, nxt in a:
            src.observe(prev, nxt)
        old = src.delta_since()
        for prev, nxt in b:
            src.observe(prev, nxt)
        new = src.delta_since()
        both = SharedTransitionPrior(N)
        both.merge_delta(old)
        both.merge_delta(new)
        just_new = SharedTransitionPrior(N)
        just_new.merge_delta(new)
        assert table(both) == table(just_new)
        # ... and the reverse order: new-then-old skips the stale rows.
        reverse = SharedTransitionPrior(N)
        reverse.merge_delta(new)
        reverse.merge_delta(old)
        assert table(reverse) == table(just_new)


class TestShardingMechanics:
    def test_delta_requires_enable_sharding(self):
        prior = SharedTransitionPrior(N)
        import pytest

        with pytest.raises(ValueError, match="enable_sharding"):
            prior.delta_since()

    def test_origin_rename_rejected(self):
        import pytest

        prior = SharedTransitionPrior(N)
        prior.enable_sharding("a")
        prior.enable_sharding("a")  # same name is fine
        with pytest.raises(ValueError, match="already sharded"):
            prior.enable_sharding("b")

    def test_universe_mismatch_rejected(self):
        import pytest

        delta = PriorDelta(origin="a", n=N + 1)
        with pytest.raises(ValueError, match="requests"):
            SharedTransitionPrior(N).merge_delta(delta)

    def test_non_monotone_delta_rejected(self):
        import pytest

        pool = SharedTransitionPrior(N)
        pool.merge_delta(PriorDelta("a", N, rows={0: {1: 3}}, row_mass={0: 3}))
        shrunk = PriorDelta("a", N, rows={0: {1: 2}}, row_mass={0: 4})
        with pytest.raises(ValueError, match="non-monotone"):
            pool.merge_delta(shrunk)

    def test_warm_start_counts_excluded_from_delta(self, tmp_path):
        """Every shard loads the same warm-start file; re-broadcasting
        those counts would double them at every peer."""
        seed = SharedTransitionPrior(N)
        seed.observe(0, 1)
        seed.observe(0, 1)
        path = tmp_path / "prior.npz"
        seed.save(path)
        shard = SharedTransitionPrior.load(path, n=N)
        shard.enable_sharding("w0")
        shard.observe(2, 3)
        delta = shard.delta_since()
        assert delta.rows == {2: {3: 1}}
        assert delta.row_mass == {2: 1}

    def test_merge_invalidates_row_cache(self):
        shard = SharedTransitionPrior(N)
        shard.enable_sharding("w0")
        shard.observe(0, 1)
        ids, probs = shard.row(0)
        assert ids.tolist() == [1] and probs.tolist() == [1.0]
        shard.merge_delta(PriorDelta("w1", N, rows={0: {2: 1}}, row_mass={0: 1}))
        ids, probs = shard.row(0)
        assert ids.tolist() == [1, 2]
        assert probs.tolist() == [0.5, 0.5]

    def test_delta_is_empty_when_nothing_new(self):
        shard = SharedTransitionPrior(N)
        shard.enable_sharding("w0")
        assert not shard.delta_since()
        shard.observe(0, 1)
        assert shard.delta_since()
        assert not shard.delta_since(shard.local_version_vector())

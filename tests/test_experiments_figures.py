"""Tests for the per-figure sweep drivers (tiny scales)."""

import pytest

from repro.experiments.figures import (
    ImageExperimentScale,
    fig3_utility_curves,
    fig15_ilp_runtime,
    fig16_greedy_runtime,
    fig17_greedy_vs_ilp,
    fig6_bandwidth_cache,
)

TINY = ImageExperimentScale(rows=6, cols=6, trace_duration_s=4.0, num_traces=1)


class TestScale:
    def test_paper_scale_matches_paper(self):
        paper = ImageExperimentScale.paper()
        assert paper.rows * paper.cols == 10_000
        assert paper.trace_duration_s == 180.0
        assert paper.num_traces == 14

    def test_build(self):
        app, traces = TINY.build()
        assert app.num_requests == 36
        assert len(traces) == 1


class TestFig3:
    def test_rows_and_endpoints(self):
        rows = fig3_utility_curves(samples=11)
        assert len(rows) == 11
        assert rows[0]["image_utility"] == 0.0
        assert rows[-1]["vis_utility"] == 1.0


class TestFig6Driver:
    def test_tiny_sweep_has_row_per_cell(self):
        rows = fig6_bandwidth_cache(
            scale=TINY,
            bandwidths=(5_625_000.0,),
            caches=(10_000_000,),
            systems=("khameleon", "baseline"),
        )
        assert len(rows) == 2
        systems = {r["system"] for r in rows}
        assert systems == {"khameleon", "baseline"}
        for row in rows:
            assert row["bandwidth_mbps"] == pytest.approx(5.625)
            assert 0.0 <= row["cache_hit_%"] <= 100.0


class TestSchedulerMicrobenchDrivers:
    def test_fig15_rows(self):
        rows = fig15_ilp_runtime(
            num_requests=(5,), cache_blocks=(10,), blocks_per_request=(5,)
        )
        assert len(rows) == 1
        assert rows[0]["optimal"]
        assert rows[0]["runtime_ms"] > 0

    def test_fig16_rows_fill_batches(self):
        rows = fig16_greedy_runtime(
            num_requests=(100,), cache_blocks=(50,), blocks_per_request=(10,)
        )
        assert rows[0]["blocks_scheduled"] == 50
        assert 0.0 < rows[0]["materialized_frac"] <= 1.0

    def test_fig17_greedy_close_to_ilp(self):
        rows = fig17_greedy_vs_ilp(num_requests=(5,), cache_blocks=10,
                                   blocks_per_request=5)
        row = rows[0]
        assert row["ilp_utility"] >= row["greedy_utility"] * 0.95
        assert row["greedy_ms"] < row["ilp_ms"]

"""Tests for bandwidth estimation (§5.4)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import HarmonicMeanEstimator, ReceiveRateMonitor, Simulator


class TestHarmonicMeanEstimator:
    def test_initial_estimate_before_reports(self):
        est = HarmonicMeanEstimator(1_000_000)
        assert est.estimate == 1_000_000

    def test_single_report_dominates(self):
        est = HarmonicMeanEstimator(1_000_000)
        est.report(500_000)
        assert est.estimate == 500_000

    def test_harmonic_mean_of_window(self):
        est = HarmonicMeanEstimator(1.0, window=2)
        est.report(100.0)
        est.report(50.0)
        # harmonic mean of 100 and 50 = 2/(1/100+1/50) = 66.67
        assert est.estimate == pytest.approx(200.0 / 3.0)

    def test_window_slides(self):
        est = HarmonicMeanEstimator(1.0, window=2)
        for rate in (10.0, 100.0, 100.0):
            est.report(rate)
        assert est.estimate == pytest.approx(100.0)

    def test_default_window_is_five(self):
        est = HarmonicMeanEstimator(1.0)
        for rate in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
            est.report(rate)
        assert est.report_count == 5

    def test_nonpositive_reports_ignored(self):
        est = HarmonicMeanEstimator(42.0)
        est.report(0.0)
        est.report(-5.0)
        assert est.estimate == 42.0
        assert est.report_count == 0

    def test_cap_applies(self):
        est = HarmonicMeanEstimator(1_000_000, cap_bytes_per_s=100.0)
        assert est.estimate == 100.0
        est.report(1_000_000.0)
        assert est.estimate == 100.0

    def test_harmonic_mean_is_conservative(self):
        """Harmonic mean <= arithmetic mean: slow samples dominate."""
        est = HarmonicMeanEstimator(1.0)
        rates = [10.0, 1000.0, 1000.0, 1000.0, 1000.0]
        for r in rates:
            est.report(r)
        assert est.estimate < sum(rates) / len(rates)

    def test_validation(self):
        with pytest.raises(ValueError):
            HarmonicMeanEstimator(0.0)
        with pytest.raises(ValueError):
            HarmonicMeanEstimator(1.0, window=0)
        with pytest.raises(ValueError):
            HarmonicMeanEstimator(1.0, cap_bytes_per_s=0.0)


class TestReceiveRateMonitor:
    def test_publishes_measured_rate(self):
        sim = Simulator()
        published = []
        mon = ReceiveRateMonitor(sim, interval_s=1.0, publish=published.append)
        sim.schedule(0.2, mon.on_bytes, 500)
        sim.schedule(0.7, mon.on_bytes, 500)
        sim.run(until=1.0)
        assert published == [pytest.approx(1000.0)]

    def test_idle_interval_not_published(self):
        sim = Simulator()
        published = []
        ReceiveRateMonitor(sim, interval_s=1.0, publish=published.append)
        sim.run(until=3.0)
        assert published == []

    def test_counter_resets_each_interval(self):
        sim = Simulator()
        published = []
        mon = ReceiveRateMonitor(sim, interval_s=1.0, publish=published.append)
        sim.schedule(0.5, mon.on_bytes, 100)
        sim.schedule(1.5, mon.on_bytes, 300)
        sim.run(until=2.0)
        assert published == [pytest.approx(100.0), pytest.approx(300.0)]

    def test_stop_halts_publishing(self):
        sim = Simulator()
        published = []
        mon = ReceiveRateMonitor(sim, interval_s=1.0, publish=published.append)
        mon.on_bytes(100)
        mon.stop()
        sim.run(until=5.0)
        assert published == []

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            ReceiveRateMonitor(Simulator(), interval_s=0.0, publish=lambda r: None)


@given(rates=st.lists(st.floats(min_value=0.1, max_value=1e9), min_size=1, max_size=20))
def test_property_estimate_bounded_by_min_max(rates):
    """Harmonic mean of the window lies within [min, max] of the window."""
    est = HarmonicMeanEstimator(1.0, window=5)
    for r in rates:
        est.report(r)
    window = rates[-5:]
    assert min(window) * (1 - 1e-9) <= est.estimate <= max(window) * (1 + 1e-9)

"""Tests for the greedy scheduler (Listing 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    GainTable,
    GreedyScheduler,
    LinearUtility,
    RequestDistribution,
    RingBufferCache,
    ssim_image_utility,
)


def make_scheduler(
    n=10, nb=4, C=8, mirror=None, meta=True, seed=0, utility=None, hedge=True
):
    gains = GainTable(utility or LinearUtility(), [nb] * n)
    return GreedyScheduler(
        gains,
        cache_blocks=C,
        mirror=mirror,
        meta_request=meta,
        hedge_when_idle=hedge,
        seed=seed,
    )


class TestBasicAllocation:
    def test_point_distribution_gets_all_early_blocks(self):
        sched = make_scheduler(n=10, nb=4, C=8)
        sched.update_distribution(RequestDistribution.point(10, 3), 0.01)
        batch = sched.schedule_batch(4)
        assert all(b.request == 3 for b in batch)
        assert [b.index for b in batch] == [0, 1, 2, 3]

    def test_completed_request_yields_to_idle_hedging(self):
        """§3.4: after the point-distribution target is fully scheduled,
        remaining bandwidth pushes random other requests."""
        sched = make_scheduler(n=10, nb=4, C=8)
        sched.update_distribution(RequestDistribution.point(10, 3), 0.01)
        batch = sched.schedule_batch()  # full batch of 8
        from_target = [b for b in batch if b.request == 3]
        others = [b for b in batch if b.request != 3]
        assert len(from_target) == 4
        assert len(others) == 4  # idle hedging filled the rest
        seen = set()
        for b in batch:
            assert (b.request, b.index) not in seen
            seen.add((b.request, b.index))

    def test_idle_hedging_can_be_disabled(self):
        sched = make_scheduler(n=10, nb=4, C=8, hedge=False)
        sched.update_distribution(RequestDistribution.point(10, 3), 0.01)
        batch = sched.schedule_batch()
        assert len(batch) == 4
        assert sched.next_block() is None

    def test_uniform_distribution_spreads_blocks(self):
        sched = make_scheduler(n=20, nb=4, C=16, seed=1)
        sched.update_distribution(RequestDistribution.uniform(20), 0.01)
        batch = sched.schedule_batch()
        assert len(batch) == 16
        assert len({b.request for b in batch}) > 4  # hedged across many

    def test_first_blocks_before_later_blocks_under_concave_utility(self):
        """Concave utility: block 0 of B beats block 3 of A eventually."""
        sched = make_scheduler(n=4, nb=8, C=16, utility=ssim_image_utility(), seed=2)
        dist = RequestDistribution.from_dense(
            np.array([[0.5, 0.5, 0.0, 0.0]]), deltas_s=[0.05]
        )
        sched.update_distribution(dist, 0.01)
        batch = sched.schedule_batch()
        by_request = {}
        for b in batch:
            by_request.setdefault(b.request, []).append(b.index)
        # Both likely requests should receive blocks (hedging).
        assert 0 in by_request and 1 in by_request

    def test_indices_are_contiguous_prefixes(self):
        sched = make_scheduler(n=6, nb=6, C=18, seed=3)
        dist = RequestDistribution.from_dense(
            np.array([[0.4, 0.3, 0.2, 0.05, 0.03, 0.02]]), deltas_s=[0.05]
        )
        sched.update_distribution(dist, 0.01)
        batch = sched.schedule_batch()
        by_request = {}
        for b in batch:
            by_request.setdefault(b.request, []).append(b.index)
        for indices in by_request.values():
            assert indices == list(range(len(indices)))


class TestBatchReset:
    def test_resets_after_full_batch(self):
        sched = make_scheduler(n=10, nb=10, C=4)
        sched.update_distribution(RequestDistribution.point(10, 2), 0.01)
        first = sched.schedule_batch()
        assert sched.position == 4
        second_first_block = sched.next_block()
        assert sched.position == 1  # new batch started
        assert sched.schedules_generated == 1
        assert second_first_block is not None

    def test_batch_reset_without_mirror_restarts_indices(self):
        """Without a mirror the scheduler forgets, as in Listing 1."""
        sched = make_scheduler(n=10, nb=10, C=4, mirror=None)
        sched.update_distribution(RequestDistribution.point(10, 2), 0.01)
        sched.schedule_batch()
        nxt = sched.next_block()
        assert nxt.request == 2
        assert nxt.index == 0  # B reset; no cross-batch memory

    def test_batch_reset_with_mirror_continues_prefix(self):
        """With the mirror, the next batch extends what the client holds."""
        mirror = RingBufferCache(4)
        sched = make_scheduler(n=10, nb=10, C=4, mirror=mirror)
        sched.update_distribution(RequestDistribution.point(10, 2), 0.01)
        for block in sched.schedule_batch():
            mirror.mirror_put(block.request, block.index)
            sched.on_sent(block)  # sender confirmation contract
        nxt = sched.next_block()
        assert nxt.request == 2
        assert nxt.index == 4  # continues past the 4 mirrored blocks


class TestMirrorIntegration:
    def test_fully_cached_request_gets_zero_weight(self):
        mirror = RingBufferCache(8)
        sched = make_scheduler(n=5, nb=2, C=8, mirror=mirror)
        for i in range(2):
            mirror.mirror_put(1, i)
        sched.update_distribution(RequestDistribution.point(5, 1), 0.01)
        block = sched.next_block()
        # Request 1 is complete; with zero residual there is nothing to send.
        assert block is None or block.request != 1


class TestDistributionUpdates:
    def test_update_mid_batch_keeps_position(self):
        sched = make_scheduler(n=10, nb=8, C=8)
        sched.update_distribution(RequestDistribution.point(10, 1), 0.01)
        sched.schedule_batch(3)
        assert sched.position == 3
        sched.update_distribution(RequestDistribution.point(10, 7), 0.01)
        assert sched.position == 3  # §5.3.2: sent slots unchanged
        batch = sched.schedule_batch(3)
        assert all(b.request == 7 for b in batch)

    def test_rejects_wrong_size_distribution(self):
        sched = make_scheduler(n=10)
        with pytest.raises(ValueError):
            sched.update_distribution(RequestDistribution.uniform(5), 0.01)

    def test_rejects_bad_slot_duration(self):
        sched = make_scheduler(n=10)
        with pytest.raises(ValueError):
            sched.update_distribution(RequestDistribution.uniform(10), 0.0)


class TestRollback:
    def test_rollback_rewinds_position_and_counts(self):
        sched = make_scheduler(n=10, nb=8, C=8)
        sched.update_distribution(RequestDistribution.point(10, 1), 0.01)
        batch = sched.schedule_batch(4)
        sched.rollback(batch[2:])
        assert sched.position == 2
        nxt = sched.next_block()
        assert nxt.request == 1
        assert nxt.index == 2  # continues after the two kept blocks

    def test_rollback_unpromotes_meta_sampled_requests(self):
        """A promotion backed only by rolled-back slots must be undone.

        Under a uniform distribution every allocation comes from the
        meta pool and promotes its request; rolling the whole batch
        back must return them to the pool instead of leaking individual
        probability weights until the next batch reset.
        """
        sched = make_scheduler(n=100, nb=4, C=8, meta=True)
        sched.update_distribution(RequestDistribution.uniform(100), 0.01)
        batch = sched.schedule_batch(4)
        assert sched.materialized_fraction > 0  # promotions happened
        sched.rollback(batch)
        assert sched.position == 0
        assert sched.blocks_allocated == 0
        assert sched.materialized_fraction == 0  # fails if promotions leak

    def test_rollback_keeps_promotion_backed_by_sent_blocks(self):
        """A promoted request whose first block already reached the
        wire (mirror-held) keeps its promotion when a later allocation
        is rolled back: the client holds a prefix, so the concrete
        next-block gain must survive."""
        from repro.core import Block

        mirror = RingBufferCache(8)
        sched = make_scheduler(n=100, nb=4, C=8, meta=True, mirror=mirror)
        sched.update_distribution(RequestDistribution.uniform(100), 0.01)
        first = sched.next_block()  # meta-sampled: promotes its request
        mirror.put(Block(first.request, first.index, 50_000))
        sched.on_sent(first)
        assert first.request in sched._promoted
        # A follow-up allocation for the same request gets preempted.
        follow_up = sched._allocate(first.request)
        assert follow_up.index == 1  # continues the mirrored prefix
        sched.rollback([follow_up])
        assert first.request in sched._promoted  # mirror still backs it

    def test_rollback_keeps_promotion_with_remaining_allocations(self):
        """Rolling back one of several allocations keeps the promotion."""
        sched = make_scheduler(n=100, nb=4, C=8, meta=True, seed=3)
        sched.update_distribution(RequestDistribution.uniform(100), 0.01)
        first = sched.next_block()
        more = [b for b in sched.schedule_batch(6) if b.request == first.request]
        if not more:  # seed-dependent; the invariant below still holds
            return
        sched.rollback(more)
        assert sched.materialized_fraction >= 1 / 100

    def test_rollback_unallocated_raises(self):
        sched = make_scheduler(n=10)
        from repro.core import ScheduledBlock

        with pytest.raises(ValueError):
            sched.rollback([ScheduledBlock(request=1, index=0)])


class TestMetaRequest:
    def test_uniform_mass_reaches_unlikely_requests(self):
        sched = make_scheduler(n=100, nb=2, C=50, seed=5)
        dist = RequestDistribution(
            n=100,
            deltas_s=np.array([0.05]),
            explicit_ids=np.array([0]),
            explicit_probs=np.array([[0.5]]),
            residual=np.array([0.5]),
        )
        sched.update_distribution(dist, 0.01)
        batch = sched.schedule_batch()
        hedged = {b.request for b in batch if b.request != 0}
        assert len(hedged) >= 10  # residual mass got hedged widely

    def test_meta_disabled_only_schedules_explicit(self):
        sched = make_scheduler(n=100, nb=2, C=50, meta=False, seed=5, hedge=False)
        dist = RequestDistribution(
            n=100,
            deltas_s=np.array([0.05]),
            explicit_ids=np.array([0, 1]),
            explicit_probs=np.array([[0.3, 0.3]]),
            residual=np.array([0.4]),
        )
        sched.update_distribution(dist, 0.01)
        batch = sched.schedule_batch()
        assert {b.request for b in batch} <= {0, 1}

    def test_materialized_fraction_reported(self):
        sched = make_scheduler(n=100)
        dist = RequestDistribution(
            n=100,
            deltas_s=np.array([0.05]),
            explicit_ids=np.arange(10, dtype=np.int64),
            explicit_probs=np.full((1, 10), 0.08),
            residual=np.array([0.2]),
        )
        sched.update_distribution(dist, 0.01)
        assert sched.materialized_fraction == pytest.approx(0.1)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        def run(seed):
            sched = make_scheduler(n=50, nb=4, C=32, seed=seed)
            sched.update_distribution(RequestDistribution.uniform(50), 0.01)
            return sched.schedule_batch()

        assert run(7) == run(7)
        assert run(7) != run(8)


@settings(deadline=None, max_examples=30)
@given(
    n=st.integers(min_value=2, max_value=30),
    nb=st.integers(min_value=1, max_value=6),
    C=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=100),
)
def test_property_schedule_within_batch_never_duplicates_blocks(n, nb, C, seed):
    """No (request, index) pair is scheduled twice within a batch, and
    indices never exceed the encoding length."""
    gains = GainTable(LinearUtility(), [nb] * n)
    sched = GreedyScheduler(gains, cache_blocks=C, seed=seed)
    rng = np.random.default_rng(seed)
    dense = rng.random((1, n)) + 1e-9
    sched.update_distribution(
        RequestDistribution.from_dense(dense, deltas_s=[0.05]), 0.01
    )
    batch = sched.schedule_batch()
    assert len(batch) <= C
    seen = set()
    for block in batch:
        assert 0 <= block.request < n
        assert 0 <= block.index < nb
        key = (block.request, block.index)
        assert key not in seen
        seen.add(key)


class TestGainVector:
    """The vectorized gather must agree with the scalar gain() path."""

    def _table(self, seed=0, n=200):
        rng = np.random.default_rng(seed)
        num_blocks = rng.integers(1, 12, size=n)
        return GainTable(ssim_image_utility(), num_blocks), num_blocks

    def test_matches_scalar_gain_everywhere(self):
        gains, num_blocks = self._table()
        n = len(num_blocks)
        rng = np.random.default_rng(1)
        requests = rng.integers(0, n, size=500)
        # Cover the whole interesting range: partial, complete, and
        # beyond-complete prefixes (clipped to the zero padding).
        have = rng.integers(0, num_blocks.max() + 3, size=500)
        expected = np.array(
            [gains.gain(int(r), int(h)) for r, h in zip(requests, have)]
        )
        np.testing.assert_array_equal(gains.gain_vector(requests, have), expected)

    def test_complete_requests_gain_zero(self):
        gains, num_blocks = self._table()
        requests = np.arange(len(num_blocks))
        out = gains.gain_vector(requests, num_blocks)
        np.testing.assert_array_equal(out, np.zeros(len(requests)))

    def test_empty_input(self):
        gains, _ = self._table()
        out = gains.gain_vector(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert out.shape == (0,)

    def test_shape_mismatch_rejected(self):
        gains, _ = self._table()
        with pytest.raises(ValueError):
            gains.gain_vector(np.array([0, 1]), np.array([0]))

"""Tests for the ACC-style Khameleon predictor."""

import pytest

from repro.predictors.perfect import make_acc_predictor


FUTURE = [3, 1, 4, 1, 5, 2]


class TestACCPredictor:
    def test_name_encodes_parameters(self):
        p = make_acc_predictor(6, FUTURE, accuracy=0.8, horizon=5)
        assert p.name == "acc-0.8-5"

    def test_uniform_before_first_request(self):
        p = make_acc_predictor(6, FUTURE)
        dist = p.server.decode(p.client.state(0.0), p.deltas_s)
        assert dist.num_explicit == 0

    def test_mass_on_upcoming_requests(self):
        p = make_acc_predictor(6, FUTURE, accuracy=1.0, horizon=2)
        p.client.observe_request(0.0, FUTURE[0])  # position 0
        dist = p.server.decode(p.client.state(0.0), p.deltas_s)
        # Upcoming: positions 1 and 2 -> requests 1 and 4.
        p1 = dist.prob_of(1, 0.05)
        p4 = dist.prob_of(4, 0.05)
        assert p1 > p4 > 0.0  # nearer prediction gets more mass
        assert p1 + p4 == pytest.approx(1.0)

    def test_accuracy_leaves_residual(self):
        p = make_acc_predictor(6, FUTURE, accuracy=0.6, horizon=1)
        p.client.observe_request(0.0, FUTURE[0])
        dist = p.server.decode(p.client.state(0.0), p.deltas_s)
        # The predicted request gets exactly the accurate mass; the
        # other 0.4 spreads uniformly over the non-explicit requests.
        assert dist.prob_of(1, 0.05) == pytest.approx(0.6, abs=1e-9)
        assert dist.prob_of(0, 0.05) == pytest.approx(0.4 / 5, abs=1e-9)

    def test_trace_end_falls_back_to_uniform(self):
        p = make_acc_predictor(6, FUTURE, horizon=3)
        for request in FUTURE:
            p.client.observe_request(0.0, request)
        dist = p.server.decode(p.client.state(0.0), p.deltas_s)
        assert dist.num_explicit == 0

    def test_duplicate_future_requests_merge(self):
        p = make_acc_predictor(6, [0, 1, 1, 1], accuracy=1.0, horizon=3)
        p.client.observe_request(0.0, 0)
        dist = p.server.decode(p.client.state(0.0), p.deltas_s)
        assert dist.prob_of(1, 0.05) == pytest.approx(1.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            make_acc_predictor(0, FUTURE)
        with pytest.raises(ValueError):
            make_acc_predictor(6, FUTURE, accuracy=1.5)
        with pytest.raises(ValueError):
            make_acc_predictor(6, FUTURE, horizon=0)

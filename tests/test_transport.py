"""Tests for the framed socket transport (repro.fleet.transport).

Three layers, three contracts:

* **codec** — ``encode_frame``/``FrameDecoder`` roundtrip exactly, and
  under *arbitrary* byte mangling (truncation, bit flips, duplication,
  garbage splices) the decoder delivers only frames that were actually
  sent — corruption is counted and skipped, never surfaced;
* **endpoint** — a ``FramedEndpoint`` pair over a socketpair delivers
  objects exactly once, in order, through an injector that corrupts
  and duplicates frames; close() lingers until the peer has acked, so
  "send result, exit" never loses the result to an in-flight fault;
* **driver** — ``run_sharded`` over ``TcpTransport`` relays barrier
  payloads exactly, chaos or not, and its counter snapshots pool into
  the fleet-report totals row.
"""

import pickle
import random
import socket
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.sharding import ShardTask, run_sharded
from repro.fleet.transport import (
    HEADER_SIZE,
    MAX_PAYLOAD,
    T_DATA,
    FrameDecoder,
    FramedEndpoint,
    NetChaosSpec,
    PipeTransport,
    TcpTransport,
    TransportCounters,
    TransportError,
    _FaultInjector,
    encode_frame,
)
from repro.metrics.fleet import TRANSPORT_COUNTER_ZERO, pool_transport_counters


class TestCodec:
    def test_roundtrip_single_frame(self):
        frame = encode_frame(T_DATA, 7, b"hello")
        assert FrameDecoder().feed(frame) == [(T_DATA, 7, b"hello")]

    def test_roundtrip_across_arbitrary_chunking(self):
        frames = b"".join(
            encode_frame(T_DATA, i, bytes([i]) * (i * 37 % 256)) for i in range(20)
        )
        rng = random.Random(5)
        decoder = FrameDecoder()
        got = []
        i = 0
        while i < len(frames):
            j = min(len(frames), i + rng.randrange(1, 64))
            got.extend(decoder.feed(frames[i:j]))
            i = j
        assert got == [(T_DATA, i, bytes([i]) * (i * 37 % 256)) for i in range(20)]

    def test_payload_cap_enforced_at_encode(self):
        with pytest.raises(TransportError, match="exceeds cap"):
            encode_frame(T_DATA, 0, b"x" * (MAX_PAYLOAD + 1))

    def test_corrupt_length_cannot_stall_the_stream(self):
        """A flipped length byte fails the header CRC, so the decoder
        resyncs instead of waiting forever for phantom bytes."""
        bad = bytearray(encode_frame(T_DATA, 0, b"abc"))
        bad[12] ^= 0xFF  # inside the length field
        decoder = FrameDecoder()
        assert decoder.feed(bytes(bad)) == []
        follow = encode_frame(T_DATA, 1, b"def")
        assert decoder.feed(follow) == [(T_DATA, 1, b"def")]
        assert decoder.counters.crc_rejects >= 1


class TestDecoderFuzz:
    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_mangled_stream_never_delivers_corruption(self, seed):
        """Whatever the wire does — truncate, flip, duplicate, splice
        garbage — every delivered frame is byte-identical to a sent
        one.  (Delivered ⊆ sent; no crash; no stall.)"""
        rng = random.Random(seed)
        sent = {}
        stream = bytearray()
        for i in range(12):
            payload = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 200)))
            sent[i] = payload
            stream += encode_frame(T_DATA, i, payload)
        # Mangle: a few cuts, flips, and duplications at random spots.
        for _ in range(rng.randrange(0, 6)):
            op = rng.choice(("truncate", "flip", "dup", "garbage"))
            if not stream:
                break
            pos = rng.randrange(len(stream))
            if op == "truncate":
                del stream[pos : pos + rng.randrange(1, 40)]
            elif op == "flip":
                stream[pos] ^= 1 << rng.randrange(8)
            elif op == "dup":
                chunk = stream[pos : pos + rng.randrange(1, 80)]
                stream[pos:pos] = chunk
            else:
                stream[pos:pos] = bytes(rng.randrange(256) for _ in range(11))
        decoder = FrameDecoder()
        delivered = []
        i = 0
        while i < len(stream):
            j = min(len(stream), i + rng.randrange(1, 97))
            delivered.extend(decoder.feed(bytes(stream[i : j])))
            i = j
        for ftype, seq, payload in delivered:
            if ftype == T_DATA and seq in sent:
                assert payload == sent[seq]


def endpoint_pair(spec=None, seed=0, **kw):
    a, b = socket.socketpair()
    injector = None
    if spec is not None:
        injector = _FaultInjector(spec, shard=seed)
    left = FramedEndpoint(a, TransportCounters(), injector=injector, **kw)
    right = FramedEndpoint(b, TransportCounters(), **kw)
    return left, right


class TestFramedEndpoint:
    def test_exactly_once_in_order_under_faults(self):
        spec = NetChaosSpec(corrupt_rate=0.2, dup_rate=0.2, seed=3)
        left, right = endpoint_pair(spec)
        try:
            for i in range(50):
                left.send({"i": i, "blob": b"x" * (i * 61 % 512)})
            got = [right.recv() for _ in range(50)]
            assert [g["i"] for g in got] == list(range(50))
        finally:
            left.close()
            right.close()
        assert left.counters.retransmits + right.counters.dup_drops >= 0

    def test_close_lingers_until_acked(self):
        """The regression that made chaotic fleet runs nondeterministic:
        a worker that sends its result and immediately exits must not
        lose the result to a corrupted final frame — close() waits for
        the ack while the retransmit timer repairs the loss."""
        spec = NetChaosSpec(corrupt_rate=1.0, seed=1)
        left, right = endpoint_pair(spec)
        # Corrupt exactly one frame: the first DATA-sized one (pings
        # are header-only and pass through untouched).
        orig_corrupt = left._injector.corrupt
        fired = []

        def corrupt_once(data):
            if fired or len(data) <= HEADER_SIZE:
                return None
            fired.append(True)
            return orig_corrupt(data)

        left._injector.corrupt = corrupt_once
        try:
            left.send("the result")
            left.close()  # returns only after the retransmit got acked
            assert right.recv() == "the result"
        finally:
            left.close()
            right.close()
        assert left.counters.retransmits >= 1
        assert right.counters.crc_rejects >= 1

    def test_peer_close_surfaces_as_eof(self):
        left, right = endpoint_pair()
        left.close()
        with pytest.raises(EOFError):
            right.recv()
        assert right.poll(0.0) is True  # wakes into the error, not a hang
        right.close()

    def test_send_after_close_raises(self):
        left, right = endpoint_pair()
        left.close()
        right.close()
        with pytest.raises(BrokenPipeError):
            left.send(1)

    def test_cut_heals_and_detects_partition(self):
        left, right = endpoint_pair(rto_s=0.05, partition_after_s=0.15)
        try:
            left.send("before")
            assert right.recv() == "before"
            left.cut(0.4)
            left.send("during")  # queued against the cut, retransmitted after
            assert right.recv() == "during"
            assert left.counters.partitions_detected >= 1
        finally:
            left.close()
            right.close()


class TestTcpDriver:
    def test_run_sharded_echo_over_tcp(self):
        transport = TcpTransport()
        tasks = [
            ShardTask(
                entry="_shard_helpers:echo_worker",
                spec=f"hello-{k}",
                shard=k,
                num_shards=3,
            )
            for k in range(3)
        ]
        results = run_sharded(tasks, sync_rounds=1, timeout_s=60.0, transport=transport)
        for k, got in enumerate(results):
            assert sorted(got) == sorted(f"hello-{j}" for j in range(3) if j != k)
        snaps = transport.counter_snapshots()
        assert set(snaps) == {0, 1, 2}
        for snap in snaps.values():
            assert set(snap) == set(TRANSPORT_COUNTER_ZERO)

    def test_run_sharded_echo_over_noisy_tcp(self):
        spec = NetChaosSpec(corrupt_rate=0.1, dup_rate=0.1, seed=2)
        transport = TcpTransport(chaos=spec)
        tasks = [
            ShardTask(
                entry="_shard_helpers:crashable_worker",
                spec={"rounds": 3, "tag": f"w{k}"},
                shard=k,
                num_shards=2,
            )
            for k in range(2)
        ]
        results = run_sharded(tasks, sync_rounds=3, timeout_s=60.0, transport=transport)
        for k, got in enumerate(results):
            assert got["rounds_done"] == 3
            for r, peers in enumerate(got["peers"]):
                assert sorted(peers) == sorted(
                    f"w{j}:r{r}" for j in range(2) if j != k
                )

    def test_pipe_transport_has_no_wire(self):
        transport = PipeTransport()
        assert transport.counter_snapshots() == {}
        with pytest.raises(TransportError):
            transport.cut_links([0], 0.1)


class TestCounterPooling:
    def test_totals_sum_and_max(self):
        a = {"retransmits": 1, "crc_rejects": 2, "dup_drops": 0,
             "partitions_detected": 1, "heartbeat_rtt_ms_max": 4.0}
        b = {"retransmits": 2, "crc_rejects": 0, "dup_drops": 3,
             "partitions_detected": 0, "heartbeat_rtt_ms_max": 9.5}
        totals = pool_transport_counters([a, b])
        assert totals == {"retransmits": 3, "crc_rejects": 2, "dup_drops": 3,
                          "partitions_detected": 1, "heartbeat_rtt_ms_max": 9.5}

    def test_empty_input_is_the_zero_shape(self):
        assert pool_transport_counters([]) == TRANSPORT_COUNTER_ZERO

    def test_counters_snapshot_matches_zero_shape(self):
        assert set(TransportCounters().snapshot()) == set(TRANSPORT_COUNTER_ZERO)

"""Unit and property tests for the discrete-event engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.run()
        assert fired == ["early", "late"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        sim.schedule(3.5, lambda: None)
        sim.run()
        assert sim.now == 3.5

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(1.0, fired.append, i)
        sim.run()
        assert fired == list(range(10))

    def test_schedule_in_past_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_before_now_raises(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_nested_scheduling_from_callback(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append("outer")
            sim.schedule(1.0, fired.append, "inner")

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == ["outer", "inner"]
        assert sim.now == 2.0

    def test_zero_delay_event_fires_at_now(self):
        sim = Simulator()
        times = []
        sim.schedule(1.0, lambda: sim.schedule(0.0, lambda: times.append(sim.now)))
        sim.run()
        assert times == [1.0]

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        handle.cancel()

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h.cancel()
        assert sim.peek() == 2.0


class TestRunUntil:
    def test_run_until_stops_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        assert fired == ["a"]
        assert sim.now == 2.0

    def test_run_until_then_resume(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        sim.run()
        assert fired == ["a", "b"]

    def test_run_for_advances_relative(self):
        sim = Simulator()
        sim.run_for(2.0)
        sim.run_for(3.0)
        assert sim.now == 5.0

    def test_run_for_negative_raises(self):
        with pytest.raises(SimulationError):
            Simulator().run_for(-1.0)

    def test_run_until_boundary_event_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "edge")
        sim.run(until=2.0)
        assert fired == ["edge"]


class TestPeriodicTask:
    def test_fires_at_interval(self):
        sim = Simulator()
        times = []
        sim.every(0.5, lambda: times.append(sim.now))
        sim.run(until=2.0)
        assert times == [0.5, 1.0, 1.5, 2.0]

    def test_custom_start(self):
        sim = Simulator()
        times = []
        sim.every(1.0, lambda: times.append(sim.now), start=0.25)
        sim.run(until=2.5)
        assert times == [0.25, 1.25, 2.25]

    def test_cancel_stops_repetition(self):
        sim = Simulator()
        times = []
        task = sim.every(1.0, lambda: times.append(sim.now))
        sim.run(until=2.0)
        task.cancel()
        sim.run(until=10.0)
        assert times == [1.0, 2.0]

    def test_cancel_from_within_callback(self):
        sim = Simulator()
        count = []
        task = sim.every(1.0, lambda: (count.append(1), task.cancel()))
        sim.run(until=5.0)
        assert len(count) == 1

    def test_nonpositive_interval_raises(self):
        with pytest.raises(SimulationError):
            Simulator().every(0.0, lambda: None)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=200))
def test_property_events_fire_in_nondecreasing_time(delays):
    """Whatever the scheduling order, firing times are sorted."""
    sim = Simulator()
    observed = []
    for d in delays:
        sim.schedule(d, lambda: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


@given(
    delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50),
    cutoff=st.floats(min_value=0.0, max_value=100.0),
)
def test_property_run_until_is_a_clean_partition(delays, cutoff):
    """run(until=c) fires exactly the events with time <= c."""
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, fired.append, d)
    sim.run(until=cutoff)
    assert sorted(fired) == sorted(d for d in delays if d <= cutoff)


class TestHeapCompaction:
    def test_churny_preemption_does_not_grow_heap_unboundedly(self):
        """Schedule-then-cancel loops (sender preemption under churn)
        leave cancelled entries in the heap; compaction must bound the
        garbage at ~2x the live population instead of letting it grow
        with the number of preemptions."""
        sim = Simulator()
        live = [sim.schedule(1e6 + i, lambda: None) for i in range(100)]
        for round_ in range(200):
            handles = [sim.schedule(10.0 + round_, lambda: None) for _ in range(50)]
            for h in handles:
                h.cancel()
        assert sim.pending_events == 100
        assert len(sim._heap) <= 2 * 100 + 1
        assert sim.heap_compactions > 0
        # Live events are untouched by compaction.
        sim.run()
        assert sim.now == 1e6 + 99
        assert not any(h.cancelled for h in live)

    def test_compaction_preserves_fifo_tie_order(self):
        sim = Simulator()
        fired = []
        keep = [sim.schedule(5.0, fired.append, i) for i in range(40)]
        doomed = [sim.schedule(1.0, lambda: None) for _ in range(200)]
        for h in doomed:
            h.cancel()
        assert sim.heap_compactions > 0
        sim.run()
        assert fired == list(range(40))
        assert keep[0].time == 5.0

    def test_small_heaps_never_compact(self):
        sim = Simulator()
        for _ in range(10):
            sim.schedule(1.0, lambda: None).cancel()
        assert sim.heap_compactions == 0

    def test_cancel_after_pop_does_not_corrupt_count(self):
        sim = Simulator()
        h = sim.schedule(1.0, lambda: None)
        sim.run()
        h.cancel()  # no-op: already fired
        assert sim._cancelled_pending == 0

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        a = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        a.cancel()
        assert sim.pending_events == 1

"""Tests for the Clock protocol seam and the asyncio WallClock driver.

Three layers:

* protocol conformance — both drivers satisfy :class:`repro.clock.Clock`
  structurally (``isinstance`` via ``runtime_checkable``);
* WallClock timer semantics — ordering, cancellation, past-time
  clamping, drift-free periodics — exercised on a real event loop with
  millisecond-scale timers;
* seam equivalence — a fixed-seed fleet run whose components see the
  clock only *through* the protocol surface (a pure delegating shim
  that is not a Simulator) is bit-identical to the same run handed the
  Simulator directly.  This is the refactor's no-behavior-change proof.
"""

import asyncio

import pytest

from repro.backends import FileSystemBackend
from repro.clock import Clock, ClockError, Repeating, Timer, WallClock
from repro.core import LinearUtility, SessionConfig
from repro.encoding import ImageAsset, ProgressiveImageEncoder
from repro.fleet import FleetConfig, KhameleonFleet
from repro.metrics import collect_fleet
from repro.predictors.simple import make_point_predictor
from repro.sim import ControlChannel, FixedRateLink, Simulator

#: Short enough to keep the suite fast, long enough to dodge loop jitter.
TICK = 0.02


def run(coro):
    return asyncio.run(coro)


class TestProtocolConformance:
    def test_simulator_is_a_clock(self):
        sim = Simulator()
        assert isinstance(sim, Clock)
        assert isinstance(sim.schedule(1.0, lambda: None), Timer)
        assert isinstance(sim.every(1.0, lambda: None), Repeating)

    def test_wallclock_is_a_clock(self):
        async def main():
            clock = WallClock()
            assert isinstance(clock, Clock)
            t = clock.schedule(10.0, lambda: None)
            assert isinstance(t, Timer)
            p = clock.every(10.0, lambda: None)
            assert isinstance(p, Repeating)
            t.cancel()
            p.cancel()

        run(main())


class TestWallClock:
    def test_now_starts_at_zero_and_advances(self):
        async def main():
            clock = WallClock()
            assert 0.0 <= clock.now < 0.5
            before = clock.now
            await asyncio.sleep(TICK)
            assert clock.now >= before + 0.5 * TICK

        run(main())

    def test_callbacks_fire_in_delay_order(self):
        async def main():
            clock = WallClock()
            fired = []
            clock.schedule(3 * TICK, fired.append, "c")
            clock.schedule(1 * TICK, fired.append, "a")
            clock.schedule(2 * TICK, fired.append, "b")
            await asyncio.sleep(5 * TICK)
            assert fired == ["a", "b", "c"]
            assert clock.events_processed == 3

        run(main())

    def test_negative_delay_raises(self):
        async def main():
            clock = WallClock()
            with pytest.raises(ClockError):
                clock.schedule(-0.001, lambda: None)

        run(main())

    def test_schedule_at_past_time_clamps_instead_of_raising(self):
        """Real time moves between computing and arming a deadline."""

        async def main():
            clock = WallClock()
            await asyncio.sleep(TICK)
            fired = []
            clock.schedule_at(0.0, fired.append, "late")  # already past
            await asyncio.sleep(TICK)
            assert fired == ["late"]

        run(main())

    def test_cancel_prevents_firing_and_is_idempotent(self):
        async def main():
            clock = WallClock()
            fired = []
            t = clock.schedule(TICK, fired.append, "x")
            assert not t.cancelled
            t.cancel()
            t.cancel()  # idempotent
            assert t.cancelled
            await asyncio.sleep(2 * TICK)
            assert fired == []
            assert clock.events_processed == 0

        run(main())

    def test_cancel_after_fire_is_noop(self):
        async def main():
            clock = WallClock()
            fired = []
            t = clock.schedule(TICK, fired.append, "x")
            await asyncio.sleep(2 * TICK)
            assert fired == ["x"]
            t.cancel()  # must not raise or un-fire anything
            assert t.cancelled

        run(main())

    def test_periodic_fires_repeatedly_then_cancels(self):
        async def main():
            clock = WallClock()
            times = []
            task = clock.every(TICK, lambda: times.append(clock.now))
            await asyncio.sleep(5.5 * TICK)
            task.cancel()
            count = len(times)
            assert count >= 3
            await asyncio.sleep(2 * TICK)
            assert len(times) == count  # cancel stops the repetition
            assert task.cancelled

        run(main())

    def test_periodic_is_drift_free(self):
        """Targets advance by whole intervals from the *first target*."""

        async def main():
            clock = WallClock()
            times = []
            task = clock.every(TICK, lambda: times.append(clock.now))
            await asyncio.sleep(6 * TICK)
            task.cancel()
            # Each firing happens at (or a hair after) k * TICK, never
            # accumulating the per-callback lateness: the k-th firing
            # stays within one interval of its nominal target.
            for k, t in enumerate(times, start=1):
                assert t >= k * TICK - 1e-9
                assert t < (k + 1.5) * TICK

        run(main())

    def test_periodic_overrun_skips_missed_periods_in_phase(self):
        async def main():
            clock = WallClock()
            times = []

            def tick():
                times.append(clock.now)
                if len(times) == 1:
                    # Blocking callback overruns several periods.
                    import time as _time

                    _time.sleep(3.5 * TICK)

            task = clock.every(TICK, tick)
            await asyncio.sleep(7 * TICK)
            task.cancel()
            assert len(times) >= 2
            # The second firing lands on a whole-interval phase boundary
            # after the overrun, not immediately in a catch-up burst.
            gap = times[1] - times[0]
            assert gap >= 3.5 * TICK - 1e-9

        run(main())

    def test_cancel_from_inside_periodic_callback(self):
        async def main():
            clock = WallClock()
            fired = []
            task = clock.every(TICK, lambda: (fired.append(1), task.cancel()))
            await asyncio.sleep(4 * TICK)
            assert len(fired) == 1

        run(main())

    def test_every_start_controls_first_firing(self):
        async def main():
            clock = WallClock()
            times = []
            task = clock.every(10 * TICK, lambda: times.append(clock.now), start=TICK)
            await asyncio.sleep(3 * TICK)
            task.cancel()
            assert len(times) == 1
            assert times[0] >= TICK - 1e-9

        run(main())

    def test_non_positive_interval_raises(self):
        async def main():
            clock = WallClock()
            with pytest.raises(ClockError):
                clock.every(0.0, lambda: None)

        run(main())


# ---------------------------------------------------------------------------
# Seam equivalence: components × protocol surface ≡ components × Simulator
# ---------------------------------------------------------------------------


class ProtocolOnlyClock:
    """Delegates the four Clock methods to a Simulator — and nothing else.

    Not a Simulator subclass: any component reaching past the protocol
    (``run``, ``peek``, event-heap internals...) raises AttributeError,
    so a green run proves the stack lives entirely behind the seam.
    """

    def __init__(self, sim):
        self._sim = sim

    @property
    def now(self):
        return self._sim.now

    def schedule(self, delay, callback, *args):
        return self._sim.schedule(delay, callback, *args)

    def schedule_at(self, time, callback, *args):
        return self._sim.schedule_at(time, callback, *args)

    def every(self, interval, callback, *args, start=None):
        return self._sim.every(interval, callback, *args, start=start)


BLOCK = 50_000


def run_fixed_fleet(shim: bool):
    """A deterministic 3-session fleet run; optionally behind the shim."""
    sim = Simulator()
    clock: Clock = ProtocolOnlyClock(sim) if shim else sim
    n, nb = 6, 3
    assets = {i: ImageAsset(image_id=i, size_bytes=nb * BLOCK) for i in range(n)}
    encoder = ProgressiveImageEncoder(assets, block_size_bytes=BLOCK)
    backend = FileSystemBackend(clock, encoder, fetch_delay_s=0.005)
    link = FixedRateLink(clock, bytes_per_second=1_000_000, propagation_delay_s=0.01)
    fleet = KhameleonFleet(
        sim=clock,
        backend=backend,
        make_predictor=lambda i: make_point_predictor(n),
        utility=LinearUtility(),
        num_blocks=[nb] * n,
        downlink=link,
        make_uplink=lambda i: ControlChannel(clock, latency_s=0.01),
        config=FleetConfig(
            num_sessions=3,
            session=SessionConfig(
                cache_bytes=24 * BLOCK,
                block_bytes=BLOCK,
                initial_bandwidth_bytes_per_s=1_000_000.0,
                lookahead=4,
            ),
        ),
    )
    fleet.start()
    for i, session in enumerate(fleet.sessions):
        for k in range(4):
            clock.schedule(0.05 + 0.21 * k + 0.01 * i, session.client.request,
                           (i + k) % n)
    sim.run(until=5.0)
    fleet.stop()
    outcomes = [
        (
            i,
            o.request,
            o.logical_ts,
            o.registered_at,
            o.served_at,
            o.cache_hit,
            o.preempted,
            o.utility_at_upcall,
            o.blocks_at_upcall,
        )
        for i, per_session in enumerate(fleet.outcomes_by_session())
        for o in per_session
    ]
    summary = collect_fleet(fleet.outcomes_by_session())
    return outcomes, summary, sim.events_processed


class TestSeamEquivalence:
    def test_fleet_run_identical_through_protocol_shim(self):
        """Bit-identical outcomes whether components see Simulator or shim."""
        direct = run_fixed_fleet(shim=False)
        shimmed = run_fixed_fleet(shim=True)
        assert direct[0] == shimmed[0]  # every outcome field, exactly
        assert direct[0], "run must actually serve requests"
        assert direct[1].per_session == shimmed[1].per_session
        assert direct[2] == shimmed[2]  # same event count through the heap

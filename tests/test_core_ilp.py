"""Tests for the ILP scheduler and the shared schedule evaluator."""

import numpy as np
import pytest

from repro.core import (
    GainTable,
    GreedyScheduler,
    ILPScheduler,
    LinearUtility,
    PowerUtility,
    RequestDistribution,
    ScheduledBlock,
    expected_utility,
)


def gains_for(n, nb, utility=None):
    return GainTable(utility or LinearUtility(), [nb] * n)


class TestExpectedUtility:
    def test_empty_schedule_is_zero(self):
        g = gains_for(4, 2)
        dist = RequestDistribution.uniform(4)
        assert expected_utility([], dist, g, 0.01) == 0.0

    def test_single_block_value(self):
        """One block of the certain request: U(1/2)·P = 0.5·1 per slot."""
        g = gains_for(4, 2)
        dist = RequestDistribution.point(4, 1)
        schedule = [ScheduledBlock(1, 0)]
        assert expected_utility(schedule, dist, g, 0.01) == pytest.approx(0.5)

    def test_accumulates_over_slots(self):
        g = gains_for(4, 2)
        dist = RequestDistribution.point(4, 1)
        schedule = [ScheduledBlock(1, 0), ScheduledBlock(1, 1)]
        # slot1: U(1/2)=0.5; slot2: U(1)=1.0 -> total 1.5
        assert expected_utility(schedule, dist, g, 0.01) == pytest.approx(1.5)

    def test_gamma_discounts_later_slots(self):
        g = gains_for(4, 2)
        dist = RequestDistribution.point(4, 1)
        schedule = [ScheduledBlock(1, 0), ScheduledBlock(1, 1)]
        v = expected_utility(schedule, dist, g, 0.01, gamma=0.5)
        assert v == pytest.approx(0.5 + 0.5 * 1.0)

    def test_initial_blocks_seed_cache_state(self):
        g = gains_for(4, 2)
        dist = RequestDistribution.point(4, 1)
        v = expected_utility(
            [ScheduledBlock(1, 1)], dist, g, 0.01, initial_blocks={1: 1}
        )
        assert v == pytest.approx(1.0)  # completes to U(1)

    def test_validation(self):
        g = gains_for(2, 2)
        dist = RequestDistribution.uniform(2)
        with pytest.raises(ValueError):
            expected_utility([], dist, g, 0.0)
        with pytest.raises(ValueError):
            expected_utility([], dist, g, 0.01, gamma=1.5)


class TestILPScheduler:
    def test_point_distribution_allocates_target_first(self):
        g = gains_for(4, 3)
        ilp = ILPScheduler(g, cache_blocks=3)
        sol = ilp.solve(RequestDistribution.point(4, 2), 0.01)
        assert sol.optimal
        assert len(sol.schedule) == 3
        assert all(b.request == 2 for b in sol.schedule)
        assert sorted(b.index for b in sol.schedule) == [0, 1, 2]

    def test_respects_bandwidth_constraint(self):
        g = gains_for(3, 4)
        ilp = ILPScheduler(g, cache_blocks=4, bandwidth_blocks=1)
        sol = ilp.solve(RequestDistribution.uniform(3), 0.01)
        assert len(sol.schedule) <= 4

    def test_each_block_sent_at_most_once(self):
        g = gains_for(3, 2)
        ilp = ILPScheduler(g, cache_blocks=6)
        sol = ilp.solve(RequestDistribution.uniform(3), 0.01)
        seen = set()
        for b in sol.schedule:
            assert (b.request, b.index) not in seen
            seen.add((b.request, b.index))

    def test_heterogeneous_block_counts_masked(self):
        g = GainTable(LinearUtility(), [1, 3])
        ilp = ILPScheduler(g, cache_blocks=4)
        sol = ilp.solve(RequestDistribution.uniform(2), 0.01)
        for b in sol.schedule:
            assert b.index < g.blocks_of(b.request)

    def test_skewed_distribution_prefers_likely_request(self):
        g = gains_for(2, 4, utility=PowerUtility(0.5))
        ilp = ILPScheduler(g, cache_blocks=4)
        dist = RequestDistribution.from_dense(
            np.array([[0.9, 0.1]]), deltas_s=[0.05]
        )
        sol = ilp.solve(dist, 0.01)
        counts = {0: 0, 1: 0}
        for b in sol.schedule:
            counts[b.request] += 1
        assert counts[0] > counts[1]

    def test_num_variables_reported(self):
        g = gains_for(3, 2)
        ilp = ILPScheduler(g, cache_blocks=4)
        sol = ilp.solve(RequestDistribution.uniform(3), 0.01)
        assert sol.num_variables == 4 * 3 * 2

    def test_validation(self):
        g = gains_for(2, 2)
        with pytest.raises(ValueError):
            ILPScheduler(g, cache_blocks=0)
        with pytest.raises(ValueError):
            ILPScheduler(g, cache_blocks=2, bandwidth_blocks=0)
        with pytest.raises(ValueError):
            ILPScheduler(g, cache_blocks=2, gamma=2.0)
        ilp = ILPScheduler(g, cache_blocks=2)
        with pytest.raises(ValueError):
            ilp.solve(RequestDistribution.uniform(2), 0.0)


class TestGreedyVsILP:
    """Fig. 17: greedy schedules are competitive with the LP's."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_greedy_within_factor_of_ilp(self, seed):
        n, nb, C = 5, 3, 8
        g = gains_for(n, nb, utility=PowerUtility(0.5))
        rng = np.random.default_rng(seed)
        dist = RequestDistribution.from_dense(
            rng.random((1, n)) + 0.05, deltas_s=[0.05]
        )
        slot = 0.01

        ilp_value = ILPScheduler(g, cache_blocks=C).solve(dist, slot).objective

        greedy = GreedyScheduler(g, cache_blocks=C, seed=seed, hedge_when_idle=False)
        greedy.update_distribution(dist, slot)
        schedule = greedy.schedule_batch()
        greedy_value = expected_utility(schedule, dist, g, slot)

        assert ilp_value > 0
        # Paper: greedy utility is on average ~1.2x below LP.
        assert greedy_value >= 0.5 * ilp_value

    def test_ilp_objective_matches_evaluator(self):
        """The ILP's reported objective equals expected_utility of its
        own schedule (they implement the same Eq. 2/3)."""
        g = gains_for(4, 2)
        C = 4
        dist = RequestDistribution.from_dense(
            np.array([[0.4, 0.3, 0.2, 0.1]]), deltas_s=[0.05]
        )
        sol = ILPScheduler(g, cache_blocks=C).solve(dist, 0.01)
        v = expected_utility(sol.schedule, dist, g, 0.01)
        assert sol.objective == pytest.approx(v, rel=1e-6)

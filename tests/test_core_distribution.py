"""Tests for sparse request distributions."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.distribution import RequestDistribution


class TestConstructors:
    def test_uniform(self):
        d = RequestDistribution.uniform(100, deltas_s=[0.05, 0.15])
        assert d.num_explicit == 0
        assert d.num_uniform == 100
        assert d.prob_of(42, 0.05) == pytest.approx(0.01)

    def test_point(self):
        d = RequestDistribution.point(10, request=7)
        assert d.prob_of(7, 0.05) == 1.0
        assert d.prob_of(3, 0.05) == 0.0

    def test_from_dense_thresholding(self):
        dense = np.full((1, 100), 0.5 / 98)
        dense[0, 3] = 0.3
        dense[0, 9] = 0.2
        dense[0, 3] += 0.5 / 98  # keep the row summing to 1 after overwrite
        dense[0, 9] += 0.5 / 98
        dense[0, 3] -= 2 * 0.5 / 98
        d = RequestDistribution.from_dense(dense, deltas_s=[0.05], threshold=0.01)
        assert set(d.explicit_ids.tolist()) == {3, 9}
        assert d.residual[0] == pytest.approx(0.5, abs=1e-6)

    def test_from_dense_normalizes(self):
        d = RequestDistribution.from_dense(np.array([[2.0, 2.0]]), deltas_s=[0.05])
        assert d.prob_of(0, 0.05) == pytest.approx(0.5)

    def test_from_dense_rejects_negative(self):
        with pytest.raises(ValueError):
            RequestDistribution.from_dense(np.array([[-1.0, 2.0]]), deltas_s=[0.05])

    def test_from_dense_rejects_zero_mass(self):
        with pytest.raises(ValueError):
            RequestDistribution.from_dense(np.array([[0.0, 0.0]]), deltas_s=[0.05])


class TestValidation:
    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError):
            RequestDistribution(
                n=4,
                deltas_s=np.array([0.05]),
                explicit_ids=np.array([0]),
                explicit_probs=np.array([[0.5]]),
                residual=np.array([0.2]),
            )

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError):
            RequestDistribution(
                n=4,
                deltas_s=np.array([0.05]),
                explicit_ids=np.array([1, 1]),
                explicit_probs=np.array([[0.5, 0.5]]),
                residual=np.array([0.0]),
            )

    def test_rejects_out_of_range_ids(self):
        with pytest.raises(ValueError):
            RequestDistribution(
                n=4,
                deltas_s=np.array([0.05]),
                explicit_ids=np.array([9]),
                explicit_probs=np.array([[1.0]]),
                residual=np.array([0.0]),
            )

    def test_rejects_unsorted_deltas(self):
        with pytest.raises(ValueError):
            RequestDistribution.uniform(4, deltas_s=[0.15, 0.05])

    def test_rejects_residual_with_all_explicit(self):
        with pytest.raises(ValueError):
            RequestDistribution(
                n=1,
                deltas_s=np.array([0.05]),
                explicit_ids=np.array([0]),
                explicit_probs=np.array([[0.5]]),
                residual=np.array([0.5]),
            )


class TestInterpolation:
    def make(self):
        """Request 0's probability decays 0.8 -> 0.2 across horizons."""
        return RequestDistribution(
            n=10,
            deltas_s=np.array([0.05, 0.25]),
            explicit_ids=np.array([0]),
            explicit_probs=np.array([[0.8], [0.2]]),
            residual=np.array([0.2, 0.8]),
        )

    def test_midpoint(self):
        d = self.make()
        assert d.prob_of(0, 0.15) == pytest.approx(0.5)

    def test_clamps_before_first(self):
        assert self.make().prob_of(0, 0.0) == pytest.approx(0.8)

    def test_clamps_after_last(self):
        assert self.make().prob_of(0, 1.0) == pytest.approx(0.2)

    def test_interpolated_rows_still_sum_to_one(self):
        d = self.make()
        for delta in (0.0, 0.1, 0.18, 0.3):
            assert d.dense_at(delta).sum() == pytest.approx(1.0)

    def test_explicit_matrix_matches_pointwise(self):
        d = self.make()
        qs = np.array([0.0, 0.1, 0.2, 0.5])
        probs, residual = d.explicit_matrix(qs)
        for row, delta in enumerate(qs):
            _ids, p, r = d.explicit_at(float(delta))
            assert np.allclose(probs[row], p)
            assert residual[row] == pytest.approx(r)


class TestQueries:
    def test_top_k_ranks_by_probability(self):
        d = RequestDistribution(
            n=100,
            deltas_s=np.array([0.05]),
            explicit_ids=np.array([5, 6, 7]),
            explicit_probs=np.array([[0.2, 0.5, 0.1]]),
            residual=np.array([0.2]),
        )
        assert d.top_k(2) == [6, 5]

    def test_top_k_excludes_below_uniform(self):
        """Explicit ids less likely than the uniform pool don't rank."""
        d = RequestDistribution(
            n=10,
            deltas_s=np.array([0.05]),
            explicit_ids=np.array([0, 1]),
            explicit_probs=np.array([[0.6, 0.001]]),
            residual=np.array([0.399]),
        )
        assert d.top_k(5) == [0]

    def test_uniform_top_k_empty(self):
        assert RequestDistribution.uniform(10).top_k(3) == []

    def test_dense_at_shape(self):
        d = RequestDistribution.point(7, 2)
        dense = d.dense_at(0.05)
        assert dense.shape == (7,)
        assert dense.sum() == pytest.approx(1.0)


@given(
    n=st.integers(min_value=2, max_value=50),
    seed=st.integers(min_value=0, max_value=2**31),
    delta=st.floats(min_value=0.0, max_value=1.0),
)
def test_property_dense_normalized_at_any_horizon(n, seed, delta):
    rng = np.random.default_rng(seed)
    dense = rng.random((3, n)) + 1e-6
    d = RequestDistribution.from_dense(dense, deltas_s=[0.05, 0.15, 0.5])
    vec = d.dense_at(delta)
    assert vec.shape == (n,)
    assert (vec >= -1e-12).all()
    assert vec.sum() == pytest.approx(1.0, abs=1e-6)

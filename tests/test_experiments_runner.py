"""Tests for the end-to-end experiment runners.

These use tiny applications and short traces so the whole file runs in
seconds while still exercising every driver end to end.
"""

import pytest

from repro.experiments.configs import DEFAULT_ENV, EnvironmentConfig, FleetEnvironment
from repro.experiments.runner import (
    extend_with_pause,
    run_classic,
    run_convergence,
    run_falcon,
    run_fleet,
    run_image_system,
    run_khameleon,
)
from repro.workloads.falcon import FalconApp, FalconTraceGenerator
from repro.workloads.image_app import ImageExplorationApp
from repro.workloads.mouse import MouseTraceGenerator


@pytest.fixture(scope="module")
def app():
    return ImageExplorationApp(rows=8, cols=8)


@pytest.fixture(scope="module")
def trace(app):
    return MouseTraceGenerator(app.layout, seed=3).generate(duration_s=8.0)


@pytest.fixture(scope="module")
def khameleon_result(app, trace):
    return run_khameleon(app, trace, DEFAULT_ENV)


@pytest.fixture(scope="module")
def baseline_result(app, trace):
    return run_classic(app, trace, DEFAULT_ENV)


class TestRunKhameleon:
    def test_every_trace_request_has_an_outcome(self, khameleon_result, trace):
        assert khameleon_result.summary.num_requests == trace.num_requests

    def test_pushes_blocks_and_reports_overpush(self, khameleon_result):
        assert khameleon_result.blocks_pushed > 0
        assert khameleon_result.bytes_pushed > 0
        assert 0.0 <= khameleon_result.overpush <= 1.0

    def test_server_received_predictions(self, khameleon_result):
        assert khameleon_result.extras["states_received"] > 5

    def test_deterministic(self, app, trace):
        a = run_khameleon(app, trace, DEFAULT_ENV, seed=4)
        b = run_khameleon(app, trace, DEFAULT_ENV, seed=4)
        assert a.summary.as_dict() == b.summary.as_dict()

    def test_nonprogressive_variant_has_full_utility(self, app, trace):
        result = run_khameleon(app, trace, DEFAULT_ENV, progressive=False)
        assert result.system == "predictor"
        served = [o for o in result.outcomes if o.served]
        assert served
        assert all(o.utility_at_upcall == 1.0 for o in served)


class TestRunClassic:
    def test_all_requests_resolve_after_drain(self, baseline_result):
        s = baseline_result.summary
        assert s.num_unanswered == 0  # classic runs drain to quiescence
        assert s.num_served + s.num_preempted == s.num_requests

    def test_baseline_full_quality(self, baseline_result):
        served = [o for o in baseline_result.outcomes if o.served]
        assert all(o.utility_at_upcall == 1.0 for o in served)

    def test_progressive_variant_lower_quality(self, app, trace):
        result = run_classic(app, trace, DEFAULT_ENV, variant="first_block")
        assert result.system == "progressive"
        served = [o for o in result.outcomes if o.served and not o.cache_hit]
        assert served
        assert all(o.utility_at_upcall < 1.0 for o in served)

    def test_acc_names_and_overpush(self, app, trace):
        result = run_classic(app, trace, DEFAULT_ENV, acc=(0.8, 5))
        assert result.system == "acc-0.8-5"
        assert result.overpush is not None


class TestHeadlineComparison:
    def test_khameleon_beats_baseline_on_latency(
        self, khameleon_result, baseline_result
    ):
        """The paper's core claim, at miniature scale: orders of
        magnitude lower response latency."""
        assert (
            khameleon_result.summary.mean_latency_s
            < baseline_result.summary.mean_latency_s / 5.0
        )

    def test_khameleon_beats_baseline_on_hits(
        self, khameleon_result, baseline_result
    ):
        assert (
            khameleon_result.summary.cache_hit_rate
            > baseline_result.summary.cache_hit_rate
        )


class TestDispatch:
    def test_known_names(self, app, trace):
        result = run_image_system("khameleon-uniform", app, trace, DEFAULT_ENV)
        assert result.system == "khameleon-uniform"

    def test_acc_spec_parsing(self, app, trace):
        result = run_image_system("acc-0.8-1", app, trace, DEFAULT_ENV)
        assert result.system == "acc-0.8-1"

    def test_bad_acc_spec(self, app, trace):
        with pytest.raises(ValueError):
            run_image_system("acc-5", app, trace, DEFAULT_ENV)

    def test_unknown_system(self, app, trace):
        with pytest.raises(ValueError):
            run_image_system("magic", app, trace, DEFAULT_ENV)


class TestPauseAndConvergence:
    def test_extend_with_pause_holds_position(self, trace):
        paused = extend_with_pause(trace, pause_s=4.0, hold_s=2.0)
        tail = [e for e in paused.events if e.time_s > 4.0]
        assert tail
        assert len({(e.x, e.y) for e in tail}) == 1
        assert all(e.request is None for e in tail)
        assert paused.duration_s <= 6.0

    def test_convergence_curve_monotone(self, app, trace):
        points = (0.1, 0.5, 1.0, 2.0, 4.0)
        curve = run_convergence(
            app, trace, DEFAULT_ENV, "khameleon", pause_s=5.0, hold_s=5.0,
            sample_points=points,
        )
        utilities = [u for _t, u in curve]
        assert all(b >= a for a, b in zip(utilities, utilities[1:]))
        assert utilities[-1] > 0.0

    def test_extend_with_pause_validation(self, trace):
        with pytest.raises(ValueError):
            extend_with_pause(trace, pause_s=1.0, hold_s=0.0)


class TestRunFalcon:
    def test_small_session_end_to_end(self):
        app = FalconApp(blocks_per_response=2)
        trace = FalconTraceGenerator(app, seed=1).generate(duration_s=40.0)
        result = run_falcon(app, trace, DEFAULT_ENV, db_scale="small")
        assert result.summary.num_requests == trace.num_requests
        assert result.extras["queries_executed"] > 0

    def test_backend_kind_validation(self):
        app = FalconApp()
        trace = FalconTraceGenerator(app, seed=1).generate(duration_s=20.0)
        with pytest.raises(ValueError):
            run_falcon(app, trace, DEFAULT_ENV, backend_kind="oracle")

    def test_scalable_not_slower_than_postgres(self):
        app = FalconApp(blocks_per_response=2)
        trace = FalconTraceGenerator(app, seed=6).generate(duration_s=60.0)
        pg = run_falcon(app, trace, DEFAULT_ENV, backend_kind="postgres")
        sc = run_falcon(app, trace, DEFAULT_ENV, backend_kind="scalable")
        assert (
            sc.summary.mean_latency_s
            <= pg.summary.mean_latency_s * 1.5
        )


class TestRunFleet:
    @pytest.fixture(scope="class")
    def fleet_result(self, app):
        traces = [
            MouseTraceGenerator(app.layout, seed=50 + i).generate(duration_s=6.0)
            for i in range(3)
        ]
        fleet_env = FleetEnvironment(num_sessions=3, env=DEFAULT_ENV)
        return run_fleet(app, traces, fleet_env, predictor="kalman")

    def test_every_session_is_measured(self, fleet_result):
        assert fleet_result.summary.num_sessions == 3
        assert all(s is not None for s in fleet_result.summary.per_session)
        per_session_total = sum(
            s.num_requests for s in fleet_result.summary.per_session
        )
        assert fleet_result.summary.aggregate.num_requests == per_session_total

    def test_sharing_diagnostics_reported(self, fleet_result):
        d = fleet_result.diagnostics
        assert d["sessions"] == 3
        assert d["blocks_sent"] > 0
        assert 0.0 < d["link_fairness"] <= 1.0
        assert 0.0 <= d["shared_hit_rate"] <= 1.0

    def test_rows_include_fleet_aggregate(self, fleet_result):
        rows = fleet_result.rows()
        assert rows[-1]["session"] == "fleet"
        agg = fleet_result.aggregate_row()
        assert agg["sessions"] == 3
        assert "link_fairness" in agg

    def test_trace_count_must_match_sessions(self, app):
        traces = [MouseTraceGenerator(app.layout, seed=1).generate(duration_s=2.0)]
        with pytest.raises(ValueError):
            run_fleet(app, traces, FleetEnvironment(num_sessions=2, env=DEFAULT_ENV))

    def test_deterministic(self, app):
        traces = [
            MouseTraceGenerator(app.layout, seed=60 + i).generate(duration_s=4.0)
            for i in range(2)
        ]
        fleet_env = FleetEnvironment(num_sessions=2, env=DEFAULT_ENV)
        a = run_fleet(app, traces, fleet_env, seed=4)
        b = run_fleet(app, traces, fleet_env, seed=4)
        assert a.summary.aggregate.as_dict() == b.summary.aggregate.as_dict()
        assert a.diagnostics == b.diagnostics


class TestRunFleetChurn:
    @pytest.fixture(scope="class")
    def churn_result(self, app):
        from repro.fleet import ArrivalConfig

        traces = [
            MouseTraceGenerator(app.layout, seed=50 + i).generate(duration_s=5.0)
            for i in range(5)
        ]
        # Dwell-free cap of 1: the first arrival is admitted and stays,
        # so some later user is rejected — admission order then differs
        # from plan order for nobody, but admitted indices are sparse.
        fleet_env = FleetEnvironment(
            num_sessions=5,
            env=DEFAULT_ENV,
            arrival=ArrivalConfig(
                rate_per_s=1.0, mean_dwell_s=2.0, dwell_sigma=0.0,
                max_concurrent=2, seed=9,
            ),
        )
        return run_fleet(app, traces, fleet_env, predictor="kalman")

    def test_churn_diagnostics_and_cohorts(self, churn_result):
        churn = churn_result.diagnostics["churn"]
        assert churn["arrivals"] == 5
        assert churn["admitted"] + churn["rejected"] == 5
        assert churn_result.cohorts  # per-cohort latency is reported
        assert "early_hit_rate" in churn_result.diagnostics

    def test_session_rows_are_labeled_by_plan_index(self, churn_result):
        """With rejections, admitted sessions are a sparse subset of the
        planned users; rows must name the *user*, not the list slot,
        so they stay joinable against traces/weights."""
        churn = churn_result.diagnostics["churn"]
        assert churn["rejected"] >= 1  # the scenario really rejects
        labels = churn_result.session_labels
        assert labels is not None
        assert len(labels) == churn["admitted"]
        assert labels == sorted(labels, key=int)
        assert set(labels) < {str(i) for i in range(5)}
        row_labels = [r["session"] for r in churn_result.rows()[:-1]]
        # Rows carry the plan labels (empty sessions are skipped).
        assert set(row_labels) <= set(labels)
        # At least one admitted user is NOT at their list position.
        assert labels != [str(i) for i in range(len(labels))]


class TestACCAsKhameleonPredictor:
    def test_acc_oracle_signal_drives_the_push_scheduler(self, app, trace):
        """Fig. 9's 'Khameleon vs ACC using perfect predictors': the
        ACC baselines' oracle signal plugged into Khameleon's push
        architecture outperforms the same signal in the pull-based
        prefetcher — the architecture, not the prediction, is the win."""
        from repro.experiments.runner import run_classic, run_khameleon

        kham = run_khameleon(app, trace, DEFAULT_ENV, predictor="acc-1-5")
        pull = run_classic(app, trace, DEFAULT_ENV, acc=(1.0, 5))
        assert kham.system == "khameleon-acc-1-5"
        assert kham.summary.mean_latency_s < pull.summary.mean_latency_s
        assert kham.summary.cache_hit_rate > pull.summary.cache_hit_rate

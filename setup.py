"""Legacy setup shim: enables editable installs where the ``wheel``
package is unavailable (pip falls back to ``setup.py develop``).
All metadata lives in pyproject.toml."""

from setuptools import setup

setup()

"""Connection-pool backend (§3.3).

The paper lists "a connection pool" among the backends Khameleon can
drive.  This backend models one: ``pool_size`` connections in front of
a per-request processing delay.  Fetches beyond the pool size *queue*
(FIFO) rather than degrade — the complementary failure mode to
:class:`~repro.backends.database.SimulatedSQLDatabase`'s latency
inflation, and the reason §5.4's throttle treats "backend request
limits in the same way as network constraints".
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from repro.core.blocks import ProgressiveResponse
from repro.encoding.base import ProgressiveEncoder
from repro.clock import Clock

from .base import Backend

__all__ = ["ConnectionPoolBackend"]


class ConnectionPoolBackend(Backend):
    """A fixed pool of connections with FIFO admission.

    ``service_time_s`` is the per-request processing time once a
    connection is acquired; waiting time in the admission queue adds on
    top, so observed latency = queue wait + service time.
    """

    def __init__(
        self,
        sim: Clock,
        encoder: ProgressiveEncoder,
        value_of: Callable[[int], Any] = lambda request: None,
        pool_size: int = 4,
        service_time_s: float = 0.050,
    ) -> None:
        if pool_size < 1:
            raise ValueError("pool needs at least one connection")
        if service_time_s < 0:
            raise ValueError("service time must be non-negative")
        super().__init__(sim)
        self.encoder = encoder
        self.value_of = value_of
        self.pool_size = pool_size
        self.service_time_s = service_time_s
        self._busy = 0
        self._waiting: deque[int] = deque()
        self.max_queue_depth = 0

    # -- Backend contract -------------------------------------------------

    def _produce(self, request: int) -> ProgressiveResponse:
        return self.encoder.encode(request, self.value_of(request))

    def _delay_s(self, request: int) -> float:  # pragma: no cover - unused
        return self.service_time_s

    @property
    def scalable_concurrency(self) -> Optional[int]:
        return self.pool_size

    @property
    def queue_depth(self) -> int:
        """Requests admitted but waiting for a connection."""
        return len(self._waiting)

    # -- pool admission ----------------------------------------------------

    def fetch(self, request: int, on_complete) -> None:
        hit = self._cache.get(request)
        if hit is not None:
            self.stats.cache_hits += 1
            self.sim.schedule(0.0, on_complete, hit)
            return
        waiting = self._inflight.get(request)
        if waiting is not None:
            waiting.append(on_complete)
            return
        self._inflight[request] = [on_complete]
        self.stats.fetches_started += 1
        self.stats.peak_concurrency = max(
            self.stats.peak_concurrency, len(self._inflight)
        )
        self._admit(request)

    def _admit(self, request: int) -> None:
        if self._busy < self.pool_size:
            self._busy += 1
            self.sim.schedule(self.service_time_s, self._finish, request)
        else:
            self._waiting.append(request)
            self.max_queue_depth = max(self.max_queue_depth, len(self._waiting))

    def _finish(self, request: int) -> None:
        self._busy -= 1
        self._complete(request)
        if self._waiting:
            self._admit(self._waiting.popleft())

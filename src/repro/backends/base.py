"""Backend API (§3.3, §5.4).

A backend is "a file system, a database engine, a connection pool, or
any service that can process requests and return progressively encoded
blocks".  The sender asks a backend for a request's response; the
backend completes asynchronously on the simulator clock, modelling its
processing delay, and the server caches the encoded result so repeat
fetches are free.

Backends report their *scalable concurrency* (§5.4): how many requests
they can process at once without per-request degradation.  File
systems and key-value stores are effectively unbounded; PostgreSQL in
the Falcon experiments degrades beyond ~15 concurrent queries, which
is what the scheduler's throttle heuristic consumes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:
    from repro.core.blocks import ProgressiveResponse

from repro.clock import Clock

__all__ = ["Backend", "BackendFetchError", "BackendStats", "BackendWrapper"]

# Imported lazily to keep this module cycle-free: repro.core pulls in
# repro.sim, whose failure injectors subclass BackendWrapper below.
OnComplete = Callable[["ProgressiveResponse"], None]


class BackendFetchError(RuntimeError):
    """A fetch attempt failed before the backend accepted it.

    Raised synchronously from ``fetch`` by fault-injecting wrappers
    (``repro.sim.failures.ErraticBackend``); retry wrappers catch it
    and reschedule on the clock instead of letting it propagate into
    the sender.
    """

    def __init__(self, request: int, message: str = "") -> None:
        super().__init__(message or f"fetch failed for request {request}")
        self.request = request


class BackendStats:
    """Counters shared by all backends (for experiment reporting)."""

    def __init__(self) -> None:
        self.fetches_started = 0
        self.fetches_completed = 0
        self.cache_hits = 0
        self.piggybacked = 0
        self.peak_concurrency = 0

    @property
    def shared_hits(self) -> int:
        """Fetches answered without new backend work (cache + piggyback).

        With several sessions sharing one backend this counts the
        cross-session dedup benefit: a fetch that found the response
        cached, or joined another session's in-flight fetch.
        """
        return self.cache_hits + self.piggybacked

    def snapshot(self) -> dict:
        return {
            "fetches_started": self.fetches_started,
            "fetches_completed": self.fetches_completed,
            "cache_hits": self.cache_hits,
            "piggybacked": self.piggybacked,
            "peak_concurrency": self.peak_concurrency,
        }


class Backend:
    """Base backend: async fetch with a server-side response cache."""

    def __init__(self, sim: Clock) -> None:
        self.sim = sim
        self.stats = BackendStats()
        self._cache: dict[int, ProgressiveResponse] = {}
        self._inflight: dict[int, list[OnComplete]] = {}

    # -- subclass contract -------------------------------------------

    def _produce(self, request: int) -> ProgressiveResponse:
        """Compute/encode the response (synchronously, at completion time)."""
        raise NotImplementedError

    def _delay_s(self, request: int) -> float:
        """Processing delay for ``request`` given current load."""
        raise NotImplementedError

    @property
    def scalable_concurrency(self) -> Optional[int]:
        """Concurrent requests handled without degradation (None = unbounded)."""
        return None

    # -- public API ----------------------------------------------------

    @property
    def active_requests(self) -> int:
        """Requests currently being processed."""
        return len(self._inflight)

    def is_cached(self, request: int) -> bool:
        return request in self._cache

    def is_inflight(self, request: int) -> bool:
        """True while a fetch for ``request`` is being processed."""
        return request in self._inflight

    def is_materialized(self, request: int) -> bool:
        """Cached or in flight — the §5.4 throttle's admission rule."""
        return request in self._cache or request in self._inflight

    def cached(self, request: int) -> Optional[ProgressiveResponse]:
        return self._cache.get(request)

    def fetch(self, request: int, on_complete: OnComplete) -> None:
        """Request the encoded response; completion is asynchronous.

        A cached response completes on the next simulator step (cost 0);
        a fetch already in flight for the same request piggybacks on it
        rather than issuing a duplicate.
        """
        hit = self._cache.get(request)
        if hit is not None:
            self.stats.cache_hits += 1
            self.sim.schedule(0.0, on_complete, hit)
            return
        waiting = self._inflight.get(request)
        if waiting is not None:
            self.stats.piggybacked += 1
            waiting.append(on_complete)
            return
        self._inflight[request] = [on_complete]
        self.stats.fetches_started += 1
        self.stats.peak_concurrency = max(self.stats.peak_concurrency, len(self._inflight))
        self.sim.schedule(self._delay_s(request), self._complete, request)

    def _complete(self, request: int) -> None:
        response = self._produce(request)
        self._cache[request] = response
        callbacks = self._inflight.pop(request, [])
        self.stats.fetches_completed += 1
        for cb in callbacks:
            cb(response)

    def evict(self, request: int) -> None:
        """Drop a cached response (for bounded server memory tests)."""
        self._cache.pop(request, None)


class BackendWrapper:
    """Delegating base for backends that wrap another backend.

    Implements the full ``Backend`` surface the sender/fleet stack
    consumes (stats, concurrency, cache/in-flight introspection,
    fetch/evict) as pass-throughs, so fault injectors and retry layers
    only override the behavior they change.  Wrappers compose: a
    retry layer can wrap a fault injector wrapping a real backend.
    """

    def __init__(self, inner: "Backend | BackendWrapper") -> None:
        self.inner = inner
        self.sim: Clock = inner.sim

    @property
    def stats(self) -> BackendStats:
        return self.inner.stats

    @property
    def active_requests(self) -> int:
        return self.inner.active_requests

    @property
    def scalable_concurrency(self) -> Optional[int]:
        return self.inner.scalable_concurrency

    def is_cached(self, request: int) -> bool:
        return self.inner.is_cached(request)

    def is_inflight(self, request: int) -> bool:
        return self.inner.is_inflight(request)

    def is_materialized(self, request: int) -> bool:
        return self.inner.is_materialized(request)

    def cached(self, request: int) -> Optional[ProgressiveResponse]:
        return self.inner.cached(request)

    def evict(self, request: int) -> None:
        self.inner.evict(request)

    def fetch(self, request: int, on_complete: OnComplete) -> None:
        self.inner.fetch(request, on_complete)

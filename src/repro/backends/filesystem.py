"""File-system and key-value backends (§3.3).

The image application "pre-loads the file system with the blocks for
progressively encoded images": fetching is a fixed, predictable delay
and the store scales to arbitrarily many concurrent reads — the
paper's default backend assumptions (§3.3, "By default, we assume that
retrieving blocks from the backend incurs a predictable delay ...
and that the backend is scalable").
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Optional

from repro.core.blocks import ProgressiveResponse
from repro.encoding.base import ProgressiveEncoder
from repro.clock import Clock

from .base import Backend

__all__ = ["FileSystemBackend", "KeyValueBackend"]


class FileSystemBackend(Backend):
    """Pre-encoded responses behind a fixed fetch delay.

    ``encoder.encode(request, None)`` is invoked lazily at completion —
    equivalent to reading pre-encoded blocks off disk.  The fetch delay
    models the backend-processing share of the experiments' "request
    latency" knob (§6.1 splits request latency into network latency +
    simulated backend processing cost).
    """

    def __init__(
        self,
        sim: Clock,
        encoder: ProgressiveEncoder,
        fetch_delay_s: float = 0.0,
    ) -> None:
        if fetch_delay_s < 0:
            raise ValueError("fetch delay must be non-negative")
        super().__init__(sim)
        self.encoder = encoder
        self.fetch_delay_s = fetch_delay_s

    def _produce(self, request: int) -> ProgressiveResponse:
        return self.encoder.encode(request, None)

    def _delay_s(self, request: int) -> float:
        return self.fetch_delay_s

    @property
    def scalable_concurrency(self) -> Optional[int]:
        return None  # unbounded


class KeyValueBackend(Backend):
    """A key-value store: values put up front, encoded on fetch.

    Anna-style KV stores [81] are the paper's example of a backend that
    scales to any number of concurrent speculative requests.  The value
    for a request id comes from ``value_of``; per-get latency is fixed.
    """

    def __init__(
        self,
        sim: Clock,
        encoder: ProgressiveEncoder,
        value_of: Callable[[int], Any],
        get_latency_s: float = 0.001,
    ) -> None:
        if get_latency_s < 0:
            raise ValueError("get latency must be non-negative")
        super().__init__(sim)
        self.encoder = encoder
        self.value_of = value_of
        self.get_latency_s = get_latency_s

    def _produce(self, request: int) -> ProgressiveResponse:
        return self.encoder.encode(request, self.value_of(request))

    def _delay_s(self, request: int) -> float:
        return self.get_latency_s

    @property
    def scalable_concurrency(self) -> Optional[int]:
        return None  # unbounded

"""Backend-scalability throttle (§5.4).

Khameleon assumes scalable backends, but "in cases where the backend
can only scale to a limited number of requests, Khameleon employs a
heuristic to limit the amount of speculation": with a backend that
scales to ``C`` concurrent requests and ``n`` currently processing,
schedules are post-processed so they "do not refer to blocks from more
than ``C - n`` distinct requests" — backend limits are treated the
same way as network constraints.

:class:`BackendThrottle` implements that post-processing over any
iterable of scheduled blocks: blocks whose responses are already
materialized pass through freely; blocks needing a *new* backend fetch
are admitted only while the distinct-request budget lasts, and the
rest are deferred (handed back to be rescheduled later).

For multi-tenant fleets, :class:`WeightedBackendThrottle` splits one
``C``-slot budget among attached sessions in proportion to their
weights — mirroring the downlink's weighted fair shares on the backend
side, so a weight-2 tenant gets roughly twice the speculation slots of
a weight-1 tenant under contention.  Sessions attach at arrival and
detach at departure; a departing session's share returns to the pool.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, TypeVar

__all__ = [
    "BackendThrottle",
    "WeightedBackendThrottle",
    "SessionThrottleShare",
    "throttle_schedule",
]

T = TypeVar("T")


def throttle_schedule(
    schedule: Sequence[T],
    request_of: Callable[[T], int],
    is_materialized: Callable[[int], bool],
    available_slots: int,
) -> tuple[list[T], list[T]]:
    """Split ``schedule`` into (admitted, deferred) per the §5.4 rule.

    Walks the schedule in order.  A block is admitted if its request's
    response is already materialized (cached or in flight), or if
    admitting it keeps the number of distinct *new* requests within
    ``available_slots``.  Deferred blocks keep their relative order.
    """
    if available_slots < 0:
        raise ValueError("available_slots must be non-negative")
    admitted: list[T] = []
    deferred: list[T] = []
    new_requests: set[int] = set()
    for item in schedule:
        request = request_of(item)
        if is_materialized(request) or request in new_requests:
            admitted.append(item)
        elif len(new_requests) < available_slots:
            new_requests.add(request)
            admitted.append(item)
        else:
            deferred.append(item)
    return admitted, deferred


class BackendThrottle:
    """Stateful §5.4 throttle bound to a backend's live counters.

    ``capacity`` is the offline-benchmarked scalable concurrency
    (``C``); ``active`` is a callable returning the number of requests
    the backend is currently processing (``n``).
    """

    def __init__(self, capacity: int, active: Callable[[], int]) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._active = active
        self.deferred_blocks = 0

    @property
    def available_slots(self) -> int:
        return max(0, self.capacity - self._active())

    def charge(self, request: int) -> None:
        """Record that an admitted block will issue a fetch for ``request``.

        The global budget reads the backend's own active-request count,
        so there is nothing to track here; weighted shares override this
        to attribute the slot to the admitting session.
        """

    def apply(
        self,
        schedule: Sequence[T],
        request_of: Callable[[T], int],
        is_materialized: Callable[[int], bool],
    ) -> tuple[list[T], list[T]]:
        admitted, deferred = throttle_schedule(
            schedule, request_of, is_materialized, self.available_slots
        )
        self.deferred_blocks += len(deferred)
        return admitted, deferred


class SessionThrottleShare:
    """One session's weight-proportional slice of a shared §5.4 budget.

    Exposes the same admission surface a
    :class:`~repro.core.sender.Sender` uses on :class:`BackendThrottle`
    (``available_slots`` + ``charge``).  The sender charges each request
    it admits for a *new* backend fetch; a charged request occupies one
    of this session's slots until its fetch completes (checked lazily
    against the backend's in-flight set, so no completion hook is
    needed).  Piggybacked fetches are never charged — only the session
    that started the fetch holds the slot, exactly as the backend only
    processes it once.
    """

    def __init__(
        self, shared: "WeightedBackendThrottle", weight: float, label: str
    ) -> None:
        if weight <= 0:
            raise ValueError("throttle share weight must be positive")
        self.shared = shared
        self.weight = weight
        self.label = label
        self._charged: set[int] = set()

    @property
    def active_requests(self) -> int:
        """Distinct requests this session charged that are still in flight."""
        self._charged = {r for r in self._charged if self.shared._is_inflight(r)}
        return len(self._charged)

    @property
    def slot_share(self) -> int:
        """This session's current slice of the capacity (≥ 1)."""
        return self.shared.share_of(self)

    @property
    def available_slots(self) -> int:
        """Slots this session may still spend on *new* fetches.

        Bounded by both the weighted slice and the backend's live
        global headroom: around churn events (a new tenant shrinking
        everyone's slice, a leaver's fetches still draining) the slices
        alone would transiently oversubscribe ``C`` — the hard §5.4
        budget must hold regardless.
        """
        available = self.slot_share - self.active_requests
        headroom = self.shared.global_headroom()
        if headroom is not None:
            available = min(available, headroom)
        return max(0, available)

    def charge(self, request: int) -> None:
        self._charged.add(request)


class WeightedBackendThrottle:
    """Shared §5.4 budget split by per-session weights.

    ``capacity`` is the backend's scalable concurrency ``C``;
    ``is_inflight`` is the backend's in-flight predicate (used to expire
    charges when fetches complete).  Sessions :meth:`attach` with the
    same weight as their downlink fair share and :meth:`detach` on
    departure, at which point their slice returns to the survivors.
    Slices are a largest-remainder apportionment of ``C`` over the
    weights (attach order breaks remainder ties), so they sum to
    exactly ``C`` — no slot is stranded and none is double-counted —
    except that every tenant keeps a floor of one slot: a low-weight
    session is never starved of speculation entirely, at the cost of
    mild oversubscription when there are more tenants than slots or
    weights are extreme relative to ``C``.
    """

    def __init__(
        self,
        capacity: int,
        is_inflight: Callable[[int], bool],
        active: Optional[Callable[[], int]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._is_inflight = is_inflight
        self._active = active
        self._shares: list[SessionThrottleShare] = []
        self._slices: dict[int, int] = {}  # id(share) -> apportioned slots

    def global_headroom(self) -> Optional[int]:
        """Capacity minus the backend's live request count (if known)."""
        if self._active is None:
            return None
        return self.capacity - self._active()

    def attach(
        self, weight: float = 1.0, label: Optional[str] = None
    ) -> SessionThrottleShare:
        share = SessionThrottleShare(
            self, weight, label or f"share{len(self._shares)}"
        )
        self._shares.append(share)
        self._apportion()
        return share

    def detach(self, share: SessionThrottleShare) -> None:
        if share in self._shares:
            self._shares.remove(share)
            self._apportion()

    @property
    def total_weight(self) -> float:
        return sum(s.weight for s in self._shares)

    @property
    def attached(self) -> int:
        return len(self._shares)

    def share_of(self, share: SessionThrottleShare) -> int:
        return self._slices.get(id(share), self.capacity)

    def _apportion(self) -> None:
        """Largest-remainder split of ``capacity`` over attached weights."""
        total = self.total_weight
        if not self._shares or total <= 0:
            self._slices = {}
            return
        quotas = [self.capacity * s.weight / total for s in self._shares]
        slots = [int(q) for q in quotas]
        leftover = self.capacity - sum(slots)
        by_remainder = sorted(
            range(len(quotas)), key=lambda i: quotas[i] - slots[i], reverse=True
        )
        for i in by_remainder[:leftover]:
            slots[i] += 1
        self._slices = {
            id(share): max(1, n) for share, n in zip(self._shares, slots)
        }

"""Backend-scalability throttle (§5.4).

Khameleon assumes scalable backends, but "in cases where the backend
can only scale to a limited number of requests, Khameleon employs a
heuristic to limit the amount of speculation": with a backend that
scales to ``C`` concurrent requests and ``n`` currently processing,
schedules are post-processed so they "do not refer to blocks from more
than ``C - n`` distinct requests" — backend limits are treated the
same way as network constraints.

:class:`BackendThrottle` implements that post-processing over any
iterable of scheduled blocks: blocks whose responses are already
materialized pass through freely; blocks needing a *new* backend fetch
are admitted only while the distinct-request budget lasts, and the
rest are deferred (handed back to be rescheduled later).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, TypeVar

__all__ = ["BackendThrottle", "throttle_schedule"]

T = TypeVar("T")


def throttle_schedule(
    schedule: Sequence[T],
    request_of: Callable[[T], int],
    is_materialized: Callable[[int], bool],
    available_slots: int,
) -> tuple[list[T], list[T]]:
    """Split ``schedule`` into (admitted, deferred) per the §5.4 rule.

    Walks the schedule in order.  A block is admitted if its request's
    response is already materialized (cached or in flight), or if
    admitting it keeps the number of distinct *new* requests within
    ``available_slots``.  Deferred blocks keep their relative order.
    """
    if available_slots < 0:
        raise ValueError("available_slots must be non-negative")
    admitted: list[T] = []
    deferred: list[T] = []
    new_requests: set[int] = set()
    for item in schedule:
        request = request_of(item)
        if is_materialized(request) or request in new_requests:
            admitted.append(item)
        elif len(new_requests) < available_slots:
            new_requests.add(request)
            admitted.append(item)
        else:
            deferred.append(item)
    return admitted, deferred


class BackendThrottle:
    """Stateful §5.4 throttle bound to a backend's live counters.

    ``capacity`` is the offline-benchmarked scalable concurrency
    (``C``); ``active`` is a callable returning the number of requests
    the backend is currently processing (``n``).
    """

    def __init__(self, capacity: int, active: Callable[[], int]) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._active = active
        self.deferred_blocks = 0

    @property
    def available_slots(self) -> int:
        return max(0, self.capacity - self._active())

    def apply(
        self,
        schedule: Sequence[T],
        request_of: Callable[[T], int],
        is_materialized: Callable[[int], bool],
    ) -> tuple[list[T], list[T]]:
        admitted, deferred = throttle_schedule(
            schedule, request_of, is_materialized, self.available_slots
        )
        self.deferred_blocks += len(deferred)
        return admitted, deferred

"""Deadline/retry/backoff fetch path.

A production backend fails: transient query errors, connection resets,
overload rejections.  :class:`RetryingBackend` wraps any backend and
turns synchronous :class:`BackendFetchError` failures into scheduled
retries with exponential backoff and deterministic jitter, bounded by
an attempt budget and a wall deadline.  It is built purely on the
``Clock`` seam (``sim.now`` / ``sim.schedule``), so the same policy
runs identically under the discrete-event ``Simulator`` and the
asyncio ``WallClock``.

When the budget or deadline is exhausted the fetch is *abandoned*: the
callback never fires, the abandonment is counted, and the rest of the
stack degrades instead of hanging — the sender's pump stalls only
until the next prediction refresh re-requests the block.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.backends.base import BackendFetchError, BackendWrapper, OnComplete

__all__ = ["RetryPolicy", "RetryingBackend"]


@dataclass(frozen=True)
class RetryPolicy:
    """When and how often to retry a failed fetch.

    ``backoff_s(request, attempt)`` is deterministic: the jitter term
    is derived from a crc32 hash of ``(request, attempt)``, not from a
    live RNG, so a simulated run and a wall-clock run of the same
    fault schedule retry at identical offsets.
    """

    max_attempts: int = 4
    base_backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 1.0
    deadline_s: float = 5.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff_s(self, request: int, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based) of ``request``."""
        base = self.base_backoff_s * self.backoff_factor ** (attempt - 1)
        base = min(base, self.max_backoff_s)
        if self.jitter == 0.0:
            return base
        digest = zlib.crc32(f"{request}:{attempt}".encode()) & 0xFFFFFFFF
        # Spread in [1 - jitter, 1 + jitter), deterministically.
        spread = 1.0 + self.jitter * (2.0 * (digest / 2**32) - 1.0)
        return base * spread


class RetryingBackend(BackendWrapper):
    """Wraps any backend; retries failed fetches on the clock.

    The wrapped backend signals a transient failure by raising
    :class:`BackendFetchError` from ``fetch``.  Cache hits and
    piggybacked fetches never reach the failure path (the inner
    backend answers them before attempting real work), matching the
    FlakyBackend invariant that dedup'd fetches are safe.
    """

    def __init__(self, inner, policy: RetryPolicy | None = None) -> None:
        super().__init__(inner)
        self.policy = policy or RetryPolicy()
        self.fetches_failed = 0
        self.retries_scheduled = 0
        self.fetches_abandoned = 0

    def snapshot(self) -> dict:
        return {
            "fetches_failed": self.fetches_failed,
            "retries_scheduled": self.retries_scheduled,
            "fetches_abandoned": self.fetches_abandoned,
        }

    def fetch(self, request: int, on_complete: OnComplete) -> None:
        self._attempt(request, on_complete, attempt=1, started_s=self.sim.now)

    def _attempt(
        self, request: int, on_complete: OnComplete, attempt: int, started_s: float
    ) -> None:
        try:
            self.inner.fetch(request, on_complete)
        except BackendFetchError:
            self.fetches_failed += 1
            if attempt >= self.policy.max_attempts:
                self.fetches_abandoned += 1
                return
            delay = self.policy.backoff_s(request, attempt)
            if self.sim.now + delay - started_s > self.policy.deadline_s:
                self.fetches_abandoned += 1
                return
            self.retries_scheduled += 1
            self.sim.schedule(
                delay, self._attempt, request, on_complete, attempt + 1, started_s
            )

"""Backends: file system, key-value, mini SQL column store (real
histogram execution + simulated PostgreSQL-like latency/concurrency),
the ScalableSQL simulation, and the §5.4 speculation throttle."""

from .base import Backend, BackendFetchError, BackendStats, BackendWrapper
from .database import ColumnTable, HistogramQuery, RangeFilter, SimulatedSQLDatabase
from .filesystem import FileSystemBackend, KeyValueBackend
from .pool import ConnectionPoolBackend
from .retry import RetryingBackend, RetryPolicy
from .scalable import ScalableSQLDatabase
from .throttle import (
    BackendThrottle,
    SessionThrottleShare,
    WeightedBackendThrottle,
    throttle_schedule,
)

__all__ = [
    "Backend",
    "BackendFetchError",
    "BackendStats",
    "BackendWrapper",
    "RetryPolicy",
    "RetryingBackend",
    "FileSystemBackend",
    "KeyValueBackend",
    "ConnectionPoolBackend",
    "ColumnTable",
    "HistogramQuery",
    "RangeFilter",
    "SimulatedSQLDatabase",
    "ScalableSQLDatabase",
    "BackendThrottle",
    "WeightedBackendThrottle",
    "SessionThrottleShare",
    "throttle_schedule",
]

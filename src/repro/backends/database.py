"""Mini column-store SQL database (§6.4).

The Falcon experiments run filtered-histogram queries ("low
dimensional data cube slices") against PostgreSQL.  This module
provides the equivalent substrate: an in-memory column store that
executes the same queries **for real** over NumPy columns, wrapped in
a latency/concurrency simulation calibrated to the paper's
measurements:

* *Small* (1M rows): ≈ 800 ms per query in isolation,
* *Big* (7M rows): ≈ 1.5–2.5 s per query,
* per-query performance degrades once more than ``concurrency_limit``
  (= 15, measured offline in the paper) queries run at once — the
  property that makes indiscriminate speculation self-defeating and
  motivates the §5.4 throttle.

Queries are axis-aligned: a histogram over one column under a
conjunction of range filters on other columns — exactly Falcon's
workload shape.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.clock import Clock

__all__ = ["RangeFilter", "HistogramQuery", "ColumnTable", "SimulatedSQLDatabase"]


@dataclass(frozen=True)
class RangeFilter:
    """Half-open range predicate ``lo <= column < hi``."""

    column: str
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.hi <= self.lo:
            raise ValueError(f"empty range [{self.lo}, {self.hi}) on {self.column}")


@dataclass(frozen=True)
class HistogramQuery:
    """``SELECT bin(column), count(*) ... WHERE filters GROUP BY 1``.

    ``domain`` fixes the binning extent so results are comparable
    across filters (Falcon charts have fixed axes).
    """

    column: str
    bins: int
    domain: tuple[float, float]
    filters: tuple[RangeFilter, ...] = ()

    def __post_init__(self) -> None:
        if self.bins < 1:
            raise ValueError("bins must be >= 1")
        if self.domain[1] <= self.domain[0]:
            raise ValueError("empty domain")

    def cache_key(self) -> str:
        parts = [self.column, str(self.bins), repr(self.domain)]
        for f in sorted(self.filters, key=lambda f: f.column):
            parts.append(f"{f.column}:{f.lo}:{f.hi}")
        return "|".join(parts)


class ColumnTable:
    """An immutable in-memory column store."""

    def __init__(self, columns: Dict[str, np.ndarray]) -> None:
        if not columns:
            raise ValueError("table needs at least one column")
        lengths = {len(v) for v in columns.values()}
        if len(lengths) != 1:
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
        self.columns = {k: np.asarray(v) for k, v in columns.items()}
        self.num_rows = lengths.pop()

    def column(self, name: str) -> np.ndarray:
        if name not in self.columns:
            raise KeyError(f"no column {name!r}; have {sorted(self.columns)}")
        return self.columns[name]

    def mask(self, filters: Sequence[RangeFilter]) -> np.ndarray:
        """Boolean row mask for a conjunction of range filters."""
        mask = np.ones(self.num_rows, dtype=bool)
        for f in filters:
            col = self.column(f.column)
            mask &= (col >= f.lo) & (col < f.hi)
        return mask

    def histogram(self, query: HistogramQuery) -> np.ndarray:
        """Execute the query exactly: per-bin counts (length ``query.bins``)."""
        col = self.column(query.column)
        mask = self.mask(query.filters) if query.filters else None
        values = col[mask] if mask is not None else col
        lo, hi = query.domain
        counts, _edges = np.histogram(values, bins=query.bins, range=(lo, hi))
        return counts.astype(np.int64)

    def histogram_rows(self, query: HistogramQuery) -> np.ndarray:
        """Result as (bin, count) rows — the wire format Falcon encodes."""
        counts = self.histogram(query)
        bins = np.arange(query.bins)
        return np.column_stack([bins, counts])


def _stable_jitter(key: str, seed: int) -> float:
    """Deterministic per-query jitter factor in [0, 1)."""
    digest = hashlib.sha256(f"{seed}:{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class SimulatedSQLDatabase:
    """Executes :class:`HistogramQuery` with PostgreSQL-like behaviour.

    Results are computed exactly; only *when* they complete is
    simulated.  Each query's isolated latency is
    ``base_latency_s * (1 - jitter/2 + jitter * u(query))`` for a
    deterministic per-query ``u`` — the Small dataset's 0.8 s base with
    25% jitter spans 0.7–0.9 s; Big uses a 2.0 s base with 50% jitter
    for the paper's 1.5–2.5 s.  Under load, latency inflates by
    ``max(1, concurrent / concurrency_limit)``.
    """

    def __init__(
        self,
        sim: Clock,
        table: ColumnTable,
        base_latency_s: float,
        concurrency_limit: int = 15,
        jitter: float = 0.25,
        seed: int = 0,
    ) -> None:
        if base_latency_s < 0:
            raise ValueError("latency must be non-negative")
        if concurrency_limit < 1:
            raise ValueError("concurrency limit must be >= 1")
        if not 0 <= jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")
        self.sim = sim
        self.table = table
        self.base_latency_s = base_latency_s
        self.concurrency_limit = concurrency_limit
        self.jitter = jitter
        self.seed = seed
        self._active = 0
        self.queries_executed = 0
        self.peak_concurrency = 0

    @property
    def active_queries(self) -> int:
        return self._active

    def isolated_latency_s(self, query: HistogramQuery) -> float:
        """Latency when running alone (the ScalableSQL 'offline log')."""
        u = _stable_jitter(query.cache_key(), self.seed)
        return self.base_latency_s * (1.0 - self.jitter / 2.0 + self.jitter * u)

    def current_latency_s(self, query: HistogramQuery) -> float:
        """Isolated latency inflated by the current concurrency overload."""
        overload = max(1.0, (self._active + 1) / self.concurrency_limit)
        return self.isolated_latency_s(query) * overload

    def execute(
        self, query: HistogramQuery, on_complete: Callable[[np.ndarray], None]
    ) -> float:
        """Run ``query``; ``on_complete(rows)`` fires at simulated completion.

        Returns the latency charged to this query.
        """
        latency = self.current_latency_s(query)
        self._active += 1
        self.queries_executed += 1
        self.peak_concurrency = max(self.peak_concurrency, self._active)
        self.sim.schedule(latency, self._finish, query, on_complete)
        return latency

    def _finish(
        self, query: HistogramQuery, on_complete: Callable[[np.ndarray], None]
    ) -> None:
        self._active -= 1
        on_complete(self.table.histogram_rows(query))

"""Simulated scalable SQL backend (§6.4, "ScalableSQL").

The paper's second Falcon backend: "We first precompute and log each
query's execution time when running in isolation.  The backend answers
queries from a cache and simulates the latency."  Concretely it
behaves like the PostgreSQL box with an infinite concurrency limit:
per-query latency never inflates under speculative load, which is what
lets the Kalman predictor hedge aggressively (blue lines in Fig. 14).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.clock import Clock

from .database import ColumnTable, HistogramQuery, SimulatedSQLDatabase

__all__ = ["ScalableSQLDatabase"]


class ScalableSQLDatabase:
    """Replays offline-logged isolated latencies; no concurrency penalty.

    Shares the latency model of :class:`SimulatedSQLDatabase` (so the
    two backends are comparable query-for-query) but answers from a
    result cache and never degrades under load.
    """

    def __init__(
        self,
        sim: Clock,
        table: ColumnTable,
        base_latency_s: float,
        jitter: float = 0.25,
        seed: int = 0,
    ) -> None:
        # Reuse the latency bookkeeping of the simulated DB with an
        # effectively unbounded concurrency limit.
        self._db = SimulatedSQLDatabase(
            sim,
            table,
            base_latency_s,
            concurrency_limit=10**9,
            jitter=jitter,
            seed=seed,
        )
        self.sim = sim
        self._results: Dict[str, np.ndarray] = {}
        self.queries_executed = 0
        self.result_cache_hits = 0

    @property
    def active_queries(self) -> int:
        return self._db.active_queries

    @property
    def concurrency_limit(self) -> int:
        return self._db.concurrency_limit

    def isolated_latency_s(self, query: HistogramQuery) -> float:
        return self._db.isolated_latency_s(query)

    def execute(
        self, query: HistogramQuery, on_complete: Callable[[np.ndarray], None]
    ) -> float:
        """Answer from cache when possible; latency is the logged value."""
        key = query.cache_key()
        cached = self._results.get(key)
        self.queries_executed += 1
        if cached is not None:
            self.result_cache_hits += 1
            self.sim.schedule(0.0, on_complete, cached)
            return 0.0
        latency = self.isolated_latency_s(query)

        def _store(rows: np.ndarray) -> None:
            self._results[key] = rows
            on_complete(rows)

        self._db.execute(query, _store)
        return latency

"""Interaction traces (§6.1).

A trace is a time-ordered sequence of interaction events — mouse
samples, some of which trigger requests.  The experiments replay traces
against each system under test; the Oracle predictor reads the same
trace to look up the future.

The paper's image-application traces were collected from 14 graduate
students over 3 minutes each (≈ 20 ms mean think time, bursts up to 32
requests/s); its Falcon traces came from a published benchmark [7].
Neither dataset is redistributable, so :mod:`repro.workloads.mouse`
and :mod:`repro.workloads.falcon` generate statistically similar
traces (see DESIGN.md §2); this module defines the common structure.
"""

from __future__ import annotations

import bisect
import json
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

__all__ = ["TraceEvent", "InteractionTrace"]


@dataclass(frozen=True)
class TraceEvent:
    """One interaction sample.

    ``request`` is set when this event triggers a request (the mouse
    entered a new thumbnail / hovered a new chart); pure movement
    samples have ``request=None``.
    """

    time_s: float
    x: float
    y: float
    request: Optional[int] = None


@dataclass
class InteractionTrace:
    """A replayable, queryable event sequence."""

    events: list[TraceEvent]
    name: str = "trace"

    def __post_init__(self) -> None:
        if not self.events:
            raise ValueError("trace must contain at least one event")
        times = [e.time_s for e in self.events]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("events must be time-ordered")
        self._times = times
        self._request_events = [e for e in self.events if e.request is not None]
        self._request_times = [e.time_s for e in self._request_events]

    # -- bulk views ----------------------------------------------------

    @property
    def duration_s(self) -> float:
        return self.events[-1].time_s

    @property
    def num_requests(self) -> int:
        return len(self._request_events)

    def requests(self) -> list[TraceEvent]:
        """The request-bearing events, in order."""
        return list(self._request_events)

    def think_times_s(self) -> np.ndarray:
        """Gaps between consecutive requests (the Fig. 5 distribution)."""
        if len(self._request_times) < 2:
            return np.empty(0)
        return np.diff(np.asarray(self._request_times))

    # -- point queries (oracle support) ---------------------------------

    def position_at(self, time_s: float) -> tuple[float, float]:
        """Mouse position at ``time_s`` (linear interpolation, clamped)."""
        idx = bisect.bisect_right(self._times, time_s)
        if idx <= 0:
            first = self.events[0]
            return first.x, first.y
        if idx >= len(self.events):
            last = self.events[-1]
            return last.x, last.y
        a, b = self.events[idx - 1], self.events[idx]
        if b.time_s == a.time_s:
            return b.x, b.y
        w = (time_s - a.time_s) / (b.time_s - a.time_s)
        return a.x + w * (b.x - a.x), a.y + w * (b.y - a.y)

    def request_active_at(self, time_s: float) -> Optional[int]:
        """Most recent request at or before ``time_s`` (oracle lookup)."""
        idx = bisect.bisect_right(self._request_times, time_s)
        if idx <= 0:
            return None
        return self._request_events[idx - 1].request

    def next_request_after(self, time_s: float) -> Optional[TraceEvent]:
        """First request event strictly after ``time_s``."""
        idx = bisect.bisect_right(self._request_times, time_s)
        if idx >= len(self._request_events):
            return None
        return self._request_events[idx]

    # -- transforms ------------------------------------------------------

    def truncated(self, duration_s: float) -> "InteractionTrace":
        """Prefix of the trace up to ``duration_s``."""
        kept = [e for e in self.events if e.time_s <= duration_s]
        if not kept:
            raise ValueError("truncation removed every event")
        return InteractionTrace(kept, name=f"{self.name}[:{duration_s}s]")

    def shifted(self, offset_s: float) -> "InteractionTrace":
        """The same interaction re-based ``offset_s`` later on the clock.

        Churn fleets replay a user's trace from their arrival instant;
        a *time-indexed* reader of the same trace (the Oracle predictor
        queries ``position_at`` by absolute simulator time) must see
        the timeline the replay actually uses, or it would read the
        user's future from the wrong point in their session.
        """
        if offset_s == 0.0:
            return self
        if offset_s < 0:
            raise ValueError("shift offset must be non-negative")
        events = [
            TraceEvent(e.time_s + offset_s, e.x, e.y, e.request)
            for e in self.events
        ]
        return InteractionTrace(events, name=f"{self.name}+{offset_s:g}s")

    # -- serialization ----------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "name": self.name,
                "events": [
                    [e.time_s, e.x, e.y, e.request] for e in self.events
                ],
            }
        )

    @classmethod
    def from_json(cls, payload: str) -> "InteractionTrace":
        data = json.loads(payload)
        events = [
            TraceEvent(time_s=t, x=x, y=y, request=r)
            for t, x, y, r in data["events"]
        ]
        return cls(events, name=data.get("name", "trace"))

"""The Falcon visualization application, ported to Khameleon (§6.4).

Falcon renders six linked histograms; hovering a chart makes Falcon
issue five SQL queries (one data slice per *other* chart) so that
subsequent brushing in the hovered chart updates the others
instantaneously.  The paper calls this five-query group **a single
request**: the request universe is the set of views, the hovered view
is the request id.

This module provides

* :class:`FalconApp` — layout, chart specs, per-request query
  generation, selection state, and factories for the two backends the
  paper compares (PostgreSQL-like with a 15-query concurrency limit vs
  the "ScalableSQL" simulation);
* :class:`FalconBackend` — a Khameleon backend that executes the five
  histogram queries (for real, over the synthetic flights table),
  combines the result rows, and row-sample-encodes them into the
  configured number of blocks per response (Fig. 14's x-axis);
* :class:`FalconTraceGenerator` — hover/brush sessions over the chart
  row, calibrated to the long-think-time CDF of Fig. 5.

Fidelity note (DESIGN.md §6): like the paper's own port, selections on
non-hovered charts are fixed while the user interacts with one chart;
the replayed traces fix them per session.  Changing a selection at
runtime invalidates the backend's response cache
(:meth:`FalconApp.set_selection` → :meth:`FalconBackend.invalidate`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Protocol, Sequence, Union

import numpy as np

from repro.backends.base import Backend, OnComplete
from repro.backends.database import (
    ColumnTable,
    HistogramQuery,
    RangeFilter,
    SimulatedSQLDatabase,
)
from repro.backends.scalable import ScalableSQLDatabase
from repro.core.blocks import ProgressiveResponse
from repro.core.utility import LinearUtility, UtilityFunction
from repro.encoding.rowsample import RowSampleEncoder
from repro.predictors.base import DEFAULT_DELTAS_S, Predictor
from repro.predictors.kalman import make_kalman_predictor
from repro.predictors.layout import BoundingBox, ChartLayout
from repro.predictors.oracle import make_oracle_predictor
from repro.predictors.simple import make_hover_predictor, make_uniform_predictor
from repro.sim.engine import Simulator

from .flights import FLIGHT_CHARTS, ChartSpec, FlightsDataset
from .trace import InteractionTrace, TraceEvent

__all__ = [
    "FalconApp",
    "FalconBackend",
    "FalconTrace",
    "FalconTraceGenerator",
    "SelectionEvent",
    "SQLDatabase",
]


class SQLDatabase(Protocol):
    """What :class:`FalconBackend` needs from a query engine."""

    @property
    def active_queries(self) -> int: ...

    def execute(
        self, query: HistogramQuery, on_complete: Callable[[np.ndarray], None]
    ) -> float: ...


def _chart_row_layout(
    num_charts: int, chart_w: float, chart_h: float, gutter: float
) -> ChartLayout:
    """Falcon's charts in two rows of three with gutters between."""
    cols = math.ceil(num_charts / 2)
    boxes = []
    for i in range(num_charts):
        row, col = divmod(i, cols)
        x0 = gutter + col * (chart_w + gutter)
        y0 = gutter + row * (chart_h + gutter)
        boxes.append(BoundingBox(x0, y0, x0 + chart_w, y0 + chart_h))
    return ChartLayout(boxes)


class FalconApp:
    """Experiment bundle for the Falcon port.

    Parameters
    ----------
    blocks_per_response:
        ``Nb`` — how many row-sample blocks each five-query response is
        encoded into (Fig. 14 sweeps 1, 2, 4).
    charts:
        View specifications (defaults to the six flights charts).
    selection_fraction:
        Width of the initial centered range selection applied to every
        chart (Falcon sessions always have active selections).
    """

    #: Paper measurement: PostgreSQL degrades beyond 15 concurrent queries.
    POSTGRES_CONCURRENT_QUERIES = 15

    def __init__(
        self,
        blocks_per_response: int = 2,
        charts: Sequence[ChartSpec] = FLIGHT_CHARTS,
        chart_width_px: float = 360.0,
        chart_height_px: float = 240.0,
        gutter_px: float = 60.0,
        selection_fraction: float = 0.5,
        utility: Optional[UtilityFunction] = None,
    ) -> None:
        if blocks_per_response < 1:
            raise ValueError("need at least one block per response")
        if len(charts) < 2:
            raise ValueError("Falcon needs at least two linked charts")
        self.charts = tuple(charts)
        self.layout = _chart_row_layout(
            len(self.charts), chart_width_px, chart_height_px, gutter_px
        )
        self.blocks_per_response = blocks_per_response
        # Paper default for Falcon: the conservative linear utility (§6.1).
        self.utility = utility if utility is not None else LinearUtility()
        self.selections: dict[int, Optional[RangeFilter]] = {
            i: spec.middle_filter(selection_fraction)
            for i, spec in enumerate(self.charts)
        }
        self._version = 0
        self._backends: list["FalconBackend"] = []

    @property
    def num_requests(self) -> int:
        return len(self.charts)

    @property
    def num_blocks(self) -> list[int]:
        """Per-request block counts (uniform for Falcon)."""
        return [self.blocks_per_response] * self.num_requests

    @property
    def queries_per_request(self) -> int:
        """Hovering one chart queries each of the others."""
        return self.num_requests - 1

    @property
    def max_concurrent_requests(self) -> int:
        """§6.4 throttle input: requests the DB can absorb at once."""
        return max(1, self.POSTGRES_CONCURRENT_QUERIES // self.queries_per_request)

    def queries_for(self, request: int) -> list[HistogramQuery]:
        """The five data-slice queries issued when ``request`` is hovered.

        Each non-hovered chart's histogram is filtered by the selections
        on every chart other than itself and the hovered one (the
        hovered chart's selection is the free dimension of the slice).
        """
        if not 0 <= request < self.num_requests:
            raise IndexError(f"no chart {request}")
        queries = []
        for target, spec in enumerate(self.charts):
            if target == request:
                continue
            filters = tuple(
                f
                for owner, f in self.selections.items()
                if f is not None and owner not in (target, request)
            )
            queries.append(spec.query(filters))
        return queries

    def set_selection(self, chart: int, filt: Optional[RangeFilter]) -> None:
        """Change a chart's range selection; invalidates cached responses."""
        if not 0 <= chart < self.num_requests:
            raise IndexError(f"no chart {chart}")
        self.selections[chart] = filt
        self._version += 1
        for backend in self._backends:
            backend.invalidate()

    def apply_selection(self, event: SelectionEvent) -> None:
        """Apply a trace's committed brush (replay hook)."""
        spec = self.charts[event.chart]
        self.set_selection(
            event.chart, RangeFilter(spec.column, event.lo, event.hi)
        )

    @property
    def selection_version(self) -> int:
        """Bumps on every selection change (cache-staleness marker)."""
        return self._version

    # -- factories -----------------------------------------------------

    def make_db(
        self, sim: Simulator, scale: str = "small", scalable: bool = False, seed: int = 0
    ) -> Union[SimulatedSQLDatabase, ScalableSQLDatabase]:
        """A query engine calibrated to the paper's two databases.

        ``scale='small'`` ≈ 0.8 s isolated query latency (1M rows);
        ``scale='big'`` ≈ 1.5–2.5 s (7M rows).  ``scalable=True``
        returns the ScalableSQL simulation (no concurrency penalty).
        """
        if scale == "small":
            table = FlightsDataset(seed=42).small(scale=0.01)
            base, jitter = 0.8, 0.25
        elif scale == "big":
            table = FlightsDataset(seed=42).big(scale=0.01)
            base, jitter = 2.0, 0.5
        else:
            raise ValueError(f"unknown scale {scale!r} (want 'small' or 'big')")
        if scalable:
            return ScalableSQLDatabase(sim, table, base, jitter=jitter, seed=seed)
        return SimulatedSQLDatabase(
            sim,
            table,
            base,
            concurrency_limit=self.POSTGRES_CONCURRENT_QUERIES,
            jitter=jitter,
            seed=seed,
        )

    def make_backend(self, sim: Simulator, db: SQLDatabase) -> "FalconBackend":
        backend = FalconBackend(sim, self, db)
        self._backends.append(backend)
        return backend

    def make_predictor(
        self,
        name: str,
        trace: Optional[InteractionTrace] = None,
        deltas_s: Sequence[float] = DEFAULT_DELTAS_S,
    ) -> Predictor:
        """Predictor by experiment name: kalman / onhover / oracle / uniform."""
        if name == "kalman":
            return make_kalman_predictor(self.layout, deltas_s=deltas_s)
        if name == "onhover":
            return make_hover_predictor(self.layout, deltas_s=deltas_s)
        if name == "oracle":
            if trace is None:
                raise ValueError("oracle predictor needs the replay trace")

            def future_request(t: float) -> Optional[int]:
                x, y = trace.position_at(t)
                return self.layout.request_at(x, y)

            return make_oracle_predictor(
                self.num_requests, future_request, deltas_s=deltas_s
            )
        if name == "uniform":
            return make_uniform_predictor(self.num_requests, deltas_s=deltas_s)
        raise ValueError(f"unknown predictor {name!r}")

    def nominal_block_bytes(self, bytes_per_row: int = 16) -> int:
        """Wire size of one block (total slice rows striped over Nb)."""
        total_rows = sum(spec.bins for spec in self.charts) - max(
            spec.bins for spec in self.charts
        )
        rows_per_block = math.ceil(total_rows / self.blocks_per_response)
        return max(1, rows_per_block * bytes_per_row)


class FalconBackend(Backend):
    """Executes a request's five queries and encodes the combined rows.

    Result rows are ``(bin, count, target_chart)`` triples; the
    row-sample encoder stripes them round-robin so any block prefix is
    a uniform sample of every chart's slice (Falcon's own progressive
    scheme, §6.1).  The five queries run concurrently on the database —
    on the PostgreSQL-like backend they contend for its 15-query
    scalability budget, which is exactly the §6.4 bottleneck.
    """

    def __init__(self, sim: Simulator, app: FalconApp, db: SQLDatabase) -> None:
        super().__init__(sim)
        self.app = app
        self.db = db
        self.encoder = RowSampleEncoder(app.blocks_per_response)

    # Base-class hooks are unused: fetch() is fully overridden because
    # completion is driven by the slowest of five concurrent queries,
    # not a single scheduled delay.

    def _produce(self, request: int) -> ProgressiveResponse:  # pragma: no cover
        raise AssertionError("FalconBackend.fetch computes responses itself")

    def _delay_s(self, request: int) -> float:  # pragma: no cover
        raise AssertionError("FalconBackend.fetch computes responses itself")

    @property
    def scalable_concurrency(self) -> Optional[int]:
        return self.app.max_concurrent_requests

    def fetch(self, request: int, on_complete: OnComplete) -> None:
        hit = self._cache.get(request)
        if hit is not None:
            self.stats.cache_hits += 1
            self.sim.schedule(0.0, on_complete, hit)
            return
        waiting = self._inflight.get(request)
        if waiting is not None:
            waiting.append(on_complete)
            return
        self._inflight[request] = [on_complete]
        self.stats.fetches_started += 1
        self.stats.peak_concurrency = max(
            self.stats.peak_concurrency, len(self._inflight)
        )
        queries = self.app.queries_for(request)
        targets = [t for t in range(self.app.num_requests) if t != request]
        results: dict[int, np.ndarray] = {}

        def on_query(target: int, rows: np.ndarray) -> None:
            results[target] = rows
            if len(results) == len(queries):
                self._finish(request, results)

        for target, query in zip(targets, queries):
            self.db.execute(query, lambda rows, t=target: on_query(t, rows))

    def _finish(self, request: int, results: dict[int, np.ndarray]) -> None:
        parts = []
        for target in sorted(results):
            rows = results[target]
            tagged = np.column_stack(
                [rows, np.full(len(rows), target, dtype=rows.dtype)]
            )
            parts.append(tagged)
        combined = np.vstack(parts)
        response = self.encoder.encode(request, combined)
        self._cache[request] = response
        callbacks = self._inflight.pop(request, [])
        self.stats.fetches_completed += 1
        for cb in callbacks:
            cb(response)

    def invalidate(self) -> None:
        """Selections changed: every cached slice is stale."""
        self._cache.clear()


@dataclass(frozen=True)
class SelectionEvent:
    """A committed brush: chart ``chart``'s range selection changed.

    Selection changes are what make Falcon's request universe hard:
    every other chart's data slice is filtered by this chart's
    selection, so a change invalidates all cached responses — client
    blocks, the server's scheduler mirror, and the backend's response
    cache alike.
    """

    time_s: float
    chart: int
    lo: float
    hi: float


@dataclass
class FalconTrace:
    """A Falcon session: mouse interaction plus selection commits."""

    interaction: InteractionTrace
    selections: list[SelectionEvent]

    @property
    def name(self) -> str:
        return self.interaction.name

    @property
    def duration_s(self) -> float:
        return self.interaction.duration_s

    @property
    def num_requests(self) -> int:
        return self.interaction.num_requests


@dataclass(frozen=True)
class FalconSessionParams:
    """Hover/brush session tunables, calibrated to Fig. 5's vis CDF."""

    sample_rate_hz: float = 60.0
    brush_log_mean: float = math.log(2.0)
    brush_log_sigma: float = 1.4
    quick_switch_prob: float = 0.25
    long_pause_prob: float = 0.08
    long_pause_scale_s: float = 45.0
    travel_speed_px_s: float = 1500.0
    #: Brushes shorter than this are scrubs that commit no selection.
    commit_min_brush_s: float = 0.5

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise ValueError("sample rate must be positive")
        if not 0 <= self.quick_switch_prob <= 1:
            raise ValueError("quick_switch_prob must lie in [0, 1]")
        if not 0 <= self.long_pause_prob <= 1:
            raise ValueError("long_pause_prob must lie in [0, 1]")


class FalconTraceGenerator:
    """Hover/brush sessions over the Falcon chart row.

    A session alternates *brush* phases (mouse wiggles inside the
    current chart — interactions served client-side, no requests) and
    *travel* phases (mouse crosses gutters to another chart; entering
    it fires the hover request).  Quick chart-to-chart scrubbing
    produces the sub-second think times in Fig. 5; long reading pauses
    produce the minutes-long tail.
    """

    def __init__(
        self,
        app: FalconApp,
        params: Optional[FalconSessionParams] = None,
        seed: int = 0,
    ) -> None:
        self.app = app
        self.params = params or FalconSessionParams()
        self.seed = seed

    def generate(self, duration_s: float = 300.0, trace_id: int = 0) -> FalconTrace:
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        rng = np.random.default_rng((self.seed, trace_id, 17))
        p = self.params
        layout = self.app.layout
        dt = 1.0 / p.sample_rate_hz

        chart = int(rng.integers(0, self.app.num_requests))
        x, y = self._chart_center(chart, rng)
        t = 0.0
        events: list[TraceEvent] = [TraceEvent(t, x, y, request=chart)]
        selections: list[SelectionEvent] = []

        while t + dt <= duration_s:
            # -- brush phase inside the current chart.
            brush = float(rng.lognormal(p.brush_log_mean, p.brush_log_sigma))
            if rng.random() < p.quick_switch_prob:
                brush = float(rng.uniform(0.05, 0.4))
            if rng.random() < p.long_pause_prob:
                brush += float(rng.exponential(p.long_pause_scale_s))
            box = layout.bbox(chart)
            brush_end = min(t + brush, duration_s)
            # Substantial brushes commit a new range selection partway
            # through — the user drags the handles, then reads.  This is
            # the event that staleness (and thus prefetch value) hinges
            # on: it invalidates every other chart's cached slice.
            commit_at = t + brush * float(rng.uniform(0.2, 0.6))
            committed = brush < p.commit_min_brush_s
            while t + dt <= brush_end:
                t += dt
                x = float(np.clip(x + rng.normal(0.0, 6.0), box.x0 + 1, box.x1 - 1))
                y = float(np.clip(y + rng.normal(0.0, 3.0), box.y0 + 1, box.y1 - 1))
                events.append(TraceEvent(t, x, y))
                if not committed and t >= commit_at:
                    committed = True
                    selections.append(self._random_selection(t, chart, rng))
            if t >= duration_s:
                break

            # -- travel phase to a different chart.
            nxt = int(rng.integers(0, self.app.num_requests - 1))
            if nxt >= chart:
                nxt += 1
            tx, ty = self._chart_center(nxt, rng)
            dist = math.hypot(tx - x, ty - y)
            steps = max(1, int(math.ceil(dist / (p.travel_speed_px_s * dt))))
            entered = False
            for step in range(1, steps + 1):
                if t + dt > duration_s:
                    break
                t += dt
                s = step / steps
                ease = s * s * (3.0 - 2.0 * s)
                nx = x + (tx - x) * ease
                ny = y + (ty - y) * ease
                inside = layout.request_at(nx, ny)
                request = nxt if (inside == nxt and not entered) else None
                if request is not None:
                    entered = True
                events.append(TraceEvent(t, nx, ny, request=request))
            x, y = events[-1].x, events[-1].y
            if entered:
                chart = nxt

        return FalconTrace(
            interaction=InteractionTrace(events, name=f"falcon-{trace_id}"),
            selections=selections,
        )

    def generate_corpus(
        self, num_traces: int = 70, duration_s: float = 300.0
    ) -> list[FalconTrace]:
        """The paper's 70-session benchmark corpus."""
        if num_traces < 1:
            raise ValueError("need at least one trace")
        return [self.generate(duration_s, trace_id=i) for i in range(num_traces)]

    def _random_selection(
        self, time_s: float, chart: int, rng: np.random.Generator
    ) -> SelectionEvent:
        """A committed brush: random sub-range of the chart's domain."""
        spec = self.app.charts[chart]
        lo_d, hi_d = spec.domain
        width = (hi_d - lo_d) * float(rng.uniform(0.2, 0.7))
        start = lo_d + float(rng.uniform(0.0, (hi_d - lo_d) - width))
        return SelectionEvent(time_s=time_s, chart=chart, lo=start, hi=start + width)

    def _chart_center(
        self, chart: int, rng: np.random.Generator
    ) -> tuple[float, float]:
        box = self.app.layout.bbox(chart)
        return (
            float(rng.uniform(box.x0 + 5, box.x1 - 5)),
            float(rng.uniform(box.y0 + 5, box.y1 - 5)),
        )

"""Think-time rescaling of interaction traces (§6.2, Fig. 9).

The think-time experiment "synthetically var[ies] the think times in
the traces between 10–200 ms".  Think time is the gap between
consecutive requests, so rescaling warps the time axis *between*
request events while keeping the request sequence (and the spatial
path) identical: movement samples inside each inter-request interval
are repositioned proportionally.

The warp is piecewise linear with knots at the request events.  This
preserves two properties the experiments rely on: the Oracle predictor
still reads exact future positions off the warped trace, and the
request order/targets are untouched, so results isolate the effect of
pacing alone.
"""

from __future__ import annotations

import numpy as np

from .trace import InteractionTrace, TraceEvent

__all__ = ["rescale_think_times", "mean_think_time_s"]


def mean_think_time_s(trace: InteractionTrace) -> float:
    """Average gap between consecutive requests (0 for < 2 requests)."""
    gaps = trace.think_times_s()
    return float(gaps.mean()) if len(gaps) else 0.0


def rescale_think_times(
    trace: InteractionTrace, target_mean_s: float
) -> InteractionTrace:
    """Warp ``trace`` so its mean think time equals ``target_mean_s``.

    Every inter-request gap is multiplied by the same factor
    (``target / current`` mean), so the *shape* of the think-time
    distribution is preserved — only its scale moves, matching the
    paper's experiment design.  The lead-in before the first request
    and the tail after the last one are scaled by the same factor.
    """
    if target_mean_s <= 0:
        raise ValueError("target mean think time must be positive")
    current = mean_think_time_s(trace)
    if current <= 0:
        raise ValueError("trace has no inter-request gaps to rescale")
    factor = target_mean_s / current
    return scale_time(trace, factor)


def scale_time(trace: InteractionTrace, factor: float) -> InteractionTrace:
    """Multiply all event times by ``factor`` (uniform time warp).

    A uniform warp *is* the piecewise-linear warp with equal slopes, and
    multiplying every gap by ``factor`` scales the mean think time by
    exactly ``factor``; using one global slope keeps mouse velocities
    consistent for the Kalman filter rather than introducing artificial
    speed discontinuities at request boundaries.
    """
    if factor <= 0:
        raise ValueError("scale factor must be positive")
    events = [
        TraceEvent(e.time_s * factor, e.x, e.y, request=e.request)
        for e in trace.events
    ]
    suffix = f"x{factor:.3g}"
    return InteractionTrace(events, name=f"{trace.name}*{suffix}")

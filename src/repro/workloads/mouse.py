"""Saccade/dwell mouse trace generator for the image application (§6.1).

The paper collected mouse-level traces from 14 graduate students freely
exploring the 10k-thumbnail mosaic (3 minutes each, ≈ 20 ms mean think
time, bursts up to 32 requests/s).  Those traces are not published; this
generator reproduces their observable statistics with the standard
two-phase model of pointing behaviour:

* **saccades** — fast, roughly ballistic movements toward a new target
  thumbnail.  Sweeping across the mosaic crosses many cells back to
  back, and each newly entered cell fires a request: this is where the
  paper's bursts (tens of requests/second with near-zero think time)
  come from.
* **dwells** — pauses on a thumbnail to look at the loaded image, with
  log-normally distributed durations.  These contribute the long tail
  of the Fig. 5 think-time CDF (up to seconds).

Mouse position is sampled at a fixed rate (default 120 Hz, typical of
browser ``mousemove`` streams); a request fires whenever the sampled
position enters a different grid cell than the previous sample.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.predictors.layout import GridLayout

from .trace import InteractionTrace, TraceEvent

__all__ = ["MouseTraceGenerator", "SaccadeDwellParams"]


@dataclass(frozen=True)
class SaccadeDwellParams:
    """Tunables of the movement model, with Fig. 5-calibrated defaults.

    ``dwell_log_mean`` / ``dwell_log_sigma`` parameterize a log-normal
    dwell duration in seconds (defaults give a ≈ 0.15 s median with a
    multi-second tail).  ``speed_px_s`` is the peak saccade speed; with
    the gallery's default cell size it crosses > 30 cells/second, which
    is what produces the paper's 32 requests/s bursts.
    """

    sample_rate_hz: float = 120.0
    dwell_log_mean: float = math.log(0.15)
    dwell_log_sigma: float = 1.1
    #: ~35 cells/s at the default 20 px cell — the paper's traces peak
    #: at 32 requests/s, and a request fires per cell crossed.
    speed_px_s: float = 700.0
    speed_jitter: float = 0.25
    jitter_px: float = 1.5
    long_pause_prob: float = 0.04
    long_pause_s: float = 2.5

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise ValueError("sample rate must be positive")
        if self.speed_px_s <= 0:
            raise ValueError("saccade speed must be positive")
        if not 0 <= self.long_pause_prob <= 1:
            raise ValueError("long_pause_prob must lie in [0, 1]")


class MouseTraceGenerator:
    """Generates :class:`InteractionTrace` objects over a grid layout.

    Each generated trace alternates dwell and saccade phases.  Saccade
    targets are drawn with locality: most movements go to a nearby
    thumbnail (exploration is spatially coherent), a minority jump
    across the mosaic.  Determinism: a fixed ``seed`` yields the same
    trace; distinct ``trace_id`` values vary the stream, mimicking the
    paper's 14 distinct users.
    """

    def __init__(
        self,
        layout: GridLayout,
        params: Optional[SaccadeDwellParams] = None,
        seed: int = 0,
    ) -> None:
        self.layout = layout
        self.params = params or SaccadeDwellParams()
        self.seed = seed

    def generate(self, duration_s: float = 180.0, trace_id: int = 0) -> InteractionTrace:
        """One user session of ``duration_s`` seconds."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        rng = np.random.default_rng((self.seed, trace_id))
        p = self.params
        dt = 1.0 / p.sample_rate_hz
        layout = self.layout

        # Start from a random cell's center.
        x, y = self._cell_center(rng.integers(0, layout.num_requests), rng)
        events: list[TraceEvent] = []
        current_cell = layout.request_at(x, y)
        t = 0.0
        events.append(TraceEvent(t, x, y, request=current_cell))

        while t + dt <= duration_s:
            # -- dwell phase: small jitter around the current position.
            dwell = float(rng.lognormal(p.dwell_log_mean, p.dwell_log_sigma))
            if rng.random() < p.long_pause_prob:
                dwell += p.long_pause_s * float(rng.random())
            dwell_end = min(t + dwell, duration_s)
            while t + dt <= dwell_end:
                t += dt
                jx = x + float(rng.normal(0.0, p.jitter_px))
                jy = y + float(rng.normal(0.0, p.jitter_px))
                jx, jy = layout.clamp(jx, jy)
                cell = layout.request_at(jx, jy)
                request = cell if cell != current_cell else None
                if request is not None:
                    current_cell = cell
                events.append(TraceEvent(t, jx, jy, request=request))
            if t >= duration_s:
                break

            # -- saccade phase: ballistic move to a new target cell.
            tx, ty = self._pick_target(x, y, rng)
            speed = p.speed_px_s * float(
                1.0 + p.speed_jitter * (rng.random() * 2.0 - 1.0)
            )
            dist = math.hypot(tx - x, ty - y)
            steps = max(1, int(math.ceil(dist / (speed * dt))))
            for step in range(1, steps + 1):
                if t + dt > duration_s:
                    break
                t += dt
                # Minimum-jerk-like velocity profile: ease in/out.
                s = step / steps
                ease = s * s * (3.0 - 2.0 * s)
                nx = x + (tx - x) * ease
                ny = y + (ty - y) * ease
                nx, ny = layout.clamp(nx, ny)
                cell = layout.request_at(nx, ny)
                request = cell if cell != current_cell else None
                if request is not None:
                    current_cell = cell
                events.append(TraceEvent(t, nx, ny, request=request))
            x, y = events[-1].x, events[-1].y

        return InteractionTrace(events, name=f"mouse-{trace_id}")

    def generate_corpus(
        self, num_traces: int = 14, duration_s: float = 180.0
    ) -> list[InteractionTrace]:
        """The paper's 14-user corpus (distinct seeds per user)."""
        if num_traces < 1:
            raise ValueError("need at least one trace")
        return [self.generate(duration_s, trace_id=i) for i in range(num_traces)]

    # -- internals -----------------------------------------------------

    def _cell_center(self, request: int, rng: np.random.Generator) -> tuple[float, float]:
        box = self.layout.bbox(int(request))
        return (
            (box.x0 + box.x1) / 2.0 + float(rng.normal(0.0, 1.0)),
            (box.y0 + box.y1) / 2.0 + float(rng.normal(0.0, 1.0)),
        )

    def _pick_target(
        self, x: float, y: float, rng: np.random.Generator
    ) -> tuple[float, float]:
        """Local move with probability 0.8, long jump otherwise."""
        layout = self.layout
        if rng.random() < 0.8:
            radius_cells = 1.0 + float(rng.exponential(4.0))
            angle = float(rng.uniform(0.0, 2.0 * math.pi))
            tx = x + math.cos(angle) * radius_cells * layout.cell_width
            ty = y + math.sin(angle) * radius_cells * layout.cell_height
        else:
            tx = float(rng.uniform(0.0, layout.width))
            ty = float(rng.uniform(0.0, layout.height))
        return layout.clamp(tx, ty)

"""The image exploration application (§2, Fig. 1a, §6).

A dense mosaic of thumbnails (the paper uses 100 × 100 = 10,000);
hovering over a thumbnail loads the corresponding full-resolution
image of 1.3–2 MB.  The paper pre-loads a file system with
progressively encoded JPEG blocks and uses the SSIM-derived utility
curve of Fig. 3.

:class:`SyntheticImageStore` stands in for the paper's image corpus:
per-image byte sizes are drawn deterministically in the same 1.3–2 MB
range (every Khameleon mechanism — scheduler, cache, link — observes
only sizes and block counts, never pixels; see DESIGN.md §2).

:class:`ImageExplorationApp` bundles everything an experiment needs:
the grid layout, the encoder, the utility curve, per-request block
counts, and factories for the backend and the paper's predictors.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.backends.filesystem import FileSystemBackend
from repro.core.utility import UtilityFunction, ssim_image_utility
from repro.encoding.image import ImageAsset, ProgressiveImageEncoder
from repro.predictors.base import DEFAULT_DELTAS_S, Predictor
from repro.predictors.kalman import make_kalman_predictor
from repro.predictors.layout import GridLayout
from repro.predictors.oracle import make_oracle_predictor
from repro.predictors.simple import make_point_predictor, make_uniform_predictor
from repro.clock import Clock

from .trace import InteractionTrace

__all__ = ["SyntheticImageStore", "ImageExplorationApp"]


class SyntheticImageStore:
    """Deterministic image corpus with paper-calibrated sizes.

    Sizes are uniform in ``[min_bytes, max_bytes]`` (paper: 1.3–2 MB),
    fixed by ``seed`` so that every run — and the server-side scheduler
    mirror — sees identical block counts.
    """

    MIN_BYTES = 1_300_000
    MAX_BYTES = 2_000_000

    def __init__(
        self,
        num_images: int,
        min_bytes: int = MIN_BYTES,
        max_bytes: int = MAX_BYTES,
        seed: int = 7,
    ) -> None:
        if num_images < 1:
            raise ValueError("store needs at least one image")
        if not 0 < min_bytes <= max_bytes:
            raise ValueError("need 0 < min_bytes <= max_bytes")
        rng = np.random.default_rng(seed)
        sizes = rng.integers(min_bytes, max_bytes + 1, size=num_images)
        self.assets: dict[int, ImageAsset] = {
            i: ImageAsset(image_id=i, size_bytes=int(sizes[i]))
            for i in range(num_images)
        }

    def __len__(self) -> int:
        return len(self.assets)

    def asset(self, image_id: int) -> ImageAsset:
        return self.assets[image_id]

    @property
    def total_bytes(self) -> int:
        return sum(a.size_bytes for a in self.assets.values())


class ImageExplorationApp:
    """Experiment bundle for the image gallery.

    Parameters
    ----------
    rows, cols:
        Mosaic dimensions.  The paper's full scale is 100 × 100; the
        benchmark harness defaults to a reduced grid so sweeps finish
        in CI time (EXPERIMENTS.md records both scales).
    cell_px:
        Thumbnail edge length in pixels (drives mouse→request mapping).
    block_bytes:
        Progressive-encoding block size (§3.4's tuning knob).
    """

    def __init__(
        self,
        rows: int = 100,
        cols: int = 100,
        cell_px: float = 20.0,
        block_bytes: int = 50_000,
        utility: Optional[UtilityFunction] = None,
        seed: int = 7,
    ) -> None:
        self.layout = GridLayout(rows, cols, cell_width=cell_px, cell_height=cell_px)
        self.store = SyntheticImageStore(self.layout.num_requests, seed=seed)
        self.encoder = ProgressiveImageEncoder(self.store.assets, block_bytes)
        self.utility = utility if utility is not None else ssim_image_utility()
        self.block_bytes = block_bytes
        #: Store seed, kept so the app can be rebuilt from a spec in a
        #: sharded worker process (see ImageAppSpec).
        self.seed = seed

    @property
    def num_requests(self) -> int:
        return self.layout.num_requests

    @property
    def num_blocks(self) -> list[int]:
        """Per-request block counts, in request-id order."""
        return [self.encoder.num_blocks(r) for r in range(self.num_requests)]

    def response_bytes(self, request: int) -> int:
        """Full (unpadded) response size of one image."""
        return self.store.asset(request).size_bytes

    def mean_response_bytes(self) -> float:
        return self.store.total_bytes / len(self.store)

    # -- factories -----------------------------------------------------

    def make_backend(self, sim: Clock, fetch_delay_s: float = 0.0) -> FileSystemBackend:
        """Pre-encoded file-system backend (§3.3's default substrate)."""
        return FileSystemBackend(sim, self.encoder, fetch_delay_s=fetch_delay_s)

    def make_predictor(
        self,
        name: str,
        trace: Optional[InteractionTrace] = None,
        deltas_s: Sequence[float] = DEFAULT_DELTAS_S,
    ) -> Predictor:
        """Predictor by name: kalman / oracle / uniform / point / markov.

        ``oracle`` needs the trace it will be replayed against (it reads
        the exact future position, §6.1).
        """
        if name == "kalman":
            return make_kalman_predictor(self.layout, deltas_s=deltas_s)
        if name == "oracle":
            if trace is None:
                raise ValueError("oracle predictor needs the replay trace")

            def future_request(t: float) -> Optional[int]:
                x, y = trace.position_at(t)
                return self.layout.request_at(x, y)

            return make_oracle_predictor(
                self.num_requests, future_request, deltas_s=deltas_s
            )
        if name == "uniform":
            return make_uniform_predictor(self.num_requests, deltas_s=deltas_s)
        if name == "point":
            return make_point_predictor(self.num_requests, deltas_s=deltas_s)
        if name == "markov":
            # Session-private first-order chain over the request stream
            # (the fleet runner swaps in the crowd-shared variant when
            # asked for "shared-markov").
            from repro.predictors.markov import make_markov_predictor

            return make_markov_predictor(self.num_requests, deltas_s=deltas_s)
        if name.startswith("acc-"):
            # ACC's oracle signal as a *Khameleon* predictor (Fig. 9):
            # name format acc-<accuracy>-<horizon>.
            if trace is None:
                raise ValueError("ACC predictor needs the replay trace")
            from repro.predictors.perfect import make_acc_predictor

            parts = name.split("-")
            if len(parts) != 3:
                raise ValueError(f"bad ACC spec {name!r} (want acc-<acc>-<hor>)")
            return make_acc_predictor(
                self.num_requests,
                [e.request for e in trace.requests()],
                accuracy=float(parts[1]),
                horizon=int(parts[2]),
                deltas_s=deltas_s,
            )
        raise ValueError(f"unknown predictor {name!r}")

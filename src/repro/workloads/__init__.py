"""Workloads: trace generators and the two evaluation applications (§2, §6.1).

The paper evaluates Khameleon on

* a **large-scale image exploration** application — a dense mosaic of
  10,000 thumbnails where hovering loads the full-resolution image
  (1.3–2 MB each), driven by mouse traces from 14 graduate students; and
* **Falcon** — six linked histograms over a flights dataset, where
  hovering a chart triggers five SQL queries against a backend database,
  driven by 70 benchmark traces.

Neither trace corpus is redistributable, so this package generates
statistically similar traces (saccade/dwell mouse model, hover/brush
session model) calibrated to the think-time CDFs of Fig. 5 — see
DESIGN.md §2 for the substitution argument.
"""

from .trace import InteractionTrace, TraceEvent
from .mouse import MouseTraceGenerator
from .thinktime import rescale_think_times, mean_think_time_s
from .image_app import ImageExplorationApp, SyntheticImageStore
from .flights import FlightsDataset, FLIGHT_CHARTS
from .falcon import FalconApp, FalconTraceGenerator

__all__ = [
    "InteractionTrace",
    "TraceEvent",
    "MouseTraceGenerator",
    "rescale_think_times",
    "mean_think_time_s",
    "ImageExplorationApp",
    "SyntheticImageStore",
    "FlightsDataset",
    "FLIGHT_CHARTS",
    "FalconApp",
    "FalconTraceGenerator",
]

"""Synthetic flights dataset for the Falcon experiments (§6.4).

The paper builds two databases from the Falcon flights dataset: *Small*
(1M records) and *Big* (7M records).  The original corpus (US domestic
flight performance) is not bundled here, so this module generates a
statistically plausible substitute with the same schema and the
correlations that make Falcon's linked views interesting:

* ``distance``  — trip distance in miles, log-normal-ish mixture of
  short-haul and long-haul;
* ``air_time``  — minutes in the air, linear in distance plus noise;
* ``dep_delay`` — departure delay in minutes, heavy-tailed with a
  point mass near zero;
* ``arr_delay`` — arrival delay, departure delay plus en-route noise
  (flights recover a little on average);
* ``dep_time``  — scheduled departure hour-of-day with morning/evening
  banks;
* ``day``       — day-of-year, near-uniform with seasonal ripple.

The histogram *queries* over this table are computed exactly by
:class:`repro.backends.database.ColumnTable`; only the latencies are
simulated (DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends.database import ColumnTable, HistogramQuery, RangeFilter

__all__ = ["ChartSpec", "FLIGHT_CHARTS", "FlightsDataset"]


@dataclass(frozen=True)
class ChartSpec:
    """One Falcon view: a binned 1-D histogram over a column."""

    name: str
    column: str
    bins: int
    domain: tuple[float, float]

    def __post_init__(self) -> None:
        if self.bins < 1:
            raise ValueError("bins must be >= 1")
        if self.domain[1] <= self.domain[0]:
            raise ValueError("empty domain")

    def query(self, filters: tuple[RangeFilter, ...] = ()) -> HistogramQuery:
        """The chart's histogram query under a set of range filters."""
        return HistogramQuery(
            column=self.column, bins=self.bins, domain=self.domain, filters=filters
        )

    def middle_filter(self, fraction: float = 0.5) -> RangeFilter:
        """A centered range selection covering ``fraction`` of the domain."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must lie in (0, 1]")
        lo, hi = self.domain
        span = (hi - lo) * fraction
        mid = (lo + hi) / 2.0
        return RangeFilter(self.column, mid - span / 2.0, mid + span / 2.0)


#: Falcon's six linked views over the flights table (Fig. 1b).
FLIGHT_CHARTS: tuple[ChartSpec, ...] = (
    ChartSpec("Distance", "distance", bins=25, domain=(0.0, 4000.0)),
    ChartSpec("Departure Delay", "dep_delay", bins=25, domain=(-20.0, 160.0)),
    ChartSpec("Arrival Delay", "arr_delay", bins=25, domain=(-60.0, 180.0)),
    ChartSpec("Air Time", "air_time", bins=25, domain=(0.0, 500.0)),
    ChartSpec("Departure Hour", "dep_time", bins=24, domain=(0.0, 24.0)),
    ChartSpec("Day of Year", "day", bins=25, domain=(0.0, 365.0)),
)


class FlightsDataset:
    """Deterministic generator for the synthetic flights table.

    The paper's scales are ``small`` (1M rows) and ``big`` (7M); the
    benchmark harness uses row counts reduced by a constant factor —
    latency is simulated from the paper's measurements either way, so
    only in-process histogram cost changes (EXPERIMENTS.md).
    """

    SMALL_ROWS = 1_000_000
    BIG_ROWS = 7_000_000

    def __init__(self, seed: int = 42) -> None:
        self.seed = seed

    def generate(self, num_rows: int) -> ColumnTable:
        """Materialize ``num_rows`` synthetic flights."""
        if num_rows < 1:
            raise ValueError("need at least one row")
        rng = np.random.default_rng(self.seed)

        # Distance: mixture of short-haul (~400 mi) and long-haul (~1800 mi).
        long_haul = rng.random(num_rows) < 0.25
        distance = np.where(
            long_haul,
            rng.normal(1800.0, 600.0, num_rows),
            rng.gamma(shape=2.2, scale=220.0, size=num_rows),
        )
        distance = np.clip(distance, 50.0, 4500.0)

        # Air time: cruise ≈ 7.5 miles/minute plus taxi/climb overhead.
        air_time = distance / 7.5 + 18.0 + rng.normal(0.0, 9.0, num_rows)
        air_time = np.clip(air_time, 15.0, 600.0)

        # Departure delay: 60% effectively on time, heavy right tail.
        on_time = rng.random(num_rows) < 0.6
        dep_delay = np.where(
            on_time,
            rng.normal(-2.0, 4.0, num_rows),
            rng.exponential(28.0, num_rows) + 5.0,
        )
        dep_delay = np.clip(dep_delay, -25.0, 600.0)

        # Arrival delay: departure delay minus slight en-route recovery.
        arr_delay = dep_delay - 4.0 + rng.normal(0.0, 11.0, num_rows)
        arr_delay = np.clip(arr_delay, -70.0, 650.0)

        # Departure hour: morning (8h) and evening (17h) banks.
        bank = rng.random(num_rows)
        dep_time = np.where(
            bank < 0.45,
            rng.normal(8.0, 2.0, num_rows),
            np.where(
                bank < 0.85,
                rng.normal(17.0, 2.5, num_rows),
                rng.uniform(0.0, 24.0, num_rows),
            ),
        )
        dep_time = np.mod(dep_time, 24.0)

        # Day of year: uniform with a mild summer peak.
        day = rng.uniform(0.0, 365.0, num_rows)
        summer = rng.random(num_rows) < 0.15
        day = np.where(summer, rng.normal(200.0, 30.0, num_rows) % 365.0, day)

        return ColumnTable(
            {
                "distance": distance,
                "air_time": air_time,
                "dep_delay": dep_delay,
                "arr_delay": arr_delay,
                "dep_time": dep_time,
                "day": day,
            }
        )

    def small(self, scale: float = 1.0) -> ColumnTable:
        """The 1M-row database, optionally scaled down for CI."""
        return self.generate(max(1, int(self.SMALL_ROWS * scale)))

    def big(self, scale: float = 1.0) -> ColumnTable:
        """The 7M-row database, optionally scaled down for CI."""
        return self.generate(max(1, int(self.BIG_ROWS * scale)))

"""Live serving frontend: the Khameleon stack behind a real port.

The simulator experiments prove the scheduling claims; this package
*serves* them.  :func:`create_app` assembles the existing fleet stack —
:class:`~repro.fleet.fleet.KhameleonFleet`,
:class:`~repro.fleet.schedule_service.FleetScheduleService`, the
weighted fair-share downlink, the §5.4 throttle, the crowd prior — on a
:class:`~repro.clock.WallClock` and exposes it over a WebSocket
frontend: clients stream interaction events and requests *up*, the
server pushes scheduled blocks *down*, continuously, exactly as the
paper's push architecture prescribes (§3).

No third-party dependencies: the WebSocket layer (:mod:`repro.serve.ws`)
is a minimal RFC 6455 implementation over asyncio streams, and the wire
protocol (:mod:`repro.serve.protocol`) is JSON control messages plus a
fixed binary block frame.

Entry points: ``python -m repro serve`` boots a server;
``examples/live_serving.py`` (built on :mod:`repro.serve.client`)
replays a mouse trace against it and reports §6.1 metrics through
:mod:`repro.metrics`.
"""

from .app import KhameleonServeApp, ServeStats, create_app

__all__ = ["create_app", "KhameleonServeApp", "ServeStats"]

"""Minimal RFC 6455 WebSocket over asyncio streams.

The serving frontend needs exactly one full-duplex browser-compatible
transport and the container deliberately has no third-party packages,
so this module implements the subset of RFC 6455 the protocol uses:

* HTTP/1.1 upgrade handshake (server accept + client connect) with the
  ``Sec-WebSocket-Accept`` SHA-1 digest;
* unfragmented text (0x1) / binary (0x2) data frames with 7/16/64-bit
  payload lengths;
* client-side masking (mandatory per §5.3: client frames are masked,
  server frames are not);
* close (0x8) with echo, and ping (0x9) answered with pong (0xA).

Deliberately out of scope: fragmentation/continuation frames (both ends
of this protocol send whole messages), extensions, subprotocols, and
TLS.  Frames are capped at ``MAX_FRAME_BYTES`` so a garbled length
field cannot trigger an unbounded read.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import os
import struct
from typing import Callable, Optional

__all__ = [
    "WebSocket",
    "WebSocketError",
    "accept",
    "connect",
    "OP_TEXT",
    "OP_BINARY",
    "OP_CLOSE",
    "OP_PING",
    "OP_PONG",
]

#: RFC 6455 §1.3 handshake GUID.
GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

#: Upper bound on a single frame's payload (a block frame is a few
#: hundred KB at most; anything larger is a corrupt length field).
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Upper bound on the HTTP handshake (request line + headers).
MAX_HANDSHAKE_BYTES = 16 * 1024


class WebSocketError(ConnectionError):
    """Handshake or framing violation on the WebSocket."""


def _accept_key(key: str) -> str:
    digest = hashlib.sha1((key + GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


async def _read_http_head(reader: asyncio.StreamReader) -> tuple[str, dict[str, str]]:
    """Read request/status line + headers up to the blank line."""
    try:
        raw = await reader.readuntil(b"\r\n\r\n")
    except (asyncio.IncompleteReadError, asyncio.LimitOverrunError) as exc:
        raise WebSocketError(f"incomplete HTTP handshake: {exc}") from exc
    if len(raw) > MAX_HANDSHAKE_BYTES:
        raise WebSocketError("oversized HTTP handshake")
    lines = raw.decode("latin-1").split("\r\n")
    start = lines[0]
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return start, headers


#: Plain-HTTP fallback: maps ``(request_line, headers)`` to an optional
#: ``(status, content_type, body)`` response for non-upgrade requests.
HttpHandler = Callable[[str, dict], Optional[tuple[int, str, str]]]

_HTTP_STATUS_TEXT = {200: "OK", 404: "Not Found", 400: "Bad Request"}


async def accept(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    http_handler: Optional[HttpHandler] = None,
) -> Optional["WebSocket"]:
    """Server side: perform the upgrade handshake, return the socket.

    A non-upgrade request is first offered to ``http_handler`` (the
    serving frontend mounts ``GET /status`` there): if the handler
    returns a ``(status, content_type, body)`` triple the response is
    written and ``None`` returned — the connection was plain HTTP, not
    a WebSocket.  Otherwise the request gets a ``400`` and
    :class:`WebSocketError` is raised, as for any malformed upgrade.
    """
    start, headers = await _read_http_head(reader)
    key = headers.get("sec-websocket-key")
    if (
        not start.startswith("GET ")
        or "websocket" not in headers.get("upgrade", "").lower()
        or key is None
    ):
        if http_handler is not None:
            response = http_handler(start, headers)
            if response is not None:
                status, content_type, body = response
                payload = body.encode("utf-8")
                reason = _HTTP_STATUS_TEXT.get(status, "OK")
                writer.write(
                    (
                        f"HTTP/1.1 {status} {reason}\r\n"
                        f"Content-Type: {content_type}\r\n"
                        f"Content-Length: {len(payload)}\r\n"
                        "Connection: close\r\n"
                        "\r\n"
                    ).encode("ascii")
                    + payload
                )
                await writer.drain()
                return None
        writer.write(b"HTTP/1.1 400 Bad Request\r\nConnection: close\r\n\r\n")
        await writer.drain()
        raise WebSocketError(f"not a WebSocket upgrade: {start!r}")
    response = (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {_accept_key(key)}\r\n"
        "\r\n"
    )
    writer.write(response.encode("ascii"))
    await writer.drain()
    return WebSocket(reader, writer, mask_frames=False)


async def connect(host: str, port: int, path: str = "/") -> "WebSocket":
    """Client side: open a TCP connection and upgrade it."""
    reader, writer = await asyncio.open_connection(host, port)
    key = base64.b64encode(os.urandom(16)).decode("ascii")
    request = (
        f"GET {path} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Key: {key}\r\n"
        "Sec-WebSocket-Version: 13\r\n"
        "\r\n"
    )
    writer.write(request.encode("ascii"))
    await writer.drain()
    try:
        start, headers = await _read_http_head(reader)
        if " 101 " not in f"{start} ":
            raise WebSocketError(f"upgrade refused: {start!r}")
        expected = _accept_key(key)
        if headers.get("sec-websocket-accept") != expected:
            raise WebSocketError("bad Sec-WebSocket-Accept digest")
    except WebSocketError:
        writer.close()
        raise
    return WebSocket(reader, writer, mask_frames=True)


def _encode_frame(opcode: int, payload: bytes, mask: bool) -> bytes:
    head = bytearray([0x80 | opcode])  # FIN always set: no fragmentation
    n = len(payload)
    mask_bit = 0x80 if mask else 0
    if n < 126:
        head.append(mask_bit | n)
    elif n < 1 << 16:
        head.append(mask_bit | 126)
        head += struct.pack("!H", n)
    else:
        head.append(mask_bit | 127)
        head += struct.pack("!Q", n)
    if mask:
        key = os.urandom(4)
        head += key
        payload = _apply_mask(payload, key)
    return bytes(head) + payload


def _apply_mask(payload: bytes, key: bytes) -> bytes:
    # XOR with the 4-byte key, vectorized via int arithmetic: fast
    # enough for control messages and the demo client's block frames.
    repeated = key * (len(payload) // 4 + 1)
    data = int.from_bytes(payload, "big")
    keys = int.from_bytes(repeated[: len(payload)], "big")
    return (data ^ keys).to_bytes(len(payload), "big")


class WebSocket:
    """One upgraded connection: whole-message send/recv with auto ping."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        mask_frames: bool,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.mask_frames = mask_frames
        self.close_sent = False
        self.closed = False
        #: Pongs seen by :meth:`recv`; liveness monitors compare this
        #: against the pings they originated.
        self.pongs_received = 0
        #: RFC 6455 §7.4 status code / reason of a received close frame
        #: (None/"" until one arrives).  1001 ("going away") is how the
        #: server tells clients a shutdown is deliberate — reconnect
        #: logic must treat it as final, not as a transient drop.
        self.close_code: Optional[int] = None
        self.close_reason: str = ""

    # -- sending -----------------------------------------------------

    def send_text(self, text: str) -> None:
        self._send(OP_TEXT, text.encode("utf-8"))

    def send_binary(self, payload: bytes) -> None:
        self._send(OP_BINARY, payload)

    def send_ping(self, payload: bytes = b"") -> None:
        self._send(OP_PING, payload)

    def _send(self, opcode: int, payload: bytes) -> None:
        if self.closed or self.close_sent:
            return
        self.writer.write(_encode_frame(opcode, payload, self.mask_frames))

    async def drain(self) -> None:
        await self.writer.drain()

    # -- receiving ---------------------------------------------------

    async def _read_frame(self) -> tuple[int, bytes]:
        header = await self.reader.readexactly(2)
        b0, b1 = header
        if not b0 & 0x80:
            raise WebSocketError("fragmented frames are not supported")
        opcode = b0 & 0x0F
        masked = bool(b1 & 0x80)
        length = b1 & 0x7F
        if length == 126:
            (length,) = struct.unpack("!H", await self.reader.readexactly(2))
        elif length == 127:
            (length,) = struct.unpack("!Q", await self.reader.readexactly(8))
        if length > MAX_FRAME_BYTES:
            raise WebSocketError(f"frame of {length} bytes exceeds cap")
        key = await self.reader.readexactly(4) if masked else None
        payload = await self.reader.readexactly(length) if length else b""
        if key is not None and payload:
            payload = _apply_mask(payload, key)
        return opcode, payload

    async def recv(self) -> Optional[tuple[int, bytes]]:
        """Next data message as ``(opcode, payload)``; None once closed.

        Control frames are handled inline: pings are answered, pongs
        counted (``pongs_received``), and a close frame is echoed
        (once) before returning None.
        """
        while True:
            if self.closed:
                return None
            try:
                opcode, payload = await self._read_frame()
            except (
                asyncio.IncompleteReadError,
                ConnectionResetError,
                BrokenPipeError,
            ):
                self.closed = True
                return None
            if opcode in (OP_TEXT, OP_BINARY):
                return opcode, payload
            if opcode == OP_PING:
                self._send(OP_PONG, payload)
                await self.drain()
            elif opcode == OP_CLOSE:
                if len(payload) >= 2:
                    (self.close_code,) = struct.unpack("!H", payload[:2])
                    self.close_reason = payload[2:].decode("utf-8", "replace")
                if not self.close_sent:
                    self._send_close_frame(payload[:2])
                self.closed = True
                return None
            elif opcode == OP_PONG:
                self.pongs_received += 1
            # anything unknown: ignore.

    # -- teardown ----------------------------------------------------

    def _send_close_frame(self, payload: bytes = b"") -> None:
        self.writer.write(_encode_frame(OP_CLOSE, payload, self.mask_frames))
        self.close_sent = True

    async def close(self, code: int = 1000, reason: str = "") -> None:
        """Initiate (or complete) the closing handshake and drop TCP.

        ``code``/``reason`` follow RFC 6455 §7.4: 1000 is a normal
        close, 1001 "going away" — the drain signal a server sends
        before shutting down (reason text is truncated to fit the
        123-byte control-frame budget).
        """
        if not self.closed and not self.close_sent:
            try:
                payload = struct.pack("!H", code) + reason.encode("utf-8")[:123]
                self._send_close_frame(payload)
                await self.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        self.closed = True
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

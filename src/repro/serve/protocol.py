"""Wire protocol of the live serving frontend.

One WebSocket per user session.  Control traffic is JSON text frames
with a ``type`` field; pushed blocks are binary frames.  The exchange:

1. client → ``{"type": "hello", "protocol": 1}`` — or, to reattach a
   dropped session, ``{"type": "hello", "protocol": 1, "resume": t}``
   with the token from the previous welcome.
2. server → ``{"type": "welcome", "session": i, "token": t,
   "resumed": bool, "num_requests": n, "rows": r, "cols": c,
   "cell_width": w, "cell_height": h, "block_bytes": b}`` — or
   ``{"type": "reject", "reason": ...}`` followed by close when the
   admission cap is hit, the server is draining, or a resume token is
   unknown/expired.  ``token`` is the server-issued resume credential:
   present it in a fresh hello within the server's ``--resume-grace``
   window after an abrupt disconnect and the session continues with
   its pipeline, fair-share weight, and metrics intact
   (``resumed: true`` in the new welcome).
3. client → any number of
   ``{"type": "event", "x": .., "y": ..}`` (interaction samples) and
   ``{"type": "request", "id": ..}`` (explicit user requests);
   server → a continuous stream of binary **block frames** — the
   Khameleon push channel.  Blocks flow whether or not the client ever
   requests anything; that is the point.
4. client → ``{"type": "bye"}``; server → ``{"type": "stats", ...}``
   (its §6.1 view of the session) and the closing handshake.  A bye'd
   session is over: its token is not resumable.

Close semantics: a normal end uses close code 1000.  When the server
drains (SIGTERM or ``stop()``) every connection gets close **1001**
("going away") with the drain reason — clients must treat 1001 as
final and not auto-reconnect; session state is instead persisted to
the server's ``--checkpoint-out`` file and tokens become valid again
on a server started with ``--checkpoint-in``.

A block frame is a fixed 16-byte header followed by the block's payload
bytes (the reproduction's blocks carry no pixels, so the payload is
zero padding of the true block size — the wire cost is real even though
the content is synthetic):

====== ======= =====================================
offset size    field
====== ======= =====================================
0      4       magic ``b"KBLK"``
4      4       request id (u32, network order)
8      4       block index within the request (u32)
12     4       ``size_bytes`` of the block (u32)
16     varies  ``size_bytes`` of padding
====== ======= =====================================
"""

from __future__ import annotations

import json
from typing import Any, Optional
import struct

from repro.core.blocks import Block

__all__ = [
    "PROTOCOL_VERSION",
    "BLOCK_MAGIC",
    "BLOCK_HEADER",
    "encode_block",
    "decode_block",
    "encode_message",
    "decode_message",
]

PROTOCOL_VERSION = 1

BLOCK_MAGIC = b"KBLK"
BLOCK_HEADER = struct.Struct("!4sIII")


def encode_block(block: Block) -> bytes:
    """Binary frame for one pushed block (header + true-size padding)."""
    return BLOCK_HEADER.pack(
        BLOCK_MAGIC, block.request, block.index, block.size_bytes
    ) + b"\x00" * block.size_bytes


def decode_block(frame: bytes) -> Block:
    """Parse a block frame back into a (payload-less) :class:`Block`."""
    if len(frame) < BLOCK_HEADER.size:
        raise ValueError(f"block frame of {len(frame)} bytes is too short")
    magic, request, index, size_bytes = BLOCK_HEADER.unpack_from(frame)
    if magic != BLOCK_MAGIC:
        raise ValueError(f"bad block magic {magic!r}")
    return Block(request=request, index=index, size_bytes=size_bytes)


def encode_message(type_: str, **fields: Any) -> str:
    """JSON control message with a leading ``type`` discriminator."""
    return json.dumps({"type": type_, **fields}, separators=(",", ":"))


def decode_message(text: str) -> Optional[dict]:
    """Parse a control message; None for malformed or type-less JSON.

    The server must not die because one client sent garbage, so parse
    failures map to None and the caller drops the message.
    """
    try:
        msg = json.loads(text)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(msg, dict) or not isinstance(msg.get("type"), str):
        return None
    return msg

"""The serving app: the Khameleon fleet stack behind a WebSocket port.

:func:`create_app` takes the same :class:`FleetEnvironment` the
simulator experiments use and assembles the *identical* serving stack —
:class:`~repro.fleet.fleet.KhameleonFleet` (shared backend + §5.4
throttle), :class:`~repro.fleet.schedule_service.FleetScheduleService`
(one coalesced prediction tick), a
:class:`~repro.sim.fairshare.SharedDownlink` (weighted fair sharing of
the configured egress bandwidth) — on a
:class:`~repro.clock.WallClock` instead of a simulator.  Nothing in the
fleet layer knows the difference: the clock seam is the whole story.

Session lifecycle maps 1:1 onto the fleet's attach/detach points:

* a WebSocket connection's ``hello`` is an *arrival* — subject to the
  same admission cap a churn fleet's
  :class:`~repro.fleet.lifecycle.SessionManager` enforces, and carrying
  an optional fair-share ``weight`` for its downlink port;
* an admitted connection gets a full
  :class:`~repro.core.session.KhameleonSession` via
  :meth:`KhameleonFleet._admit_session` — predictor, scheduler, mirror,
  sender, cache manager — plus a tap on the sender's delivery callback
  that frames every scheduled block onto the socket.  The
  server-resident client model keeps receiving blocks too, so the §6.1
  metric surfaces (:mod:`repro.metrics`) observe the live session
  exactly as they observe a simulated one;
* a disconnect (or ``bye``) is a *departure*:
  :meth:`KhameleonFleet._retire_session` stops the session, releases
  its throttle share, and drops its port's backlog so surviving
  sessions immediately reclaim the capacity.

The modeled egress link is the pacing authority: blocks reach the
socket at the configured bandwidth/latency, so one serve process
emulates the paper's netem conditions over a real network.
"""

from __future__ import annotations

import asyncio
import json
import secrets
from dataclasses import dataclass, replace
from typing import Optional

from repro.chaos import ChaosConfig
from repro.clock import WallClock
from repro.core.blocks import Block
from repro.core.session import KhameleonSession, SessionConfig
from repro.experiments.configs import FleetEnvironment
from repro.fleet.fleet import FleetConfig, KhameleonFleet
from repro.fleet.lifecycle import ArrivalConfig
from repro.metrics.collector import collect
from repro.metrics.fleet import TRANSPORT_COUNTER_ZERO
from repro.predictors.base import MouseEvent
from repro.predictors.shared import SharedTransitionPrior, make_shared_markov_predictor
from repro.sim.fairshare import SharedDownlink
from repro.sim.link import ControlChannel, FixedRateLink
from repro.workloads.image_app import ImageExplorationApp

from . import protocol, ws

__all__ = ["create_app", "KhameleonServeApp", "ServeStats"]

#: Clamp for client-requested fair-share weights: enough range to
#: demonstrate weighted sharing, not enough to starve the fleet.
MIN_WEIGHT, MAX_WEIGHT = 0.1, 10.0

#: Predictors that need the replayed trace up front cannot serve live.
_LIVE_PREDICTORS = ("kalman", "uniform", "point", "markov", "shared-markov")


@dataclass
class ServeStats:
    """Server-lifetime counters (exposed for tests and the CLI)."""

    sessions_admitted: int = 0
    sessions_rejected: int = 0
    sessions_detached: int = 0
    blocks_pushed: int = 0
    bytes_pushed: int = 0
    frames_dropped: int = 0
    events_received: int = 0
    requests_received: int = 0
    pings_sent: int = 0
    idle_closed: int = 0
    #: Durable-session lifecycle: abrupt disconnects parked within the
    #: resume grace, token reconnects that reattached, and reconnect
    #: attempts turned away (unknown or expired token).
    sessions_parked: int = 0
    sessions_resumed: int = 0
    resume_rejected: int = 0
    #: ``disconnect:P@S`` chaos faults fired (server-side socket abort).
    disconnects_injected: int = 0


@dataclass
class _Connection:
    """Bookkeeping for one live WebSocket session."""

    index: int
    session: KhameleonSession
    socket: ws.WebSocket
    outbox: asyncio.Queue
    blocks_pushed: int = 0
    bytes_pushed: int = 0
    frames_dropped: int = 0
    detached: bool = False
    pump: Optional[asyncio.Task] = None
    pinger: Optional[asyncio.Task] = None
    pings_sent: int = 0
    last_recv_s: float = 0.0
    #: Server-issued resume token (in the welcome); a reconnecting
    #: client presents it to reattach to this exact session.
    token: str = ""
    #: Parked: the socket died but the session lives on, queueing into
    #: the bounded outbox, until the grace timer expires or the client
    #: reattaches.
    parked: bool = False
    park_timer: Optional[asyncio.Task] = None
    chaos_timer: Optional[asyncio.Task] = None
    said_bye: bool = False
    resumes: int = 0


class KhameleonServeApp:
    """A wall-clock Khameleon fleet serving WebSocket clients.

    Build with :func:`create_app`, then ``await start()`` inside a
    running event loop (the :class:`WallClock` needs one).  ``stop()``
    retires every live session and cancels the fleet's periodic tasks,
    so a served process can shut down as cleanly as a simulation ends.
    """

    def __init__(
        self,
        fleet_env: FleetEnvironment,
        *,
        rows: int = 12,
        cols: int = 12,
        predictor: str = "kalman",
        sampler: str = "vectorized",
        host: str = "127.0.0.1",
        port: int = 0,
        prior: Optional[SharedTransitionPrior] = None,
        outbox_depth: int = 1024,
        ping_interval_s: float = 20.0,
        ping_max_misses: int = 3,
        resume_grace_s: float = 0.0,
        chaos: Optional[ChaosConfig] = None,
        checkpoint_out: Optional[str] = None,
        checkpoint_in: Optional[str] = None,
    ) -> None:
        if outbox_depth < 1:
            raise ValueError("outbox_depth must be >= 1")
        if ping_interval_s < 0:
            raise ValueError("ping_interval_s must be >= 0 (0 disables)")
        if ping_max_misses < 1:
            raise ValueError("ping_max_misses must be >= 1")
        if resume_grace_s < 0:
            raise ValueError("resume_grace_s must be >= 0 (0 disables)")
        if predictor not in _LIVE_PREDICTORS:
            raise ValueError(
                f"predictor {predictor!r} cannot serve live sessions "
                f"(choose from {_LIVE_PREDICTORS})"
            )
        self.fleet_env = fleet_env
        self.predictor = predictor
        self.sampler = sampler
        self.host = host
        self.port = port
        self.app = ImageExplorationApp(rows, cols)
        self.prior = prior if prior is not None else SharedTransitionPrior(
            self.app.num_requests
        )
        if self.prior.n != self.app.num_requests:
            raise ValueError(
                f"prior over {self.prior.n} requests, app has {self.app.num_requests}"
            )
        arrival = fleet_env.arrival
        self.max_concurrent: int = (
            arrival.max_concurrent
            if arrival is not None and arrival.max_concurrent is not None
            else fleet_env.num_sessions
        )
        #: Per-session outbox backpressure bound (frames).  When the
        #: real socket drains slower than the modeled link delivers,
        #: frames beyond this depth are shed and counted, never
        #: buffered unboundedly (``--outbox-depth`` on the CLI).
        self.outbox_depth = outbox_depth
        #: WS-level liveness: on a quiet connection the server
        #: originates a ping every ``ping_interval_s`` and closes the
        #: socket after ``ping_max_misses`` consecutive unanswered
        #: pings — a half-open TCP peer stops holding an admission slot.
        #: 0 disables the prober (``--ping-interval`` on the CLI).
        self.ping_interval_s = ping_interval_s
        self.ping_max_misses = ping_max_misses
        #: Reconnect-and-resume: an abrupt disconnect parks the session
        #: (pipeline, weight, metrics intact) for this many seconds; a
        #: ``hello`` carrying the session's resume token reattaches.
        #: 0 disables parking (``--resume-grace`` on the CLI).
        self.resume_grace_s = resume_grace_s
        #: Server-side fault injection: ``disconnect:P@S`` aborts
        #: session P's socket S seconds after admission.
        self.chaos = chaos
        #: Drain/restore lifecycle: ``stop()`` persists the crowd prior
        #: and resume-token table to ``checkpoint_out``; ``start()``
        #: warms from ``checkpoint_in`` and honors its tokens for
        #: ``resume_grace_s`` after boot.
        self.checkpoint_out = checkpoint_out
        self.checkpoint_in = checkpoint_in
        self.stats = ServeStats()
        self.clock: Optional[WallClock] = None
        self.fleet: Optional[KhameleonFleet] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._live: dict[int, _Connection] = {}
        self._parked: dict[str, _Connection] = {}
        #: Tokens honored across a drain/restart cycle (token → weight),
        #: loaded from ``checkpoint_in``.
        self._restored_tokens: dict[str, float] = {}
        self._started_at = 0.0
        self._draining = False
        self._next_index = 0
        # Grows with admissions; ``FleetConfig.weight_of`` reads it at
        # admission time, so per-client hello weights take effect.
        self._weights: list[float] = []
        self._tasks: set[asyncio.Task] = set()

    # -- lifecycle ---------------------------------------------------

    async def start(self) -> None:
        """Assemble the stack on a wall clock and bind the socket."""
        loop = asyncio.get_running_loop()
        env = self.fleet_env.env
        clock = WallClock(loop)
        self.clock = clock
        backend = self.app.make_backend(clock, fetch_delay_s=env.backend_delay_s)
        egress = FixedRateLink(
            clock,
            bytes_per_second=env.bandwidth_bytes_per_s,
            propagation_delay_s=env.one_way_latency_s,
        )
        session_cfg = SessionConfig(
            cache_bytes=env.cache_bytes,
            block_bytes=self.app.block_bytes,
            sampler=self.sampler,
            initial_bandwidth_bytes_per_s=env.bandwidth_bytes_per_s,
        )
        # Arrivals come from real sockets, not a planned process: a
        # non-static ArrivalConfig stops the fleet from pre-building
        # sessions, and the frontend drives _admit/_retire itself with
        # the same admission cap a SessionManager would apply.
        cfg = replace(
            self.fleet_env.fleet_config(session_cfg),
            weights=None,
            arrival=ArrivalConfig(max_concurrent=self.max_concurrent),
        )
        self.fleet = KhameleonFleet(
            sim=clock,
            backend=backend,
            make_predictor=self._make_predictor,
            utility=self.app.utility,
            num_blocks=self.app.num_blocks,
            downlink=SharedDownlink(clock, egress),
            make_uplink=lambda i: ControlChannel(clock, latency_s=0.0),
            config=cfg,
        )
        # Live weights: grown per admission, read by weight_of(i).
        self.fleet.config.weights = self._weights
        if self.checkpoint_in is not None:
            self._load_checkpoint(self.checkpoint_in)
        self._started_at = clock.now
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful drain: stop admissions, say goodbye, checkpoint, halt.

        Every connected client gets a WebSocket close 1001 ("going
        away") with a drain reason *before* its session is detached, so
        well-behaved reconnect logic knows not to retry.  With
        ``checkpoint_out`` set, the crowd prior and resume-token table
        are persisted so a restarted server (``checkpoint_in``) can
        honor the same tokens.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        conns = list(self._live.values()) + list(self._parked.values())
        for conn in conns:
            try:
                await conn.socket.close(code=1001, reason="going away: drain")
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        for conn in conns:
            self._detach(conn)
        for conn in list(self._live.values()) + list(self._parked.values()):
            self._detach(conn)
        if self.checkpoint_out is not None:
            self._write_checkpoint(self.checkpoint_out, conns)
        if self.fleet is not None:
            self.fleet.stop()

    # -- fleet wiring ------------------------------------------------

    def _make_predictor(self, i: int):
        if self.predictor == "shared-markov":
            return make_shared_markov_predictor(self.app.num_requests, self.prior)
        return self.app.make_predictor(self.predictor)

    def _admit(self, socket: ws.WebSocket, weight: float) -> _Connection:
        assert self.fleet is not None
        i = self._next_index
        self._next_index += 1
        while len(self._weights) <= i:
            self._weights.append(1.0)
        self._weights[i] = min(MAX_WEIGHT, max(MIN_WEIGHT, weight))
        session = self.fleet._admit_session(i)
        conn = _Connection(
            index=i,
            session=session,
            socket=socket,
            outbox=asyncio.Queue(maxsize=self.outbox_depth),
            token=secrets.token_hex(16),
        )
        # Tap the delivery callback: every block the modeled link
        # delivers goes to the socket *and* to the server-resident
        # client model (mirror, receive rate, §6.1 outcomes).
        downstream = session.sender.deliver

        def deliver(block: Block) -> None:
            if not conn.detached:
                self._push_block(conn, block)
            downstream(block)

        session.sender.deliver = deliver
        session.start()
        self._live[i] = conn
        self.stats.sessions_admitted += 1
        return conn

    def _detach(self, conn: _Connection) -> None:
        """Departure: idempotent retire + resource release."""
        if conn.detached:
            return
        conn.detached = True
        assert self.fleet is not None
        self.fleet._retire_session(conn.session)
        self._live.pop(conn.index, None)
        if conn.parked:
            self._parked.pop(conn.token, None)
            conn.parked = False
        self.stats.sessions_detached += 1
        if conn.pump is not None:
            conn.pump.cancel()
        if conn.pinger is not None:
            conn.pinger.cancel()
        if conn.park_timer is not None:
            conn.park_timer.cancel()
        if conn.chaos_timer is not None:
            conn.chaos_timer.cancel()

    # -- park / resume -------------------------------------------------

    def _park(self, conn: _Connection) -> None:
        """An abrupt disconnect within the grace window: keep the
        session running — scheduler, fair-share weight, metrics — with
        pushed frames queueing into the bounded outbox (shed past the
        depth, as for a slow socket), until the client reattaches with
        its token or the grace timer gives up."""
        if conn.detached or conn.parked:
            return
        conn.parked = True
        self._live.pop(conn.index, None)
        self._parked[conn.token] = conn
        self.stats.sessions_parked += 1
        if conn.pump is not None:
            conn.pump.cancel()
            conn.pump = None
        if conn.pinger is not None:
            conn.pinger.cancel()
            conn.pinger = None
        conn.park_timer = asyncio.ensure_future(self._expire_parked(conn))
        self._tasks.add(conn.park_timer)
        conn.park_timer.add_done_callback(self._tasks.discard)

    async def _expire_parked(self, conn: _Connection) -> None:
        try:
            await asyncio.sleep(self.resume_grace_s)
        except asyncio.CancelledError:
            return
        if conn.parked and not conn.detached:
            self._detach(conn)

    def _resume(self, conn: _Connection, socket: ws.WebSocket) -> None:
        """Reattach a parked session to a fresh socket, state intact."""
        self._parked.pop(conn.token, None)
        if conn.park_timer is not None:
            conn.park_timer.cancel()
            conn.park_timer = None
        conn.parked = False
        conn.socket = socket
        conn.resumes += 1
        self._live[conn.index] = conn
        self.stats.sessions_resumed += 1

    def _welcome_message(self, conn: _Connection, resumed: bool = False) -> str:
        layout = self.app.layout
        return protocol.encode_message(
            "welcome",
            protocol=protocol.PROTOCOL_VERSION,
            session=conn.index,
            token=conn.token,
            resumed=resumed,
            num_requests=self.app.num_requests,
            rows=layout.rows,
            cols=layout.cols,
            cell_width=layout.cell_width,
            cell_height=layout.cell_height,
            block_bytes=self.app.block_bytes,
        )

    def _push_block(self, conn: _Connection, block: Block) -> None:
        frame = protocol.encode_block(block)
        try:
            conn.outbox.put_nowait(frame)
        except asyncio.QueueFull:
            # The real socket is slower than the modeled link; shed the
            # frame rather than buffer unboundedly.  The server-side
            # mirror keeps its optimistic view — same as genuine loss.
            conn.frames_dropped += 1
            self.stats.frames_dropped += 1
            return
        conn.blocks_pushed += 1
        conn.bytes_pushed += block.size_bytes
        self.stats.blocks_pushed += 1
        self.stats.bytes_pushed += block.size_bytes

    # -- connection handling -----------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        try:
            socket = await ws.accept(reader, writer, http_handler=self._http_request)
        except (ws.WebSocketError, OSError):
            writer.close()
            return
        if socket is None:
            # Plain HTTP, answered by _http_request (GET /status).
            writer.close()
            return
        conn: Optional[_Connection] = None
        try:
            hello = await self._expect_hello(socket)
            if hello is None:
                return
            token = hello.get("resume")
            if token is not None:
                conn = await self._handle_resume(str(token), socket)
                if conn is None:
                    return
            else:
                reason = None
                if self._draining:
                    reason = "going away: drain"
                elif len(self._live) + len(self._parked) >= self.max_concurrent:
                    # Parked sessions still hold their slot: their
                    # resources are live until the grace expires.
                    reason = "admission cap reached"
                if reason is not None:
                    self.stats.sessions_rejected += 1
                    socket.send_text(
                        protocol.encode_message("reject", reason=reason)
                    )
                    await socket.drain()
                    return
                conn = self._admit(socket, float(hello.get("weight", 1.0)))
                socket.send_text(self._welcome_message(conn))
                await socket.drain()
                self._arm_chaos_disconnect(conn)
            conn.pump = asyncio.ensure_future(self._pump(conn))
            if self.ping_interval_s > 0:
                conn.last_recv_s = self.clock.now
                conn.pinger = asyncio.ensure_future(self._ping_loop(conn))
            await self._read_loop(conn)
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        except asyncio.CancelledError:
            # Cancelled by stop(): the socket already received its 1001
            # close.  Finishing non-cancelled lets the finally detach
            # cleanly and keeps 3.11's streams done-callback (which
            # calls task.exception()) from logging the cancellation.
            pass
        finally:
            if conn is not None:
                if (
                    self.resume_grace_s > 0
                    and not conn.said_bye
                    and not self._draining
                    and not conn.detached
                ):
                    # Abrupt socket loss: park for the grace window
                    # instead of retiring — the pipeline keeps running.
                    self._park(conn)
                else:
                    self._detach(conn)
            try:
                await socket.close()
            except asyncio.CancelledError:
                # stop() cancelled us while we waited on the closing
                # handshake; the transport is torn down regardless.
                pass

    async def _handle_resume(
        self, token: str, socket: ws.WebSocket
    ) -> Optional[_Connection]:
        """A ``hello`` carrying a resume token: reattach or reject."""
        parked = self._parked.get(token)
        if parked is not None and not self._draining:
            self._resume(parked, socket)
            socket.send_text(self._welcome_message(parked, resumed=True))
            await socket.drain()
            return parked
        if (
            token in self._restored_tokens
            and not self._draining
            and self.clock is not None
            and self.clock.now - self._started_at <= self.resume_grace_s
            and len(self._live) + len(self._parked) < self.max_concurrent
        ):
            # A token honored across a drain/restart cycle: the old
            # process checkpointed it, this one admits a fresh session
            # under the same contract (resumed, not re-queued).
            weight = self._restored_tokens.pop(token)
            conn = self._admit(socket, weight)
            self.stats.sessions_resumed += 1
            socket.send_text(self._welcome_message(conn, resumed=True))
            await socket.drain()
            return conn
        self.stats.resume_rejected += 1
        socket.send_text(
            protocol.encode_message(
                "reject", reason="unknown or expired resume token"
            )
        )
        await socket.drain()
        return None

    def _arm_chaos_disconnect(self, conn: _Connection) -> None:
        """Schedule a ``disconnect:P@S`` fault for a fresh admission."""
        if self.chaos is None:
            return
        at_s = self.chaos.disconnect_at(conn.index)
        if at_s is None:
            return

        async def fire() -> None:
            try:
                await asyncio.sleep(at_s)
            except asyncio.CancelledError:
                return
            if conn.detached or conn.parked or conn.socket.closed:
                return
            self.stats.disconnects_injected += 1
            # An abrupt network drop: no closing handshake, just RST —
            # exactly what reconnect-and-resume must absorb.
            transport = conn.socket.writer.transport
            transport.abort()

        conn.chaos_timer = asyncio.ensure_future(fire())
        self._tasks.add(conn.chaos_timer)
        conn.chaos_timer.add_done_callback(self._tasks.discard)

    async def _expect_hello(self, socket: ws.WebSocket) -> Optional[dict]:
        try:
            item = await asyncio.wait_for(socket.recv(), timeout=10.0)
        except asyncio.TimeoutError:
            return None
        if item is None or item[0] != ws.OP_TEXT:
            return None
        msg = protocol.decode_message(item[1].decode("utf-8", "replace"))
        if msg is None or msg["type"] != "hello":
            return None
        return msg

    async def _read_loop(self, conn: _Connection) -> None:
        client = conn.session.client
        while True:
            item = await conn.socket.recv()
            if item is None:
                return
            conn.last_recv_s = self.clock.now
            opcode, payload = item
            if opcode != ws.OP_TEXT:
                continue
            msg = protocol.decode_message(payload.decode("utf-8", "replace"))
            if msg is None:
                continue
            kind = msg["type"]
            if kind == "event":
                try:
                    event = MouseEvent(float(msg["x"]), float(msg["y"]))
                except (KeyError, TypeError, ValueError):
                    continue
                self.stats.events_received += 1
                client.observe(event)
            elif kind == "request":
                try:
                    request = int(msg["id"])
                except (KeyError, TypeError, ValueError):
                    continue
                if not 0 <= request < self.app.num_requests:
                    continue
                self.stats.requests_received += 1
                client.request(request)
            elif kind == "bye":
                conn.said_bye = True
                conn.socket.send_text(self._stats_message(conn))
                await conn.socket.drain()
                return
            # unknown types: ignored (forward compatibility)

    def _stats_message(self, conn: _Connection) -> str:
        """The server's §6.1 view of one session, via repro.metrics."""
        outcomes = conn.session.cache_manager.outcomes
        summary = collect(outcomes).as_dict() if outcomes else {}
        return protocol.encode_message(
            "stats",
            session=conn.index,
            blocks_pushed=conn.blocks_pushed,
            bytes_pushed=conn.bytes_pushed,
            frames_dropped=conn.frames_dropped,
            blocks_sent=conn.session.sender.blocks_sent,
            server_metrics=summary,
        )

    # -- plain HTTP sidecar --------------------------------------------

    def status_snapshot(self) -> dict:
        """Fleet-wide serving stats (the ``GET /status`` JSON body)."""
        s = self.stats
        return {
            "sessions_live": len(self._live),
            "sessions_admitted": s.sessions_admitted,
            "sessions_rejected": s.sessions_rejected,
            "sessions_detached": s.sessions_detached,
            "admission_cap": self.max_concurrent,
            "blocks_pushed": s.blocks_pushed,
            "bytes_pushed": s.bytes_pushed,
            "frames_dropped": s.frames_dropped,
            "outbox_depth": self.outbox_depth,
            "events_received": s.events_received,
            "requests_received": s.requests_received,
            "pings_sent": s.pings_sent,
            "idle_closed": s.idle_closed,
            "ping_interval_s": self.ping_interval_s,
            # Durable sessions: parked right now, lifetime park/resume
            # counters, and the resume contract's knobs.
            "sessions_parked_now": len(self._parked),
            "sessions_parked": s.sessions_parked,
            "sessions_resumed": s.sessions_resumed,
            "resume_rejected": s.resume_rejected,
            "resume_grace_s": self.resume_grace_s,
            "disconnects_injected": s.disconnects_injected,
            "draining": self._draining,
            "predictor": self.predictor,
            # The crowd prior's "version mass": total transition count,
            # which only grows — the same quantity the sharded fleet's
            # CRDT deltas carry per row.
            "prior_version_mass": self.prior.transitions_observed,
            # One serving process has no coordinator wire, so the
            # transport counters are structurally zero — same shape as
            # a sharded run's pooled totals, so dashboards never branch.
            "transport": {
                "driver": "local",
                "totals": dict(TRANSPORT_COUNTER_ZERO),
            },
        }

    def _http_request(self, start: str, headers: dict) -> Optional[tuple[int, str, str]]:
        """Non-upgrade requests: serve ``GET /status``, 404 the rest."""
        parts = start.split(" ")
        if len(parts) < 2 or parts[0] != "GET":
            return None
        path = parts[1].split("?", 1)[0]
        if path == "/status":
            return 200, "application/json", json.dumps(self.status_snapshot())
        return 404, "application/json", json.dumps({"error": "not found"})

    # -- drain/restore checkpoint --------------------------------------

    #: File magic + version for the serve-side checkpoint (the fleet
    #: runner has its own bundle format in repro.fleet.checkpoint).
    CHECKPOINT_MAGIC = "khameleon-serve-checkpoint"
    CHECKPOINT_VERSION = 1

    def _write_checkpoint(self, path: str, conns: list[_Connection]) -> None:
        """Persist the crowd prior (COO) and the resume-token table."""
        payload = {
            "format": self.CHECKPOINT_MAGIC,
            "format_version": self.CHECKPOINT_VERSION,
            "n": self.app.num_requests,
            "tokens": {
                c.token: {
                    "index": c.index,
                    "weight": (
                        self._weights[c.index]
                        if c.index < len(self._weights)
                        else 1.0
                    ),
                }
                for c in conns
                if c.token
            },
            "prior": {
                "transitions_observed": self.prior.transitions_observed,
                "coo": [list(item) for item in self.prior.coo_items()],
            },
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)

    def _load_checkpoint(self, path: str) -> None:
        """Warm the prior and token table from a drained predecessor.

        Fail-fast validation in the style of
        :meth:`SharedTransitionPrior.load`: not-a-checkpoint, version,
        and universe mismatches each raise a clear :class:`ValueError`
        before any client connects.
        """
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ValueError(f"{path!s} is not a saved checkpoint: {exc}") from exc
        if (
            not isinstance(payload, dict)
            or payload.get("format") != self.CHECKPOINT_MAGIC
        ):
            raise ValueError(f"{path!s} is not a saved checkpoint")
        version = payload.get("format_version")
        if version != self.CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint format v{version} unsupported "
                f"(expected v{self.CHECKPOINT_VERSION})"
            )
        saved_n = payload.get("n")
        if saved_n != self.app.num_requests:
            raise ValueError(
                f"checkpoint over {saved_n} requests, "
                f"expected {self.app.num_requests}"
            )
        for entry in payload.get("prior", {}).get("coo", []):
            prev, nxt, count = entry
            self.prior.warm(int(prev), int(nxt), int(count))
        for token, info in payload.get("tokens", {}).items():
            try:
                weight = float(info.get("weight", 1.0))
            except (AttributeError, TypeError, ValueError):
                weight = 1.0
            self._restored_tokens[str(token)] = weight

    async def _ping_loop(self, conn: _Connection) -> None:
        """Probe a quiet connection; close it once pongs stop coming.

        A connection carrying data frames is demonstrably alive, so
        pings only go out when the socket has been idle a full
        interval.  Each unanswered ping widens the ``pings_sent -
        pongs_received`` gap; at ``ping_max_misses`` the peer is
        declared half-open and the socket closed, which unwinds the
        read loop and frees the admission slot.
        """
        socket = conn.socket
        try:
            while not conn.detached and not socket.closed:
                await asyncio.sleep(self.ping_interval_s)
                if conn.detached or socket.closed:
                    return
                assert self.clock is not None
                if self.clock.now - conn.last_recv_s < self.ping_interval_s:
                    continue  # data traffic is proof of life
                missed = conn.pings_sent - socket.pongs_received
                if missed >= self.ping_max_misses:
                    self.stats.idle_closed += 1
                    await socket.close()
                    return
                socket.send_ping()
                conn.pings_sent += 1
                self.stats.pings_sent += 1
                await socket.drain()
        except (
            asyncio.CancelledError,
            ConnectionResetError,
            BrokenPipeError,
            OSError,
        ):
            return

    async def _pump(self, conn: _Connection) -> None:
        """Drain the outbox onto the socket (its own task per session)."""
        try:
            while True:
                frame = await conn.outbox.get()
                conn.socket.send_binary(frame)
                await conn.socket.drain()
        except (
            asyncio.CancelledError,
            ConnectionResetError,
            BrokenPipeError,
            OSError,
        ):
            return


def create_app(fleet_env: FleetEnvironment, **kwargs) -> KhameleonServeApp:
    """App factory: a wall-clock serving frontend for one fleet condition.

    ``fleet_env`` carries the environment (bandwidth, latency, cache),
    the expected population (``num_sessions``), the shared backend
    budget, and — via ``arrival.max_concurrent`` — the admission cap.
    Keyword arguments (grid size, predictor, sampler, host/port, a
    pre-warmed crowd prior) are forwarded to
    :class:`KhameleonServeApp`.
    """
    return KhameleonServeApp(fleet_env, **kwargs)

"""Scripted asyncio client for the live serving frontend.

:class:`LiveClient` speaks :mod:`repro.serve.protocol` over a real
WebSocket: it streams interaction events and requests up, collects the
blocks the server pushes down, and reconstructs the §6.1 accounting
*from the client's side of the wire* — each issued request becomes a
:class:`~repro.core.cache_manager.RequestOutcome` answered from the
locally received block set, so :func:`repro.metrics.collector.collect`
summarizes a live session exactly as it summarizes a simulated one.

The headline number for a push architecture is
:attr:`LiveReport.prefetched_hits`: requests whose first block was
already on the client when the user asked — blocks that crossed the
network *before* their request existed.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.backends.retry import RetryPolicy
from repro.core.cache_manager import RequestOutcome
from repro.metrics.collector import MetricSummary, collect

from . import protocol, ws

__all__ = ["LiveClient", "LiveReport", "ReceivedBlock", "AdmissionRejected"]


@dataclass(frozen=True)
class ReceivedBlock:
    """One pushed block as seen on the client's wire."""

    t: float
    request: int
    index: int
    size_bytes: int


@dataclass
class LiveReport:
    """Client-side record of one live session."""

    welcome: dict
    blocks: list[ReceivedBlock] = field(default_factory=list)
    requests: list[tuple[float, int]] = field(default_factory=list)
    server_stats: Optional[dict] = None
    rejected: bool = False
    #: Successful token reconnects, and when each one completed
    #: (session-relative seconds) — lets a script assert that the push
    #: pipeline kept working *after* a resume.
    resumes: int = 0
    resumed_at: list[float] = field(default_factory=list)

    @property
    def bytes_received(self) -> int:
        return sum(b.size_bytes for b in self.blocks)

    @property
    def unrequested_blocks(self) -> int:
        """Blocks pushed for requests this client never issued."""
        asked = {r for _, r in self.requests}
        return sum(1 for b in self.blocks if b.request not in asked)

    def first_block_at(self, request: int) -> Optional[float]:
        for b in self.blocks:
            if b.request == request:
                return b.t
        return None

    @property
    def prefetched_hits(self) -> int:
        """Requests whose first block arrived strictly before they were made.

        This is the acceptance signal for the push architecture: the
        block was scheduled and delivered speculatively, not in
        response to the request.
        """
        return self.prefetched_hits_after(0.0)

    def prefetched_hits_after(self, t: float) -> int:
        """Prefetched hits among requests issued at or after ``t``.

        With ``t = resumed_at[0]`` this is the resume acceptance
        signal: blocks still crossing the wire ahead of requests
        *after* the session reattached.
        """
        count = 0
        for issued_at, request in self.requests:
            if issued_at < t:
                continue
            arrived = self.first_block_at(request)
            if arrived is not None and arrived < issued_at:
                count += 1
        return count

    def outcomes(self) -> list[RequestOutcome]:
        """Client-observed request lifecycle records (§6.1 accounting).

        A request whose block set already contains its id is a cache
        hit (zero latency); otherwise it is served by the first later
        block, or left unanswered if none arrived before the session
        ended.  Preemption is a client-model policy, not a wire fact,
        so no request is marked preempted here.
        """
        out: list[RequestOutcome] = []
        for ts, (issued_at, request) in enumerate(self.requests):
            outcome = RequestOutcome(
                request=request, logical_ts=ts, registered_at=issued_at
            )
            arrived = self.first_block_at(request)
            if arrived is not None:
                if arrived < issued_at:
                    outcome.cache_hit = True
                    outcome.served_at = issued_at
                else:
                    outcome.served_at = arrived
            out.append(outcome)
        return out

    def summary(self) -> MetricSummary:
        """Aggregate through the standard metrics surface."""
        return collect(self.outcomes())


class LiveClient:
    """One scripted session against ``python -m repro serve``.

    Use as an async context manager::

        async with LiveClient.connect(host, port) as client:
            client.send_event(x, y)
            client.send_request(request_id)
            await asyncio.sleep(2.0)
            report = await client.bye()

    A background task drains the push stream continuously (blocks are
    timestamped on arrival), so the caller's script only decides *when*
    to move and *what* to request.
    """

    def __init__(self, socket: ws.WebSocket, report: LiveReport) -> None:
        self.socket = socket
        self.report = report
        self._t0 = time.monotonic()
        self._reader: Optional[asyncio.Task] = None
        self._done = asyncio.Event()
        self._host = ""
        self._port = 0
        self._timeout = 10.0
        self._auto_reconnect = False
        self._retry = RetryPolicy()
        self._closing = False

    # -- construction ------------------------------------------------

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        weight: float = 1.0,
        timeout: float = 10.0,
        auto_reconnect: bool = False,
        retry: Optional[RetryPolicy] = None,
    ) -> "LiveClient":
        """Open, send ``hello``, await ``welcome`` (or raise on reject).

        With ``auto_reconnect`` the client treats an abrupt socket loss
        as transient: it redials with the welcome's resume token on the
        existing :class:`~repro.backends.retry.RetryPolicy` backoff
        (deterministic jitter, bounded attempts) and keeps the same
        report across the splice.  A server close 1001 ("going away")
        is deliberate and is never retried.
        """
        socket = await ws.connect(host, port)
        socket.send_text(
            protocol.encode_message(
                "hello", protocol=protocol.PROTOCOL_VERSION, weight=weight
            )
        )
        await socket.drain()
        item = await asyncio.wait_for(socket.recv(), timeout=timeout)
        if item is None or item[0] != ws.OP_TEXT:
            await socket.close()
            raise ConnectionError("server closed during handshake")
        msg = protocol.decode_message(item[1].decode("utf-8", "replace"))
        if msg is None:
            await socket.close()
            raise ConnectionError("malformed handshake reply")
        if msg["type"] == "reject":
            await socket.close()
            report = LiveReport(welcome=msg, rejected=True)
            raise AdmissionRejected(msg.get("reason", "rejected"), report)
        if msg["type"] != "welcome":
            await socket.close()
            raise ConnectionError(f"unexpected handshake reply {msg['type']!r}")
        client = cls(socket, LiveReport(welcome=msg))
        client._host, client._port = host, port
        client._timeout = timeout
        client._auto_reconnect = auto_reconnect
        client._retry = retry or RetryPolicy()
        client._reader = asyncio.ensure_future(client._read_loop())
        return client

    async def __aenter__(self) -> "LiveClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- scripting surface -------------------------------------------

    @property
    def now(self) -> float:
        """Seconds since the session was established."""
        return time.monotonic() - self._t0

    def send_event(self, x: float, y: float) -> None:
        self.socket.send_text(protocol.encode_message("event", x=x, y=y))

    def send_request(self, request: int) -> None:
        self.report.requests.append((self.now, request))
        self.socket.send_text(protocol.encode_message("request", id=request))

    async def drain(self) -> None:
        await self.socket.drain()

    async def bye(self, timeout: float = 5.0) -> LiveReport:
        """End the session: request server stats, wait for the close."""
        self.socket.send_text(protocol.encode_message("bye"))
        await self.socket.drain()
        try:
            await asyncio.wait_for(self._done.wait(), timeout=timeout)
        except asyncio.TimeoutError:
            pass
        await self.close()
        return self.report

    async def close(self) -> None:
        self._closing = True
        if self._reader is not None and not self._reader.done():
            self._reader.cancel()
        await self.socket.close()

    # -- push stream -------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                item = await self.socket.recv()
                if item is None:
                    if await self._maybe_reconnect():
                        continue
                    break
                opcode, payload = item
                if opcode == ws.OP_BINARY:
                    block = protocol.decode_block(payload)
                    self.report.blocks.append(
                        ReceivedBlock(
                            t=self.now,
                            request=block.request,
                            index=block.index,
                            size_bytes=block.size_bytes,
                        )
                    )
                elif opcode == ws.OP_TEXT:
                    msg = protocol.decode_message(
                        payload.decode("utf-8", "replace")
                    )
                    if msg is not None and msg["type"] == "stats":
                        self.report.server_stats = msg
        except asyncio.CancelledError:
            pass
        finally:
            self._done.set()

    async def _maybe_reconnect(self) -> bool:
        """Redial with the resume token after an abrupt socket loss.

        Returns True once a new socket is spliced in (the read loop
        continues on it).  Deliberate endings are final: a close we
        initiated, a server 1001 "going away", or an explicit reject
        of the token all return False.
        """
        if not self._auto_reconnect or self._closing:
            return False
        if self.socket.close_code == 1001:
            return False  # server is draining: reconnecting is futile
        token = self.report.welcome.get("token")
        if not token:
            return False
        for attempt in range(1, self._retry.max_attempts + 1):
            await asyncio.sleep(self._retry.backoff_s(0, attempt))
            if self._closing:
                return False
            try:
                socket = await ws.connect(self._host, self._port)
                socket.send_text(
                    protocol.encode_message(
                        "hello",
                        protocol=protocol.PROTOCOL_VERSION,
                        resume=token,
                    )
                )
                await socket.drain()
                item = await asyncio.wait_for(
                    socket.recv(), timeout=self._timeout
                )
            except (ConnectionError, OSError, asyncio.TimeoutError):
                continue
            if item is None or item[0] != ws.OP_TEXT:
                await socket.close()
                continue
            msg = protocol.decode_message(item[1].decode("utf-8", "replace"))
            if msg is None or msg["type"] == "reject":
                # The token is unknown or expired; retrying cannot help.
                await socket.close()
                return False
            if msg["type"] != "welcome":
                await socket.close()
                continue
            old = self.socket
            self.socket = socket
            self.report.welcome = msg
            self.report.resumes += 1
            self.report.resumed_at.append(self.now)
            try:
                await old.close()
            except (ConnectionError, OSError):
                pass
            return True
        return False


class AdmissionRejected(ConnectionError):
    """The server's admission cap turned this session away."""

    def __init__(self, reason: str, report: LiveReport) -> None:
        super().__init__(reason)
        self.report = report

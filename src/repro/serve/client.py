"""Scripted asyncio client for the live serving frontend.

:class:`LiveClient` speaks :mod:`repro.serve.protocol` over a real
WebSocket: it streams interaction events and requests up, collects the
blocks the server pushes down, and reconstructs the §6.1 accounting
*from the client's side of the wire* — each issued request becomes a
:class:`~repro.core.cache_manager.RequestOutcome` answered from the
locally received block set, so :func:`repro.metrics.collector.collect`
summarizes a live session exactly as it summarizes a simulated one.

The headline number for a push architecture is
:attr:`LiveReport.prefetched_hits`: requests whose first block was
already on the client when the user asked — blocks that crossed the
network *before* their request existed.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.cache_manager import RequestOutcome
from repro.metrics.collector import MetricSummary, collect

from . import protocol, ws

__all__ = ["LiveClient", "LiveReport", "ReceivedBlock", "AdmissionRejected"]


@dataclass(frozen=True)
class ReceivedBlock:
    """One pushed block as seen on the client's wire."""

    t: float
    request: int
    index: int
    size_bytes: int


@dataclass
class LiveReport:
    """Client-side record of one live session."""

    welcome: dict
    blocks: list[ReceivedBlock] = field(default_factory=list)
    requests: list[tuple[float, int]] = field(default_factory=list)
    server_stats: Optional[dict] = None
    rejected: bool = False

    @property
    def bytes_received(self) -> int:
        return sum(b.size_bytes for b in self.blocks)

    @property
    def unrequested_blocks(self) -> int:
        """Blocks pushed for requests this client never issued."""
        asked = {r for _, r in self.requests}
        return sum(1 for b in self.blocks if b.request not in asked)

    def first_block_at(self, request: int) -> Optional[float]:
        for b in self.blocks:
            if b.request == request:
                return b.t
        return None

    @property
    def prefetched_hits(self) -> int:
        """Requests whose first block arrived strictly before they were made.

        This is the acceptance signal for the push architecture: the
        block was scheduled and delivered speculatively, not in
        response to the request.
        """
        count = 0
        for issued_at, request in self.requests:
            arrived = self.first_block_at(request)
            if arrived is not None and arrived < issued_at:
                count += 1
        return count

    def outcomes(self) -> list[RequestOutcome]:
        """Client-observed request lifecycle records (§6.1 accounting).

        A request whose block set already contains its id is a cache
        hit (zero latency); otherwise it is served by the first later
        block, or left unanswered if none arrived before the session
        ended.  Preemption is a client-model policy, not a wire fact,
        so no request is marked preempted here.
        """
        out: list[RequestOutcome] = []
        for ts, (issued_at, request) in enumerate(self.requests):
            outcome = RequestOutcome(
                request=request, logical_ts=ts, registered_at=issued_at
            )
            arrived = self.first_block_at(request)
            if arrived is not None:
                if arrived < issued_at:
                    outcome.cache_hit = True
                    outcome.served_at = issued_at
                else:
                    outcome.served_at = arrived
            out.append(outcome)
        return out

    def summary(self) -> MetricSummary:
        """Aggregate through the standard metrics surface."""
        return collect(self.outcomes())


class LiveClient:
    """One scripted session against ``python -m repro serve``.

    Use as an async context manager::

        async with LiveClient.connect(host, port) as client:
            client.send_event(x, y)
            client.send_request(request_id)
            await asyncio.sleep(2.0)
            report = await client.bye()

    A background task drains the push stream continuously (blocks are
    timestamped on arrival), so the caller's script only decides *when*
    to move and *what* to request.
    """

    def __init__(self, socket: ws.WebSocket, report: LiveReport) -> None:
        self.socket = socket
        self.report = report
        self._t0 = time.monotonic()
        self._reader: Optional[asyncio.Task] = None
        self._done = asyncio.Event()

    # -- construction ------------------------------------------------

    @classmethod
    async def connect(
        cls, host: str, port: int, weight: float = 1.0, timeout: float = 10.0
    ) -> "LiveClient":
        """Open, send ``hello``, await ``welcome`` (or raise on reject)."""
        socket = await ws.connect(host, port)
        socket.send_text(
            protocol.encode_message(
                "hello", protocol=protocol.PROTOCOL_VERSION, weight=weight
            )
        )
        await socket.drain()
        item = await asyncio.wait_for(socket.recv(), timeout=timeout)
        if item is None or item[0] != ws.OP_TEXT:
            await socket.close()
            raise ConnectionError("server closed during handshake")
        msg = protocol.decode_message(item[1].decode("utf-8", "replace"))
        if msg is None:
            await socket.close()
            raise ConnectionError("malformed handshake reply")
        if msg["type"] == "reject":
            await socket.close()
            report = LiveReport(welcome=msg, rejected=True)
            raise AdmissionRejected(msg.get("reason", "rejected"), report)
        if msg["type"] != "welcome":
            await socket.close()
            raise ConnectionError(f"unexpected handshake reply {msg['type']!r}")
        client = cls(socket, LiveReport(welcome=msg))
        client._reader = asyncio.ensure_future(client._read_loop())
        return client

    async def __aenter__(self) -> "LiveClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- scripting surface -------------------------------------------

    @property
    def now(self) -> float:
        """Seconds since the session was established."""
        return time.monotonic() - self._t0

    def send_event(self, x: float, y: float) -> None:
        self.socket.send_text(protocol.encode_message("event", x=x, y=y))

    def send_request(self, request: int) -> None:
        self.report.requests.append((self.now, request))
        self.socket.send_text(protocol.encode_message("request", id=request))

    async def drain(self) -> None:
        await self.socket.drain()

    async def bye(self, timeout: float = 5.0) -> LiveReport:
        """End the session: request server stats, wait for the close."""
        self.socket.send_text(protocol.encode_message("bye"))
        await self.socket.drain()
        try:
            await asyncio.wait_for(self._done.wait(), timeout=timeout)
        except asyncio.TimeoutError:
            pass
        await self.close()
        return self.report

    async def close(self) -> None:
        if self._reader is not None and not self._reader.done():
            self._reader.cancel()
        await self.socket.close()

    # -- push stream -------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                item = await self.socket.recv()
                if item is None:
                    break
                opcode, payload = item
                if opcode == ws.OP_BINARY:
                    block = protocol.decode_block(payload)
                    self.report.blocks.append(
                        ReceivedBlock(
                            t=self.now,
                            request=block.request,
                            index=block.index,
                            size_bytes=block.size_bytes,
                        )
                    )
                elif opcode == ws.OP_TEXT:
                    msg = protocol.decode_message(
                        payload.decode("utf-8", "replace")
                    )
                    if msg is not None and msg["type"] == "stats":
                        self.report.server_stats = msg
        except asyncio.CancelledError:
            pass
        finally:
            self._done.set()


class AdmissionRejected(ConnectionError):
    """The server's admission cap turned this session away."""

    def __init__(self, reason: str, report: LiveReport) -> None:
        super().__init__(reason)
        self.report = report

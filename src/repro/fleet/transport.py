"""Pluggable fleet transport: Pipe and framed-TCP coordinator links.

PR 7's coordinator protocol is pure message passing — ``("sync", …)``
up, ``("peers", …)`` down, ``("hb", None)`` beacons, ``("result", …)``
at the end — but it rode exclusively on ``multiprocessing.Pipe``,
which pins every worker to the coordinator's host and, more subtly,
never loses, duplicates, reorders, or corrupts a message.  Real links
do all four.  This module makes the transport a seam:

* :class:`PipeTransport` — the existing path, byte-for-byte: a spawn
  context ``Pipe()`` per worker.  The seam contract is that ``W=1``
  fleet output over either driver is bit-identical.
* :class:`TcpTransport` — loopback-or-LAN sockets carrying
  length-prefixed frames (magic, version, type, sequence number,
  payload CRC-32, header CRC-32), with a hello/version handshake,
  per-message acks, idempotent retransmit, in-order dedup delivery,
  ping/pong heartbeats, and explicit partition detection
  (missed-heartbeat silence plus a hard send deadline).

Failure semantics mirror ``Pipe`` so the PR-8 supervisor needs no new
cases: a dead peer or an exceeded send deadline makes ``recv`` raise
``EOFError`` and ``send`` raise ``BrokenPipeError``, exactly what
``_recv`` already converts into a ``ShardError``.

Chaos (``partition:A-B@R``, ``netdelay:MS:P``, ``dup:P``,
``corrupt:P``) is injected *inside* the coordinator-side endpoint —
below the protocol, above the socket — so the defense being tested is
the framing/ack machinery itself, not a mock of it.
"""

from __future__ import annotations

import pickle
import secrets
import socket
import struct
import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

__all__ = [
    "FRAME_VERSION",
    "FrameDecoder",
    "FramedEndpoint",
    "NetChaosSpec",
    "PipeTransport",
    "TcpTransport",
    "TcpWorkerSpec",
    "TransportCounters",
    "TransportError",
]

MAGIC = b"KHMT"
FRAME_VERSION = 1

#: frame types
T_DATA = 1
T_ACK = 2
T_PING = 3
T_PONG = 4
T_HELLO = 5
T_HELLO_ACK = 6

# magic, version, ftype, seq, payload length, payload crc  + header crc
_HEAD = struct.Struct(">4sBBQII")
_HEAD_CRC = struct.Struct(">I")
HEADER_SIZE = _HEAD.size + _HEAD_CRC.size

#: hard cap on a single frame's payload; a corrupted length field can
#: never make the decoder wait on more than this.
MAX_PAYLOAD = 64 * 1024 * 1024


class TransportError(Exception):
    """Unrecoverable transport fault (handshake refused, bad version)."""


def encode_frame(ftype: int, seq: int, payload: bytes) -> bytes:
    if len(payload) > MAX_PAYLOAD:
        raise TransportError(f"payload of {len(payload)} bytes exceeds cap")
    head = _HEAD.pack(
        MAGIC, FRAME_VERSION, ftype, seq, len(payload), zlib.crc32(payload)
    )
    return head + _HEAD_CRC.pack(zlib.crc32(head)) + payload


@dataclass
class TransportCounters:
    """Per-shard wire health, accumulated across respawn attempts.

    Every count is a *defense firing*, not a failure: a retransmit
    means a loss was repaired, a crc_reject means corruption was
    caught before delivery, a dup_drop means idempotence held.
    """

    retransmits: int = 0
    crc_rejects: int = 0
    dup_drops: int = 0
    partitions_detected: int = 0
    heartbeat_rtt_ms_max: float = 0.0

    def record_rtt(self, rtt_s: float) -> None:
        self.heartbeat_rtt_ms_max = max(self.heartbeat_rtt_ms_max, rtt_s * 1e3)

    def snapshot(self) -> dict:
        return {
            "retransmits": self.retransmits,
            "crc_rejects": self.crc_rejects,
            "dup_drops": self.dup_drops,
            "partitions_detected": self.partitions_detected,
            "heartbeat_rtt_ms_max": round(self.heartbeat_rtt_ms_max, 3),
        }


@dataclass(frozen=True)
class NetChaosSpec:
    """Picklable slice of :class:`repro.chaos.ChaosConfig` for the wire.

    Rates are per-frame probabilities drawn from a deterministic
    per-shard stream; ``partition:A-B@R`` is not here because cuts are
    anchored to barrier rounds by the coordinator (see ``cut_links``).
    """

    netdelay_ms: float = 0.0
    netdelay_rate: float = 0.0
    dup_rate: float = 0.0
    corrupt_rate: float = 0.0
    seed: int = 0

    @property
    def is_inert(self) -> bool:
        return self.netdelay_rate <= 0 and self.dup_rate <= 0 and self.corrupt_rate <= 0


class _FaultInjector:
    """Deterministic per-link fault source, applied at frame granularity."""

    def __init__(self, spec: NetChaosSpec, shard: int) -> None:
        import random

        self.spec = spec
        self._rng = random.Random(10_007 * (spec.seed + 1) + shard)

    def corrupt(self, data: bytes) -> Optional[bytes]:
        """Return a bit-flipped copy of ``data`` with probability
        ``corrupt_rate``; None means leave it alone."""
        if self.spec.corrupt_rate > 0 and self._rng.random() < self.spec.corrupt_rate:
            # Flip one payload bit so the header still parses and the
            # payload CRC is what catches it — the realistic case.
            flipped = bytearray(data)
            if len(flipped) > HEADER_SIZE:
                pos = self._rng.randrange(HEADER_SIZE, len(flipped))
            else:
                pos = self._rng.randrange(len(flipped))
            flipped[pos] ^= 1 << self._rng.randrange(8)
            return bytes(flipped)
        return None

    def duplicate(self) -> bool:
        return self.spec.dup_rate > 0 and self._rng.random() < self.spec.dup_rate

    def delay_s(self) -> float:
        if (
            self.spec.netdelay_rate > 0
            and self.spec.netdelay_ms > 0
            and self._rng.random() < self.spec.netdelay_rate
        ):
            return self.spec.netdelay_ms / 1e3
        return 0.0


class FrameDecoder:
    """Incremental frame parser with CRC validation and resync.

    Corruption never surfaces as a payload: a frame whose header CRC
    or payload CRC fails is counted in ``crc_rejects`` and skipped by
    scanning forward to the next magic marker.  A corrupted *length*
    therefore cannot stall the stream — the header CRC rejects the
    header before the bogus length is trusted.
    """

    def __init__(self, counters: Optional[TransportCounters] = None) -> None:
        self.counters = counters or TransportCounters()
        self._buf = bytearray()

    def _resync(self) -> None:
        """Drop bytes up to the next plausible frame start."""
        self.counters.crc_rejects += 1
        nxt = self._buf.find(MAGIC, 1)
        del self._buf[: nxt if nxt != -1 else len(self._buf)]

    def feed(self, data: bytes) -> list[tuple[int, int, bytes]]:
        """Absorb raw bytes; return complete ``(ftype, seq, payload)``."""
        self._buf.extend(data)
        frames: list[tuple[int, int, bytes]] = []
        while True:
            if len(self._buf) < HEADER_SIZE:
                break
            head = bytes(self._buf[: _HEAD.size])
            (stored_hcrc,) = _HEAD_CRC.unpack_from(self._buf, _HEAD.size)
            magic, version, ftype, seq, length, pcrc = _HEAD.unpack(head)
            if (
                magic != MAGIC
                or version != FRAME_VERSION
                or length > MAX_PAYLOAD
                or zlib.crc32(head) != stored_hcrc
            ):
                self._resync()
                continue
            if len(self._buf) < HEADER_SIZE + length:
                break  # wait for the rest; length is CRC-vouched
            payload = bytes(self._buf[HEADER_SIZE : HEADER_SIZE + length])
            if zlib.crc32(payload) != pcrc:
                self._resync()
                continue
            del self._buf[: HEADER_SIZE + length]
            frames.append((ftype, seq, payload))
        return frames


class FramedEndpoint:
    """A ``multiprocessing.Connection`` work-alike over a stream socket.

    Guarantees to the coordinator protocol layered on top:

    * **at-least-once + idempotent** — every DATA frame is acked; the
      sender retransmits unacked frames past an RTO; the receiver
      drops duplicate sequence numbers.
    * **in-order** — out-of-sequence arrivals (retransmit races,
      injected delays) are stashed and delivered contiguously.
    * **fail-explicit** — peer EOF or a frame unacked past the send
      deadline flips the link to broken: ``recv`` raises ``EOFError``,
      ``send`` raises ``BrokenPipeError``, and ``poll`` returns True
      so a blocked reader wakes into the error instead of hanging.
    * **partition-aware** — sustained inbound silence while frames
      await acks increments ``partitions_detected`` (edge-triggered;
      any inbound frame re-arms it).
    """

    def __init__(
        self,
        sock: socket.socket,
        counters: Optional[TransportCounters] = None,
        *,
        injector: Optional[_FaultInjector] = None,
        rto_s: float = 0.2,
        ping_interval_s: float = 0.15,
        partition_after_s: float = 0.45,
        send_deadline_s: float = 10.0,
        linger_s: float = 5.0,
    ) -> None:
        self.counters = counters or TransportCounters()
        self._sock = sock
        self._injector = injector
        self._rto_s = rto_s
        self._ping_interval_s = ping_interval_s
        self._partition_after_s = partition_after_s
        self._send_deadline_s = send_deadline_s
        self._linger_s = linger_s

        self._cond = threading.Condition()
        self._inbox: deque[bytes] = deque()
        self._decoder = FrameDecoder(self.counters)
        self._next_deliver = 0
        self._stash: dict[int, bytes] = {}

        self._wlock = threading.Lock()
        self._send_seq = 0
        self._pending: dict[int, tuple[bytes, float, float]] = {}
        # Pings number themselves from a separate space: DATA sequence
        # numbers must stay contiguous or the receiver's in-order
        # delivery would wait forever on a "hole" that was a ping.
        self._ping_seq = 0
        self._pings: dict[int, float] = {}

        self._blocked_until = 0.0
        self._in_partition = False
        self._last_recv = time.monotonic()
        self._last_send = time.monotonic()
        self._broken = False
        self._closed = False
        self._timers: list[threading.Timer] = []

        self._reader = threading.Thread(target=self._read_loop, daemon=True)
        self._reader.start()
        self._ticker = threading.Thread(target=self._tick_loop, daemon=True)
        self._ticker.start()

    # -- chaos hooks ---------------------------------------------------

    def cut(self, heal_s: float) -> None:
        """Sever the link both ways for ``heal_s`` wall seconds."""
        with self._cond:
            self._blocked_until = time.monotonic() + heal_s

    def _cut_active(self) -> bool:
        return time.monotonic() < self._blocked_until

    # -- raw writes ----------------------------------------------------

    def _write_raw(self, data: bytes) -> None:
        with self._wlock:
            if self._closed or self._broken:
                return
            try:
                self._sock.sendall(data)
                self._last_send = time.monotonic()
            except OSError:
                self._mark_broken()

    def _emit(self, frame: bytes, *, faultable: bool = True) -> None:
        """One frame onto the wire, through the fault injector."""
        if self._cut_active():
            return  # dropped on the floor; retransmit machinery repairs
        inj = self._injector if faultable else None
        if inj is not None:
            delay = inj.delay_s()
            if delay > 0:
                t = threading.Timer(delay, self._write_raw, args=(frame,))
                t.daemon = True
                t.start()
                self._timers.append(t)
                return
            corrupted = inj.corrupt(frame)
            if corrupted is not None:
                self._write_raw(corrupted)
                return
            if inj.duplicate():
                self._write_raw(frame)
        self._write_raw(frame)

    # -- Connection API ------------------------------------------------

    def send(self, obj: Any) -> None:
        if self._closed or self._broken:
            raise BrokenPipeError("transport endpoint is closed")
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        with self._cond:
            seq = self._send_seq
            self._send_seq += 1
            frame = encode_frame(T_DATA, seq, payload)
            now = time.monotonic()
            # Register before emitting: a frame eaten by chaos is
            # already on the retransmit schedule.
            self._pending[seq] = (frame, now, now)
        self._emit(frame)

    def recv(self) -> Any:
        with self._cond:
            while not self._inbox:
                if self._broken or self._closed:
                    raise EOFError("transport endpoint lost its peer")
                self._cond.wait(timeout=0.5)
            payload = self._inbox.popleft()
        return pickle.loads(payload)

    def poll(self, timeout: float = 0.0) -> bool:
        deadline = time.monotonic() + max(timeout, 0.0)
        with self._cond:
            while True:
                if self._inbox or self._broken or self._closed:
                    return True  # recv() will yield a value or raise EOFError
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(timeout=min(remaining, 0.5))

    def close(self) -> None:
        # Linger until the peer has acked every outstanding frame (the
        # tick loop keeps retransmitting while we wait).  A process
        # that exits right after its final send would otherwise race
        # the wire: one corrupted result frame, and the retransmit
        # that would have saved it dies with the socket.
        deadline = time.monotonic() + self._linger_s
        with self._cond:
            if self._closed:
                return
            while self._pending and not self._broken:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=min(remaining, 0.05))
            self._closed = True
            self._cond.notify_all()
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    # -- internals -----------------------------------------------------

    def _mark_broken(self) -> None:
        with self._cond:
            self._broken = True
            self._cond.notify_all()

    def _read_loop(self) -> None:
        while not self._closed:
            try:
                chunk = self._sock.recv(65536)
            except OSError:
                self._mark_broken()
                return
            if not chunk:
                self._mark_broken()
                return
            if self._cut_active():
                continue  # the partition eats inbound bytes too
            self._on_chunk(chunk)

    def _on_chunk(self, chunk: bytes) -> None:
        inj = self._injector
        if inj is not None:
            corrupted = inj.corrupt(chunk)
            if corrupted is not None:
                chunk = corrupted
            elif inj.duplicate():
                # Replayed bytes re-parse into valid duplicate frames;
                # the seq dedup below is what must absorb them.
                chunk = chunk + chunk
        for ftype, seq, payload in self._decoder.feed(chunk):
            self._on_frame(ftype, seq, payload)

    def _on_frame(self, ftype: int, seq: int, payload: bytes) -> None:
        with self._cond:
            self._last_recv = time.monotonic()
            self._in_partition = False
        if ftype == T_DATA:
            # Always ack, even duplicates: the original ack may be the
            # thing that was lost.
            self._emit(encode_frame(T_ACK, seq, b""), faultable=False)
            with self._cond:
                if seq < self._next_deliver or seq in self._stash:
                    self.counters.dup_drops += 1
                    return
                self._stash[seq] = payload
                while self._next_deliver in self._stash:
                    self._inbox.append(self._stash.pop(self._next_deliver))
                    self._next_deliver += 1
                self._cond.notify_all()
        elif ftype == T_ACK:
            with self._cond:
                entry = self._pending.pop(seq, None)
            if entry is not None:
                self.counters.record_rtt(time.monotonic() - entry[2])
        elif ftype == T_PING:
            self._emit(encode_frame(T_PONG, seq, b""), faultable=False)
        elif ftype == T_PONG:
            with self._cond:
                sent = self._pings.pop(seq, None)
            if sent is not None:
                self.counters.record_rtt(time.monotonic() - sent)

    def _tick_loop(self) -> None:
        while not self._closed and not self._broken:
            time.sleep(0.05)
            now = time.monotonic()
            with self._cond:
                pending = list(self._pending.items())
                waiting = bool(self._pending) or bool(self._pings)
                quiet_s = now - self._last_recv
                idle_send_s = now - self._last_send
            for seq, (frame, first, last) in pending:
                if now - first > self._send_deadline_s:
                    self._mark_broken()
                    return
                if now - last > self._rto_s:
                    with self._cond:
                        if seq in self._pending:
                            self._pending[seq] = (frame, first, now)
                            self.counters.retransmits += 1
                        else:
                            continue
                    self._emit(frame)
            # Partition: we are owed frames (acks or pongs) and the
            # inbound side has been silent past the threshold.
            if waiting and quiet_s > self._partition_after_s:
                with self._cond:
                    if not self._in_partition:
                        self._in_partition = True
                        self.counters.partitions_detected += 1
            # Stale unanswered pings must not pin `waiting` forever.
            with self._cond:
                self._pings = {
                    s: t for s, t in self._pings.items() if now - t < 5.0
                }
            if idle_send_s > self._ping_interval_s:
                with self._cond:
                    seq = self._ping_seq
                    self._ping_seq += 1
                    self._pings[seq] = now
                self._emit(encode_frame(T_PING, seq, b""))


# ---------------------------------------------------------------------------
# handshake helpers (raw socket, before FramedEndpoint wraps it)
# ---------------------------------------------------------------------------


def _sock_send_frame(sock: socket.socket, ftype: int, obj: Any) -> None:
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(encode_frame(ftype, 0, payload))


def _sock_recv_frame(sock: socket.socket, timeout_s: float) -> tuple[int, Any]:
    sock.settimeout(timeout_s)
    decoder = FrameDecoder()
    try:
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                raise TransportError("peer closed during handshake")
            frames = decoder.feed(chunk)
            if frames:
                ftype, _seq, payload = frames[0]
                return ftype, pickle.loads(payload)
    finally:
        sock.settimeout(None)


# ---------------------------------------------------------------------------
# transports
# ---------------------------------------------------------------------------


class PipeTransport:
    """The original driver: one spawn-context ``Pipe()`` per worker.

    Kept free of any wrapping so the ``W=1`` seam contract — TCP and
    Pipe produce bit-identical pooled summaries — compares TCP against
    the exact pre-seam byte path.
    """

    name = "pipe"

    def __init__(self) -> None:
        import multiprocessing as mp

        self._ctx = mp.get_context("spawn")

    def open_endpoint(self, shard: int, attempt: int):
        parent_conn, child_conn = self._ctx.Pipe()
        return parent_conn, child_conn

    def release_worker_handle(self, handle) -> None:
        # The parent's copy of the child end must close so EOF
        # propagates when the worker dies — unchanged from PR 7.
        handle.close()

    def counters_for(self, shard: int) -> TransportCounters:
        return TransportCounters()  # pipes have no wire to count

    def counter_snapshots(self) -> dict[int, dict]:
        return {}

    def cut_links(self, shards: Iterable[int], heal_s: float) -> None:
        raise TransportError("partition chaos requires the tcp transport")

    def close(self) -> None:
        pass


@dataclass(frozen=True)
class TcpWorkerSpec:
    """Everything a spawned worker needs to dial home.  Picklable —
    this object rides the spawn pickle stream instead of a pipe fd."""

    host: str
    port: int
    shard: int
    attempt: int
    token: str
    rto_s: float = 0.2
    send_deadline_s: float = 10.0

    def connect(self) -> FramedEndpoint:
        sock = socket.create_connection((self.host, self.port), timeout=10.0)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        _sock_send_frame(
            sock,
            T_HELLO,
            {
                "version": FRAME_VERSION,
                "shard": self.shard,
                "attempt": self.attempt,
                "token": self.token,
            },
        )
        ftype, ack = _sock_recv_frame(sock, timeout_s=10.0)
        if ftype != T_HELLO_ACK:
            sock.close()
            raise TransportError(f"expected HELLO_ACK, got frame type {ftype}")
        if ack.get("version") != FRAME_VERSION:
            sock.close()
            raise TransportError(
                f"coordinator speaks frame version {ack.get('version')}, "
                f"worker speaks {FRAME_VERSION}"
            )
        return FramedEndpoint(
            sock,
            TransportCounters(),
            rto_s=self.rto_s,
            send_deadline_s=self.send_deadline_s,
        )


class _Slot:
    """Rendezvous between ``open_endpoint`` and the accept thread."""

    def __init__(self) -> None:
        self.ready = threading.Event()
        self.endpoint: Optional[FramedEndpoint] = None
        self.error: Optional[str] = None

    def fulfill(self, endpoint: FramedEndpoint) -> None:
        self.endpoint = endpoint
        self.ready.set()

    def fail(self, error: str) -> None:
        self.error = error
        self.ready.set()


class _SlotConn:
    """Coordinator-side endpoint that may not have accepted yet.

    ``run_sharded`` creates endpoints before spawning workers; the TCP
    connection lands asynchronously.  Until then, ``poll`` simply has
    nothing, ``send`` waits for the dial-in, and a worker that dies
    without ever connecting is caught by the supervisor's liveness
    check — the same way a pipe-worker that dies pre-handshake is.
    """

    def __init__(self, slot: _Slot, connect_deadline_s: float) -> None:
        self._slot = slot
        self._deadline_s = connect_deadline_s
        self._closed = False

    def _endpoint(self, wait_s: float) -> Optional[FramedEndpoint]:
        if self._slot.ready.wait(timeout=wait_s):
            if self._slot.error is not None:
                raise BrokenPipeError(self._slot.error)
            return self._slot.endpoint
        return None

    def send(self, obj: Any) -> None:
        if self._closed:
            raise BrokenPipeError("endpoint closed")
        ep = self._endpoint(self._deadline_s)
        if ep is None:
            raise BrokenPipeError("worker never completed the TCP handshake")
        ep.send(obj)

    def recv(self) -> Any:
        ep = self._endpoint(self._deadline_s)
        if ep is None:
            raise EOFError("worker never completed the TCP handshake")
        return ep.recv()

    def poll(self, timeout: float = 0.0) -> bool:
        start = time.monotonic()
        ep = self._endpoint(timeout)
        if ep is None:
            return False
        remaining = max(0.0, timeout - (time.monotonic() - start))
        return ep.poll(remaining)

    def close(self) -> None:
        self._closed = True
        if self._slot.ready.is_set() and self._slot.endpoint is not None:
            self._slot.endpoint.close()


class TcpTransport:
    """Coordinator-side listener + per-shard framed endpoints.

    One instance serves a whole fleet run: workers (original and
    respawned) dial the same port and are routed to their slot by the
    ``(shard, attempt)`` pair in their HELLO.  A shared random token
    keeps stray local processes from joining the fleet.
    """

    name = "tcp"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        chaos: Optional[NetChaosSpec] = None,
        *,
        connect_deadline_s: float = 30.0,
        rto_s: float = 0.2,
        ping_interval_s: float = 0.15,
        partition_after_s: float = 0.45,
        send_deadline_s: float = 10.0,
    ) -> None:
        self.host = host
        self.chaos = chaos if chaos is not None and not chaos.is_inert else None
        self._connect_deadline_s = connect_deadline_s
        self._rto_s = rto_s
        self._ping_interval_s = ping_interval_s
        self._partition_after_s = partition_after_s
        self._send_deadline_s = send_deadline_s
        self._token = secrets.token_hex(8)
        self._lock = threading.Lock()
        self._slots: dict[tuple[int, int], _Slot] = {}
        self._counters: dict[int, TransportCounters] = {}
        self._live: dict[int, FramedEndpoint] = {}
        self._closed = False

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.port = self._listener.getsockname()[1]
        self._acceptor = threading.Thread(target=self._accept_loop, daemon=True)
        self._acceptor.start()

    # -- seam API ------------------------------------------------------

    def open_endpoint(self, shard: int, attempt: int):
        with self._lock:
            counters = self._counters.setdefault(shard, TransportCounters())
            slot = _Slot()
            self._slots[(shard, attempt)] = slot
        spec = TcpWorkerSpec(
            host=self.host,
            port=self.port,
            shard=shard,
            attempt=attempt,
            token=self._token,
            rto_s=self._rto_s,
            send_deadline_s=self._send_deadline_s,
        )
        del counters  # per-shard counters attach at accept time
        return _SlotConn(slot, self._connect_deadline_s), spec

    def release_worker_handle(self, handle) -> None:
        pass  # a TcpWorkerSpec holds no parent-side resource

    def counters_for(self, shard: int) -> TransportCounters:
        with self._lock:
            return self._counters.setdefault(shard, TransportCounters())

    def counter_snapshots(self) -> dict[int, dict]:
        with self._lock:
            return {k: c.snapshot() for k, c in sorted(self._counters.items())}

    def cut_links(self, shards: Iterable[int], heal_s: float) -> None:
        """Sever coordinator↔worker links for ``shards``; they heal on
        their own after ``heal_s`` wall seconds.  Retransmit + dedup
        must make the run indistinguishable from an uncut one."""
        with self._lock:
            endpoints = [self._live[k] for k in shards if k in self._live]
        for ep in endpoints:
            ep.cut(heal_s)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            live = list(self._live.values())
        try:
            self._listener.close()
        except OSError:
            pass
        for ep in live:
            ep.close()

    # -- accept path ---------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            t = threading.Thread(
                target=self._handshake, args=(sock,), daemon=True
            )
            t.start()

    def _handshake(self, sock: socket.socket) -> None:
        try:
            ftype, hello = _sock_recv_frame(sock, timeout_s=10.0)
            if ftype != T_HELLO or not isinstance(hello, dict):
                raise TransportError("expected HELLO")
            if hello.get("token") != self._token:
                raise TransportError("bad fleet token")
            if hello.get("version") != FRAME_VERSION:
                raise TransportError(
                    f"worker frame version {hello.get('version')} != "
                    f"{FRAME_VERSION}"
                )
            shard = int(hello["shard"])
            attempt = int(hello["attempt"])
            with self._lock:
                slot = self._slots.get((shard, attempt))
            if slot is None or slot.ready.is_set():
                raise TransportError(
                    f"no open slot for shard {shard} attempt {attempt}"
                )
            _sock_send_frame(sock, T_HELLO_ACK, {"version": FRAME_VERSION})
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            injector = (
                _FaultInjector(self.chaos, shard) if self.chaos is not None else None
            )
            endpoint = FramedEndpoint(
                sock,
                self.counters_for(shard),
                injector=injector,
                rto_s=self._rto_s,
                ping_interval_s=self._ping_interval_s,
                partition_after_s=self._partition_after_s,
                send_deadline_s=self._send_deadline_s,
            )
            with self._lock:
                self._live[shard] = endpoint
            slot.fulfill(endpoint)
        except (TransportError, OSError, KeyError, ValueError, pickle.PickleError):
            try:
                sock.close()
            except OSError:
                pass

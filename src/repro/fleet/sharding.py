"""Multiprocess fleet sharding: spawn workers, lock-step delta sync.

One Python process tops out near the N=32 fleet bench — the 150 ms
scheduling tick (PAPER.md §5) cannot amortize across more sessions
than one core can recompute in 150 ms.  The only cross-session state
in the whole stack is the crowd prior
(:class:`~repro.predictors.shared.SharedTransitionPrior`), and PR 7
makes it a CRDT, so the fleet partitions cleanly: hash-assign every
session to one of W worker processes, run a full, independent
``Simulator`` + ``FleetScheduleService`` + shared-backend stack per
shard, and exchange prior deltas at a configurable cadence.  Nothing
on any worker's hot path ever takes a lock or crosses a process
boundary.

This module is the *generic* half — routing, process lifecycle, and
the barrier protocol; it knows nothing about fleets or priors beyond
"workers exchange picklable payloads".  The experiment-aware half
(building shard fleets, merging :class:`PriorDelta` objects, pooling
metrics) lives in :func:`repro.experiments.runner.run_fleet_sharded`.

Protocol (bulk-synchronous, coordinator-relayed)::

    worker w:  for each sync point: run sim chunk; exchange(delta)
               then: result(report)
    coordinator: per round, gather one payload from every worker,
               broadcast each worker the OTHER workers' payloads;
               finally gather one result per worker.

Workers advance their discrete-event simulators to identical barrier
times between exchanges, so every shard sees every other shard's
transitions with bounded staleness (one sync interval).  The relay
gives O(W) pipe pairs instead of O(W²), and the coordinator is idle
between barriers — all CPU burns in the workers.

Entry points are ``"module:function"`` strings rather than callables
so the spawn start method (required: fork would snapshot the
coordinator's heap, and the default differs across platforms) only
ever pickles plain data.
"""

from __future__ import annotations

import importlib
import multiprocessing as mp
import os
import traceback
import zlib
from dataclasses import dataclass
from multiprocessing.connection import Connection
from typing import Any, Callable, Optional

__all__ = [
    "shard_of",
    "assign_shards",
    "ShardTask",
    "ShardChannel",
    "ShardError",
    "run_sharded",
]


def shard_of(key: Any, num_shards: int) -> int:
    """Stable hash route: which shard owns ``key``?

    Uses CRC-32 of the key's string form — Python's builtin ``hash``
    is salted per process, which would route the same session to
    different shards in the coordinator and a worker.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    return zlib.crc32(str(key).encode()) % num_shards


def assign_shards(keys, num_shards: int) -> list[list[Any]]:
    """Partition ``keys`` by :func:`shard_of`, preserving input order."""
    shards: list[list[Any]] = [[] for _ in range(num_shards)]
    for key in keys:
        shards[shard_of(key, num_shards)].append(key)
    return shards


@dataclass
class ShardTask:
    """Everything one worker process needs, as picklable data."""

    #: ``"package.module:function"`` resolved inside the worker; called
    #: as ``function(spec, channel)`` and its return value becomes this
    #: shard's entry in :func:`run_sharded`'s result list.
    entry: str
    #: Arbitrary picklable payload for the entry function.
    spec: Any
    shard: int
    num_shards: int


class ShardChannel:
    """Worker-side handle on the coordinator pipe."""

    def __init__(self, conn: Connection, shard: int, num_shards: int) -> None:
        self._conn = conn
        self.shard = shard
        self.num_shards = num_shards

    def exchange(self, payload: Any) -> list[Any]:
        """Barrier: offer ``payload``, receive every peer's offering.

        Blocks until all workers reach the same round.  Returns the
        other ``num_shards - 1`` payloads (empty list when W=1 — the
        degenerate fleet syncs with nobody, which is what makes the
        W=1 run bit-identical to the unsharded one).
        """
        self._conn.send(("sync", payload))
        kind, peers = self._conn.recv()
        if kind != "peers":  # pragma: no cover - protocol bug guard
            raise RuntimeError(f"expected peers, got {kind!r}")
        return peers

    def result(self, value: Any) -> None:
        """Ship the shard's final report to the coordinator."""
        self._conn.send(("result", value))


class ShardError(RuntimeError):
    """A worker process failed; carries the remote traceback."""

    def __init__(self, shard: int, remote_traceback: str) -> None:
        super().__init__(
            f"shard {shard} failed:\n{remote_traceback}"
        )
        self.shard = shard
        self.remote_traceback = remote_traceback


def _worker_entry(task: ShardTask, conn: Connection) -> None:
    """Spawn target: resolve the entry point and run it on the channel."""
    try:
        module_name, _, func_name = task.entry.partition(":")
        fn: Callable = getattr(importlib.import_module(module_name), func_name)
        channel = ShardChannel(conn, task.shard, task.num_shards)
        value = fn(task.spec, channel)
        channel.result(value)
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        conn.close()


def _ensure_importable() -> None:
    """Make sure spawned children can ``import repro``.

    Spawn re-imports the target's module by name in a fresh
    interpreter; when the parent got ``repro`` from a ``sys.path``
    entry (pytest rootdir magic) rather than ``PYTHONPATH``, the child
    would not.  Prepend the package parent to ``PYTHONPATH`` so the
    child inherits it.
    """
    root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    existing = os.environ.get("PYTHONPATH", "")
    if root not in existing.split(os.pathsep):
        os.environ["PYTHONPATH"] = (
            root + (os.pathsep + existing if existing else "")
        )


def _recv(
    conn: Connection,
    proc: mp.process.BaseProcess,
    shard: int,
    timeout_s: Optional[float],
) -> tuple[str, Any]:
    """Receive one message, surfacing worker death instead of hanging."""
    waited = 0.0
    poll_s = 0.2
    while not conn.poll(poll_s):
        waited += poll_s
        if not proc.is_alive():
            # One last poll: the message may have raced process exit.
            if conn.poll(0):
                break
            raise ShardError(
                shard, f"worker exited with code {proc.exitcode} mid-protocol"
            )
        if timeout_s is not None and waited >= timeout_s:
            raise ShardError(shard, f"no message within {timeout_s:.0f}s")
    kind, payload = conn.recv()
    if kind == "error":
        raise ShardError(shard, payload)
    return kind, payload


def run_sharded(
    tasks: list[ShardTask],
    sync_rounds: int = 0,
    timeout_s: Optional[float] = None,
    on_round: Optional[Callable[[int, list[Any]], None]] = None,
) -> list[Any]:
    """Run one process per task with ``sync_rounds`` barrier exchanges.

    Every worker must call :meth:`ShardChannel.exchange` exactly
    ``sync_rounds`` times before returning — the coordinator gathers
    one payload per worker per round and relays each worker the
    others' payloads.  ``on_round(round_index, payloads)`` observes
    each completed barrier (e.g. to fold deltas into a coordinator-side
    aggregate).  Returns the workers' entry-function return values,
    indexed by shard.  Any worker failure tears the whole fleet down
    and raises :class:`ShardError` with the remote traceback.
    """
    if {t.shard for t in tasks} != set(range(len(tasks))):
        raise ValueError("task shard indices must be exactly 0..W-1")
    _ensure_importable()
    ctx = mp.get_context("spawn")
    procs: list[mp.process.BaseProcess] = []
    pipes: list[Connection] = []
    try:
        for task in tasks:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_entry, args=(task, child_conn), daemon=True
            )
            proc.start()
            child_conn.close()  # child's end lives in the child now
            procs.append(proc)
            pipes.append(parent_conn)
        for round_index in range(sync_rounds):
            offers = [
                _recv(pipes[i], procs[i], tasks[i].shard, timeout_s)[1]
                for i in range(len(tasks))
            ]
            for i, conn in enumerate(pipes):
                conn.send(("peers", offers[:i] + offers[i + 1:]))
            if on_round is not None:
                on_round(round_index, list(offers))
        results: list[Any] = [None] * len(tasks)
        for i, conn in enumerate(pipes):
            kind, value = _recv(conn, procs[i], tasks[i].shard, timeout_s)
            if kind != "result":
                raise ShardError(
                    tasks[i].shard, f"expected result, got {kind!r}"
                )
            results[tasks[i].shard] = value
        return results
    finally:
        for conn in pipes:
            conn.close()
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)

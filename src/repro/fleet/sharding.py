"""Multiprocess fleet sharding: spawn workers, lock-step delta sync.

One Python process tops out near the N=32 fleet bench — the 150 ms
scheduling tick (PAPER.md §5) cannot amortize across more sessions
than one core can recompute in 150 ms.  The only cross-session state
in the whole stack is the crowd prior
(:class:`~repro.predictors.shared.SharedTransitionPrior`), and PR 7
makes it a CRDT, so the fleet partitions cleanly: hash-assign every
session to one of W worker processes, run a full, independent
``Simulator`` + ``FleetScheduleService`` + shared-backend stack per
shard, and exchange prior deltas at a configurable cadence.  Nothing
on any worker's hot path ever takes a lock or crosses a process
boundary.

This module is the *generic* half — routing, process lifecycle, the
barrier protocol, and worker supervision; it knows nothing about
fleets or priors beyond "workers exchange picklable payloads".  The
experiment-aware half (building shard fleets, merging
:class:`PriorDelta` objects, pooling metrics) lives in
:func:`repro.experiments.runner.run_fleet_sharded`.

Protocol (bulk-synchronous, coordinator-relayed)::

    worker w:  for each sync point: run sim chunk; exchange(delta)
               then: result(report)
    coordinator: per round, gather one payload from every worker,
               broadcast each worker the OTHER workers' payloads;
               finally gather one result per worker.

Workers advance their discrete-event simulators to identical barrier
times between exchanges, so every shard sees every other shard's
transitions with bounded staleness (one sync interval).  The relay
gives O(W) pipe pairs instead of O(W²), and the coordinator is idle
between barriers — all CPU burns in the workers.

Supervision (optional): with a :class:`SupervisionPolicy` and a
``respawn`` factory, a worker that dies or goes quiet past the
heartbeat timeout is quarantined and replaced — the factory builds a
fresh :class:`ShardTask` that re-runs the shard from the last
completed sync round (in the fleet case, seeded with the
coordinator-side merged CRDT prior, which is exactly what makes
re-entry coordination-free).  Restarts back off exponentially up to a
per-shard budget; past it the shard is *dropped*, its result slot
left ``None`` and the loss recorded in a :class:`ShardRecovery` log
instead of tearing down the surviving fleet.

Entry points are ``"module:function"`` strings rather than callables
so the spawn start method (required: fork would snapshot the
coordinator's heap, and the default differs across platforms) only
ever pickles plain data.
"""

from __future__ import annotations

import importlib
import multiprocessing as mp
import os
import threading
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from typing import Any, Callable, Optional

from .ring import HashRing

__all__ = [
    "shard_of",
    "assign_shards",
    "ShardTask",
    "ShardChannel",
    "ShardError",
    "SupervisionPolicy",
    "ShardRecovery",
    "run_sharded",
]

# Rings are immutable per membership size; shard_of is on the routing
# hot path for every session of every worker, so cache per W.
_ring_cache: dict[int, HashRing] = {}


def _ring_for(num_shards: int) -> HashRing:
    ring = _ring_cache.get(num_shards)
    if ring is None:
        ring = _ring_cache[num_shards] = HashRing(range(num_shards))
    return ring


def shard_of(key: Any, num_shards: int) -> int:
    """Stable hash route: which shard owns ``key``?

    Routes over a consistent-hash ring (CRC-32 based — Python's
    builtin ``hash`` is salted per process, which would route the same
    session to different shards in the coordinator and a worker).  The
    ring, unlike the old ``crc32 % W``, keeps routing *stable under
    membership change*: going W → W±1 moves only ~1/W of the keys,
    which is what makes mid-run joins and leaves migrate a handful of
    sessions instead of reshuffling the whole fleet.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    return _ring_for(num_shards).route(key)


def assign_shards(keys, num_shards: int) -> list[list[Any]]:
    """Partition ``keys`` by :func:`shard_of`, preserving input order."""
    shards: list[list[Any]] = [[] for _ in range(num_shards)]
    for key in keys:
        shards[shard_of(key, num_shards)].append(key)
    return shards


@dataclass
class ShardTask:
    """Everything one worker process needs, as picklable data."""

    #: ``"package.module:function"`` resolved inside the worker; called
    #: as ``function(spec, channel)`` and its return value becomes this
    #: shard's entry in :func:`run_sharded`'s result list.
    entry: str
    #: Arbitrary picklable payload for the entry function.
    spec: Any
    shard: int
    num_shards: int
    #: When set, the worker emits ``("hb", None)`` liveness beacons at
    #: this cadence from a side thread, so a supervised coordinator can
    #: distinguish "slow but alive" from "wedged".  ``None`` (default)
    #: keeps the wire protocol exactly as before.
    heartbeat_interval_s: Optional[float] = None


class ShardChannel:
    """Worker-side handle on the coordinator pipe."""

    def __init__(self, conn: Connection, shard: int, num_shards: int) -> None:
        self._conn = conn
        self.shard = shard
        self.num_shards = num_shards
        # Serializes data sends against the heartbeat side thread.
        self.send_lock = threading.Lock()

    def _send(self, message: tuple[str, Any]) -> None:
        with self.send_lock:
            self._conn.send(message)

    def exchange(self, payload: Any) -> list[Any]:
        """Barrier: offer ``payload``, receive every peer's offering.

        Blocks until all workers reach the same round.  Returns the
        other live workers' payloads (empty list when W=1 — the
        degenerate fleet syncs with nobody, which is what makes the
        W=1 run bit-identical to the unsharded one; also fewer than
        ``num_shards - 1`` entries once a supervised peer is lost).
        """
        self._send(("sync", payload))
        kind, peers = self._conn.recv()
        if kind != "peers":  # pragma: no cover - protocol bug guard
            raise RuntimeError(f"expected peers, got {kind!r}")
        return peers

    def result(self, value: Any) -> None:
        """Ship the shard's final report to the coordinator."""
        self._send(("result", value))


class ShardError(RuntimeError):
    """A worker process failed; carries the remote traceback."""

    def __init__(self, shard: int, remote_traceback: str) -> None:
        super().__init__(
            f"shard {shard} failed:\n{remote_traceback}"
        )
        self.shard = shard
        self.remote_traceback = remote_traceback


@dataclass(frozen=True)
class SupervisionPolicy:
    """How the coordinator reacts to a dead or wedged worker.

    Each shard gets ``max_restarts`` replacement attempts; the delay
    before attempt *k* is ``backoff_s * backoff_factor**(k-1)``.  With
    ``heartbeat_timeout_s`` set (and heartbeats enabled on the task),
    a worker that sends *nothing* — data or beacon — for that long is
    declared wedged and recycled just like a dead one.
    """

    max_restarts: int = 2
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    heartbeat_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def backoff_before(self, attempt: int) -> float:
        """Sleep before restart number ``attempt`` (1-based)."""
        return self.backoff_s * self.backoff_factor ** (attempt - 1)


@dataclass
class ShardRecovery:
    """What supervision did during one :func:`run_sharded` call."""

    #: One entry per replacement worker spawned: (shard, round, attempt#).
    restarts: list[tuple[int, int, int]] = field(default_factory=list)
    #: Shards dropped after exhausting their restart budget.
    lost_shards: list[int] = field(default_factory=list)

    @property
    def recovered_shards(self) -> list[int]:
        """Shards that died at least once but finished the run."""
        return sorted(
            {s for s, _, _ in self.restarts} - set(self.lost_shards)
        )

    def snapshot(self) -> dict:
        return {
            "shards_recovered": len(self.recovered_shards),
            "shards_lost": len(self.lost_shards),
            "restarts": len(self.restarts),
        }


def _heartbeat_loop(
    channel: ShardChannel, conn: Connection, interval_s: float, stop: threading.Event
) -> None:
    """Side-thread beacon: prove liveness between barrier sends."""
    while not stop.wait(interval_s):
        try:
            with channel.send_lock:
                conn.send(("hb", None))
        except (BrokenPipeError, OSError):  # coordinator went away
            return


def _worker_entry(task: ShardTask, conn) -> None:
    """Spawn target: resolve the entry point and run it on the channel.

    ``conn`` is either a pipe ``Connection`` (the pipe transport hands
    the child its fd directly) or a connect-on-arrival spec like
    :class:`~repro.fleet.transport.TcpWorkerSpec` — anything with a
    ``connect()`` method is dialed here, inside the fresh process.
    """
    stop_heartbeat = threading.Event()
    try:
        if hasattr(conn, "connect"):
            conn = conn.connect()
        module_name, _, func_name = task.entry.partition(":")
        fn: Callable = getattr(importlib.import_module(module_name), func_name)
        channel = ShardChannel(conn, task.shard, task.num_shards)
        if task.heartbeat_interval_s is not None:
            threading.Thread(
                target=_heartbeat_loop,
                args=(channel, conn, task.heartbeat_interval_s, stop_heartbeat),
                daemon=True,
            ).start()
        value = fn(task.spec, channel)
        stop_heartbeat.set()
        channel.result(value)
    except Exception:
        stop_heartbeat.set()
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        stop_heartbeat.set()
        conn.close()


def _ensure_importable() -> None:
    """Make sure spawned children can ``import repro``.

    Spawn re-imports the target's module by name in a fresh
    interpreter; when the parent got ``repro`` from a ``sys.path``
    entry (pytest rootdir magic) rather than ``PYTHONPATH``, the child
    would not.  Prepend the package parent to ``PYTHONPATH`` so the
    child inherits it.
    """
    root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    existing = os.environ.get("PYTHONPATH", "")
    if root not in existing.split(os.pathsep):
        os.environ["PYTHONPATH"] = (
            root + (os.pathsep + existing if existing else "")
        )


def _recv(
    conn: Connection,
    proc: mp.process.BaseProcess,
    shard: int,
    timeout_s: Optional[float],
    quiet_timeout_s: Optional[float] = None,
) -> tuple[str, Any]:
    """Receive one data message, surfacing worker death instead of hanging.

    ``("hb", ...)`` beacons are consumed silently; they reset the
    *quiet* clock but not the total one, so a wedged-but-beaconing
    worker still trips ``timeout_s`` while a genuinely dead or wedged
    one trips the much shorter ``quiet_timeout_s``.
    """
    waited = 0.0
    quiet = 0.0
    poll_s = 0.2
    while True:
        if conn.poll(poll_s):
            try:
                kind, payload = conn.recv()
            except (EOFError, OSError) as exc:
                # poll() also wakes on EOF: the worker died with its
                # pipe end open (os._exit, SIGKILL) and left no message.
                raise ShardError(
                    shard,
                    f"worker pipe closed mid-protocol "
                    f"(exit code {proc.exitcode}): {exc!r}",
                ) from exc
            if kind == "hb":
                quiet = 0.0
                continue
            if kind == "error":
                raise ShardError(shard, payload)
            return kind, payload
        waited += poll_s
        quiet += poll_s
        if not proc.is_alive():
            # One last poll: the message may have raced process exit.
            if conn.poll(0):
                continue
            raise ShardError(
                shard, f"worker exited with code {proc.exitcode} mid-protocol"
            )
        if quiet_timeout_s is not None and quiet >= quiet_timeout_s:
            raise ShardError(
                shard, f"no heartbeat within {quiet_timeout_s:.1f}s — worker wedged"
            )
        if timeout_s is not None and waited >= timeout_s:
            raise ShardError(shard, f"no message within {timeout_s:.0f}s")


def _dispose_proc(proc: mp.process.BaseProcess) -> None:
    """Stop one worker without leaving a zombie: terminate, then kill."""
    if proc.is_alive():
        proc.terminate()
    proc.join(timeout=5.0)
    if proc.is_alive():  # pragma: no cover - needs a SIGTERM-immune child
        proc.kill()
        proc.join(timeout=5.0)


class _Supervisor:
    """Coordinator-side state for one supervised :func:`run_sharded`."""

    def __init__(
        self,
        ctx,
        tasks: list[ShardTask],
        policy: Optional[SupervisionPolicy],
        respawn: Optional[Callable[[int, int], ShardTask]],
        recovery: ShardRecovery,
        transport=None,
        on_lost: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        from .transport import PipeTransport

        self.ctx = ctx
        self.tasks = list(tasks)
        self.policy = policy
        self.respawn = respawn
        self.recovery = recovery
        self.transport = transport if transport is not None else PipeTransport()
        self.on_lost = on_lost
        self.procs: list[Optional[mp.process.BaseProcess]] = [None] * len(tasks)
        self.pipes: list[Optional[Any]] = [None] * len(tasks)
        self.alive = [True] * len(tasks)
        self.attempts = [0] * len(tasks)

    @property
    def supervised(self) -> bool:
        return self.policy is not None and self.respawn is not None

    def spawn(self, i: int) -> None:
        parent_conn, worker_handle = self.transport.open_endpoint(
            self.tasks[i].shard, self.attempts[i]
        )
        proc = self.ctx.Process(
            target=_worker_entry, args=(self.tasks[i], worker_handle), daemon=True
        )
        proc.start()
        # For pipes this closes the parent's copy of the child end so
        # EOF propagates; a TCP worker spec holds nothing to release.
        self.transport.release_worker_handle(worker_handle)
        self.procs[i] = proc
        self.pipes[i] = parent_conn

    def add_member(self, task: ShardTask) -> int:
        """Grow the fleet mid-run: spawn ``task`` as a new member.

        The joiner takes part in every barrier from the next round on;
        it is supervised like any original worker.  Returns its slot
        index.
        """
        self.tasks.append(task)
        self.procs.append(None)
        self.pipes.append(None)
        self.alive.append(True)
        self.attempts.append(0)
        i = len(self.tasks) - 1
        self.spawn(i)
        return i

    def dispose(self, i: int) -> None:
        conn = self.pipes[i]
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
            self.pipes[i] = None
        proc = self.procs[i]
        if proc is not None:
            _dispose_proc(proc)
            self.procs[i] = None

    def quiet_timeout_s(self, i: int) -> Optional[float]:
        if self.policy is None or self.tasks[i].heartbeat_interval_s is None:
            return None
        return self.policy.heartbeat_timeout_s

    def gather(self, i: int, expect: str, next_round: int, timeout_s: Optional[float]) -> Any:
        """Receive one ``expect`` message from worker ``i``, recovering
        from worker death when supervision allows.

        Returns the payload, or ``None`` with ``alive[i]`` cleared when
        the shard had to be dropped.  Unsupervised, the first failure
        propagates as :class:`ShardError` exactly as before.
        """
        while True:
            try:
                kind, payload = _recv(
                    self.pipes[i],
                    self.procs[i],
                    self.tasks[i].shard,
                    timeout_s,
                    self.quiet_timeout_s(i),
                )
                if kind != expect:
                    raise ShardError(
                        self.tasks[i].shard, f"expected {expect}, got {kind!r}"
                    )
                return payload
            except ShardError:
                if not self.supervised:
                    raise
                self.dispose(i)
                shard = self.tasks[i].shard
                self.attempts[i] += 1
                if self.attempts[i] > self.policy.max_restarts:
                    self.alive[i] = False
                    self.recovery.lost_shards.append(shard)
                    if self.on_lost is not None:
                        # Fired before this round's broadcasts, so a
                        # migration planner can hand the lost shard's
                        # sessions to survivors in the same round.
                        self.on_lost(shard, next_round)
                    return None
                self.recovery.restarts.append((shard, next_round, self.attempts[i]))
                time.sleep(self.policy.backoff_before(self.attempts[i]))
                self.tasks[i] = self.respawn(shard, next_round)
                self.spawn(i)

    def broadcast(self, i: int, message: tuple[str, Any]) -> None:
        """Best-effort send; a dead receiver is caught at its next gather."""
        conn = self.pipes[i]
        if conn is None:
            return
        try:
            conn.send(message)
        except (BrokenPipeError, OSError):
            pass

    def teardown(self) -> None:
        # Close parent pipe ends FIRST: a child blocked in exchange()
        # sees EOF and unwinds, instead of deadlocking against a parent
        # that is itself blocked in join().
        for conn in self.pipes:
            if conn is not None:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
        for proc in self.procs:
            if proc is not None:
                _dispose_proc(proc)
        # Counters survive close(), so callers can snapshot after.
        self.transport.close()


def run_sharded(
    tasks: list[ShardTask],
    sync_rounds: int = 0,
    timeout_s: Optional[float] = None,
    on_round: Optional[Callable[[int, list[Any]], None]] = None,
    supervision: Optional[SupervisionPolicy] = None,
    respawn: Optional[Callable[[int, int], ShardTask]] = None,
    recovery: Optional[ShardRecovery] = None,
    transport=None,
    before_round: Optional[Callable[[int], None]] = None,
    on_lost: Optional[Callable[[int, int], None]] = None,
    control: Optional[Callable[[int, int], list[Any]]] = None,
    join_at_round: Optional[int] = None,
    make_joiner: Optional[Callable[[int], Optional[ShardTask]]] = None,
) -> list[Any]:
    """Run one process per task with ``sync_rounds`` barrier exchanges.

    Every worker must call :meth:`ShardChannel.exchange` exactly
    ``sync_rounds`` times before returning — the coordinator gathers
    one payload per worker per round and relays each worker the
    others' payloads.  ``on_round(round_index, payloads)`` observes
    each completed barrier (e.g. to fold deltas into a coordinator-side
    aggregate).  Returns the workers' entry-function return values,
    indexed by shard.

    Without ``supervision``, any worker failure tears the whole fleet
    down and raises :class:`ShardError` with the remote traceback —
    the original contract.  With ``supervision`` *and* a ``respawn``
    factory — called as ``respawn(shard, next_round)`` and expected to
    return a :class:`ShardTask` whose worker performs only the
    remaining ``sync_rounds - next_round`` exchanges — dead or wedged
    workers are replaced with exponential backoff up to the policy's
    restart budget, and past it the shard is dropped: its result slot
    stays ``None``, the loss lands in ``recovery``, and the survivors
    finish.  Only when *every* shard is lost does the call still
    raise.

    Elasticity hooks (all optional, all default-off so the PR-7/8/9
    byte path is untouched):

    * ``transport`` — a driver with the :class:`PipeTransport` duck
      type; default is the pipe driver, ``TcpTransport`` carries the
      same protocol over framed loopback/LAN sockets.
    * ``before_round(round_index)`` — runs before each round's
      gathers; the chaos harness uses it to cut TCP links at an exact
      barrier.
    * ``on_lost(shard, round)`` — a shard just exhausted its restart
      budget; fired before the round's broadcasts.
    * ``control(round_index, shard)`` — extra coordinator→worker
      entries appended to that worker's ``peers`` broadcast (session
      adoption orders ride here, piggybacked on the barrier).
    * ``join_at_round``/``make_joiner`` — after that round completes,
      ``make_joiner(round_index)`` may return a :class:`ShardTask` for
      a *new* member that participates in every later barrier.
    """
    if {t.shard for t in tasks} != set(range(len(tasks))):
        raise ValueError("task shard indices must be exactly 0..W-1")
    if supervision is not None and respawn is None:
        raise ValueError("supervision requires a respawn factory")
    _ensure_importable()
    ctx = mp.get_context("spawn")
    if recovery is None:
        recovery = ShardRecovery()
    sup = _Supervisor(
        ctx, tasks, supervision, respawn, recovery, transport, on_lost
    )
    try:
        for i in range(len(tasks)):
            sup.spawn(i)
        for round_index in range(sync_rounds):
            if before_round is not None:
                before_round(round_index)
            n = len(sup.tasks)  # membership may have grown last round
            offers: list[Optional[Any]] = [None] * n
            for i in range(n):
                if not sup.alive[i]:
                    continue
                offers[i] = sup.gather(i, "sync", round_index, timeout_s)
            if not any(sup.alive):
                raise ShardError(
                    sup.tasks[-1].shard, "all shards lost — nothing to supervise"
                )
            for i in range(n):
                if not sup.alive[i]:
                    continue
                peers = [
                    offers[j]
                    for j in range(n)
                    if j != i and sup.alive[j]
                ]
                if control is not None:
                    peers = peers + list(
                        control(round_index, sup.tasks[i].shard)
                    )
                sup.broadcast(i, ("peers", peers))
            if on_round is not None:
                on_round(
                    round_index,
                    [offers[i] for i in range(n) if sup.alive[i]],
                )
            if join_at_round is not None and round_index == join_at_round:
                if make_joiner is not None:
                    joiner = make_joiner(round_index)
                    if joiner is not None:
                        sup.add_member(joiner)
        results: list[Any] = [None] * max(
            (t.shard + 1 for t in sup.tasks), default=0
        )
        for i in range(len(sup.tasks)):
            if not sup.alive[i]:
                continue
            value = sup.gather(i, "result", sync_rounds, timeout_s)
            if sup.alive[i]:
                results[sup.tasks[i].shard] = value
        if not any(sup.alive):
            raise ShardError(
                sup.tasks[-1].shard, "all shards lost — nothing to supervise"
            )
        return results
    finally:
        sup.teardown()

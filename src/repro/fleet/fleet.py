"""Multi-tenant fleet assembly: sessions over one backend, one downlink.

The paper evaluates one client at a time; a serving deployment runs
many concurrent users against shared infrastructure.  A
:class:`KhameleonFleet` builds fully independent
:class:`~repro.core.session.KhameleonSession` stacks — each with its
own predictor, scheduler, mirror, sender, client cache, and uplink —
that contend for exactly two shared resources:

* **the backend.**  All senders fetch from one
  :class:`~repro.backends.base.Backend` instance, so its response cache
  and in-flight dedup work *across* sessions: when user A's fetch for a
  request is running, user B's sender piggybacks instead of issuing a
  duplicate (``stats.piggybacked``), and B's later fetches hit A's
  cached responses (``stats.cache_hits``).  With
  ``backend_concurrency`` set, all sessions draw §5.4 throttle slots
  from one shared budget — a single global
  :class:`~repro.backends.throttle.BackendThrottle`, or (with
  ``weighted_backend``) a
  :class:`~repro.backends.throttle.WeightedBackendThrottle` that splits
  the budget in proportion to each session's downlink weight.

* **the downlink.**  Senders transmit through per-session
  :class:`~repro.sim.fairshare.FairSharePort` handles of one
  :class:`~repro.sim.fairshare.SharedDownlink`, so capacity divides by
  weight among backlogged sessions and one aggressive sender cannot
  starve the rest.

**Sessions are dynamic.**  Each session acquires its port, throttle
share, and metrics collector when it is *admitted*
(:meth:`_admit_session`) and releases them when it *departs*
(:meth:`_retire_session`).  With the default static
:class:`~repro.fleet.lifecycle.ArrivalConfig` every session is admitted
up front and none departs — exactly the original closed fleet — while a
churn config hands the schedule to a
:class:`~repro.fleet.lifecycle.SessionManager` that admits arrivals
(subject to the admission cap) and retires departures while the
simulator runs.

Single-session Khameleon is exactly the ``N = 1`` case: one port over
the physical link behaves as the raw link, and the shared throttle
degenerates to the session-private one.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Union

if TYPE_CHECKING:
    from repro.chaos import BackendFaultStack, ChaosConfig

from repro.backends.base import Backend
from repro.backends.throttle import BackendThrottle, WeightedBackendThrottle
from repro.core.session import KhameleonSession, SessionConfig
from repro.core.utility import UtilityFunction
from repro.metrics.fleet import FleetSummary, collect_fleet, jain_fairness
from repro.predictors.base import Predictor
from repro.clock import Clock
from repro.sim.fairshare import SharedDownlink
from repro.sim.link import ControlChannel, Link

from .lifecycle import ArrivalConfig, SessionManager
from .schedule_service import FleetScheduleService

__all__ = ["FleetConfig", "KhameleonFleet"]


@dataclass
class FleetConfig:
    """Shape of a fleet: session count, link weights, shared budget.

    Parameters
    ----------
    num_sessions:
        How many sessions to build (static fleet) or plan as arrivals
        (churn fleet).
    weights:
        Per-session downlink fair-share weights (default: all 1.0).
    backend_concurrency:
        Size of the *shared* §5.4 throttle budget over the common
        backend; ``None`` leaves speculation unthrottled.
    weighted_backend:
        Mirror the downlink weights in the backend budget: each session
        owns a weight-proportional slice of ``backend_concurrency``
        instead of racing for one global pool.
    batched_prediction:
        Coalesce the per-session 150 ms prediction ticks into one
        :class:`~repro.fleet.schedule_service.FleetScheduleService`
        event that recomputes every changed session's probability
        matrices in a single stacked pass (default True — bit-identical
        for static fleets, one sim event per tick instead of N).  Set
        False to fall back to per-session periodic ticks.
    batched_decode:
        Within the coalesced tick, also batch the predictor stack —
        every stock family: one stacked ``(N·k, 4)`` Kalman state
        extrapolation at collect time plus one truncated-Gaussian
        block-mass pass per layout at apply time, and one
        ``decode_batch`` pass per Markov / shared-chain group (chain
        rows gathered once per version, crowd blends vectorized, cold
        sessions sharing distributions) — instead of N per-session
        predict/decode loops (default True — byte-identical
        distributions; custom or subclassed predictors fall back per
        session).  Ignored when ``batched_prediction`` is off.
    arrival:
        The session arrival/departure process.  ``None`` (or any
        :class:`ArrivalConfig` whose ``is_static`` holds) is the
        degenerate closed fleet: everyone arrives at t = 0 and stays.
    session:
        Template :class:`SessionConfig` applied to every session.  The
        scheduler seed is offset per session so fleets are deterministic
        but not lock-stepped; the initial bandwidth estimate is divided
        by the expected concurrent population (``num_sessions`` for a
        static fleet, the Little's-law estimate under churn).
    session_route:
        Shard routing filter, ``global_index -> bool``: build/admit only
        the sessions this fleet *owns*.  Session indices stay **global**
        — seeds, weights, and port labels are computed from the plan
        index, so a sharded worker reproduces exactly the sessions the
        unsharded fleet would have built for those indices.  ``None``
        (default) owns everything.
    expected_sessions:
        Override for :meth:`expected_concurrency` — a sharded worker
        expects only its share of the population, and its bandwidth
        slice is scaled by the same share, so each session's bandwidth
        prior matches the unsharded fleet's.
    chaos:
        Optional :class:`~repro.chaos.ChaosConfig`.  Backend fault
        sources (flaky retries, hard errors behind a retry layer,
        latency spikes) are wrapped around the backend at fleet
        construction; an all-default / ``None`` config changes nothing.
        Link outages and worker crashes are consumed upstream (runner
        and sharded coordinator respectively).
    """

    num_sessions: int = 1
    weights: Optional[Sequence[float]] = None
    backend_concurrency: Optional[int] = None
    weighted_backend: bool = False
    batched_prediction: bool = True
    batched_decode: bool = True
    arrival: Optional[ArrivalConfig] = None
    session: SessionConfig = field(default_factory=SessionConfig)
    session_route: Optional[Callable[[int], bool]] = None
    expected_sessions: Optional[float] = None
    chaos: Optional["ChaosConfig"] = None

    def __post_init__(self) -> None:
        if self.num_sessions < 1:
            raise ValueError("fleet needs at least one session")
        if self.weights is not None and len(self.weights) != self.num_sessions:
            raise ValueError(
                f"{len(self.weights)} weights for {self.num_sessions} sessions"
            )
        if self.weighted_backend and self.backend_concurrency is None:
            raise ValueError("weighted_backend needs a backend_concurrency budget")

    def weight_of(self, i: int) -> float:
        return 1.0 if self.weights is None else float(self.weights[i])

    @property
    def is_static(self) -> bool:
        return self.arrival is None or self.arrival.is_static

    def expected_concurrency(self) -> float:
        """Sessions expected to be attached at once (bandwidth prior)."""
        if self.expected_sessions is not None:
            return max(1e-9, float(self.expected_sessions))
        if self.arrival is None:
            return float(self.num_sessions)
        return self.arrival.expected_concurrency(self.num_sessions)

    def owns(self, i: int) -> bool:
        """Does this fleet (shard) build session ``i``?"""
        return self.session_route is None or bool(self.session_route(i))


class KhameleonFleet:
    """Khameleon sessions over one backend and one fair-shared link.

    Parameters
    ----------
    sim:
        Shared simulator clock.
    backend:
        The one backend instance every session fetches from.
    make_predictor:
        ``session_index -> Predictor``; each session needs its own
        (stateful) predictor instance.  Cross-session learning — e.g., a
        fleet-wide :class:`~repro.predictors.shared.SharedTransitionPrior`
        — is shared by closing over one prior in this factory.
    utility, num_blocks:
        The shared application: all sessions explore the same request
        universe (that is what makes backend sharing meaningful).
    downlink:
        The physical egress :class:`Link`, or a pre-built
        :class:`SharedDownlink` arbiter over it.
    make_uplink:
        ``session_index -> ControlChannel``; client→server control
        paths are per-user.
    config:
        :class:`FleetConfig`.

    A static config admits every session in the constructor (so callers
    can wire traces to ``fleet.sessions`` before the run, exactly as
    before).  A churn config instead creates a :class:`SessionManager`
    (``fleet.manager``) that admits sessions while the simulator runs;
    ``fleet.sessions`` then grows in admission order.
    """

    def __init__(
        self,
        sim: Clock,
        backend: Backend,
        make_predictor: Callable[[int], Predictor],
        utility: UtilityFunction,
        num_blocks: Sequence[int],
        downlink: Union[Link, SharedDownlink],
        make_uplink: Callable[[int], ControlChannel],
        config: Optional[FleetConfig] = None,
    ) -> None:
        self.sim = sim
        self.config = config or FleetConfig()
        cfg = self.config

        # Chaos: interpose the configured backend fault sources (and
        # the retry layer that absorbs hard errors) between every
        # sender and the real backend.  Inert configs skip the wrap
        # entirely, keeping the no-chaos path untouched.
        self.chaos_stack: Optional["BackendFaultStack"] = None
        if cfg.chaos is not None and cfg.chaos.has_backend_faults:
            self.chaos_stack = cfg.chaos.wrap_backend(backend)
            backend = self.chaos_stack.top
        self.backend = backend

        self.shared_downlink = (
            downlink
            if isinstance(downlink, SharedDownlink)
            else SharedDownlink(sim, downlink)
        )
        self.throttle: Optional[Union[BackendThrottle, WeightedBackendThrottle]] = None
        if cfg.backend_concurrency is not None:
            if cfg.weighted_backend:
                self.throttle = WeightedBackendThrottle(
                    cfg.backend_concurrency,
                    is_inflight=backend.is_inflight,
                    active=lambda: backend.active_requests,
                )
            else:
                self.throttle = BackendThrottle(
                    cfg.backend_concurrency, active=lambda: backend.active_requests
                )

        self._make_predictor = make_predictor
        self._utility = utility
        self._num_blocks = num_blocks
        self._make_uplink = make_uplink

        # Armed before any session exists so its tick (and thus the
        # batched apply) keeps the same event ordering relative to the
        # sessions' own periodic tasks as the per-session managers had.
        self.schedule_service: Optional[FleetScheduleService] = (
            FleetScheduleService(
                sim,
                interval_s=cfg.session.prediction_interval_s,
                batched_decode=cfg.batched_decode,
            )
            if cfg.batched_prediction
            else None
        )

        self.sessions: list[KhameleonSession] = []
        #: Global plan index of each admitted session, parallel to
        #: ``sessions`` (the identity mapping unless ``session_route``
        #: filters or churn rejects).
        self.session_indices: list[int] = []
        self.ports = []
        self.manager: Optional[SessionManager] = None
        if cfg.is_static:
            for i in range(cfg.num_sessions):
                if cfg.owns(i):
                    self._admit_session(i)
        else:
            self.manager = SessionManager(
                sim, self, cfg.arrival, route=cfg.session_route
            )

    def __len__(self) -> int:
        return len(self.sessions)

    # -- session attach / detach ---------------------------------------

    def _session_config(self, i: int) -> SessionConfig:
        base = self.config.session
        return replace(
            base,
            scheduler_seed=base.scheduler_seed + i,
            initial_bandwidth_bytes_per_s=(
                base.initial_bandwidth_bytes_per_s / self.config.expected_concurrency()
            ),
            backend_concurrency=None,  # the fleet-level throttle rules
        )

    def _admit_session(self, i: int) -> KhameleonSession:
        """Build session ``i`` and attach its shared-resource handles.

        This is the acquisition point: the fair-share port, the
        (possibly weighted) throttle share, and the metrics collector
        all come into existence here — at arrival, not at fleet
        construction.
        """
        cfg = self.config
        weight = cfg.weight_of(i)
        port = self.shared_downlink.port(weight, label=f"session{i}")
        throttle = self.throttle
        if isinstance(throttle, WeightedBackendThrottle):
            throttle = throttle.attach(weight, label=f"session{i}")
        session = KhameleonSession(
            sim=self.sim,
            backend=self.backend,
            predictor=self._make_predictor(i),
            utility=self._utility,
            num_blocks=self._num_blocks,
            downlink=port,
            uplink=self._make_uplink(i),
            config=self._session_config(i),
            throttle=throttle,
            schedule_service=self.schedule_service,
        )
        self.ports.append(port)
        self.sessions.append(session)
        self.session_indices.append(i)
        return session

    def _retire_session(self, session: KhameleonSession) -> int:
        """Departure: stop the session and release its shared resources.

        Returns the number of backlogged bytes dropped from its port —
        queued-but-unsent data a departed user will never look at, which
        must not occupy capacity surviving sessions should get.
        """
        session.stop()
        if isinstance(self.throttle, WeightedBackendThrottle):
            self.throttle.detach(session.throttle)
        return session.downlink.close()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Start serving (call once, before running the simulator).

        Static fleets start every pre-built session; churn fleets start
        the lifecycle manager, which admits sessions as they arrive.
        """
        if self.manager is not None:
            self.manager.start()
        else:
            for session in self.sessions:
                session.start()

    def stop(self) -> None:
        """Stop every session's sender and periodic tasks (idempotent)."""
        if self.manager is not None:
            self.manager.stop()
        for session in self.sessions:
            session.stop()
        if self.schedule_service is not None:
            self.schedule_service.stop()

    # -- reporting -----------------------------------------------------

    def outcomes_by_session(self) -> list[list]:
        return [s.cache_manager.outcomes for s in self.sessions]

    def summary(self) -> FleetSummary:
        """Per-session and pooled §6.1 metrics."""
        return collect_fleet(self.outcomes_by_session())

    def link_fairness(self) -> float:
        """Jain's index over weight-normalized per-session throughput.

        Lifetime byte totals — correct for a static fleet, where every
        session is attached for the whole run.  Under churn
        :meth:`report` uses :meth:`churn_link_fairness` instead, which
        normalizes by attached duration.
        """
        if not self.ports:
            return 1.0  # a shard that owns no sessions is trivially fair
        return jain_fairness(
            [p.bytes_delivered / p.weight for p in self.ports]
        )

    def fairness_samples(self) -> list[float]:
        """The per-session values :meth:`report` feeds Jain's index.

        Static fleets: lifetime weight-normalized bytes per port; churn
        fleets: weight-normalized *attached-time* delivery rates.  A
        sharded coordinator concatenates every shard's samples and
        recomputes one fleet-wide index — Jain over the union, not a
        mean of per-shard indices.
        """
        if self.manager is None:
            return [p.bytes_delivered / p.weight for p in self.ports]
        rates = []
        for record in self.manager.admitted_records:
            port = record.session.downlink
            end = record.departed_at if record.departed_at is not None else self.sim.now
            duration = end - record.arrived_at
            if duration > 0:
                rates.append(port.bytes_delivered / (port.weight * duration))
        return rates

    def churn_link_fairness(self) -> float:
        """Jain's index over per-session *attached-time* delivery rate.

        Under churn, lifetime byte totals conflate fairness with dwell:
        a user who stayed 2 s inevitably received less than one who
        stayed 10 s even from a perfectly fair arbiter.  Dividing each
        session's weight-normalized bytes by its attached duration
        measures what the arbiter actually controls.
        """
        if self.manager is None:
            return self.link_fairness()
        rates = self.fairness_samples()
        return jain_fairness(rates) if rates else 1.0

    def shared_hit_rate(self) -> float:
        """Fraction of materialization demands absorbed by sharing.

        Counted at block-scheduling granularity: every pipeline entry
        needs its response materialized, and each demand is either a
        new backend fetch, a reuse of the (shared) response cache, or a
        piggyback on a fetch already in flight — the latter two are the
        sharing benefit.  Note same-request demands within one session
        also reuse; the N=1 fleet's rate is the self-sharing baseline.
        """
        stats = self.backend.stats
        calls = stats.fetches_started + stats.shared_hits
        return stats.shared_hits / calls if calls else 0.0

    def report(self) -> dict:
        """Fleet-level diagnostics to accompany the metric summary."""
        blocks_sent = sum(s.sender.blocks_sent for s in self.sessions)
        bytes_sent = sum(s.sender.bytes_sent for s in self.sessions)
        out = {
            "sessions": len(self.sessions),
            "blocks_sent": blocks_sent,
            "bytes_sent": bytes_sent,
            "blocks_deferred": sum(s.sender.blocks_deferred for s in self.sessions),
            "link_fairness": self.link_fairness(),
            "shared_hit_rate": self.shared_hit_rate(),
            "backend": self.backend.stats.snapshot(),
        }
        if self.schedule_service is not None:
            out["prediction"] = self.schedule_service.snapshot()
        if self.manager is not None:
            out["churn"] = self.manager.stats.snapshot()
            out["link_fairness"] = self.churn_link_fairness()
        if self.chaos_stack is not None:
            out["chaos"] = self.chaos_stack.snapshot()
        return out

"""Multi-tenant fleet assembly: N sessions, one backend, one downlink.

The paper evaluates one client at a time; a serving deployment runs
many concurrent users against shared infrastructure.  A
:class:`KhameleonFleet` constructs ``N`` fully independent
:class:`~repro.core.session.KhameleonSession` stacks — each with its
own predictor, scheduler, mirror, sender, client cache, and uplink —
that contend for exactly two shared resources:

* **the backend.**  All senders fetch from one
  :class:`~repro.backends.base.Backend` instance, so its response cache
  and in-flight dedup work *across* sessions: when user A's fetch for a
  request is running, user B's sender piggybacks instead of issuing a
  duplicate (``stats.piggybacked``), and B's later fetches hit A's
  cached responses (``stats.cache_hits``).  This is the cross-query
  structure sharing that makes prefetching pay off under exploratory
  multi-user workloads.  With ``backend_concurrency`` set, all sessions
  draw §5.4 throttle slots from one shared
  :class:`~repro.backends.throttle.BackendThrottle` budget keyed to the
  backend's *global* active-request count.

* **the downlink.**  Senders transmit through per-session
  :class:`~repro.sim.fairshare.FairSharePort` handles of one
  :class:`~repro.sim.fairshare.SharedDownlink`, so capacity divides by
  weight among backlogged sessions and one aggressive sender cannot
  starve the rest.

Single-session Khameleon is exactly the ``N = 1`` case: one port over
the physical link behaves as the raw link, and the shared throttle
degenerates to the session-private one.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence, Union

from repro.backends.base import Backend
from repro.backends.throttle import BackendThrottle
from repro.core.session import KhameleonSession, SessionConfig
from repro.core.utility import UtilityFunction
from repro.metrics.fleet import FleetSummary, collect_fleet, jain_fairness
from repro.predictors.base import Predictor
from repro.sim.engine import Simulator
from repro.sim.fairshare import SharedDownlink
from repro.sim.link import ControlChannel, Link

__all__ = ["FleetConfig", "KhameleonFleet"]


@dataclass
class FleetConfig:
    """Shape of a fleet: session count, link weights, shared budget.

    Parameters
    ----------
    num_sessions:
        How many concurrent sessions to build.
    weights:
        Per-session downlink fair-share weights (default: all 1.0).
    backend_concurrency:
        Size of the *shared* §5.4 throttle budget over the common
        backend; ``None`` leaves speculation unthrottled.
    session:
        Template :class:`SessionConfig` applied to every session.  The
        scheduler seed is offset per session so fleets are deterministic
        but not lock-stepped; the initial bandwidth estimate is divided
        by ``num_sessions`` (each sender's fair-share prior).
    """

    num_sessions: int = 1
    weights: Optional[Sequence[float]] = None
    backend_concurrency: Optional[int] = None
    session: SessionConfig = field(default_factory=SessionConfig)

    def __post_init__(self) -> None:
        if self.num_sessions < 1:
            raise ValueError("fleet needs at least one session")
        if self.weights is not None and len(self.weights) != self.num_sessions:
            raise ValueError(
                f"{len(self.weights)} weights for {self.num_sessions} sessions"
            )

    def weight_of(self, i: int) -> float:
        return 1.0 if self.weights is None else float(self.weights[i])


class KhameleonFleet:
    """N concurrent sessions over one backend and one fair-shared link.

    Parameters
    ----------
    sim:
        Shared simulator clock.
    backend:
        The one backend instance every session fetches from.
    make_predictor:
        ``session_index -> Predictor``; each session needs its own
        (stateful) predictor instance.
    utility, num_blocks:
        The shared application: all sessions explore the same request
        universe (that is what makes backend sharing meaningful).
    downlink:
        The physical egress :class:`Link`, or a pre-built
        :class:`SharedDownlink` arbiter over it.
    make_uplink:
        ``session_index -> ControlChannel``; client→server control
        paths are per-user.
    config:
        :class:`FleetConfig`.
    """

    def __init__(
        self,
        sim: Simulator,
        backend: Backend,
        make_predictor: Callable[[int], Predictor],
        utility: UtilityFunction,
        num_blocks: Sequence[int],
        downlink: Union[Link, SharedDownlink],
        make_uplink: Callable[[int], ControlChannel],
        config: Optional[FleetConfig] = None,
    ) -> None:
        self.sim = sim
        self.backend = backend
        self.config = config or FleetConfig()
        cfg = self.config

        self.shared_downlink = (
            downlink
            if isinstance(downlink, SharedDownlink)
            else SharedDownlink(sim, downlink)
        )
        self.throttle: Optional[BackendThrottle] = None
        if cfg.backend_concurrency is not None:
            self.throttle = BackendThrottle(
                cfg.backend_concurrency, active=lambda: backend.active_requests
            )

        self.sessions: list[KhameleonSession] = []
        self.ports = []
        base = cfg.session
        for i in range(cfg.num_sessions):
            session_cfg = replace(
                base,
                scheduler_seed=base.scheduler_seed + i,
                initial_bandwidth_bytes_per_s=(
                    base.initial_bandwidth_bytes_per_s / cfg.num_sessions
                ),
                backend_concurrency=None,  # the fleet-level throttle rules
            )
            port = self.shared_downlink.port(cfg.weight_of(i), label=f"session{i}")
            session = KhameleonSession(
                sim=sim,
                backend=backend,
                predictor=make_predictor(i),
                utility=utility,
                num_blocks=num_blocks,
                downlink=port,
                uplink=make_uplink(i),
                config=session_cfg,
                throttle=self.throttle,
            )
            self.ports.append(port)
            self.sessions.append(session)

    def __len__(self) -> int:
        return len(self.sessions)

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Start every session (call once, before running the simulator)."""
        for session in self.sessions:
            session.start()

    def stop(self) -> None:
        """Stop every session's sender and periodic tasks."""
        for session in self.sessions:
            session.stop()

    # -- reporting -----------------------------------------------------

    def outcomes_by_session(self) -> list[list]:
        return [s.cache_manager.outcomes for s in self.sessions]

    def summary(self) -> FleetSummary:
        """Per-session and pooled §6.1 metrics."""
        return collect_fleet(self.outcomes_by_session())

    def link_fairness(self) -> float:
        """Jain's index over weight-normalized per-session throughput."""
        return jain_fairness(
            [p.bytes_delivered / p.weight for p in self.ports]
        )

    def shared_hit_rate(self) -> float:
        """Fraction of materialization demands absorbed by sharing.

        Counted at block-scheduling granularity: every pipeline entry
        needs its response materialized, and each demand is either a
        new backend fetch, a reuse of the (shared) response cache, or a
        piggyback on a fetch already in flight — the latter two are the
        sharing benefit.  Note same-request demands within one session
        also reuse; the N=1 fleet's rate is the self-sharing baseline.
        """
        stats = self.backend.stats
        calls = stats.fetches_started + stats.shared_hits
        return stats.shared_hits / calls if calls else 0.0

    def report(self) -> dict:
        """Fleet-level diagnostics to accompany the metric summary."""
        blocks_sent = sum(s.sender.blocks_sent for s in self.sessions)
        bytes_sent = sum(s.sender.bytes_sent for s in self.sessions)
        return {
            "sessions": len(self.sessions),
            "blocks_sent": blocks_sent,
            "bytes_sent": bytes_sent,
            "blocks_deferred": sum(s.sender.blocks_deferred for s in self.sessions),
            "link_fairness": self.link_fairness(),
            "shared_hit_rate": self.shared_hit_rate(),
            "backend": self.backend.stats.snapshot(),
        }

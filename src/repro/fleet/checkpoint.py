"""Durable shard checkpoints: snapshot, persist, and restore fleet state.

A sharded fleet's recoverable state is small and well-defined: each
session's progress through its request stream (how many requests it has
registered, what its ring-buffer cache holds, where its scheduler's RNG
stream is) plus the shard's local crowd-prior contribution (the same
per-origin absolute-count row snapshots the CRDT sync already ships).
Because every worker is a deterministic function of its spec and seed,
a checkpoint does not need to serialize live object graphs — it records
*digests* of the state a deterministic replay must reproduce, plus the
one piece of genuinely accumulated data (the prior delta) that seeds
peers and coordinators.

Three layers:

* :class:`SessionCheckpoint` / :class:`ShardCheckpoint` — one shard's
  recoverable state at a completed sync round.  Workers capture these
  at a configurable cadence and piggyback them on the existing barrier
  exchange; the coordinator's :class:`CheckpointStore` keeps the latest
  per shard.
* :class:`FleetCheckpoint` — the whole fleet's latest shard
  checkpoints, persisted as versioned JSON for ``--checkpoint-out`` /
  ``--checkpoint-in`` drain/restore cycles.  ``load`` validates
  fail-fast in the style of :meth:`SharedTransitionPrior.load`:
  not-a-checkpoint, unsupported version, wrong request universe, and
  corrupt entries each raise a distinct, actionable :class:`ValueError`.
* :class:`CheckpointConfig` — cadence + paths, threaded through
  :class:`~repro.experiments.configs.FleetEnvironment` and the CLI.  A
  cadence of 0 with no paths is inert: the sharded runner's barrier
  payloads, reports, and results are bit-identical to a run with no
  checkpoint config at all (test-enforced).
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # typing only: avoid import cycles at runtime
    from repro.core.session import KhameleonSession
    from repro.fleet.fleet import KhameleonFleet
    from repro.predictors.shared import PriorDelta, SharedTransitionPrior

__all__ = [
    "FORMAT_VERSION",
    "CheckpointConfig",
    "SessionCheckpoint",
    "ShardCheckpoint",
    "FleetCheckpoint",
    "CheckpointStore",
    "capture_session",
    "capture_shard",
    "wrap_sync_payload",
    "unwrap_sync_payload",
]

#: Bump on any incompatible change to the checkpoint layout.
FORMAT_VERSION = 1

#: File magic distinguishing a fleet checkpoint from other JSON.
MAGIC = "khameleon-fleet-checkpoint"


def _digest(payload: object) -> int:
    """crc32 over the canonical JSON form of ``payload``."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(blob.encode("utf-8"))


def _require_int(payload: dict, key: str, minimum: int = 0) -> int:
    value = payload.get(key)
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise ValueError(f"corrupt checkpoint entry: {key}={value!r}")
    return value


@dataclass(frozen=True)
class CheckpointConfig:
    """Cadence and persistence paths for shard checkpointing.

    ``cadence_rounds`` is how many completed sync rounds pass between
    captures (1 = every round, 0 = never).  The paths drive the
    drain/restore lifecycle: ``out_path`` writes a
    :class:`FleetCheckpoint` when the run ends (or drains), and
    ``in_path`` boots the run from a previously written one.
    """

    cadence_rounds: int = 0
    out_path: Optional[str] = None
    in_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.cadence_rounds < 0:
            raise ValueError("checkpoint cadence must be >= 0 (0 disables)")

    @property
    def is_inert(self) -> bool:
        """True when this config changes nothing about a run."""
        return (
            self.cadence_rounds == 0
            and self.out_path is None
            and self.in_path is None
        )

    @property
    def captures(self) -> bool:
        """True when workers should capture at sync rounds."""
        return self.cadence_rounds > 0 or self.out_path is not None

    def due(self, round_index: int) -> bool:
        """Should a capture happen after completing ``round_index``?"""
        if self.cadence_rounds <= 0:
            # Path-only configs still capture every round so the final
            # written bundle is as fresh as possible.
            return self.captures
        return (round_index + 1) % self.cadence_rounds == 0


@dataclass(frozen=True)
class SessionCheckpoint:
    """One session's recoverable progress, as replay-verifiable digests.

    ``cache_digest`` covers the ring buffer's live ``(request, block)``
    pairs plus its FIFO cursor; ``rng_digest`` covers the scheduler's
    bit-generator state.  A deterministic replay that reaches the same
    sim time must reproduce both exactly — which is how restore-in-place
    is verified rather than assumed.
    """

    index: int
    requests_seen: int
    blocks_received: int
    blocks_sent: int
    bytes_sent: int
    cache_digest: int
    rng_digest: int

    def to_payload(self) -> dict:
        return {
            "index": self.index,
            "requests_seen": self.requests_seen,
            "blocks_received": self.blocks_received,
            "blocks_sent": self.blocks_sent,
            "bytes_sent": self.bytes_sent,
            "cache_digest": self.cache_digest,
            "rng_digest": self.rng_digest,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SessionCheckpoint":
        if not isinstance(payload, dict):
            raise ValueError(f"corrupt session checkpoint: {payload!r}")
        return cls(
            index=_require_int(payload, "index"),
            requests_seen=_require_int(payload, "requests_seen"),
            blocks_received=_require_int(payload, "blocks_received"),
            blocks_sent=_require_int(payload, "blocks_sent"),
            bytes_sent=_require_int(payload, "bytes_sent"),
            cache_digest=_require_int(payload, "cache_digest"),
            rng_digest=_require_int(payload, "rng_digest"),
        )


def capture_session(session: "KhameleonSession", index: int) -> SessionCheckpoint:
    """Snapshot one live session's progress digests."""
    cache = session.cache
    pairs = sorted(
        (int(r), int(i))
        for r in cache.cached_requests()
        for i in cache.block_indices(r)
    )
    return SessionCheckpoint(
        index=int(index),
        requests_seen=len(session.cache_manager.outcomes),
        blocks_received=cache.blocks_received,
        blocks_sent=session.sender.blocks_sent,
        bytes_sent=session.sender.bytes_sent,
        cache_digest=_digest([cache.blocks_received, pairs]),
        rng_digest=_digest(session.scheduler.rng_state()),
    )


def _delta_to_payload(delta: "PriorDelta") -> dict:
    return {
        "origin": delta.origin,
        "n": delta.n,
        "rows": {
            str(prev): {str(nxt): int(c) for nxt, c in row.items()}
            for prev, row in delta.rows.items()
        },
        "row_mass": {str(prev): int(m) for prev, m in delta.row_mass.items()},
    }


def _delta_from_payload(payload: dict, n: int) -> "PriorDelta":
    from repro.predictors.shared import PriorDelta

    if not isinstance(payload, dict) or "origin" not in payload:
        raise ValueError(f"corrupt checkpoint prior delta: {payload!r}")
    if int(payload.get("n", -1)) != n:
        raise ValueError(
            f"checkpoint prior delta over {payload.get('n')} requests, expected {n}"
        )
    rows: dict[int, dict[int, int]] = {}
    row_mass: dict[int, int] = {}
    for prev_s, row in payload.get("rows", {}).items():
        prev = int(prev_s)
        out_row: dict[int, int] = {}
        for nxt_s, count in row.items():
            nxt = int(nxt_s)
            count = int(count)
            if not 0 <= prev < n or not 0 <= nxt < n or count < 0:
                raise ValueError(
                    f"corrupt checkpoint prior entry {prev}->{nxt} x{count}"
                )
            out_row[nxt] = count
        rows[prev] = out_row
    for prev_s, mass in payload.get("row_mass", {}).items():
        prev = int(prev_s)
        mass = int(mass)
        if not 0 <= prev < n or mass < 0:
            raise ValueError(f"corrupt checkpoint prior mass row {prev} x{mass}")
        row_mass[prev] = mass
    return PriorDelta(
        origin=str(payload["origin"]), n=n, rows=rows, row_mass=row_mass
    )


@dataclass(frozen=True)
class ShardCheckpoint:
    """One shard's recoverable state at a completed sync round."""

    shard: int
    num_shards: int
    #: Global sync-round index this checkpoint covers (the round whose
    #: barrier had completed when the capture ran).
    round_index: int
    #: Sim time of that barrier — where a verifying replay must pause.
    sim_time_s: float
    #: Request-universe size (guards against cross-app restores).
    n: int
    sessions: tuple[SessionCheckpoint, ...]
    #: The shard's local crowd-prior contribution (CRDT row snapshots),
    #: as a JSON-safe payload; ``None`` for non-shared predictors.
    prior_delta: Optional[dict] = None

    def digest(self) -> int:
        return _digest(self.to_payload())

    def session_indices(self) -> list[int]:
        return [s.index for s in self.sessions]

    def prior_delta_object(self) -> Optional["PriorDelta"]:
        if self.prior_delta is None:
            return None
        return _delta_from_payload(self.prior_delta, self.n)

    def to_payload(self) -> dict:
        return {
            "shard": self.shard,
            "num_shards": self.num_shards,
            "round_index": self.round_index,
            "sim_time_s": self.sim_time_s,
            "n": self.n,
            "sessions": [s.to_payload() for s in self.sessions],
            "prior_delta": self.prior_delta,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ShardCheckpoint":
        if not isinstance(payload, dict):
            raise ValueError(f"corrupt shard checkpoint: {payload!r}")
        num_shards = _require_int(payload, "num_shards", minimum=1)
        shard = _require_int(payload, "shard")
        if shard >= num_shards:
            raise ValueError(
                f"corrupt shard checkpoint: shard {shard} of {num_shards}"
            )
        n = _require_int(payload, "n", minimum=1)
        sim_time_s = payload.get("sim_time_s")
        if not isinstance(sim_time_s, (int, float)) or sim_time_s < 0:
            raise ValueError(f"corrupt checkpoint entry: sim_time_s={sim_time_s!r}")
        sessions_payload = payload.get("sessions")
        if not isinstance(sessions_payload, list):
            raise ValueError("corrupt shard checkpoint: sessions missing")
        prior_payload = payload.get("prior_delta")
        ckpt = cls(
            shard=shard,
            num_shards=num_shards,
            round_index=_require_int(payload, "round_index"),
            sim_time_s=float(sim_time_s),
            n=n,
            sessions=tuple(
                SessionCheckpoint.from_payload(p) for p in sessions_payload
            ),
            prior_delta=prior_payload,
        )
        if prior_payload is not None:
            ckpt.prior_delta_object()  # validates rows/masses against n
        return ckpt


def capture_shard(
    fleet: "KhameleonFleet",
    prior: Optional["SharedTransitionPrior"],
    *,
    shard: int,
    num_shards: int,
    round_index: int,
    sim_time_s: float,
    n: int,
) -> ShardCheckpoint:
    """Snapshot a worker's live fleet at a completed sync round."""
    sessions = tuple(
        capture_session(session, index)
        for index, session in zip(fleet.session_indices, fleet.sessions)
    )
    delta_payload = None
    if prior is not None and prior.origin is not None:
        delta = prior.delta_since(None)
        if delta:
            delta_payload = _delta_to_payload(delta)
    return ShardCheckpoint(
        shard=shard,
        num_shards=num_shards,
        round_index=round_index,
        sim_time_s=float(sim_time_s),
        n=n,
        sessions=sessions,
        prior_delta=delta_payload,
    )


@dataclass
class FleetCheckpoint:
    """The whole fleet's latest shard checkpoints, persistable as JSON."""

    n: int
    num_shards: int
    sync_interval_s: float
    drained_at_round: Optional[int] = None
    shards: dict[int, ShardCheckpoint] = field(default_factory=dict)

    def save(self, path: str) -> None:
        payload = {
            "format": MAGIC,
            "format_version": FORMAT_VERSION,
            "n": self.n,
            "num_shards": self.num_shards,
            "sync_interval_s": self.sync_interval_s,
            "drained_at_round": self.drained_at_round,
            "shards": {
                str(shard): ckpt.to_payload()
                for shard, ckpt in sorted(self.shards.items())
            },
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True)

    @classmethod
    def load(cls, path: str, n: Optional[int] = None) -> "FleetCheckpoint":
        """Rebuild a checkpoint written by :meth:`save`, fail-fast.

        ``n`` (optional) asserts the expected request-universe size —
        pass the app's ``num_requests`` so a checkpoint from a different
        application is rejected before it corrupts every session.
        """
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ValueError(f"{path!s} is not a saved checkpoint: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("format") != MAGIC:
            raise ValueError(f"{path!s} is not a saved checkpoint")
        version = payload.get("format_version")
        if version != FORMAT_VERSION:
            raise ValueError(
                f"checkpoint format v{version} unsupported "
                f"(expected v{FORMAT_VERSION})"
            )
        try:
            saved_n = _require_int(payload, "n", minimum=1)
            num_shards = _require_int(payload, "num_shards", minimum=1)
            shards_payload = payload["shards"]
        except (KeyError, ValueError) as exc:
            raise ValueError(f"{path!s} is not a saved checkpoint: {exc}") from exc
        if n is not None and saved_n != n:
            raise ValueError(f"checkpoint over {saved_n} requests, expected {n}")
        drained = payload.get("drained_at_round")
        if drained is not None and (not isinstance(drained, int) or drained < 0):
            raise ValueError(f"corrupt checkpoint entry: drained_at_round={drained!r}")
        shards: dict[int, ShardCheckpoint] = {}
        for shard_s, shard_payload in shards_payload.items():
            ckpt = ShardCheckpoint.from_payload(shard_payload)
            if ckpt.shard != int(shard_s) or ckpt.num_shards != num_shards:
                raise ValueError(
                    f"corrupt checkpoint: shard entry {shard_s!r} claims "
                    f"shard {ckpt.shard} of {ckpt.num_shards}"
                )
            if ckpt.n != saved_n:
                raise ValueError(
                    f"corrupt checkpoint: shard {ckpt.shard} over {ckpt.n} "
                    f"requests, bundle over {saved_n}"
                )
            shards[ckpt.shard] = ckpt
        return cls(
            n=saved_n,
            num_shards=num_shards,
            sync_interval_s=float(payload.get("sync_interval_s", 0.0)),
            drained_at_round=drained,
            shards=shards,
        )


class CheckpointStore:
    """Coordinator-side latest checkpoint per shard.

    Fed from the barrier exchange (workers piggyback their captures on
    the sync payload); consulted at respawn time to restore-and-verify,
    at teardown to write the ``--checkpoint-out`` bundle, and by the
    pooled report for last-checkpoint ages.
    """

    def __init__(self) -> None:
        self._latest: dict[int, ShardCheckpoint] = {}
        self.taken = 0

    def put(self, ckpt: ShardCheckpoint) -> None:
        self.taken += 1
        current = self._latest.get(ckpt.shard)
        if current is None or ckpt.round_index >= current.round_index:
            self._latest[ckpt.shard] = ckpt

    def latest(self, shard: int) -> Optional[ShardCheckpoint]:
        return self._latest.get(shard)

    def last_rounds(self, num_shards: int) -> list[Optional[int]]:
        """Per-shard global index of the last captured sync round."""
        return [
            (c.round_index if (c := self._latest.get(k)) is not None else None)
            for k in range(num_shards)
        ]

    def ages(self, num_shards: int, final_round: int) -> list[Optional[int]]:
        """Per-shard rounds elapsed since the last capture (staleness)."""
        return [
            (final_round - r if r is not None else None)
            for r in self.last_rounds(num_shards)
        ]

    def bundle(
        self,
        n: int,
        num_shards: int,
        sync_interval_s: float,
        drained_at_round: Optional[int] = None,
    ) -> FleetCheckpoint:
        return FleetCheckpoint(
            n=n,
            num_shards=num_shards,
            sync_interval_s=sync_interval_s,
            drained_at_round=drained_at_round,
            shards=dict(self._latest),
        )


# -- barrier payload wrapping ----------------------------------------
#
# Checkpoints ride the existing sync exchange: when capturing, a worker
# sends {"delta": <PriorDelta|None>, "checkpoint": <ShardCheckpoint|None>}
# instead of the bare delta.  The wrap only exists when checkpointing is
# on — an inert config keeps the historical payloads byte-for-byte, so
# cadence-0 runs stay bit-identical to pre-checkpoint behavior.

_SYNC_KEY = "__ckpt_sync__"

#: Coordinator→worker control order riding a ``peers`` broadcast (PR 10
#: elastic resharding): survivors are told to adopt a lost shard's
#: sessions, carried as the lost shard's last ShardCheckpoint payload.
CTRL_KEY = "__fleet_ctrl__"


def wrap_sync_payload(
    delta,
    checkpoint: Optional[ShardCheckpoint],
    migrate_out: Optional[dict] = None,
) -> dict:
    payload = {_SYNC_KEY: True, "delta": delta, "checkpoint": checkpoint}
    if migrate_out is not None:
        # Only present when a worker hands sessions to a joining member
        # — absent, the wrapped payload keeps its historical shape.
        payload["migrate_out"] = migrate_out
    return payload


def unwrap_sync_payload(payload):
    """``(delta, checkpoint)`` from a wrapped or bare sync payload."""
    if isinstance(payload, dict) and payload.get(_SYNC_KEY):
        return payload.get("delta"), payload.get("checkpoint")
    return payload, None


def migrate_out_of(payload) -> Optional[dict]:
    """The ``migrate_out`` order riding a wrapped sync payload, if any."""
    if isinstance(payload, dict) and payload.get(_SYNC_KEY):
        return payload.get("migrate_out")
    return None


def split_ctrl(peers: list) -> tuple[list, list]:
    """Separate coordinator control orders from real peer payloads."""
    data = [p for p in peers if not (isinstance(p, dict) and CTRL_KEY in p)]
    ctrl = [p for p in peers if isinstance(p, dict) and CTRL_KEY in p]
    return data, ctrl

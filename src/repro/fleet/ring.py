"""Consistent-hash ring: membership-elastic session routing.

PR 7's ``shard_of`` routed sessions with ``crc32(key) % W`` — perfect
for a fixed fleet, catastrophic for an elastic one: changing ``W``
remaps almost every key, so a single worker joining or leaving would
force nearly every session to migrate.  A consistent-hash ring
(Karger et al.) pins each node at many pseudo-random points on a
2^32 hash circle and routes a key to the first node point at or after
the key's own hash.  Adding a node steals only the key ranges that now
fall to *its* points (an expected ``1/(W+1)`` fraction); removing a
node reassigns only the ranges it owned.  Both bounds are exact
structural properties, not statistics — the property tests enforce
them key-by-key.

Hashing is BLAKE2b over the string form: Python's builtin ``hash`` is
salted per process, and the ring must route identically in the
coordinator and every spawned worker.  (The pre-ring ``crc32 % W``
router got away with CRC-32 because the modulus spread whatever
entropy it had; ring positions need the full width well-mixed — CRC of
short decimal strings clusters badly enough to starve shards of an
8-session fleet.)

The ring is deliberately tiny and dependency-free — it is imported by
:mod:`repro.fleet.sharding` on every routing call, so construction is
cached there per membership.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Any, Hashable, Iterable

__all__ = ["HashRing", "DEFAULT_VNODES"]

#: Virtual points per node.  More points flatten the per-node share
#: variance (stddev ~ 1/sqrt(vnodes)); 128 keeps worst-case imbalance
#: within the property tests' tolerance up to dozens of nodes while
#: ring construction stays microseconds.
DEFAULT_VNODES = 128


def _hash(value: str) -> int:
    digest = hashlib.blake2b(value.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A consistent-hash ring over hashable node identities.

    ``route(key)`` is a pure function of the membership set (and the
    ``vnodes`` parameter): two rings with equal members route every key
    identically, regardless of insertion order or process.
    """

    def __init__(
        self, nodes: Iterable[Hashable] = (), vnodes: int = DEFAULT_VNODES
    ) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: list[tuple[int, Hashable]] = []
        self._nodes: set = set()
        for node in nodes:
            self.add(node)

    # -- membership ----------------------------------------------------

    @property
    def nodes(self) -> tuple:
        """Current membership, sorted by string form (stable view)."""
        return tuple(sorted(self._nodes, key=str))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Hashable) -> bool:
        return node in self._nodes

    def add(self, node: Hashable) -> None:
        """Join ``node``: claims an expected ``1/W`` share of the keys."""
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        self._nodes.add(node)
        for v in range(self.vnodes):
            # The node's string form salts every point; ties between
            # distinct nodes' points are broken by the (node, vnode)
            # tuple so equal hashes still order deterministically.
            point = (_hash(f"{node}#{v}"), node)
            bisect.insort(self._points, point)

    def remove(self, node: Hashable) -> None:
        """Leave: only the departing node's key ranges are reassigned."""
        if node not in self._nodes:
            raise ValueError(f"node {node!r} not on the ring")
        self._nodes.discard(node)
        self._points = [p for p in self._points if p[1] != node]

    def without(self, node: Hashable) -> "HashRing":
        """A new ring with ``node`` removed (the original is untouched)."""
        other = HashRing(vnodes=self.vnodes)
        for n in self._nodes:
            if n != node:
                other.add(n)
        return other

    # -- routing -------------------------------------------------------

    def route(self, key: Any) -> Hashable:
        """The node owning ``key``: first ring point at/after its hash."""
        if not self._points:
            raise ValueError("cannot route on an empty ring")
        h = _hash(str(key))
        # strictly-after points would skip a node point exactly at h;
        # searching with node sentinel "" keeps points at h eligible.
        i = bisect.bisect_left(self._points, (h, ""))
        if i == len(self._points):
            i = 0  # wrap: the circle has no end
        return self._points[i][1]

    def assign(self, keys: Iterable[Any]) -> dict:
        """Partition ``keys`` by owner: ``{node: [keys...]}`` (all nodes
        present, even those assigned nothing)."""
        out: dict = {node: [] for node in self._nodes}
        for key in keys:
            out[self.route(key)].append(key)
        return out

"""Multi-tenant fleet serving: N Khameleon sessions over shared
backend and downlink resources, with per-session and aggregate
reporting.  See :mod:`repro.fleet.fleet` for the sharing semantics.
"""

from .fleet import FleetConfig, KhameleonFleet

__all__ = ["FleetConfig", "KhameleonFleet"]

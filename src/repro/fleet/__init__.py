"""Multi-tenant fleet serving: Khameleon sessions over shared
backend and downlink resources, under static or churning populations.

:mod:`repro.fleet.fleet` assembles the shared substrate — one backend
(cross-session fetch dedup, shared or weight-sliced §5.4 speculation
budget) and one weighted fair-shared downlink — and builds an
independent Khameleon stack per session.  :mod:`repro.fleet.lifecycle`
turns that static assembly into a *serving layer*: a
:class:`SessionManager` drives an open-loop arrival/departure process
(Poisson arrivals, lognormal dwell times, admission control when the
fleet is oversubscribed), with sessions acquiring their fair-share
port, throttle share, and metrics collector at arrival and releasing
them at departure.  The closed N-session fleet is exactly the
degenerate :class:`ArrivalConfig`: all arrivals at t = 0, no
departures.

Cold arrivals need not start ignorant: pair the fleet with a
:class:`repro.predictors.shared.SharedTransitionPrior` so each new
session's predictor is warmed by the crowd's aggregate transition
structure (see ``examples/fleet_serving.py``).

:mod:`repro.fleet.schedule_service` keeps the fleet's scheduling cost
sublinear in N: a :class:`FleetScheduleService` coalesces every
session's 150 ms prediction tick into one sim event and recomputes all
changed probability matrices in a single stacked numpy pass
(bit-identical to the per-session path for static fleets).
"""

from .checkpoint import (
    CheckpointConfig,
    CheckpointStore,
    FleetCheckpoint,
    SessionCheckpoint,
    ShardCheckpoint,
)
from .fleet import FleetConfig, KhameleonFleet
from .lifecycle import ArrivalConfig, SessionManager, SessionPlan, SessionRecord
from .ring import HashRing
from .schedule_service import FleetScheduleService, batch_probability_matrices
from .sharding import (
    ShardChannel,
    ShardError,
    ShardRecovery,
    ShardTask,
    SupervisionPolicy,
    assign_shards,
    run_sharded,
    shard_of,
)
from .transport import (
    FrameDecoder,
    FramedEndpoint,
    NetChaosSpec,
    PipeTransport,
    TcpTransport,
    TransportCounters,
    TransportError,
)

__all__ = [
    "CheckpointConfig",
    "CheckpointStore",
    "FleetCheckpoint",
    "SessionCheckpoint",
    "ShardCheckpoint",
    "FleetConfig",
    "KhameleonFleet",
    "ArrivalConfig",
    "SessionManager",
    "SessionPlan",
    "SessionRecord",
    "FleetScheduleService",
    "batch_probability_matrices",
    "ShardChannel",
    "ShardError",
    "ShardRecovery",
    "ShardTask",
    "SupervisionPolicy",
    "assign_shards",
    "run_sharded",
    "shard_of",
    "HashRing",
    "FrameDecoder",
    "FramedEndpoint",
    "NetChaosSpec",
    "PipeTransport",
    "TcpTransport",
    "TransportCounters",
    "TransportError",
]

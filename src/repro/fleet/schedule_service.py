"""Fleet-coalesced prediction ticks and batched probability recompute.

In a per-session fleet, every :class:`~repro.core.predictor_manager.
PredictorManager` owns its own 150 ms periodic task, ships its state
over its uplink, and the receiving server re-materializes that
session's ``(C, m)`` probability matrix — N sim events and N
independent numpy passes per prediction interval.  At fleet scale the
event dispatch and the per-session matrix setup dominate the server's
scheduling cost (the ROADMAP's "scheduler-side scaling" item).

:class:`FleetScheduleService` coalesces all of it:

* **one tick event** polls every registered session's predictor
  manager (:meth:`~repro.core.predictor_manager.PredictorManager.poll`
  keeps the dedup and accounting semantics), and
* **one apply event** per uplink latency class preempts the affected
  senders, decodes every changed session's state in one stacked pass
  per predictor family (Kalman truncated-Gaussian block masses, Markov
  chain rows, shared-chain crowd blends — see :meth:`_batch_decode`),
  computes *all* changed sessions' probability matrices in a single
  stacked blend + reverse-cumsum pass
  (:func:`batch_probability_matrices`), installs them
  (:meth:`~repro.core.greedy.GreedyScheduler.install_distribution`),
  and resumes the senders.

The batched pass is **bit-identical** to the per-scheduler
:func:`~repro.core.greedy.probability_matrices` path: it reuses the
distribution's own vectorized interpolation weights and performs the
same elementwise blend/discount/cumsum arithmetic, just stacked along
a session axis (padded to the widest explicit set; the zero padding
and the zeroed rows past each session's remaining slots drop out of
the reverse cumulative sum exactly).

Timing semantics vs the per-session path: states are still collected
on the prediction interval and applied one uplink latency later, so a
static fleet behaves identically.  Under churn the tick grid is
fleet-aligned (a session admitted mid-interval is first polled at the
next fleet tick) instead of phased per arrival — the one intentional
deviation, traded for O(1) events per interval.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.core.distribution import RequestDistribution
from repro.clock import Clock

if TYPE_CHECKING:  # fleet assembles sessions; import for typing only
    from repro.core.session import KhameleonSession

__all__ = ["FleetScheduleService", "batch_probability_matrices"]

#: Soft cap on the stacked blend's transient (sessions × slots × ids)
#: element count; larger groups are processed in session chunks.
_MAX_STACK_ELEMENTS = 4_000_000


def batch_probability_matrices(
    specs: Sequence[tuple[RequestDistribution, int, int, float, float]],
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Stacked :func:`~repro.core.greedy.probability_matrices`.

    ``specs`` holds one ``(dist, cache_blocks, position, slot_duration_s,
    gamma)`` tuple per scheduler; the result list is parallel.  Sessions
    are grouped by ``(cache_blocks, num_horizons)`` (identical across a
    homogeneous fleet), padded to the group's widest explicit set, and
    blended/discounted/reverse-cumsummed in one numpy pass per group.
    """
    out: list[Optional[tuple[np.ndarray, np.ndarray]]] = [None] * len(specs)
    groups: dict[tuple[int, int], list[int]] = {}
    for i, (dist, C, t, _slot, _gamma) in enumerate(specs):
        if C - t <= 0:
            out[i] = (np.zeros((C, len(dist.explicit_ids))), np.zeros(C))
        else:
            groups.setdefault((C, len(dist.deltas_s)), []).append(i)
    for (C, _k), indices in groups.items():
        # Explicit-set sizes are the skewed dimension (a cold session
        # may track 0 ids while a hot one tracks hundreds); the stack
        # pads to the chunk maximum, so sort by m and cut a new chunk
        # when the padding waste would exceed 2x (or the element budget
        # is hit).
        indices.sort(
            key=lambda i: (len(specs[i][0].explicit_ids), specs[i][1] - specs[i][2]),
            reverse=True,
        )
        start = 0
        while start < len(indices):
            m_top = max(1, len(specs[indices[start]][0].explicit_ids))
            budget = max(1, _MAX_STACK_ELEMENTS // (C * m_top))
            end = start + 1
            while (
                end < len(indices)
                and end - start < budget
                and 2 * max(1, len(specs[indices[end]][0].explicit_ids)) >= m_top
            ):
                end += 1
            _stacked_pass(specs, indices[start:end], out)
            start = end
    return out  # type: ignore[return-value]


def _stacked_pass(
    specs: Sequence[tuple[RequestDistribution, int, int, float, float]],
    indices: list[int],
    out: list,
) -> None:
    """One ``(session, explicit-id, slot)`` stack: fill, discount, cumsum.

    Layout is ``(S, m, rows)`` so the reverse cumulative sum runs along
    the contiguous last axis.  Slots clamped outside a distribution's
    horizon range are constant rows (exact copies of the edge horizon —
    the same values :meth:`RequestDistribution.explicit_at` returns
    there), so only the interior slots pay the interpolation blend; the
    cumsum accumulates per ``(session, id)`` lane in the same order as
    the per-scheduler path, keeping results bit-identical.
    """
    S = len(indices)
    ms = [len(specs[i][0].explicit_ids) for i in indices]
    rems = [specs[i][1] - specs[i][2] for i in indices]
    m_max = max(ms)
    rows_max = max(rems)
    blended = np.zeros((S, m_max, rows_max))
    res = np.zeros((S, rows_max))
    for s, i in enumerate(indices):
        dist, C, t, slot, gamma = specs[i]
        m, rem = ms[s], rems[s]
        offsets = np.arange(1, rem + 1) * slot
        probs = dist.explicit_probs
        residual = dist.residual
        # Offsets are increasing, so the clamped slots form a head
        # (before the first horizon) and a tail (past the last).
        head, tail = dist.clamp_split(offsets)
        lane = blended[s, :m, :rem]
        if m:
            lane[:, :head] = probs[0][:, None]
            lane[:, tail:] = probs[-1][:, None]
        res[s, :head] = residual[0]
        res[s, tail:rem] = residual[-1]
        if tail > head:
            lo, hi, w = dist.interp_weights_vec(offsets[head:tail])
            if m:
                wc = w[:, None]
                lane[:, head:tail] = ((1 - wc) * probs[lo] + wc * probs[hi]).T
            res[s, head:tail] = (1 - w) * residual[lo] + w * residual[hi]
        if gamma < 1.0:
            discount = gamma ** np.arange(t, C)
            if m:
                lane *= discount[None, :]
            res[s, :rem] *= discount
    rev_probs = np.cumsum(blended[:, :, ::-1], axis=2)[:, :, ::-1]
    rev_res = np.cumsum(res[:, ::-1], axis=1)[:, ::-1]
    for s, i in enumerate(indices):
        _dist, C, t, _slot, _gamma = specs[i]
        rem = rems[s]
        pmat = np.zeros((C, ms[s]))
        pres = np.zeros(C)
        pmat[t:] = rev_probs[s, : ms[s], :rem].T
        pres[t:] = rev_res[s, :rem]
        out[i] = (pmat, pres)


class FleetScheduleService:
    """One prediction tick for a whole fleet (see module docstring).

    Sessions register at :meth:`~repro.core.session.KhameleonSession.
    start` and unregister at ``stop``; the service only ever touches
    ``session.active`` members.  The periodic task is armed at
    construction (matching a per-session manager's behaviour of ticking
    from creation) and cancelled by :meth:`stop`.
    """

    def __init__(
        self,
        sim: Clock,
        interval_s: float = 0.150,
        batched_decode: bool = True,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.interval_s = interval_s
        self.batched_decode = batched_decode
        self._sessions: list["KhameleonSession"] = []
        # session -> (batchable-collect, decode family) where the decode
        # family is "kalman" | "markov" | "shared" | None, classified
        # once at registration (exact types only — a subclass may
        # override state()/decode(), and the stacked passes would
        # silently bypass that) so the per-tick loops do no type scans.
        self._families: dict["KhameleonSession", tuple[bool, Optional[str]]] = {}
        self._task = sim.every(interval_s, self._tick)
        self.ticks = 0
        self.states_collected = 0
        self.batched_recomputes = 0
        self.sessions_recomputed = 0
        self.predict_batches = 0
        self.decode_batches = 0

    # -- membership ----------------------------------------------------

    @staticmethod
    def _classify(session: "KhameleonSession") -> tuple[bool, Optional[str]]:
        """Which stacked collect/decode passes (if any) serve a session."""
        from repro.predictors.kalman import (
            KalmanClientPredictor,
            KalmanServerPredictor,
        )
        from repro.predictors.markov import MarkovServerPredictor
        from repro.predictors.shared import SharedMarkovServerPredictor

        collect = (
            type(session.predictor_manager.client_predictor)
            is KalmanClientPredictor
        )
        sp = session.server.predictor_server
        decode: Optional[str] = None
        if type(sp) is KalmanServerPredictor:
            decode = "kalman"
        elif type(sp) is MarkovServerPredictor:
            decode = "markov"
        elif type(sp) is SharedMarkovServerPredictor:
            decode = "shared"
        return collect, decode

    def register(self, session: "KhameleonSession") -> None:
        if session not in self._sessions:
            self._sessions.append(session)
            self._families[session] = self._classify(session)

    def unregister(self, session: "KhameleonSession") -> None:
        if session in self._sessions:
            self._sessions.remove(session)
            self._families.pop(session, None)

    @property
    def num_registered(self) -> int:
        return len(self._sessions)

    def stop(self) -> None:
        """Cancel the fleet tick (idempotent)."""
        self._task.cancel()

    def snapshot(self) -> dict:
        return {
            "ticks": self.ticks,
            "states_collected": self.states_collected,
            "batched_recomputes": self.batched_recomputes,
            "sessions_recomputed": self.sessions_recomputed,
            "batched_decode": self.batched_decode,
            "predict_batches": self.predict_batches,
            "decode_batches": self.decode_batches,
        }

    # -- the coalesced tick --------------------------------------------

    def _tick(self) -> None:
        """Poll every live session; ship changed states as one batch.

        Grouping by uplink latency preserves per-session delivery
        timing while keeping one apply event per latency class (a
        homogeneous fleet has exactly one).  With ``batched_decode``,
        Kalman sessions' per-horizon state snapshots are produced by
        one stacked :func:`~repro.predictors.kalman.predict_gaussians`
        pass instead of N per-session predict loops (bit-identical
        states; each manager still owns its dedup/accounting via
        :meth:`~repro.core.predictor_manager.PredictorManager.poll`).
        """
        self.ticks += 1
        live = [s for s in list(self._sessions) if s.active]
        precomputed = self._batch_states(live) if self.batched_decode else {}
        by_latency: dict[float, list] = {}
        for session in live:
            if session in precomputed:
                state = session.predictor_manager.poll(state=precomputed[session])
            else:
                state = session.predictor_manager.poll()
            if state is None:
                continue
            self.states_collected += 1
            by_latency.setdefault(session.uplink.latency_s, []).append(
                (session, state)
            )
        for latency in sorted(by_latency):
            self.sim.schedule(latency, self._apply, by_latency[latency])

    def _batch_states(self, sessions: list) -> dict:
        """Stacked Kalman state snapshots for every batchable session."""
        families = self._families
        kalman = [s for s in sessions if families.get(s, (False, None))[0]]
        if not kalman:
            return {}
        from repro.predictors.kalman import KalmanClientPredictor

        states = KalmanClientPredictor.batch_states(
            [s.predictor_manager.client_predictor for s in kalman], self.sim.now
        )
        self.predict_batches += 1
        return dict(zip(kalman, states))

    def _apply(self, group: list) -> None:
        """Server side of the batch: decode, preempt, recompute, resume.

        Mirrors the per-session ``on_predictor_state`` → ``refresh``
        sequence, but defers every scheduler's probability recompute
        into one stacked pass at the post-preemption positions (the
        per-session path computes matrices twice — once on update, once
        on the rollback — and only the second survives; the batch
        computes exactly that surviving one).
        """
        decoded = self._batch_decode(group) if self.batched_decode else {}
        entries = []
        for session, state in group:
            if not session.active:
                continue  # departed while the state was in flight
            server = session.server
            if session in decoded:
                server.record_state_received()
                dist = decoded[session]
            else:
                dist = server.decode_state(state)
            entries.append((session, dist, server.slot_duration_s))
        if not entries:
            return
        for session, _dist, _slot in entries:
            blocks = session.sender.take_pipeline()
            if blocks:
                session.scheduler.rollback(blocks, recompute=False)
        specs = [
            (dist, session.scheduler.C, session.scheduler.position, slot,
             session.scheduler.gamma)
            for session, dist, slot in entries
        ]
        matrices = batch_probability_matrices(specs)
        for (session, dist, slot), (pmat, pres) in zip(entries, matrices):
            session.scheduler.install_distribution(dist, slot, pmat, pres)
            session.sender.resume()
        self.batched_recomputes += 1
        self.sessions_recomputed += len(entries)

    def _batch_decode(self, group: list) -> dict:
        """Predictor state → distribution for a whole delivery group.

        Every stock predictor family decodes in a stacked pass —
        byte-identical per session to ``server.decode_state``:

        * **Kalman** sessions over the same layout (the common case: a
          homogeneous fleet sharing the application's layout object)
          decode through one truncated-Gaussian block-mass pass.
        * **Markov** sessions decode through
          :meth:`~repro.predictors.markov.MarkovServerPredictor.
          decode_batch` — learning side effects in group order, chain
          rows gathered once per version.
        * **Shared-chain** sessions (the SeLeP-style crowd prior) group
          by their prior so
          :meth:`~repro.predictors.shared.SharedMarkovServerPredictor.
          decode_batch` gathers each crowd row once per tick and lets
          cold sessions share distributions.

        Sessions with custom or subclassed predictors fall back to the
        per-session decode in :meth:`_apply`.
        """
        families = self._families
        kalman_groups: dict[tuple, list] = {}
        markov: list = []
        shared_groups: dict[int, list] = {}
        for session, state in group:
            if not session.active:
                continue
            family = families.get(session, (False, None))[1]
            sp = session.server.predictor_server
            if family == "kalman":
                key = (id(sp.layout), sp.truncate_sigmas, session.server.deltas_s)
                kalman_groups.setdefault(key, []).append((session, state, sp))
            elif family == "markov":
                markov.append((session, (sp, state, session.server.deltas_s)))
            elif family == "shared":
                shared_groups.setdefault(id(sp.prior), []).append(
                    (session, (sp, state, session.server.deltas_s))
                )
        out: dict = {}
        for members in kalman_groups.values():
            dists = members[0][2].decode_batch(
                [state for _s, state, _sp in members], members[0][0].server.deltas_s
            )
            self.decode_batches += 1
            for (session, _state, _sp), dist in zip(members, dists):
                out[session] = dist
        if markov:
            from repro.predictors.markov import MarkovServerPredictor

            dists = MarkovServerPredictor.decode_batch([e for _s, e in markov])
            self.decode_batches += 1
            for (session, _e), dist in zip(markov, dists):
                out[session] = dist
        if shared_groups:
            from repro.predictors.shared import SharedMarkovServerPredictor

            for members in shared_groups.values():
                dists = SharedMarkovServerPredictor.decode_batch(
                    [e for _s, e in members]
                )
                self.decode_batches += 1
                for (session, _e), dist in zip(members, dists):
                    out[session] = dist
        return out

"""Session lifecycle management: open-loop churn over a shared fleet.

The paper — and :mod:`repro.fleet.fleet`'s original assembly — evaluate
a *closed* population: N sessions exist for the whole run.  A serving
deployment is an **open** system: users arrive at some offered rate,
interact for a while, and leave, and the fleet must admit, attach, and
retire sessions while the simulator is running.

Two pieces implement that here:

* :class:`ArrivalConfig` — a deterministic description of the arrival /
  departure process: Poisson arrivals (exponential inter-arrival gaps at
  ``rate_per_s``), lognormal dwell times around ``mean_dwell_s``, and an
  admission cap ``max_concurrent``.  The **static fleet is exactly the
  degenerate case**: ``rate_per_s = 0`` puts every arrival at t = 0, and
  ``mean_dwell_s = None`` means nobody departs.  All randomness comes
  from one seeded generator, so a churn scenario is a pure function of
  its config.

* :class:`SessionManager` — the driver.  It pre-computes each session's
  :class:`SessionPlan` and schedules the arrivals into the simulator.
  At an arrival it applies admission control (reject when
  ``max_concurrent`` sessions are already attached — an oversubscribed
  fleet should shed load at the door, not thrash every tenant), asks the
  fleet to *build and attach* the session — which is when the session
  acquires its :class:`~repro.sim.fairshare.FairSharePort`, its backend
  throttle share, and its metrics collector — and starts it.  At the
  departure time it stops the session and releases those resources
  (:meth:`~repro.sim.fairshare.FairSharePort.close` retires the port
  mid-backlog; a weighted throttle share returns to the pool).

The manager records a :class:`SessionRecord` per planned session —
including rejected ones — so churn metrics (per-cohort latency,
admission rejections, cold-start behaviour) can be computed after the
run.

Prediction cadence under churn: with the fleet's coalesced
:class:`~repro.fleet.schedule_service.FleetScheduleService` (the
default), an admitted session is first polled at the next *fleet* tick
— at most one prediction interval after arrival, the same worst-case
delay as the per-session manager's own first tick, but aligned to the
fleet grid rather than phased per arrival.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.clock import Clock

if TYPE_CHECKING:  # avoid a lifecycle <-> fleet import cycle at runtime
    from repro.core.session import KhameleonSession
    from repro.fleet.fleet import KhameleonFleet

__all__ = ["ArrivalConfig", "SessionPlan", "SessionRecord", "SessionManager"]


@dataclass(frozen=True)
class ArrivalConfig:
    """Deterministic open-loop arrival/departure process.

    Parameters
    ----------
    rate_per_s:
        Poisson arrival rate.  ``0.0`` (default) degenerates to "all
        sessions arrive at t = 0" — the static fleet.
    mean_dwell_s:
        Mean session lifetime; dwell times are lognormal with this mean
        and shape ``dwell_sigma``.  ``None`` (default) means sessions
        never depart (run to the end of the simulation).
    dwell_sigma:
        Lognormal shape parameter σ; ``0.0`` makes every dwell exactly
        ``mean_dwell_s``.
    max_concurrent:
        Admission cap: an arrival finding this many sessions attached is
        rejected.  ``None`` (default) admits everyone.
    patience_s:
        How long an arrival blocked at the cap will wait in the
        admission queue before giving up.  ``0.0`` (default) is exactly
        the binary reject-at-cap behaviour — no queue exists and the
        rejection path is bit-identical to the pre-queue manager.
    queue_depth:
        Bound on the patience queue.  When full, the *lowest-weight*
        waiter (including the newcomer) is shed — overload preferentially
        drops the arrivals the fair-share link would serve least.
        ``None`` (default) leaves the queue bounded only by patience.
    seed:
        Seed for the arrival-gap and dwell draws.  The whole plan is a
        pure function of ``(seed, num_sessions)``.
    """

    rate_per_s: float = 0.0
    mean_dwell_s: Optional[float] = None
    dwell_sigma: float = 0.6
    max_concurrent: Optional[int] = None
    seed: int = 0
    patience_s: float = 0.0
    queue_depth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.rate_per_s < 0:
            raise ValueError("arrival rate must be non-negative")
        if self.mean_dwell_s is not None and self.mean_dwell_s <= 0:
            raise ValueError("mean dwell must be positive when given")
        if self.dwell_sigma < 0:
            raise ValueError("dwell sigma must be non-negative")
        if self.max_concurrent is not None and self.max_concurrent < 1:
            raise ValueError("admission cap must be >= 1 when given")
        if self.patience_s < 0:
            raise ValueError("patience must be non-negative")
        if self.queue_depth is not None and self.queue_depth < 1:
            raise ValueError("queue depth must be >= 1 when given")

    @property
    def is_static(self) -> bool:
        """True when this config is exactly the closed, all-at-t0 fleet."""
        return (
            self.rate_per_s == 0.0
            and self.mean_dwell_s is None
            and self.max_concurrent is None
        )

    def expected_concurrency(self, num_sessions: int) -> float:
        """Little's-law estimate of concurrently attached sessions.

        Used as the per-session bandwidth-prior divisor: under churn a
        new sender's fair share is one part in the *expected* live
        population, not one part in every user who will ever arrive.
        """
        expected = float(num_sessions)
        if self.rate_per_s > 0 and self.mean_dwell_s is not None:
            expected = min(expected, self.rate_per_s * self.mean_dwell_s)
        if self.max_concurrent is not None:
            expected = min(expected, float(self.max_concurrent))
        return max(1.0, expected)

    def plan(self, num_sessions: int) -> list["SessionPlan"]:
        """Materialize the arrival times and dwells for each session."""
        if num_sessions < 1:
            raise ValueError("need at least one session to plan")
        rng = np.random.default_rng(self.seed)
        if self.rate_per_s > 0:
            # Open loop: i.i.d. exponential gaps, first arrival one gap in.
            gaps = rng.exponential(1.0 / self.rate_per_s, size=num_sessions)
            arrivals = np.cumsum(gaps)
        else:
            arrivals = np.zeros(num_sessions)
        if self.mean_dwell_s is None:
            dwells: list[Optional[float]] = [None] * num_sessions
        else:
            # Lognormal parameterized by its *mean*: E[X] = exp(mu + s^2/2).
            mu = np.log(self.mean_dwell_s) - 0.5 * self.dwell_sigma**2
            dwells = [
                float(d) for d in rng.lognormal(mu, self.dwell_sigma, size=num_sessions)
            ]
        return [
            SessionPlan(index=i, arrival_s=float(arrivals[i]), dwell_s=dwells[i])
            for i in range(num_sessions)
        ]


@dataclass(frozen=True)
class SessionPlan:
    """One planned session: when it arrives and how long it stays."""

    index: int
    arrival_s: float
    dwell_s: Optional[float]  # None = stays until the end of the run


@dataclass
class SessionRecord:
    """What actually happened to one planned session."""

    plan: SessionPlan
    admitted: bool = False
    session: Optional["KhameleonSession"] = None
    arrived_at: Optional[float] = None
    #: When the session actually attached — equals ``arrived_at`` for a
    #: direct admission, later for one that waited in the patience queue.
    admitted_at: Optional[float] = None
    departed_at: Optional[float] = None

    @property
    def index(self) -> int:
        return self.plan.index

    @property
    def rejected(self) -> bool:
        return self.arrived_at is not None and not self.admitted


@dataclass
class ChurnStats:
    """Counters the manager maintains as the process unfolds."""

    arrivals: int = 0
    admitted: int = 0
    rejected: int = 0
    departed: int = 0
    peak_concurrent: int = 0
    bytes_dropped_on_departure: int = 0
    # Patience-queue outcomes (all zero when patience_s == 0: the queue
    # never forms).  Every queued arrival ends in exactly one of
    # admitted_from_queue / shed_patience / shed_capacity / shed at
    # end-of-run, and shed arrivals also count in ``rejected`` so
    # ``arrivals == admitted + rejected`` holds with or without a queue.
    queued: int = 0
    admitted_from_queue: int = 0
    shed_patience: int = 0
    shed_capacity: int = 0

    def snapshot(self) -> dict:
        return {
            "arrivals": self.arrivals,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "departed": self.departed,
            "peak_concurrent": self.peak_concurrent,
            "bytes_dropped_on_departure": self.bytes_dropped_on_departure,
            "queued": self.queued,
            "admitted_from_queue": self.admitted_from_queue,
            "shed_patience": self.shed_patience,
            "shed_capacity": self.shed_capacity,
        }


class SessionManager:
    """Drives a fleet's arrival/departure process on the simulator.

    Parameters
    ----------
    sim:
        The shared simulator clock.
    fleet:
        The :class:`~repro.fleet.fleet.KhameleonFleet` whose
        ``_admit_session`` / ``_retire_session`` acquire and release the
        per-session resources (fair-share port, throttle share, metrics
        collector).
    arrival:
        The churn process.
    on_admit / on_depart / on_reject:
        Optional hooks, each called with the :class:`SessionRecord`.
        ``on_admit`` fires *after* the session is attached and started —
        the experiment runner uses it to begin replaying the user's
        trace at the (simulated) moment they showed up.
    route:
        Shard routing filter, ``plan_index -> bool``: only planned
        sessions this manager owns are scheduled to arrive.  The plan
        itself stays **global** — every shard materializes the same
        arrival times and dwells from the same seed, then drops the
        sessions routed elsewhere, so a session's timeline is identical
        no matter how many shards the fleet is split into (and
        :meth:`horizon_s` spans the whole fleet's plan, giving every
        shard the same run horizon for lock-step delta sync).
    """

    def __init__(
        self,
        sim: Clock,
        fleet: "KhameleonFleet",
        arrival: ArrivalConfig,
        on_admit: Optional[Callable[[SessionRecord], None]] = None,
        on_depart: Optional[Callable[[SessionRecord], None]] = None,
        on_reject: Optional[Callable[[SessionRecord], None]] = None,
        route: Optional[Callable[[int], bool]] = None,
    ) -> None:
        self.sim = sim
        self.fleet = fleet
        self.arrival = arrival
        self.on_admit = on_admit
        self.on_depart = on_depart
        self.on_reject = on_reject
        self.route = route
        self.plans = arrival.plan(fleet.config.num_sessions)
        self.records = [
            SessionRecord(plan=p)
            for p in self.plans
            if route is None or route(p.index)
        ]
        self.admitted_records: list[SessionRecord] = []  # admission order
        self.stats = ChurnStats()
        self._active: list[SessionRecord] = []
        self._queue: list[SessionRecord] = []  # arrival (FIFO) order
        self._patience_events: dict[int, object] = {}  # record index -> event
        self._arrival_events: list = []
        self._started = False
        self._stopped = False

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Schedule every planned arrival (idempotent)."""
        if self._started:
            return
        self._started = True
        for record in self.records:
            self._arrival_events.append(
                self.sim.schedule_at(record.plan.arrival_s, self._on_arrival, record)
            )

    def stop(self) -> None:
        """End of run: no further admissions; stop sessions still
        attached (their ports stay open so end-of-run accounting matches
        the static fleet's quiesce).  Arrivals still waiting in the
        patience queue are shed — they count as rejected, keeping
        ``arrivals == admitted + rejected``.  Idempotent."""
        self._stopped = True
        for event in self._arrival_events:
            event.cancel()
        self._arrival_events.clear()
        for record in list(self._queue):
            self._shed(record, "patience")
        for record in list(self._active):
            if record.session is not None:
                record.session.stop()
        self._active.clear()

    # -- arrival / departure events -------------------------------------

    def _on_arrival(self, record: SessionRecord) -> None:
        if self._stopped:
            return  # a stopped fleet admits nobody
        record.arrived_at = self.sim.now
        self.stats.arrivals += 1
        cap = self.arrival.max_concurrent
        if cap is not None and len(self._active) >= cap:
            if self.arrival.patience_s <= 0.0:
                # Binary reject-at-cap: the degenerate zero-patience
                # queue, kept byte-for-byte on the original path.
                self.stats.rejected += 1
                if self.on_reject is not None:
                    self.on_reject(record)
                return
            self._enqueue(record)
            return
        self._admit(record)

    def _admit(self, record: SessionRecord) -> None:
        session = self.fleet._admit_session(record.index)
        record.session = session
        record.admitted = True
        record.admitted_at = self.sim.now
        self.admitted_records.append(record)
        self._active.append(record)
        self.stats.admitted += 1
        self.stats.peak_concurrent = max(self.stats.peak_concurrent, len(self._active))
        session.start()
        if self.on_admit is not None:
            self.on_admit(record)
        if record.plan.dwell_s is not None:
            self.sim.schedule(record.plan.dwell_s, self._on_departure, record)

    def _on_departure(self, record: SessionRecord) -> None:
        if record not in self._active:
            return  # already stopped by end-of-run stop()
        self._active.remove(record)
        record.departed_at = self.sim.now
        self.stats.departed += 1
        self.stats.bytes_dropped_on_departure += self.fleet._retire_session(
            record.session
        )
        if self.on_depart is not None:
            self.on_depart(record)
        self._drain_queue()

    # -- patience queue -------------------------------------------------

    def _weight(self, record: SessionRecord) -> float:
        return self.fleet.config.weight_of(record.index)

    def _enqueue(self, record: SessionRecord) -> None:
        depth = self.arrival.queue_depth
        if depth is not None and len(self._queue) >= depth:
            # Weight-aware shedding: the lowest-weight waiter — newcomer
            # included — is dropped; ties shed the newest, preserving
            # queue seniority.  Overload thus sacrifices the arrivals
            # the weighted fair-share link would serve least.
            lightest = min(reversed(self._queue), key=self._weight)
            if self._weight(record) <= self._weight(lightest):
                self.stats.shed_capacity += 1
                self.stats.rejected += 1
                if self.on_reject is not None:
                    self.on_reject(record)
                return
            self._shed(lightest, "capacity")
        self._queue.append(record)
        self.stats.queued += 1
        self._patience_events[record.index] = self.sim.schedule(
            self.arrival.patience_s, self._on_patience_expired, record
        )

    def _shed(self, record: SessionRecord, reason: str) -> None:
        """Remove a waiter from the queue and count it as rejected."""
        self._queue.remove(record)
        event = self._patience_events.pop(record.index, None)
        if event is not None:
            event.cancel()
        if reason == "patience":
            self.stats.shed_patience += 1
        else:
            self.stats.shed_capacity += 1
        self.stats.rejected += 1
        if self.on_reject is not None:
            self.on_reject(record)

    def _on_patience_expired(self, record: SessionRecord) -> None:
        if record in self._queue:
            self._shed(record, "patience")

    def _drain_queue(self) -> None:
        """Admit waiters (FIFO) into slots freed by departures."""
        cap = self.arrival.max_concurrent
        while self._queue and (cap is None or len(self._active) < cap):
            record = self._queue.pop(0)
            event = self._patience_events.pop(record.index, None)
            if event is not None:
                event.cancel()
            self.stats.admitted_from_queue += 1
            self._admit(record)

    # -- introspection -------------------------------------------------

    @property
    def active_count(self) -> int:
        return len(self._active)

    @property
    def queued_count(self) -> int:
        return len(self._queue)

    def arrival_times(self) -> list[float]:
        """Per-admitted-session arrival times, in admission order.

        Parallel to the fleet's ``sessions`` list: both append exactly
        once per admission, inside :meth:`_on_arrival`.
        """
        return [r.arrived_at for r in self.admitted_records]

    def horizon_s(self, trace_duration_of: Callable[[int], float]) -> float:
        """Latest instant any planned session could still be interacting.

        ``trace_duration_of(index)`` maps a session to its trace length;
        the horizon is the max over sessions of arrival + min(trace,
        dwell), plus the patience allowance when a queue can delay
        admissions (a queued session replays its trace from the moment
        it is finally admitted).  Rejected sessions never interact, but
        their plans are included — rejection is decided at run time,
        not plan time.
        """
        wait_s = 0.0
        if self.arrival.max_concurrent is not None and self.arrival.patience_s > 0:
            wait_s = self.arrival.patience_s
        horizon = 0.0
        for plan in self.plans:
            span = trace_duration_of(plan.index)
            if plan.dwell_s is not None:
                span = min(span, plan.dwell_s)
            horizon = max(horizon, plan.arrival_s + wait_s + span)
        return horizon

"""Bandwidth estimation (§5.4).

The Khameleon client periodically reports its measured data receive
rate to the server; the server uses the **harmonic mean of the last
five reports** as its bandwidth estimate for the next timestep and
paces the sender to saturate — but not exceed — that rate.  The
harmonic mean is the right average for rates (it is dominated by slow
intervals, making the estimate conservative under variance), the same
reasoning behind its use in ABR video players the paper cites [85].

Khameleon may alternatively run under a *user-configured bandwidth
cap* (e.g., limited data plans); :class:`HarmonicMeanEstimator` supports
that via ``cap_bytes_per_s``.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.clock import Clock

__all__ = ["HarmonicMeanEstimator", "ReceiveRateMonitor"]


class HarmonicMeanEstimator:
    """Server-side bandwidth estimate from client rate reports.

    Parameters
    ----------
    initial_bytes_per_s:
        Estimate used before any report arrives.  The paper's sender
        must start pushing immediately; a configured starting guess
        (typically the provisioned link rate, or a conservative default)
        plays the role of the transport's initial window.
    window:
        Number of most-recent reports averaged (paper: 5).
    cap_bytes_per_s:
        Optional hard cap (user-configured bandwidth budget, §B.2).
    """

    def __init__(
        self,
        initial_bytes_per_s: float,
        window: int = 5,
        cap_bytes_per_s: Optional[float] = None,
    ) -> None:
        if initial_bytes_per_s <= 0:
            raise ValueError("initial estimate must be positive")
        if window < 1:
            raise ValueError("window must be >= 1")
        if cap_bytes_per_s is not None and cap_bytes_per_s <= 0:
            raise ValueError("cap must be positive when given")
        self._initial = initial_bytes_per_s
        self._reports: deque[float] = deque(maxlen=window)
        self.cap_bytes_per_s = cap_bytes_per_s

    def report(self, bytes_per_s: float) -> None:
        """Record one client receive-rate report (non-positive ignored)."""
        if bytes_per_s > 0:
            self._reports.append(bytes_per_s)

    @property
    def estimate(self) -> float:
        """Current bandwidth estimate in bytes/s."""
        if not self._reports:
            rate = self._initial
        else:
            rate = len(self._reports) / sum(1.0 / r for r in self._reports)
        if self.cap_bytes_per_s is not None:
            rate = min(rate, self.cap_bytes_per_s)
        return rate

    @property
    def report_count(self) -> int:
        return len(self._reports)


class ReceiveRateMonitor:
    """Client-side receive-rate measurement and reporting.

    Every ``interval_s`` the monitor computes bytes received since the
    last tick divided by the interval and invokes ``publish(rate)``
    (which typically ships the number to the server over the control
    channel).  Idle intervals (zero bytes) are not published: with a
    push-based sender the link is meant to be backlogged, so a zero
    sample means "nothing was in flight", not "the link is dead" — and
    feeding zeros to a harmonic mean would wedge the estimate at nought.
    """

    def __init__(
        self,
        sim: Clock,
        interval_s: float,
        publish: Callable[[float], None],
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.interval_s = interval_s
        self._publish = publish
        self._bytes_since_tick = 0
        self._task = sim.every(interval_s, self._tick)

    def on_bytes(self, nbytes: int) -> None:
        """Record ``nbytes`` received from the server."""
        self._bytes_since_tick += nbytes

    def _tick(self) -> None:
        if self._bytes_since_tick > 0:
            self._publish(self._bytes_since_tick / self.interval_s)
        self._bytes_since_tick = 0

    def stop(self) -> None:
        self._task.cancel()

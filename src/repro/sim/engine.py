"""Discrete-event simulation engine.

All Khameleon *experiments* in this reproduction run on a single
virtual clock instead of wall-clock asyncio.  The paper's prototype
measured a TypeScript client and Rust server over emulated networks; in
Python, wall-clock scheduling jitter would swamp the millisecond-scale
effects the paper studies (see DESIGN.md §2).  A discrete-event
simulator gives deterministic, reproducible timing at any bandwidth.

:class:`Simulator` is one of the two drivers of the
:class:`repro.clock.Clock` protocol — the time/scheduling seam every
component depends on.  The other driver, :class:`repro.clock.WallClock`,
runs the identical stack on asyncio real time behind ``python -m repro
serve``.  Components never import this module for the clock; they take
a ``Clock`` and the harness decides which driver to hand them.

Time is measured in **seconds** as floats.  Events scheduled for the
same instant fire in FIFO order of scheduling (a monotonically
increasing sequence number breaks ties), which keeps runs deterministic.

Example
-------
>>> sim = Simulator()
>>> fired = []
>>> handle = sim.schedule(1.5, fired.append, "a")
>>> sim.schedule(0.5, fired.append, "b")  # doctest: +ELLIPSIS
<repro.sim.engine.EventHandle object at ...>
>>> sim.run()
>>> fired
['b', 'a']
>>> sim.now
1.5
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.clock import ClockError

__all__ = ["Simulator", "EventHandle", "SimulationError"]


class SimulationError(ClockError):
    """Raised for invalid uses of the simulator (e.g., scheduling in the past).

    Subclasses :class:`repro.clock.ClockError` so driver-agnostic code
    can catch scheduling misuse without knowing which clock it runs on.
    """


class EventHandle:
    """A cancellable reference to a scheduled event.

    Returned by :meth:`Simulator.schedule`; call :meth:`cancel` to
    prevent the callback from firing.  Cancelling an event that already
    fired is a harmless no-op.
    """

    __slots__ = ("time", "_callback", "_args", "_cancelled", "_sim", "_popped")

    def __init__(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self._callback = callback
        self._args = args
        self._cancelled = False
        self._sim = sim
        self._popped = False

    def cancel(self) -> None:
        """Prevent this event from firing (idempotent)."""
        if self._cancelled:
            return
        self._cancelled = True
        # Drop references so cancelled events don't pin large objects
        # while they wait to be popped from the heap.
        self._callback = None
        self._args = ()
        # Cancelled entries stay in the heap until popped (lazy
        # cancellation); tell the simulator so it can compact when the
        # dead fraction gets large.
        if self._sim is not None and not self._popped:
            self._sim._note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def _fire(self) -> None:
        if not self._cancelled:
            self._callback(*self._args)


class Simulator:
    """Event-heap simulator with a virtual clock.

    The simulator is intentionally minimal: components schedule plain
    callbacks.  Higher-level constructs (periodic tasks, links, paced
    senders) are built on top of :meth:`schedule`.
    """

    #: Never compact below this heap size: tiny heaps cost nothing to
    #: scan and would otherwise compact on every other cancellation.
    COMPACT_MIN_SIZE = 64

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self._events_processed = 0
        # Cancelled-but-unpopped entries currently in the heap.  Lazy
        # cancellation leaves them there until they reach the top; under
        # churny preemption (schedule + cancel in a tight loop) that
        # garbage can outgrow the live events unboundedly, so the heap
        # is compacted whenever the cancelled fraction exceeds half.
        self._cancelled_pending = 0
        self.heap_compactions = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have fired so far (diagnostics)."""
        return self._events_processed

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay!r})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to fire at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r}, which is before now ({self._now!r})"
            )
        handle = EventHandle(time, callback, args, sim=self)
        heapq.heappush(self._heap, (time, next(self._seq), handle))
        return handle

    @property
    def pending_events(self) -> int:
        """Live (non-cancelled) events still in the heap."""
        return len(self._heap) - self._cancelled_pending

    def _note_cancelled(self) -> None:
        self._cancelled_pending += 1
        if (
            len(self._heap) >= self.COMPACT_MIN_SIZE
            and 2 * self._cancelled_pending > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        Entries keep their ``(time, seq)`` keys, so the pop order of the
        survivors — including FIFO ties — is unchanged: compaction is
        invisible to the simulation.
        """
        self._heap = [entry for entry in self._heap if not entry[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled_pending = 0
        self.heap_compactions += 1

    def _pop(self) -> EventHandle:
        """Pop the top entry, maintaining the cancelled-garbage count."""
        handle = heapq.heappop(self._heap)[2]
        handle._popped = True
        if handle.cancelled:
            self._cancelled_pending -= 1
        return handle

    def every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        start: Optional[float] = None,
    ) -> "PeriodicTask":
        """Run ``callback(*args)`` every ``interval`` seconds.

        The first firing happens at ``start`` (absolute time; defaults to
        ``now + interval``).  Returns a :class:`PeriodicTask` whose
        ``cancel()`` stops the repetition.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be positive (got {interval!r})")
        task = PeriodicTask(self, interval, callback, args)
        first = self._now + interval if start is None else start
        task._arm(first)
        return task

    def run(self, until: Optional[float] = None) -> None:
        """Process events until the heap is empty or ``until`` is reached.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` even if the last event fires earlier, so back-to-back
        ``run(until=...)`` calls behave like contiguous wall-clock spans.
        """
        while self._heap:
            time = self._heap[0][0]
            if until is not None and time > until:
                break
            handle = self._pop()
            if handle.cancelled:
                continue
            self._now = time
            self._events_processed += 1
            handle._fire()
        if until is not None and until > self._now:
            self._now = until

    def run_for(self, duration: float) -> None:
        """Advance the clock by ``duration`` seconds, processing events."""
        if duration < 0:
            raise SimulationError(f"duration must be non-negative (got {duration!r})")
        self.run(until=self._now + duration)

    def peek(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or None."""
        while self._heap and self._heap[0][2].cancelled:
            self._pop()
        return self._heap[0][0] if self._heap else None


class PeriodicTask:
    """A repeating event created by :meth:`Simulator.every`."""

    __slots__ = ("_sim", "_interval", "_callback", "_args", "_handle", "_cancelled")

    def __init__(self, sim: Simulator, interval: float, callback: Callable[..., Any], args: tuple):
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._args = args
        self._handle: Optional[EventHandle] = None
        self._cancelled = False

    def _arm(self, at: float) -> None:
        self._handle = self._sim.schedule_at(at, self._tick)

    def _tick(self) -> None:
        if self._cancelled:
            return
        self._callback(*self._args)
        if not self._cancelled:
            self._arm(self._sim.now + self._interval)

    def cancel(self) -> None:
        """Stop the periodic task (idempotent)."""
        self._cancelled = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def cancelled(self) -> bool:
        return self._cancelled

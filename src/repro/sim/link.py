"""Network link models.

A link is a one-directional FIFO pipe: payloads serialize onto the wire
in send order at the link's (possibly time-varying) rate, then arrive
after a fixed propagation delay.  This is the same first-order model
``netem``/Mahimahi enforce in the paper's testbed: a token-bucket rate
limit plus a delay box, with queueing delay emerging when senders
outpace the link — which is exactly the congestion collapse the
baselines suffer in §6.2.

Two rate models are provided:

* :class:`FixedRateLink` — constant ``bytes_per_second`` (netem analogue,
  used for the 1.5–15 MB/s sweeps), and
* :class:`TraceDrivenLink` — rate driven by a :class:`MahimahiTrace`
  (cellular experiments, Fig. 13).

:class:`ControlChannel` models the client→server path for requests and
predictor states: these payloads are tiny (a handful of floats), so only
propagation delay is modelled.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.clock import Clock
from .traces import MahimahiTrace

__all__ = ["Link", "FixedRateLink", "TraceDrivenLink", "ControlChannel"]

Deliver = Callable[[Any], None]


class Link:
    """Base FIFO link: serialization queue + propagation delay.

    Subclasses implement :meth:`_transmit_finish` to define the rate
    model.  ``send`` never rejects: payloads queue behind in-flight
    transmissions, so sustained over-sending manifests as growing
    queueing delay (observable via :meth:`queue_delay`), not loss.
    """

    def __init__(self, sim: Clock, propagation_delay_s: float = 0.0) -> None:
        if propagation_delay_s < 0:
            raise ValueError("propagation delay must be non-negative")
        self.sim = sim
        self.propagation_delay_s = propagation_delay_s
        self._busy_until = 0.0
        self.bytes_accepted = 0
        self.bytes_delivered = 0
        self.payloads_delivered = 0

    # -- rate model --------------------------------------------------

    def _transmit_finish(self, start_s: float, nbytes: int) -> float:
        raise NotImplementedError

    # -- public API --------------------------------------------------

    def send(self, nbytes: int, deliver: Deliver, payload: Any = None) -> float:
        """Enqueue ``nbytes``; call ``deliver(payload)`` on arrival.

        Returns the arrival time.  Serialization starts when the link
        frees up (FIFO), and the payload arrives ``propagation_delay_s``
        after its last byte clears the link.
        """
        if nbytes < 0:
            raise ValueError("payload size must be non-negative")
        start = max(self.sim.now, self._busy_until)
        finish = self._transmit_finish(start, nbytes)
        self._busy_until = finish
        self.bytes_accepted += nbytes
        arrival = finish + self.propagation_delay_s
        self.sim.schedule_at(arrival, self._deliver, nbytes, deliver, payload)
        return arrival

    def _deliver(self, nbytes: int, deliver: Deliver, payload: Any) -> None:
        self.bytes_delivered += nbytes
        self.payloads_delivered += 1
        deliver(payload)

    def queue_delay(self) -> float:
        """Seconds a byte sent *now* would wait before serialization starts."""
        return max(0.0, self._busy_until - self.sim.now)

    @property
    def busy_until(self) -> float:
        """Virtual time at which the serialization queue drains."""
        return self._busy_until


class FixedRateLink(Link):
    """Link with a constant serialization rate (netem fixed-bandwidth box)."""

    def __init__(
        self,
        sim: Clock,
        bytes_per_second: float,
        propagation_delay_s: float = 0.0,
    ) -> None:
        if bytes_per_second <= 0:
            raise ValueError("bandwidth must be positive")
        super().__init__(sim, propagation_delay_s)
        self.bytes_per_second = bytes_per_second

    def _transmit_finish(self, start_s: float, nbytes: int) -> float:
        return start_s + nbytes / self.bytes_per_second

    def capacity_bytes(self, a_s: float, b_s: float) -> float:
        """Bytes deliverable in ``[a_s, b_s)`` (for conservation checks)."""
        return max(0.0, b_s - a_s) * self.bytes_per_second


class TraceDrivenLink(Link):
    """Link whose delivery opportunities come from a Mahimahi trace."""

    def __init__(
        self,
        sim: Clock,
        trace: MahimahiTrace,
        propagation_delay_s: float = 0.0,
    ) -> None:
        super().__init__(sim, propagation_delay_s)
        self.trace = trace

    def _transmit_finish(self, start_s: float, nbytes: int) -> float:
        return self.trace.transmit_finish(start_s, nbytes)

    def capacity_bytes(self, a_s: float, b_s: float) -> int:
        return self.trace.capacity_bytes(a_s, b_s)


class ControlChannel:
    """Latency-only channel for small control messages.

    Used for client→server traffic: explicit requests (baselines),
    predictor state summaries, and receive-rate reports.  These are a
    few dozen bytes; their serialization time on any realistic uplink is
    negligible next to propagation delay, so only the latter is modelled.
    Messages are delivered in order.
    """

    def __init__(self, sim: Clock, latency_s: float = 0.0) -> None:
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        self.sim = sim
        self.latency_s = latency_s
        self.messages_sent = 0
        self._last_delivery = 0.0

    def send(self, deliver: Deliver, payload: Any = None) -> float:
        """Deliver ``payload`` after the channel latency (FIFO order)."""
        self.messages_sent += 1
        arrival = max(self.sim.now + self.latency_s, self._last_delivery)
        self._last_delivery = arrival
        self.sim.schedule_at(arrival, deliver, payload)
        return arrival

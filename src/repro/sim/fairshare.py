"""Weighted fair sharing of one downlink across many senders.

A fleet of Khameleon sessions serves many users over one egress pipe.
Each session's sender assumes it owns its link: it keeps the link
"backlogged but bounded" and measures its own receive rate.  Handing
every sender the same :class:`~repro.sim.link.Link` would break both —
the physical FIFO serializes whoever calls ``send`` first, so one
aggressive sender can park megabytes ahead of everyone else and starve
them for seconds.

:class:`SharedDownlink` fixes this with per-sender queues drained onto
the physical link one payload at a time by a weighted fair arbiter
(self-clocked fair queueing at payload granularity, the classic
packet-level approximation of GPS):

* each :class:`FairSharePort` tags arriving payloads with a virtual
  finish time ``max(V, last_tag) + size / weight``;
* whenever the physical link's serializer is free, the arbiter
  dispatches the backlogged payload with the smallest tag and advances
  the virtual clock ``V`` to it.

Over any interval where a set of ports stays backlogged, each receives
capacity proportional to its weight, regardless of how deep the other
queues are.  A port exposes the same ``send`` / ``queue_delay`` surface
as :class:`~repro.sim.link.Link`, so a :class:`~repro.core.sender.Sender`
works unmodified — its pacing loop now sees *its own* backlog at *its
fair share* of the rate, which is what bounds per-session queueing.

Ports support mid-run retirement (:meth:`FairSharePort.close`) for
session churn: a departing session's queued-but-unsent payloads are
dropped, its weight stops counting toward the backlogged total, and the
arbiter continues scheduling the survivors — a retired port must never
stall the virtual clock or strand capacity.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from repro.clock import Clock
from .link import Link

__all__ = ["SharedDownlink", "FairSharePort"]

Deliver = Callable[[Any], None]


class _QueuedPayload:
    __slots__ = ("nbytes", "deliver", "payload", "finish_tag")

    def __init__(self, nbytes: int, deliver: Deliver, payload: Any, finish_tag: float):
        self.nbytes = nbytes
        self.deliver = deliver
        self.payload = payload
        self.finish_tag = finish_tag


class FairSharePort:
    """One sender's view of a :class:`SharedDownlink`.

    Implements the :class:`~repro.sim.link.Link` surface the sender
    uses (``send`` and ``queue_delay``); fairness bookkeeping lives in
    the arbiter.
    """

    def __init__(self, shared: "SharedDownlink", weight: float, label: str) -> None:
        if weight <= 0:
            raise ValueError("port weight must be positive")
        self.shared = shared
        self.weight = weight
        self.label = label
        self._queue: deque[_QueuedPayload] = deque()
        self._queued_bytes = 0
        self._last_tag = 0.0
        self.closed = False
        self.bytes_accepted = 0
        self.bytes_delivered = 0
        self.bytes_dropped = 0
        self.payloads_delivered = 0

    # -- Link surface --------------------------------------------------

    def send(self, nbytes: int, deliver: Deliver, payload: Any = None) -> float:
        """Enqueue ``nbytes`` for fair dispatch; returns an arrival *estimate*.

        Unlike a raw link, the true arrival time depends on competing
        ports' future sends, so the return value is the current
        ``queue_delay``-based estimate (senders ignore it).
        """
        if self.closed:
            raise ValueError(f"port {self.label!r} is retired")
        if nbytes < 0:
            raise ValueError("payload size must be non-negative")
        estimate = self.shared.sim.now + self.queue_delay()
        self.bytes_accepted += nbytes
        self.shared._enqueue(self, nbytes, deliver, payload)
        return estimate + self.shared.link.propagation_delay_s

    def queue_delay(self) -> float:
        """Seconds a byte sent *now* would wait before serialization.

        The port's backlog drains at its fair share of the link rate
        (weight over the backlogged ports' total weight), behind
        whatever is already occupying the physical serializer.  This is
        what the sender's pacing loop compares against ``max_backlog_s``,
        so it must reflect the *per-session* fair rate — not the raw
        link rate — or every sender would over-queue by the same factor
        the link is oversubscribed.
        """
        physical = self.shared.link.queue_delay()
        if self._queued_bytes == 0:
            return physical
        rate = self.shared.rate_hint()
        if rate is None or rate <= 0.0:
            return physical
        share = rate * self.weight / self.shared._backlogged_weight(include=self)
        return physical + self._queued_bytes / share

    def close(self) -> int:
        """Retire this port: drop its backlog and stop competing.

        Called when the owning session departs.  Payloads already handed
        to the physical serializer still deliver (they are on the wire);
        everything still queued here is dropped so it cannot occupy
        capacity a surviving session should get.  Returns the number of
        bytes dropped.  Idempotent.
        """
        if self.closed:
            return 0
        self.closed = True
        dropped = self._queued_bytes
        self._queue.clear()
        self._queued_bytes = 0
        self.bytes_dropped += dropped
        self.shared._retire(self)
        return dropped

    # -- introspection -------------------------------------------------

    @property
    def backlog_bytes(self) -> int:
        """Bytes enqueued at this port, not yet on the physical link."""
        return self._queued_bytes

    def _on_delivered(self, nbytes: int) -> None:
        self.bytes_delivered += nbytes
        self.payloads_delivered += 1


class SharedDownlink:
    """Weighted fair arbiter multiplexing ports onto one physical link.

    Parameters
    ----------
    sim:
        The shared simulator clock.
    link:
        The physical downlink (fixed-rate or trace-driven).  The arbiter
        keeps at most one payload in its serializer at a time, so the
        physical FIFO never reorders the fair schedule.
    """

    def __init__(self, sim: Clock, link: Link) -> None:
        self.sim = sim
        self.link = link
        self.ports: list[FairSharePort] = []
        self._vtime = 0.0
        self._wire_wait = None  # pending dispatch event, if any
        self._observed_rate: Optional[float] = None
        self.payloads_dispatched = 0
        self.ports_opened = 0
        self.ports_retired = 0
        self.bytes_dropped = 0

    def port(self, weight: float = 1.0, label: Optional[str] = None) -> FairSharePort:
        """Create a new session port with the given fair-share weight."""
        port = FairSharePort(self, weight, label or f"port{self.ports_opened}")
        self.ports.append(port)
        self.ports_opened += 1
        return port

    def _retire(self, port: FairSharePort) -> None:
        """Remove a closed port from arbitration (its backlog is gone)."""
        if port in self.ports:
            self.ports.remove(port)
        self.ports_retired += 1
        self.bytes_dropped += port.bytes_dropped

    def rate_hint(self) -> Optional[float]:
        """Physical serialization rate in bytes/s, best known estimate.

        Fixed-rate links expose it exactly; trace-driven links are
        estimated from observed per-payload serialization times.
        """
        exact = getattr(self.link, "bytes_per_second", None)
        if exact is not None:
            return float(exact)
        return self._observed_rate

    # -- arbiter internals ---------------------------------------------

    def _backlogged_weight(self, include: Optional[FairSharePort] = None) -> float:
        total = sum(p.weight for p in self.ports if p._queued_bytes > 0)
        if include is not None and include._queued_bytes == 0:
            total += include.weight
        return total if total > 0 else (include.weight if include else 1.0)

    def _enqueue(
        self, port: FairSharePort, nbytes: int, deliver: Deliver, payload: Any
    ) -> None:
        tag = max(self._vtime, port._last_tag) + nbytes / port.weight
        port._last_tag = tag
        port._queue.append(_QueuedPayload(nbytes, deliver, payload, tag))
        port._queued_bytes += nbytes
        self._dispatch()

    def _dispatch(self) -> None:
        """Put the smallest-tag head payload on the wire, if it is free."""
        if self._wire_wait is not None:
            return
        candidates = [p for p in self.ports if p._queue]
        if not candidates:
            return
        now = self.sim.now
        if self.link.busy_until > now + 1e-12:
            # Serializer occupied: wake up exactly when it frees.
            self._wire_wait = self.sim.schedule_at(
                self.link.busy_until, self._on_wire_free
            )
            return
        port = min(candidates, key=lambda p: p._queue[0].finish_tag)
        item = port._queue.popleft()
        port._queued_bytes -= item.nbytes
        self._vtime = max(self._vtime, item.finish_tag)
        self.link.send(item.nbytes, self._deliver, (port, item))
        self.payloads_dispatched += 1
        if item.nbytes > 0:
            elapsed = self.link.busy_until - now
            if elapsed > 0:
                observed = item.nbytes / elapsed
                self._observed_rate = (
                    observed
                    if self._observed_rate is None
                    else 0.8 * self._observed_rate + 0.2 * observed
                )
        self._dispatch()  # arms the wire-free wakeup for the next payload

    def _on_wire_free(self) -> None:
        self._wire_wait = None
        self._dispatch()

    def _deliver(self, handoff: tuple[FairSharePort, _QueuedPayload]) -> None:
        port, item = handoff
        port._on_delivered(item.nbytes)
        item.deliver(item.payload)

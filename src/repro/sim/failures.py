"""Failure injection for robustness testing.

The paper's evaluation uses well-behaved links and backends; a
production deployment sees outages, latency spikes, and failed
fetches.  These wrappers inject such faults into the existing
substrate without touching it, so the test suite can assert that
Khameleon *degrades* (lower utility, later upcalls) instead of
deadlocking or crashing:

* :class:`OutageLink` — wraps any link; during configured outage
  windows the link's rate drops to (near) zero, modelling the zero-
  delivery periods of real cellular traces at arbitrary severity.
* :class:`FlakyBackend` — wraps any backend; a deterministic fraction
  of fetches fail and complete only after retrying, modelling
  transient query errors with client-transparent retry.
* :class:`ErraticBackend` — wraps any backend; a deterministic
  fraction of fetches raise :class:`BackendFetchError` (for the retry
  layer to absorb) or suffer a latency spike before being accepted.

All injection decisions are drawn from crc32 hashes of a seed and a
per-fetch counter — deterministic across processes and across the
``Simulator`` / ``WallClock`` drivers, unlike Python's per-process
salted ``hash``.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:
    from repro.backends.base import Backend, OnComplete

from repro.backends.base import BackendFetchError, BackendWrapper
from repro.sim.link import Link

__all__ = ["OutageLink", "FlakyBackend", "ErraticBackend"]


class OutageLink(Link):
    """A link whose rate collapses during outage windows.

    ``outages`` is a sequence of ``(start_s, end_s)`` windows.  A
    payload whose serialization would start inside a window is stalled
    to the window's end first — the FIFO queue behind it backs up, and
    queueing delay spikes exactly as on a real dead link.
    """

    def __init__(
        self,
        inner: Link,
        outages: Sequence[tuple[float, float]],
    ) -> None:
        super().__init__(inner.sim, inner.propagation_delay_s)
        for start, end in outages:
            if end <= start:
                raise ValueError(f"empty outage window ({start}, {end})")
        self.inner = inner
        self.outages = tuple(sorted(outages))

    def _stall_until(self, time_s: float) -> float:
        for start, end in self.outages:
            if start <= time_s < end:
                return end
        return time_s

    def _transmit_finish(self, start_s: float, nbytes: int) -> float:
        start_s = self._stall_until(start_s)
        finish = self.inner._transmit_finish(start_s, nbytes)
        # A transfer spanning into an outage resumes after it.
        for begin, end in self.outages:
            if start_s < begin < finish:
                finish += end - begin
        return finish


class FlakyBackend(BackendWrapper):
    """Backend wrapper injecting deterministic fetch failures.

    Every ``failure_period``-th fetch "fails": its completion is
    delayed by ``retry_delay_s`` (one transparent retry), and the
    failure is counted.  The wrapped backend's response cache and
    in-flight dedup still apply, so correctness properties (each
    response computed once, callbacks always fire) are preserved —
    that invariant is what the tests pin down.
    """

    def __init__(
        self,
        inner: "Backend",
        failure_period: int = 5,
        retry_delay_s: float = 0.2,
    ) -> None:
        if failure_period < 1:
            raise ValueError("failure period must be >= 1")
        if retry_delay_s < 0:
            raise ValueError("retry delay must be non-negative")
        super().__init__(inner)
        self.failure_period = failure_period
        self.retry_delay_s = retry_delay_s
        self.failures_injected = 0
        self._fetch_count = 0

    def fetch(self, request: int, on_complete: "OnComplete") -> None:
        self._fetch_count += 1
        if self._fetch_count % self.failure_period == 0 and not self.inner.is_cached(
            request
        ):
            self.failures_injected += 1
            self.sim.schedule(
                self.retry_delay_s, self.inner.fetch, request, on_complete
            )
            return
        self.inner.fetch(request, on_complete)


class ErraticBackend(BackendWrapper):
    """Backend wrapper injecting hard errors and latency spikes.

    Unlike :class:`FlakyBackend` (which transparently retries for the
    caller), an injected error here *raises* :class:`BackendFetchError`
    from ``fetch`` — the caller is expected to sit behind a
    :class:`~repro.backends.retry.RetryingBackend` that absorbs it.
    Cached and in-flight requests never fail: the inner backend would
    answer them without new work, so injecting a failure there would
    model a fault the real system cannot have.

    Draws are deterministic functions of ``(seed, fetch_count)`` via
    crc32, so a given seed yields the same fault schedule in every
    process and under both clock drivers.
    """

    def __init__(
        self,
        inner: "Backend | BackendWrapper",
        error_rate: float = 0.0,
        spike_rate: float = 0.0,
        spike_s: float = 1.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= error_rate <= 1.0:
            raise ValueError("error_rate must be in [0, 1]")
        if not 0.0 <= spike_rate <= 1.0:
            raise ValueError("spike_rate must be in [0, 1]")
        if spike_s < 0:
            raise ValueError("spike_s must be non-negative")
        super().__init__(inner)
        self.error_rate = error_rate
        self.spike_rate = spike_rate
        self.spike_s = spike_s
        self.seed = seed
        self.errors_injected = 0
        self.spikes_injected = 0
        self._fetch_count = 0

    def _draw(self, label: str, count: int) -> float:
        digest = zlib.crc32(f"{self.seed}:{label}:{count}".encode()) & 0xFFFFFFFF
        return digest / 2**32

    def fetch(self, request: int, on_complete: "OnComplete") -> None:
        self._fetch_count += 1
        count = self._fetch_count
        if not self.inner.is_materialized(request):
            if self.error_rate > 0.0 and self._draw("err", count) < self.error_rate:
                self.errors_injected += 1
                raise BackendFetchError(request, f"injected error #{self.errors_injected}")
            if self.spike_rate > 0.0 and self._draw("spike", count) < self.spike_rate:
                self.spikes_injected += 1
                self.sim.schedule(self.spike_s, self.inner.fetch, request, on_complete)
                return
        self.inner.fetch(request, on_complete)

"""Failure injection for robustness testing.

The paper's evaluation uses well-behaved links and backends; a
production deployment sees outages, latency spikes, and failed
fetches.  These wrappers inject such faults into the existing
substrate without touching it, so the test suite can assert that
Khameleon *degrades* (lower utility, later upcalls) instead of
deadlocking or crashing:

* :class:`OutageLink` — wraps any link; during configured outage
  windows the link's rate drops to (near) zero, modelling the zero-
  delivery periods of real cellular traces at arbitrary severity.
* :class:`FlakyBackend` — wraps any backend; a deterministic fraction
  of fetches fail and complete only after retrying, modelling
  transient query errors with client-transparent retry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

if TYPE_CHECKING:
    from repro.backends.base import Backend, OnComplete

from repro.sim.engine import Simulator
from repro.sim.link import Link

__all__ = ["OutageLink", "FlakyBackend"]


class OutageLink(Link):
    """A link whose rate collapses during outage windows.

    ``outages`` is a sequence of ``(start_s, end_s)`` windows.  A
    payload whose serialization would start inside a window is stalled
    to the window's end first — the FIFO queue behind it backs up, and
    queueing delay spikes exactly as on a real dead link.
    """

    def __init__(
        self,
        inner: Link,
        outages: Sequence[tuple[float, float]],
    ) -> None:
        super().__init__(inner.sim, inner.propagation_delay_s)
        for start, end in outages:
            if end <= start:
                raise ValueError(f"empty outage window ({start}, {end})")
        self.inner = inner
        self.outages = tuple(sorted(outages))

    def _stall_until(self, time_s: float) -> float:
        for start, end in self.outages:
            if start <= time_s < end:
                return end
        return time_s

    def _transmit_finish(self, start_s: float, nbytes: int) -> float:
        start_s = self._stall_until(start_s)
        finish = self.inner._transmit_finish(start_s, nbytes)
        # A transfer spanning into an outage resumes after it.
        for begin, end in self.outages:
            if start_s < begin < finish:
                finish += end - begin
        return finish


class FlakyBackend:
    """Backend wrapper injecting deterministic fetch failures.

    Every ``failure_period``-th fetch "fails": its completion is
    delayed by ``retry_delay_s`` (one transparent retry), and the
    failure is counted.  The wrapped backend's response cache and
    in-flight dedup still apply, so correctness properties (each
    response computed once, callbacks always fire) are preserved —
    that invariant is what the tests pin down.
    """

    def __init__(
        self,
        inner: "Backend",
        failure_period: int = 5,
        retry_delay_s: float = 0.2,
    ) -> None:
        if failure_period < 1:
            raise ValueError("failure period must be >= 1")
        if retry_delay_s < 0:
            raise ValueError("retry delay must be non-negative")
        self.inner = inner
        self.sim: Simulator = inner.sim
        self.failure_period = failure_period
        self.retry_delay_s = retry_delay_s
        self.failures_injected = 0
        self._fetch_count = 0

    # -- Backend protocol pass-through ----------------------------------

    @property
    def stats(self):
        return self.inner.stats

    @property
    def active_requests(self) -> int:
        return self.inner.active_requests

    @property
    def scalable_concurrency(self) -> Optional[int]:
        return self.inner.scalable_concurrency

    def is_cached(self, request: int) -> bool:
        return self.inner.is_cached(request)

    def cached(self, request: int):
        return self.inner.cached(request)

    def evict(self, request: int) -> None:
        self.inner.evict(request)

    def fetch(self, request: int, on_complete: "OnComplete") -> None:
        self._fetch_count += 1
        if self._fetch_count % self.failure_period == 0 and not self.inner.is_cached(
            request
        ):
            self.failures_injected += 1
            self.sim.schedule(
                self.retry_delay_s, self.inner.fetch, request, on_complete
            )
            return
        self.inner.fetch(request, on_complete)

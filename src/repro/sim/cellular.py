"""Synthetic LTE cellular traces (Verizon / AT&T analogues).

Fig. 13 replays recorded Verizon and AT&T LTE downlink traces through
Mahimahi.  The recordings themselves are not redistributable and we
have no network access, so this module *generates* traces with the
published first-order characteristics of those links:

* throughput varies on ~100 ms–1 s timescales,
* Verizon LTE averages roughly 9–10 Mbps with moderate variance,
* AT&T LTE averages roughly 5–6 Mbps with heavier variance and brief
  near-outages (which is why the paper sees a larger Khameleon win on
  AT&T: baselines congest badly when the rate dips).

The generator is a Markov-modulated rate process: a small set of rate
states with geometric dwell times, sampled per millisecond into the
Mahimahi opportunity format (:class:`~repro.sim.traces.MahimahiTrace`).
Everything downstream (link, scheduler, estimator) exercises the exact
code path a recorded trace would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .traces import MTU_BYTES, MahimahiTrace

__all__ = ["CellularProfile", "CellularTraceGenerator", "VERIZON_LTE", "ATT_LTE"]

MBPS = 1e6 / 8  # bytes per second per Mbps


@dataclass(frozen=True)
class CellularProfile:
    """Parameters of a Markov-modulated LTE-like rate process.

    ``rates_mbps`` are the chain's states; ``stationary`` their long-run
    weights; ``mean_dwell_ms`` the expected time spent in a state before
    re-sampling.  ``transition`` optionally overrides the default
    (sample-from-stationary) state switching with an explicit row-
    stochastic matrix.
    """

    name: str
    rates_mbps: tuple[float, ...]
    stationary: tuple[float, ...]
    mean_dwell_ms: float = 400.0
    transition: Optional[tuple[tuple[float, ...], ...]] = None

    def __post_init__(self) -> None:
        if len(self.rates_mbps) != len(self.stationary):
            raise ValueError("rates and stationary weights must align")
        if abs(sum(self.stationary) - 1.0) > 1e-9:
            raise ValueError("stationary weights must sum to 1")
        if self.mean_dwell_ms <= 0:
            raise ValueError("mean dwell must be positive")

    @property
    def mean_rate_mbps(self) -> float:
        return float(
            np.dot(np.asarray(self.rates_mbps), np.asarray(self.stationary))
        )


#: Verizon-LTE-like profile: ~9.6 Mbps mean, moderate variance, rare dips.
VERIZON_LTE = CellularProfile(
    name="Verizon-LTE",
    rates_mbps=(2.0, 6.0, 10.0, 14.0, 18.0),
    stationary=(0.06, 0.20, 0.38, 0.26, 0.10),
    mean_dwell_ms=400.0,
)

#: AT&T-LTE-like profile: ~5.6 Mbps mean, heavy variance, brief outages.
ATT_LTE = CellularProfile(
    name="ATT-LTE",
    rates_mbps=(0.1, 1.0, 4.0, 8.0, 14.0),
    stationary=(0.08, 0.22, 0.33, 0.25, 0.12),
    mean_dwell_ms=300.0,
)


class CellularTraceGenerator:
    """Samples Mahimahi traces from a :class:`CellularProfile`.

    Deterministic for a given ``(profile, seed, duration)``, so
    experiments are reproducible.
    """

    def __init__(self, profile: CellularProfile, seed: int = 0) -> None:
        self.profile = profile
        self.seed = seed

    def rate_timeline(self, duration_ms: int) -> np.ndarray:
        """Per-millisecond rate (bytes/s) over ``duration_ms``."""
        rng = np.random.default_rng(self.seed)
        profile = self.profile
        rates = np.asarray(profile.rates_mbps) * MBPS
        weights = np.asarray(profile.stationary)
        timeline = np.empty(duration_ms, dtype=np.float64)
        t = 0
        state = int(rng.choice(len(rates), p=weights))
        while t < duration_ms:
            dwell = max(1, int(rng.geometric(1.0 / profile.mean_dwell_ms)))
            end = min(duration_ms, t + dwell)
            timeline[t:end] = rates[state]
            t = end
            state = self._next_state(rng, state, weights)
        return timeline

    def _next_state(self, rng: np.random.Generator, state: int, weights: np.ndarray) -> int:
        transition = self.profile.transition
        if transition is None:
            return int(rng.choice(len(weights), p=weights))
        return int(rng.choice(len(weights), p=np.asarray(transition[state])))

    def generate(self, duration_ms: int = 60_000) -> MahimahiTrace:
        """Emit a cyclic Mahimahi trace of length ``duration_ms``.

        Fractional packets accumulate across milliseconds so the trace's
        mean rate tracks the profile's even at low rates.
        """
        timeline = self.rate_timeline(duration_ms)
        per_ms_packets = timeline / 1000.0 / MTU_BYTES
        cumulative = np.cumsum(per_ms_packets)
        total = int(np.floor(cumulative[-1]))
        if total < 1:
            raise ValueError("profile rate too low to emit a single packet")
        # The k-th packet (1-indexed) fires in the first millisecond where
        # the cumulative packet budget reaches k.
        stamps = np.searchsorted(cumulative, np.arange(1, total + 1), side="left")
        return MahimahiTrace(tuple(int(s) + 1 for s in stamps), period_ms=duration_ms)

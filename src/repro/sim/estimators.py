"""Alternative bandwidth estimators (§5.4 ablation).

The paper uses the harmonic mean of the last five client receive-rate
reports, citing robustness to outliers in backlogged settings.  This
module adds the two obvious alternatives so the choice is measurable
(``benchmarks/test_ext_estimators.py``):

* :class:`EWMAEstimator` — exponentially weighted moving average, the
  classic TCP-style smoother; reacts faster, overshoots on spikes.
* :class:`SlidingMaxEstimator` — max over a sliding window, BBR-style;
  aggressive, best when the link is stable and reports under-measure.

All share the :class:`~repro.sim.bandwidth.HarmonicMeanEstimator`
interface (``report`` / ``estimate`` / optional cap), so they drop
into :class:`~repro.core.session.KhameleonSession` unchanged.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

__all__ = ["EWMAEstimator", "SlidingMaxEstimator"]


class EWMAEstimator:
    """Exponentially weighted moving average of receive-rate reports."""

    def __init__(
        self,
        initial_bytes_per_s: float,
        alpha: float = 0.3,
        cap_bytes_per_s: Optional[float] = None,
    ) -> None:
        if initial_bytes_per_s <= 0:
            raise ValueError("initial estimate must be positive")
        if not 0 < alpha <= 1:
            raise ValueError("alpha must lie in (0, 1]")
        if cap_bytes_per_s is not None and cap_bytes_per_s <= 0:
            raise ValueError("cap must be positive")
        self._estimate = initial_bytes_per_s
        self.alpha = alpha
        self.cap_bytes_per_s = cap_bytes_per_s
        self._reports = 0

    def report(self, bytes_per_s: float) -> None:
        if bytes_per_s <= 0:
            return  # idle intervals carry no rate information
        self._estimate += self.alpha * (bytes_per_s - self._estimate)
        self._reports += 1

    @property
    def estimate(self) -> float:
        if self.cap_bytes_per_s is not None:
            return min(self._estimate, self.cap_bytes_per_s)
        return self._estimate

    @property
    def report_count(self) -> int:
        return self._reports


class SlidingMaxEstimator:
    """Maximum receive rate over the last ``window`` reports."""

    def __init__(
        self,
        initial_bytes_per_s: float,
        window: int = 5,
        cap_bytes_per_s: Optional[float] = None,
    ) -> None:
        if initial_bytes_per_s <= 0:
            raise ValueError("initial estimate must be positive")
        if window < 1:
            raise ValueError("window must be >= 1")
        if cap_bytes_per_s is not None and cap_bytes_per_s <= 0:
            raise ValueError("cap must be positive")
        self._initial = initial_bytes_per_s
        self._window: deque[float] = deque(maxlen=window)
        self.cap_bytes_per_s = cap_bytes_per_s
        self._reports = 0

    def report(self, bytes_per_s: float) -> None:
        if bytes_per_s <= 0:
            return
        self._window.append(bytes_per_s)
        self._reports += 1

    @property
    def estimate(self) -> float:
        value = max(self._window) if self._window else self._initial
        if self.cap_bytes_per_s is not None:
            return min(value, self.cap_bytes_per_s)
        return value

    @property
    def report_count(self) -> int:
        return self._reports

"""Mahimahi-style packet-delivery traces.

The paper's cellular experiments (Fig. 13) replay Verizon and AT&T LTE
traces through the Mahimahi link emulator [57].  Mahimahi's trace format
is a text file with one integer millisecond timestamp per line; each
line is an *opportunity* to deliver one MTU-sized packet (1500 bytes) at
that instant.  The trace repeats cyclically for links longer than its
duration.

:class:`MahimahiTrace` implements that format exactly, plus the two
queries a link model needs:

* ``transmit_finish(start, nbytes)`` — the time at which the last byte
  of an ``nbytes`` transfer beginning at ``start`` clears the link, and
* ``capacity(a, b)`` — total bytes the link can deliver in ``[a, b)``.

We cannot ship the original recorded traces (no network access), so
:mod:`repro.sim.cellular` generates statistically similar LTE traces in
this same format; see DESIGN.md §2 for the substitution rationale.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = ["MahimahiTrace", "MTU_BYTES"]

MTU_BYTES = 1500
"""Bytes delivered per trace opportunity (Mahimahi's fixed packet size)."""


@dataclass(frozen=True)
class MahimahiTrace:
    """A cyclic packet-delivery-opportunity schedule.

    Parameters
    ----------
    opportunities_ms:
        Sorted, non-negative integer millisecond timestamps.  Repeated
        timestamps mean multiple packets may be delivered in the same
        millisecond (this is how Mahimahi encodes high rates).
    period_ms:
        Cycle length.  Defaults to the last timestamp, matching
        Mahimahi's convention that the trace wraps after its final entry.
    """

    opportunities_ms: tuple[int, ...]
    period_ms: int = field(default=0)

    def __post_init__(self) -> None:
        opp = self.opportunities_ms
        if not opp:
            raise ValueError("trace must contain at least one opportunity")
        if any(b < a for a, b in zip(opp, opp[1:])):
            raise ValueError("opportunities must be sorted")
        if opp[0] < 0:
            raise ValueError("opportunities must be non-negative")
        period = self.period_ms or max(opp[-1], 1)
        if period < opp[-1]:
            raise ValueError("period_ms must cover the last opportunity")
        object.__setattr__(self, "period_ms", period)

    # -- constructors ------------------------------------------------

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "MahimahiTrace":
        """Parse the on-disk Mahimahi format (one int per line)."""
        stamps = tuple(int(line.strip()) for line in lines if line.strip())
        return cls(stamps)

    @classmethod
    def constant_rate(cls, bytes_per_second: float, period_ms: int = 1000) -> "MahimahiTrace":
        """Build a trace approximating a constant-rate link.

        Opportunities are spread uniformly over ``period_ms``; the
        resulting rate is within one packet per period of the request.
        """
        if bytes_per_second <= 0:
            raise ValueError("bytes_per_second must be positive")
        n_packets = max(1, round(bytes_per_second * period_ms / 1000.0 / MTU_BYTES))
        stamps = tuple(
            int(round((k + 1) * period_ms / n_packets)) for k in range(n_packets)
        )
        return cls(stamps, period_ms=period_ms)

    # -- queries -----------------------------------------------------

    @property
    def mean_rate_bytes_per_s(self) -> float:
        """Long-run average delivery rate of the cyclic trace."""
        return len(self.opportunities_ms) * MTU_BYTES * 1000.0 / self.period_ms

    def _opportunities_before(self, t_ms: float) -> int:
        """Number of opportunities at timestamps <= t_ms since time 0."""
        if t_ms < 0:
            return 0
        # Opportunities live at integer milliseconds, but callers convert
        # seconds -> ms and back (1.001 s * 1000 = 1000.999...).  Quantize
        # to 10 ns so an opportunity consumed at exactly t is not reused.
        t_ms = round(t_ms, 5)
        per_cycle = len(self.opportunities_ms)
        full_cycles, within = divmod(t_ms, self.period_ms)
        return int(full_cycles) * per_cycle + bisect.bisect_right(
            self.opportunities_ms, within
        )

    def _opportunity_time(self, k: int) -> float:
        """Millisecond timestamp of the k-th opportunity (1-indexed)."""
        per_cycle = len(self.opportunities_ms)
        cycle, idx = divmod(k - 1, per_cycle)
        return cycle * self.period_ms + self.opportunities_ms[idx]

    def transmit_finish(self, start_s: float, nbytes: int) -> float:
        """Finish time (seconds) for ``nbytes`` starting at ``start_s``.

        Consumes the next ``ceil(nbytes / MTU)`` opportunities strictly
        after ``start_s``.  Consecutive transfers serialize naturally
        when the caller feeds each transfer's finish time as the next
        one's start time.
        """
        if nbytes <= 0:
            return start_s
        packets = -(-nbytes // MTU_BYTES)  # ceil division
        used = self._opportunities_before(start_s * 1000.0)
        finish_ms = self._opportunity_time(used + packets)
        return finish_ms / 1000.0

    def capacity_bytes(self, a_s: float, b_s: float) -> int:
        """Total bytes deliverable in the half-open interval ``[a_s, b_s)``."""
        if b_s <= a_s:
            return 0
        return (
            self._opportunities_before(b_s * 1000.0)
            - self._opportunities_before(a_s * 1000.0)
        ) * MTU_BYTES

    def to_lines(self, cycles: int = 1) -> list[str]:
        """Serialize back to the Mahimahi text format."""
        lines = []
        for c in range(cycles):
            base = c * self.period_ms
            lines.extend(str(base + t) for t in self.opportunities_ms)
        return lines

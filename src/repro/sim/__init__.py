"""Discrete-event simulation substrate.

Replaces the paper's netem/Mahimahi testbed with a deterministic
virtual-time simulator: an event engine (:mod:`.engine`), FIFO rate-
limited links (:mod:`.link`), Mahimahi-format traces (:mod:`.traces`),
LTE-like trace generation (:mod:`.cellular`), and the harmonic-mean
bandwidth estimator of §5.4 (:mod:`.bandwidth`).
"""

from .bandwidth import HarmonicMeanEstimator, ReceiveRateMonitor
from .estimators import EWMAEstimator, SlidingMaxEstimator
from .failures import ErraticBackend, FlakyBackend, OutageLink
from .cellular import ATT_LTE, VERIZON_LTE, CellularProfile, CellularTraceGenerator
from .engine import EventHandle, SimulationError, Simulator
from .fairshare import FairSharePort, SharedDownlink
from .link import ControlChannel, FixedRateLink, Link, TraceDrivenLink
from .traces import MTU_BYTES, MahimahiTrace

__all__ = [
    "Simulator",
    "EventHandle",
    "SimulationError",
    "Link",
    "FixedRateLink",
    "TraceDrivenLink",
    "ControlChannel",
    "SharedDownlink",
    "FairSharePort",
    "MahimahiTrace",
    "MTU_BYTES",
    "CellularProfile",
    "CellularTraceGenerator",
    "VERIZON_LTE",
    "ATT_LTE",
    "HarmonicMeanEstimator",
    "ReceiveRateMonitor",
    "EWMAEstimator",
    "SlidingMaxEstimator",
    "OutageLink",
    "FlakyBackend",
    "ErraticBackend",
]

"""Kalman-filter mouse predictor (§4, [77]).

The paper's custom predictor for static layouts: a *naive Kalman
filter* tracks the mouse with a constant-velocity model on the client;
the shipped state is, per horizon Δ ∈ {50, 150, 250, 500 ms}, the
predicted position centroid plus a 2×2 position covariance — six
floats per horizon.  The server decodes each Gaussian into a request
distribution through the layout's bounding boxes; the longest horizon
is treated as uniform (the paper: "the 500 ms values follow a uniform
distribution"), because half a second of mouse inertia predicts very
little.

The filter is *anytime*: prediction to an arbitrary future time is a
closed-form extrapolation that doesn't mutate filter state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence, Union

import numpy as np

from repro.core.distribution import RequestDistribution

from .base import ClientPredictor, MouseEvent, Predictor, ServerPredictor, DEFAULT_DELTAS_S
from .layout import ChartLayout, GridLayout

__all__ = [
    "ConstantVelocityKalman",
    "KalmanClientPredictor",
    "KalmanServerPredictor",
    "KalmanState",
    "make_kalman_predictor",
    "predict_gaussians",
]

Layout = Union[GridLayout, ChartLayout]


def predict_gaussians(
    xs: np.ndarray, Ps: np.ndarray, dts: np.ndarray, qs: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Stacked constant-velocity extrapolation (pure).

    ``xs`` is ``(N, 4)`` state vectors ``[x, y, vx, vy]``, ``Ps`` the
    matching ``(N, 4, 4)`` covariances, ``dts`` non-negative horizons
    and ``qs`` per-row white-acceleration intensities.  Returns
    ``(means, covs)`` of shapes ``(N, 4)`` / ``(N, 4, 4)``.

    The transition ``F(dt)`` only mixes position with velocity, so
    ``F x`` and ``F P F^T + Q(dt)`` are written in closed form with
    elementwise numpy ops.  Elementwise kernels compute each output
    independently of the batch shape, so a row of an ``N``-row call is
    **bit-identical** to the same row passed alone — the property that
    lets the fleet's one-pass predictor tick replace per-session
    :meth:`ConstantVelocityKalman.predict_at` calls without perturbing
    a single schedule.
    """
    dts = np.asarray(dts, dtype=float)
    dcol = dts[:, None]
    means = np.array(xs, dtype=float, copy=True)
    means[:, 0] += dts * xs[:, 2]
    means[:, 1] += dts * xs[:, 3]
    # A = F P: row 0 += dt * row 2, row 1 += dt * row 3.
    A = np.array(Ps, dtype=float, copy=True)
    A[:, 0, :] += dcol * Ps[:, 2, :]
    A[:, 1, :] += dcol * Ps[:, 3, :]
    # C = A F^T: col 0 += dt * col 2, col 1 += dt * col 3.
    covs = A.copy()
    covs[:, :, 0] += dcol * A[:, :, 2]
    covs[:, :, 1] += dcol * A[:, :, 3]
    # Discretized white-acceleration noise (zero where dt == 0, so the
    # "skip Q at dt = 0" special case needs no branch).
    q2 = np.asarray(qs, dtype=float) ** 2
    d4 = dts**4 / 4.0 * q2
    d3 = dts**3 / 2.0 * q2
    d2 = dts**2 * q2
    for axis in (0, 1):
        covs[:, axis, axis] += d4
        covs[:, axis, axis + 2] += d3
        covs[:, axis + 2, axis] += d3
        covs[:, axis + 2, axis + 2] += d2
    return means, covs


@dataclass(frozen=True)
class KalmanState:
    """Wire state: per-horizon predicted centroid and position stddevs.

    ``means[j]`` is the (x, y) centroid at horizon j; ``stds[j]`` the
    per-axis standard deviations (the paper ships the full 2×2
    covariance; the layouts integrate axis-aligned boxes, so the
    diagonal is what they consume — 6 floats per horizon either way).
    ``uniform[j]`` marks horizons the client declares uninformative.
    """

    means: tuple[tuple[float, float], ...]
    stds: tuple[tuple[float, float], ...]
    uniform: tuple[bool, ...]

    @property
    def size_bytes(self) -> int:
        # 6 floats per horizon, 4 bytes each (f32 on the wire).
        return len(self.means) * 6 * 4


class ConstantVelocityKalman:
    """2-D constant-velocity Kalman filter over mouse samples.

    State vector ``[x, y, vx, vy]``; observations are positions.
    ``process_noise`` is the white-acceleration intensity (px/s²),
    ``measurement_noise`` the per-axis observation stddev (px).
    """

    def __init__(
        self,
        process_noise: float = 800.0,
        measurement_noise: float = 2.0,
        initial_position_var: float = 1e4,
        initial_velocity_var: float = 1e6,
    ) -> None:
        self.q = process_noise
        self.r = measurement_noise
        self._x: Optional[np.ndarray] = None
        self._P = np.diag(
            [initial_position_var, initial_position_var, initial_velocity_var, initial_velocity_var]
        ).astype(float)
        self._init_P = self._P.copy()
        self._last_t: Optional[float] = None
        self._H = np.zeros((2, 4))
        self._H[0, 0] = self._H[1, 1] = 1.0
        self._R = np.eye(2) * measurement_noise**2

    @property
    def initialized(self) -> bool:
        return self._x is not None

    @staticmethod
    def _F(dt: float) -> np.ndarray:
        F = np.eye(4)
        F[0, 2] = F[1, 3] = dt
        return F

    def _Q(self, dt: float) -> np.ndarray:
        # Discretized white-acceleration model (per axis):
        # [[dt^4/4, dt^3/2], [dt^3/2, dt^2]] * q^2
        q2 = self.q**2
        d4, d3, d2 = dt**4 / 4.0, dt**3 / 2.0, dt**2
        Q = np.zeros((4, 4))
        for axis in (0, 1):
            Q[axis, axis] = d4 * q2
            Q[axis, axis + 2] = Q[axis + 2, axis] = d3 * q2
            Q[axis + 2, axis + 2] = d2 * q2
        return Q

    def observe(self, time_s: float, x: float, y: float) -> None:
        """Fold one position sample into the filter."""
        z = np.array([x, y], dtype=float)
        if self._x is None:
            self._x = np.array([x, y, 0.0, 0.0])
            self._P = self._init_P.copy()
            self._last_t = time_s
            # First measurement collapses position uncertainty.
            self._update(z)
            return
        dt = max(0.0, time_s - self._last_t)
        if dt > 0:
            F = self._F(dt)
            self._x = F @ self._x
            self._P = F @ self._P @ F.T + self._Q(dt)
        self._last_t = time_s
        self._update(z)

    def _update(self, z: np.ndarray) -> None:
        H, R = self._H, self._R
        y = z - H @ self._x
        S = H @ self._P @ H.T + R
        K = self._P @ H.T @ np.linalg.inv(S)
        self._x = self._x + K @ y
        self._P = (np.eye(4) - K @ H) @ self._P
        # Symmetrize to keep the covariance numerically PSD.
        self._P = 0.5 * (self._P + self._P.T)

    def predict_at(self, time_s: float) -> tuple[np.ndarray, np.ndarray]:
        """Predicted (mean, covariance) at absolute ``time_s`` (pure).

        Delegates to :func:`predict_gaussians` with a batch of one, so
        a per-filter call and the fleet's stacked pass produce the same
        floats bit-for-bit.
        """
        if self._x is None:
            raise RuntimeError("filter has no observations yet")
        dt = max(0.0, time_s - self._last_t)
        means, covs = predict_gaussians(
            self._x[None, :], self._P[None, :, :], np.array([dt]), np.array([self.q])
        )
        return means[0], covs[0]


class KalmanClientPredictor(ClientPredictor):
    """Client half: runs the filter, emits :class:`KalmanState`.

    ``uniform_after_s`` marks horizons at or beyond that offset as
    uniform (paper default: the 500 ms horizon).
    """

    def __init__(
        self,
        deltas_s: Sequence[float] = DEFAULT_DELTAS_S,
        uniform_after_s: float = 0.5,
        filter_factory=ConstantVelocityKalman,
    ) -> None:
        self.deltas_s = tuple(deltas_s)
        self.uniform_after_s = uniform_after_s
        self.filter = filter_factory()

    def observe_event(self, time_s: float, event: Any) -> None:
        if isinstance(event, MouseEvent):
            self.filter.observe(time_s, event.x, event.y)

    def state(self, time_s: float) -> Optional[KalmanState]:
        """Per-horizon Gaussians; None before any mouse sample."""
        if not self.filter.initialized:
            return None
        means, stds, uniform = [], [], []
        for delta in self.deltas_s:
            mean, cov = self.filter.predict_at(time_s + delta)
            means.append((float(mean[0]), float(mean[1])))
            stds.append(
                (float(np.sqrt(max(cov[0, 0], 0.0))), float(np.sqrt(max(cov[1, 1], 0.0))))
            )
            uniform.append(delta >= self.uniform_after_s)
        return KalmanState(tuple(means), tuple(stds), tuple(uniform))

    def state_size_bytes(self, state: Any) -> int:
        return state.size_bytes if isinstance(state, KalmanState) else 1

    @staticmethod
    def batch_states(
        clients: Sequence["KalmanClientPredictor"], time_s: float
    ) -> list[Optional[KalmanState]]:
        """:meth:`state` for many predictors in one stacked pass.

        All clients' ``(x, P)`` pairs are stacked into ``(N*k, 4)`` /
        ``(N*k, 4, 4)`` arrays (one row per client x horizon) and
        extrapolated with a single :func:`predict_gaussians` call —
        the fleet tick's replacement for N separate per-horizon
        ``predict_at`` loops.  Results are **bit-identical** to calling
        each client's :meth:`state` (same elementwise kernels, same
        float conversions).  Clients with a custom (non
        :class:`ConstantVelocityKalman`) filter fall back to their own
        :meth:`state`; uninitialized filters yield ``None``.
        """
        out: list[Optional[KalmanState]] = [None] * len(clients)
        rows: list[tuple[int, "KalmanClientPredictor"]] = []
        for i, client in enumerate(clients):
            f = client.filter
            # Exact type check: a subclass may override the dynamics
            # (filter_factory is a public extension point), and the
            # stacked kernel would silently bypass that override.
            if type(f) is not ConstantVelocityKalman:
                out[i] = client.state(time_s)
            elif f.initialized:
                rows.append((i, client))
        if not rows:
            return out
        ks = [len(c.deltas_s) for _i, c in rows]
        xs = np.concatenate(
            [np.broadcast_to(c.filter._x, (k, 4)) for (_i, c), k in zip(rows, ks)]
        )
        Ps = np.concatenate(
            [np.broadcast_to(c.filter._P, (k, 4, 4)) for (_i, c), k in zip(rows, ks)]
        )
        dts = np.concatenate(
            [
                np.array(
                    [max(0.0, time_s + d - c.filter._last_t) for d in c.deltas_s]
                )
                for _i, c in rows
            ]
        )
        qs = np.concatenate(
            [np.full(k, c.filter.q) for (_i, c), k in zip(rows, ks)]
        )
        means_all, covs_all = predict_gaussians(xs, Ps, dts, qs)
        start = 0
        for (i, client), k in zip(rows, ks):
            means, stds, uniform = [], [], []
            for j, delta in enumerate(client.deltas_s):
                mean = means_all[start + j]
                cov = covs_all[start + j]
                means.append((float(mean[0]), float(mean[1])))
                stds.append(
                    (
                        float(np.sqrt(max(cov[0, 0], 0.0))),
                        float(np.sqrt(max(cov[1, 1], 0.0))),
                    )
                )
                uniform.append(delta >= client.uniform_after_s)
            out[i] = KalmanState(tuple(means), tuple(stds), tuple(uniform))
            start += k
        return out


class KalmanServerPredictor(ServerPredictor):
    """Server half: Gaussian state → request distribution via the layout."""

    def __init__(self, layout: Layout, truncate_sigmas: float = 3.0) -> None:
        self.layout = layout
        self.truncate_sigmas = truncate_sigmas

    def decode(
        self, state: Optional[KalmanState], deltas_s: Sequence[float]
    ) -> RequestDistribution:
        if state is None:
            return RequestDistribution.uniform(self.layout.num_requests, deltas_s)
        if isinstance(self.layout, GridLayout):
            return self.layout.gaussian_distribution(
                state.means,
                state.stds,
                deltas_s,
                truncate_sigmas=self.truncate_sigmas,
                uniform_rows=state.uniform,
            )
        return self.layout.gaussian_distribution(
            state.means, state.stds, deltas_s, uniform_rows=state.uniform
        )

    def decode_batch(
        self, states: Sequence[Optional[KalmanState]], deltas_s: Sequence[float]
    ) -> list[RequestDistribution]:
        """:meth:`decode` for many states in one truncated-Gaussian pass.

        Grid layouts stack every state's block-mass integration into a
        single :meth:`GridLayout.gaussian_distribution_batch` call —
        byte-identical per state to :meth:`decode`, which is what lets
        the fleet service swap per-session decodes for this without
        changing any schedule.  ``None`` states decode to uniform, and
        chart layouts (a handful of widgets) just loop.
        """
        out: list[Optional[RequestDistribution]] = [None] * len(states)
        if isinstance(self.layout, GridLayout):
            live = [(i, s) for i, s in enumerate(states) if s is not None]
            if live:
                dists = self.layout.gaussian_distribution_batch(
                    [(s.means, s.stds, s.uniform) for _i, s in live],
                    deltas_s,
                    truncate_sigmas=self.truncate_sigmas,
                )
                for (i, _s), dist in zip(live, dists):
                    out[i] = dist
            for i, s in enumerate(states):
                if s is None:
                    out[i] = RequestDistribution.uniform(
                        self.layout.num_requests, deltas_s
                    )
            return out  # type: ignore[return-value]
        return [self.decode(s, deltas_s) for s in states]


def make_kalman_predictor(
    layout: Layout,
    deltas_s: Sequence[float] = DEFAULT_DELTAS_S,
    process_noise: float = 800.0,
    measurement_noise: float = 2.0,
) -> Predictor:
    """The paper's experiment predictor: Kalman client + layout decoder."""
    client = KalmanClientPredictor(
        deltas_s=deltas_s,
        filter_factory=lambda: ConstantVelocityKalman(
            process_noise=process_noise, measurement_noise=measurement_noise
        ),
    )
    return Predictor(
        name="kalman",
        client=client,
        server=KalmanServerPredictor(layout),
        deltas_s=tuple(deltas_s),
    )

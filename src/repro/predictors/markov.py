"""Markov-chain request predictor (§4, [33, 10, 19]).

Button- and click-based interfaces benefit from Markov models over the
request sequence: the next request depends on the current one.  The
paper sketches two deployments of such a model under its decomposition
API, both supported here:

* **server-resident** (the default): the model lives in the server
  component; the client ships each issued request as its state
  (``s_t = e_t``).
* **client-resident** via :meth:`MarkovModel.top_k_distribution`: the
  model lives on the client, which ships only the top-k most likely
  next requests; the server assumes all others have probability ≈ 0.

The model itself is a first-order chain with add-one (Laplace)
smoothing, learned online from the observed request stream.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Optional, Sequence

import numpy as np

from repro.core.distribution import RequestDistribution

from .base import DEFAULT_DELTAS_S, ClientPredictor, Predictor, ServerPredictor

__all__ = ["MarkovModel", "make_markov_predictor", "MarkovServerPredictor"]


class MarkovModel:
    """Online first-order Markov chain over request ids."""

    def __init__(self, n: int, smoothing: float = 1.0) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        if smoothing < 0:
            raise ValueError("smoothing must be non-negative")
        self.n = n
        self.smoothing = smoothing
        self._counts: dict[int, dict[int, int]] = defaultdict(lambda: defaultdict(int))
        self._last: Optional[int] = None

    def observe(self, request: int) -> None:
        """Record one transition from the previous request."""
        if not 0 <= request < self.n:
            raise ValueError(f"request {request} outside [0, {self.n})")
        if self._last is not None:
            self._counts[self._last][request] += 1
        self._last = request

    @property
    def last_request(self) -> Optional[int]:
        return self._last

    def row_counts(self, request: int) -> dict[int, int]:
        """Raw successor counts for ``request`` (empty if never seen)."""
        return dict(self._counts.get(request, {}))

    def transition_probs(self, request: int) -> tuple[np.ndarray, np.ndarray, float]:
        """``(ids, probs, residual)`` for the row of ``request``.

        Observed successors get explicit probabilities; the smoothing
        mass for never-seen successors is returned as residual.
        """
        row = self._counts.get(request, {})
        ids = np.array(sorted(row), dtype=np.int64)
        counts = np.array([row[i] for i in ids], dtype=float)
        total = counts.sum() + self.smoothing * self.n
        if total == 0:
            return np.empty(0, dtype=np.int64), np.empty(0), 1.0
        probs = (counts + self.smoothing) / total
        residual = self.smoothing * (self.n - len(ids)) / total
        return ids, probs, float(residual)

    def top_k_distribution(self, request: int, k: int) -> list[tuple[int, float]]:
        """Top-k likely successors (client-resident deployment)."""
        ids, probs, _residual = self.transition_probs(request)
        order = np.argsort(-probs, kind="stable")[:k]
        return [(int(ids[i]), float(probs[i])) for i in order]


class MarkovClientPredictor(ClientPredictor):
    """Ships the latest request id; the chain lives server-side."""

    def __init__(self) -> None:
        self._last: Optional[int] = None

    def observe_request(self, time_s: float, request: int) -> None:
        self._last = request

    def state(self, time_s: float) -> Optional[int]:
        return self._last

    def state_size_bytes(self, state: Any) -> int:
        return 8


class MarkovServerPredictor(ServerPredictor):
    """Learns the chain from shipped requests; decodes its current row.

    The same row is used at every horizon: a first-order chain predicts
    "the next request", not a time-indexed future, and DVE think times
    are shorter than the horizon spacing anyway.
    """

    def __init__(self, model: MarkovModel) -> None:
        self.model = model
        self._last_decoded: Optional[int] = None

    def decode(self, state: Optional[int], deltas_s: Sequence[float]) -> RequestDistribution:
        n = self.model.n
        if state is None:
            return RequestDistribution.uniform(n, deltas_s)
        request = int(state)
        # Learning happens here: the shipped state *is* the event.
        if request != self._last_decoded or self.model.last_request != request:
            self.model.observe(request)
        self._last_decoded = request
        ids, probs, residual = self.model.transition_probs(request)
        if len(ids) == 0:
            return RequestDistribution.uniform(n, deltas_s)
        k = len(deltas_s)
        return RequestDistribution(
            n=n,
            deltas_s=np.asarray(deltas_s, dtype=float),
            explicit_ids=ids,
            explicit_probs=np.tile(probs, (k, 1)),
            residual=np.full(k, residual),
        )


def make_markov_predictor(
    n: int,
    smoothing: float = 1.0,
    deltas_s: Sequence[float] = DEFAULT_DELTAS_S,
    model: Optional[MarkovModel] = None,
) -> Predictor:
    """Server-resident first-order Markov predictor."""
    model = model or MarkovModel(n, smoothing=smoothing)
    return Predictor(
        name="markov",
        client=MarkovClientPredictor(),
        server=MarkovServerPredictor(model),
        deltas_s=tuple(deltas_s),
    )

"""Markov-chain request predictor (§4, [33, 10, 19]).

Button- and click-based interfaces benefit from Markov models over the
request sequence: the next request depends on the current one.  The
paper sketches two deployments of such a model under its decomposition
API, both supported here:

* **server-resident** (the default): the model lives in the server
  component; the client ships each issued request as its state
  (``s_t = e_t``).
* **client-resident** via :meth:`MarkovModel.top_k_distribution`: the
  model lives on the client, which ships only the top-k most likely
  next requests; the server assumes all others have probability ≈ 0.

The model itself is a first-order chain with add-one (Laplace)
smoothing, learned online from the observed request stream.

**Fleet batching.**  Chain rows are append-only, so a row's total
count doubles as its version: :meth:`MarkovModel.transition_probs`
caches each decoded row keyed by that version, and
:meth:`MarkovServerPredictor.decode_batch` decodes a whole delivery
group of ``(predictor, state)`` pairs in one pass — the learning side
effects run in group order (freezing any row an upcoming observation
would mutate while an earlier member still reads it), rows are
gathered once per version, and members that resolve to the same row
version share one :class:`RequestDistribution` object.  The emitted
distributions are byte-identical to per-member :meth:`decode` calls;
:class:`~repro.fleet.schedule_service.FleetScheduleService` relies on
exactly that contract.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Optional, Sequence

import numpy as np

from repro.core.distribution import RequestDistribution

from .base import DEFAULT_DELTAS_S, ClientPredictor, Predictor, ServerPredictor

__all__ = ["MarkovModel", "make_markov_predictor", "MarkovServerPredictor"]


class MarkovModel:
    """Online first-order Markov chain over request ids."""

    def __init__(self, n: int, smoothing: float = 1.0) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        if smoothing < 0:
            raise ValueError("smoothing must be non-negative")
        self.n = n
        self.smoothing = smoothing
        self._counts: dict[int, dict[int, int]] = defaultdict(lambda: defaultdict(int))
        # O(1) per-row observation totals.  Counts only grow, so a
        # row's mass uniquely versions its content — the key the row
        # cache below (and the fleet's stacked decode) invalidates on.
        self._row_mass: dict[int, int] = defaultdict(int)
        self._raw_cache: dict[int, tuple[int, np.ndarray, np.ndarray]] = {}
        self._row_cache: dict[int, tuple[int, np.ndarray, np.ndarray, float]] = {}
        self._last: Optional[int] = None

    def observe(self, request: int) -> None:
        """Record one transition from the previous request."""
        if not 0 <= request < self.n:
            raise ValueError(f"request {request} outside [0, {self.n})")
        if self._last is not None:
            self._counts[self._last][request] += 1
            self._row_mass[self._last] += 1
        self._last = request

    @property
    def last_request(self) -> Optional[int]:
        return self._last

    def row_counts(self, request: int) -> dict[int, int]:
        """Raw successor counts for ``request`` (empty if never seen)."""
        return dict(self._counts.get(request, {}))

    def row_mass(self, request: int) -> int:
        """Total observed transitions out of ``request`` (its version)."""
        return self._row_mass.get(request, 0)

    def row_arrays(self, request: int) -> tuple[np.ndarray, np.ndarray]:
        """``(ids, counts)``: the raw sorted successor arrays of a row.

        Version-cached like :meth:`transition_probs`; the shared-prior
        blend consumes these raw counts.  The cached arrays are shared
        — callers must not mutate them.
        """
        version = self._row_mass.get(request, 0)
        cached = self._raw_cache.get(request)
        if cached is not None and cached[0] == version:
            return cached[1], cached[2]
        row = self._counts.get(request, {})
        ids = np.array(sorted(row), dtype=np.int64)
        counts = np.array([row[i] for i in ids], dtype=float)
        self._raw_cache[request] = (version, ids, counts)
        return ids, counts

    def transition_probs(self, request: int) -> tuple[np.ndarray, np.ndarray, float]:
        """``(ids, probs, residual)`` for the row of ``request``.

        Observed successors get explicit probabilities; the smoothing
        mass for never-seen successors is returned as residual.  The
        decoded row is cached keyed by the row's version (its count
        total), so repeated decodes of an unchanged row are O(1); the
        cached arrays are shared — callers must not mutate them.
        """
        version = self._row_mass.get(request, 0)
        cached = self._row_cache.get(request)
        if cached is not None and cached[0] == version:
            return cached[1], cached[2], cached[3]
        ids, counts = self.row_arrays(request)
        total = counts.sum() + self.smoothing * self.n
        if total == 0:
            return np.empty(0, dtype=np.int64), np.empty(0), 1.0
        probs = (counts + self.smoothing) / total
        residual = self.smoothing * (self.n - len(ids)) / total
        self._row_cache[request] = (version, ids, probs, float(residual))
        return ids, probs, float(residual)

    def top_k_distribution(self, request: int, k: int) -> list[tuple[int, float]]:
        """Top-k likely successors (client-resident deployment)."""
        ids, probs, _residual = self.transition_probs(request)
        order = np.argsort(-probs, kind="stable")[:k]
        return [(int(ids[i]), float(probs[i])) for i in order]


class MarkovClientPredictor(ClientPredictor):
    """Ships the latest request id; the chain lives server-side."""

    def __init__(self) -> None:
        self._last: Optional[int] = None

    def observe_request(self, time_s: float, request: int) -> None:
        self._last = request

    def state(self, time_s: float) -> Optional[int]:
        return self._last

    def state_size_bytes(self, state: Any) -> int:
        return 8


class MarkovServerPredictor(ServerPredictor):
    """Learns the chain from shipped requests; decodes its current row.

    The same row is used at every horizon: a first-order chain predicts
    "the next request", not a time-indexed future, and DVE think times
    are shorter than the horizon spacing anyway.
    """

    def __init__(self, model: MarkovModel) -> None:
        self.model = model
        self._last_decoded: Optional[int] = None

    def _should_learn(self, request: int) -> bool:
        """The shipped state *is* the event — observe it exactly once."""
        return request != self._last_decoded or self.model.last_request != request

    def _row_distribution(
        self,
        ids: np.ndarray,
        probs: np.ndarray,
        residual: float,
        deltas_s: Sequence[float],
    ) -> RequestDistribution:
        n = self.model.n
        if len(ids) == 0:
            return RequestDistribution.uniform(n, deltas_s)
        k = len(deltas_s)
        return RequestDistribution(
            n=n,
            deltas_s=np.asarray(deltas_s, dtype=float),
            explicit_ids=ids,
            explicit_probs=np.tile(probs, (k, 1)),
            residual=np.full(k, residual),
        )

    def decode(self, state: Optional[int], deltas_s: Sequence[float]) -> RequestDistribution:
        n = self.model.n
        if state is None:
            return RequestDistribution.uniform(n, deltas_s)
        request = int(state)
        # Learning happens here: the shipped state *is* the event.
        if self._should_learn(request):
            self.model.observe(request)
        self._last_decoded = request
        return self._row_distribution(*self.model.transition_probs(request), deltas_s)

    @classmethod
    def decode_batch(
        cls, entries: Sequence[tuple["MarkovServerPredictor", Any, Sequence[float]]]
    ) -> list[RequestDistribution]:
        """Decode a delivery group of ``(predictor, state, deltas_s)``.

        Byte-identical to calling each predictor's :meth:`decode` in
        sequence: the learning side effects run in entry order, and any
        row an upcoming observation would mutate while an earlier entry
        still reads it live is *frozen* (decoded pre-mutation) first.
        Rows are then gathered once per ``(model, request, version)``
        and entries resolving to the same version — with the same
        horizons — share one distribution object.
        """
        results: list[Optional[RequestDistribution]] = [None] * len(entries)
        reads: list[tuple[int, "MarkovServerPredictor", int]] = []
        # (id(model), request) -> read tuples not yet resolved.
        live: dict[tuple[int, int], list[tuple[int, "MarkovServerPredictor", int]]] = {}
        frozen: dict[int, tuple[np.ndarray, np.ndarray, float]] = {}
        for i, (sp, state, deltas_s) in enumerate(entries):
            if state is None:
                results[i] = RequestDistribution.uniform(sp.model.n, deltas_s)
                continue
            request = int(state)
            if sp._should_learn(request):
                prev = sp.model.last_request
                if prev is not None:
                    for read in live.pop((id(sp.model), prev), ()):
                        if read[0] not in frozen:
                            frozen[read[0]] = read[1].model.transition_probs(read[2])
                sp.model.observe(request)
            sp._last_decoded = request
            reads.append((i, sp, request))
            live.setdefault((id(sp.model), request), []).append((i, sp, request))
        dists: dict[tuple, RequestDistribution] = {}
        for i, sp, request in reads:
            row = frozen.get(i)
            if row is None:
                row = sp.model.transition_probs(request)
            ids, probs, residual = row
            key = (id(ids), id(probs), residual, tuple(entries[i][2]), sp.model.n)
            dist = dists.get(key)
            if dist is None:
                dist = sp._row_distribution(ids, probs, residual, entries[i][2])
                dists[key] = dist
            results[i] = dist
        return results  # type: ignore[return-value]


def make_markov_predictor(
    n: int,
    smoothing: float = 1.0,
    deltas_s: Sequence[float] = DEFAULT_DELTAS_S,
    model: Optional[MarkovModel] = None,
) -> Predictor:
    """Server-resident first-order Markov predictor."""
    model = model or MarkovModel(n, smoothing=smoothing)
    return Predictor(
        name="markov",
        client=MarkovClientPredictor(),
        server=MarkovServerPredictor(model),
        deltas_s=tuple(deltas_s),
    )

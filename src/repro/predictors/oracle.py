"""Oracle predictor (§6.1).

The paper's upper bound: "an Oracle version of Khameleon where the
predictor knows the exact position of the mouse after Δ milliseconds
(by examining the trace)".  The client ships the current time; the
server consults the trace to find which request will be active at each
horizon and emits a point mass on it.

The oracle is deliberately built on a generic ``future_request``
callable so it works for both applications: the image gallery passes a
mouse-trace lookup, Falcon a chart-hover lookup.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.core.distribution import RequestDistribution

from .base import DEFAULT_DELTAS_S, ClientPredictor, Predictor, ServerPredictor

__all__ = ["make_oracle_predictor", "OracleClientPredictor", "OracleServerPredictor"]


class OracleClientPredictor(ClientPredictor):
    """State = the current client time (the trace is on the server)."""

    def state(self, time_s: float) -> float:
        return time_s

    def state_size_bytes(self, state: Any) -> int:
        return 8


class OracleServerPredictor(ServerPredictor):
    """Looks the future up in the trace.

    ``future_request(t)`` returns the request the user will be issuing
    (or hovering) at absolute time ``t``, or None when the trace has no
    answer (off-widget, past the end) — those horizons fall back to
    uniform.
    """

    def __init__(self, n: int, future_request: Callable[[float], Optional[int]]) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = n
        self.future_request = future_request

    def decode(self, state: float, deltas_s: Sequence[float]) -> RequestDistribution:
        ids: list[int] = []
        rows: list[dict[int, float]] = []
        uniform_rows: list[bool] = []
        for delta in deltas_s:
            request = self.future_request(state + delta)
            if request is None:
                rows.append({})
                uniform_rows.append(True)
            else:
                rows.append({int(request): 1.0})
                uniform_rows.append(False)
                if request not in ids:
                    ids.append(int(request))
        if not ids:
            return RequestDistribution.uniform(self.n, deltas_s)
        ids_arr = np.array(sorted(ids), dtype=np.int64)
        pos = {int(r): i for i, r in enumerate(ids_arr)}
        k = len(deltas_s)
        probs = np.zeros((k, len(ids_arr)))
        residual = np.zeros(k)
        for j in range(k):
            if uniform_rows[j]:
                # Truly uniform: explicit ids get 1/n like everyone else.
                probs[j] = 1.0 / self.n
                residual[j] = (self.n - len(ids_arr)) / self.n
            else:
                for request, p in rows[j].items():
                    probs[j, pos[request]] = p
        return RequestDistribution(
            n=self.n,
            deltas_s=np.asarray(deltas_s, dtype=float),
            explicit_ids=ids_arr,
            explicit_probs=probs,
            residual=residual,
        )


def make_oracle_predictor(
    n: int,
    future_request: Callable[[float], Optional[int]],
    deltas_s: Sequence[float] = DEFAULT_DELTAS_S,
) -> Predictor:
    """Perfect-foresight predictor reading the interaction trace."""
    return Predictor(
        name="oracle",
        client=OracleClientPredictor(),
        server=OracleServerPredictor(n, future_request),
        deltas_s=tuple(deltas_s),
    )

"""Predictors behind the §4 client/server decomposition API.

Construction helpers return ready-to-register :class:`~repro.predictors.base.Predictor`
pairs:

- :func:`~repro.predictors.kalman.make_kalman_predictor` — the paper's
  experiment predictor (constant-velocity Kalman filter + layout).
- :func:`~repro.predictors.oracle.make_oracle_predictor` — perfect
  foresight from the trace (upper bound).
- :func:`~repro.predictors.simple.make_point_predictor` /
  :func:`~repro.predictors.simple.make_uniform_predictor` /
  :func:`~repro.predictors.simple.make_hover_predictor` — degenerate
  policies (§3.4, Fig. 12, Falcon's OnHover).
- :func:`~repro.predictors.markov.make_markov_predictor` — first-order
  request chain for click-based interfaces.
- :func:`~repro.predictors.shared.make_shared_markov_predictor` — the
  fleet deployment of the chain: a per-session model blended with a
  crowd-warmed :class:`~repro.predictors.shared.SharedTransitionPrior`
  so cold arrivals start from the fleet's aggregate structure.
"""

from .base import DEFAULT_DELTAS_S, ClientPredictor, MouseEvent, Predictor, ServerPredictor
from .kalman import (
    ConstantVelocityKalman,
    KalmanClientPredictor,
    KalmanServerPredictor,
    KalmanState,
    make_kalman_predictor,
)
from .layout import BoundingBox, ChartLayout, GridLayout
from .markov import MarkovModel, make_markov_predictor
from .oracle import make_oracle_predictor
from .shared import SharedTransitionPrior, make_shared_markov_predictor
from .perfect import make_acc_predictor
from .simple import (
    HoverClientPredictor,
    make_hover_predictor,
    make_point_predictor,
    make_uniform_predictor,
)

__all__ = [
    "DEFAULT_DELTAS_S",
    "ClientPredictor",
    "ServerPredictor",
    "Predictor",
    "MouseEvent",
    "BoundingBox",
    "GridLayout",
    "ChartLayout",
    "ConstantVelocityKalman",
    "KalmanClientPredictor",
    "KalmanServerPredictor",
    "KalmanState",
    "make_kalman_predictor",
    "make_oracle_predictor",
    "make_acc_predictor",
    "make_point_predictor",
    "make_uniform_predictor",
    "make_hover_predictor",
    "HoverClientPredictor",
    "MarkovModel",
    "make_markov_predictor",
    "SharedTransitionPrior",
    "make_shared_markov_predictor",
]

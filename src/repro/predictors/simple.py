"""Point, uniform, and hover predictors.

These are the degenerate-but-useful predictors from §3.4 and §6.4:

* :func:`make_point_predictor` — all mass on the most recent request.
  This is the "traditional request" special case: with it, the
  scheduler fetches exactly what was asked for first and spends
  leftover bandwidth hedging uniformly.
* :func:`make_uniform_predictor` — no information; every request
  equally likely (the Fig. 12 ``Uniform`` arm, and the system default
  when the application registers no predictor).
* :func:`make_hover_predictor` — Falcon's hand-written policy:
  probability 1 on the view the mouse currently hovers over (§6.4's
  ``OnHover`` arm).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Union

from repro.core.distribution import RequestDistribution

from .base import (
    DEFAULT_DELTAS_S,
    ClientPredictor,
    MouseEvent,
    Predictor,
    ServerPredictor,
)
from .layout import ChartLayout, GridLayout

__all__ = [
    "make_point_predictor",
    "make_uniform_predictor",
    "make_hover_predictor",
    "PointClientPredictor",
    "PointServerPredictor",
    "UniformClientPredictor",
    "UniformServerPredictor",
    "HoverClientPredictor",
]

Layout = Union[GridLayout, ChartLayout]


class PointClientPredictor(ClientPredictor):
    """State = the most recently issued request id (or None)."""

    def __init__(self) -> None:
        self._last_request: Optional[int] = None

    def observe_request(self, time_s: float, request: int) -> None:
        self._last_request = request

    def state(self, time_s: float) -> Optional[int]:
        return self._last_request

    def state_size_bytes(self, state: Any) -> int:
        return 8


class PointServerPredictor(ServerPredictor):
    """Point mass on the shipped request id; uniform before any request."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = n

    def decode(self, state: Optional[int], deltas_s: Sequence[float]) -> RequestDistribution:
        if state is None:
            return RequestDistribution.uniform(self.n, deltas_s)
        return RequestDistribution.point(self.n, int(state), deltas_s)


class UniformClientPredictor(ClientPredictor):
    """No state at all."""

    def state(self, time_s: float) -> None:
        return None

    def state_size_bytes(self, state: Any) -> int:
        return 1


class UniformServerPredictor(ServerPredictor):
    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = n

    def decode(self, state: Any, deltas_s: Sequence[float]) -> RequestDistribution:
        return RequestDistribution.uniform(self.n, deltas_s)


class HoverClientPredictor(ClientPredictor):
    """State = the widget currently under the mouse (Falcon OnHover)."""

    def __init__(self, layout: Layout) -> None:
        self.layout = layout
        self._hovered: Optional[int] = None

    def observe_event(self, time_s: float, event: Any) -> None:
        if isinstance(event, MouseEvent):
            request = self.layout.request_at(event.x, event.y)
            if request is not None:
                self._hovered = request

    def observe_request(self, time_s: float, request: int) -> None:
        self._hovered = request

    def state(self, time_s: float) -> Optional[int]:
        return self._hovered

    def state_size_bytes(self, state: Any) -> int:
        return 8


def make_point_predictor(n: int, deltas_s: Sequence[float] = DEFAULT_DELTAS_S) -> Predictor:
    """§3.4's generic default: each request is a point distribution."""
    return Predictor(
        name="point",
        client=PointClientPredictor(),
        server=PointServerPredictor(n),
        deltas_s=tuple(deltas_s),
    )


def make_uniform_predictor(n: int, deltas_s: Sequence[float] = DEFAULT_DELTAS_S) -> Predictor:
    """All requests equally likely (system default / Fig. 12 Uniform)."""
    return Predictor(
        name="uniform",
        client=UniformClientPredictor(),
        server=UniformServerPredictor(n),
        deltas_s=tuple(deltas_s),
    )


def make_hover_predictor(layout: Layout, deltas_s: Sequence[float] = DEFAULT_DELTAS_S) -> Predictor:
    """Falcon's OnHover policy: probability 1 on the hovered view (§6.4)."""
    return Predictor(
        name="onhover",
        client=HoverClientPredictor(layout),
        server=PointServerPredictor(layout.num_requests),
        deltas_s=tuple(deltas_s),
    )

"""ACC-style predictor for Khameleon (§6.1, Fig. 9 caption).

The ACC baselines degrade a perfect trace-reading predictor to a
chosen per-prediction accuracy and horizon.  This module packages the
same signal as a *Khameleon* predictor, so the push scheduler can be
driven by exactly the predictions the request-response baselines get —
isolating the architecture from the prediction quality.

The client ships the index of the user's most recent request; the
server looks up the next ``horizon`` trace requests and emits a
distribution that gives each of them probability ``accuracy``
(mass split over the future positions, nearer ones first), with the
remaining ``1 - accuracy`` mass spread uniformly — the same
per-prediction degradation the ACC prefetchers apply.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.core.distribution import RequestDistribution

from .base import DEFAULT_DELTAS_S, ClientPredictor, Predictor, ServerPredictor

__all__ = ["make_acc_predictor", "ACCClientPredictor", "ACCServerPredictor"]


class ACCClientPredictor(ClientPredictor):
    """State = how many requests the user has issued so far."""

    def __init__(self) -> None:
        self._position = -1

    def observe_request(self, time_s: float, request: int) -> None:
        self._position += 1

    def state(self, time_s: float) -> Optional[int]:
        return self._position if self._position >= 0 else None

    def state_size_bytes(self, state: Any) -> int:
        return 8


class ACCServerPredictor(ServerPredictor):
    """Reads the next-``horizon`` requests off the replay trace."""

    def __init__(
        self,
        n: int,
        future_requests: Sequence[int],
        accuracy: float,
        horizon: int,
    ) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        if not 0 <= accuracy <= 1:
            raise ValueError("accuracy must lie in [0, 1]")
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        self.n = n
        self.future_requests = list(future_requests)
        self.accuracy = accuracy
        self.horizon = horizon

    def decode(self, state: Optional[int], deltas_s: Sequence[float]) -> RequestDistribution:
        if state is None:
            return RequestDistribution.uniform(self.n, deltas_s)
        upcoming: list[int] = []
        for k in range(1, self.horizon + 1):
            idx = int(state) + k
            if idx >= len(self.future_requests):
                break
            request = self.future_requests[idx]
            if request not in upcoming:
                upcoming.append(request)
        if not upcoming:
            return RequestDistribution.uniform(self.n, deltas_s)
        # Nearer predictions get geometrically more of the accurate mass.
        weights = np.array([0.5**k for k in range(len(upcoming))])
        weights = self.accuracy * weights / weights.sum()
        ids = np.array(sorted(set(upcoming)), dtype=np.int64)
        pos = {int(r): i for i, r in enumerate(ids)}
        k = len(deltas_s)
        probs = np.zeros((k, len(ids)))
        for request, w in zip(upcoming, weights):
            probs[:, pos[request]] += w
        residual = np.full(k, 1.0 - self.accuracy)
        return RequestDistribution(
            n=self.n,
            deltas_s=np.asarray(deltas_s, dtype=float),
            explicit_ids=ids,
            explicit_probs=probs,
            residual=residual,
        )


def make_acc_predictor(
    n: int,
    future_requests: Sequence[int],
    accuracy: float = 1.0,
    horizon: int = 5,
    deltas_s: Sequence[float] = DEFAULT_DELTAS_S,
) -> Predictor:
    """Khameleon driven by the ACC baselines' oracle signal."""
    return Predictor(
        name=f"acc-{accuracy:g}-{horizon}",
        client=ACCClientPredictor(),
        server=ACCServerPredictor(n, future_requests, accuracy, horizon),
        deltas_s=tuple(deltas_s),
    )

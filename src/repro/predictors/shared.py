"""Fleet-wide shared transition prior (SeLeP-style crowd learning).

Khameleon's predictors are per-session: each user's model learns only
from that user's interactions, so a session that just arrived predicts
from nothing — under churn, every arrival pays the cold-start cost all
over again.  Exploratory-workload prefetchers (SeLeP, SCOUT) win
precisely by learning access structure *across* users: most users
traverse the same hot paths through the data, so the crowd's aggregate
transition structure is a strong prior for a user the system has never
seen.

:class:`SharedTransitionPrior` is that aggregate: one fleet-wide
first-order transition count table, fed by every session's observed
request stream.  :class:`SharedMarkovServerPredictor` is the per-session
decoder that blends it with the session's own observations as
pseudo-counts::

    count'(q -> r) = count_private(q -> r) + strength · P_prior(r | q)

followed by the same add-one smoothing as the private
:class:`~repro.predictors.markov.MarkovModel`.  A cold session (no
private counts) therefore starts from the crowd's distribution scaled
to ``strength`` observations; as its own history accumulates, the
private counts dominate and the predictor personalizes.  The prior is
*shared state, not shared fate*: sessions never see each other's raw
streams, only the pooled counts.

Build one prior per fleet and close over it in the fleet's
``make_predictor`` factory::

    prior = SharedTransitionPrior(n)
    fleet = KhameleonFleet(..., make_predictor=lambda i:
        make_shared_markov_predictor(n, prior))
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional, Sequence

import numpy as np

from repro.core.distribution import RequestDistribution

from .base import DEFAULT_DELTAS_S, Predictor, ServerPredictor
from .markov import MarkovClientPredictor, MarkovModel

__all__ = [
    "SharedTransitionPrior",
    "SharedMarkovServerPredictor",
    "make_shared_markov_predictor",
]


class SharedTransitionPrior:
    """Crowd-pooled first-order transition counts over request ids."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = n
        self._counts: dict[int, dict[int, int]] = defaultdict(lambda: defaultdict(int))
        self.transitions_observed = 0

    def observe(self, prev: int, nxt: int) -> None:
        """Pool one transition from any session's request stream."""
        if not 0 <= prev < self.n or not 0 <= nxt < self.n:
            raise ValueError(f"transition {prev}->{nxt} outside [0, {self.n})")
        self._counts[prev][nxt] += 1
        self.transitions_observed += 1

    def row(self, request: int) -> tuple[np.ndarray, np.ndarray]:
        """``(ids, probs)``: the crowd's successor distribution of ``request``.

        Empirical (unsmoothed) probabilities over observed successors;
        both arrays are empty when the crowd has never left ``request``.
        """
        row = self._counts.get(request)
        if not row:
            return np.empty(0, dtype=np.int64), np.empty(0)
        ids = np.array(sorted(row), dtype=np.int64)
        counts = np.array([row[i] for i in ids], dtype=float)
        return ids, counts / counts.sum()

    def row_mass(self, request: int) -> int:
        """Total observed transitions out of ``request``."""
        row = self._counts.get(request)
        return sum(row.values()) if row else 0

    def snapshot(self) -> dict:
        return {
            "transitions_observed": self.transitions_observed,
            "rows_warmed": len(self._counts),
        }


class SharedMarkovServerPredictor(ServerPredictor):
    """Per-session Markov decoder warmed by the fleet-wide prior.

    Like :class:`~repro.predictors.markov.MarkovServerPredictor`, the
    shipped state *is* the event: each decoded request id is observed
    into the session's private chain — and its transition is pooled
    into the shared prior, so this session's history warms every other
    tenant's cold rows.

    ``prior_strength`` is the pseudo-observation mass the crowd's row
    contributes: the blend behaves as if the session had already seen
    ``strength`` transitions drawn from the crowd's distribution.
    """

    def __init__(
        self,
        model: MarkovModel,
        prior: SharedTransitionPrior,
        prior_strength: float = 8.0,
    ) -> None:
        if model.n != prior.n:
            raise ValueError(
                f"model over {model.n} requests, prior over {prior.n}"
            )
        if prior_strength < 0:
            raise ValueError("prior strength must be non-negative")
        self.model = model
        self.prior = prior
        self.prior_strength = prior_strength
        self._last_decoded: Optional[int] = None

    def decode(
        self, state: Optional[int], deltas_s: Sequence[float]
    ) -> RequestDistribution:
        n = self.model.n
        if state is None:
            return RequestDistribution.uniform(n, deltas_s)
        request = int(state)
        if request != self._last_decoded or self.model.last_request != request:
            prev = self.model.last_request
            self.model.observe(request)
            if prev is not None:
                self.prior.observe(prev, request)
        self._last_decoded = request
        ids, probs, residual = self._blended_row(request)
        if len(ids) == 0:
            return RequestDistribution.uniform(n, deltas_s)
        k = len(deltas_s)
        return RequestDistribution(
            n=n,
            deltas_s=np.asarray(deltas_s, dtype=float),
            explicit_ids=ids,
            explicit_probs=np.tile(probs, (k, 1)),
            residual=np.full(k, residual),
        )

    def _blended_row(self, request: int) -> tuple[np.ndarray, np.ndarray, float]:
        """Private counts + crowd pseudo-counts, add-one smoothed."""
        private = self.model.row_counts(request)
        combined: dict[int, float] = {q: float(c) for q, c in private.items()}
        prior_ids, prior_probs = self.prior.row(request)
        for q, p in zip(prior_ids, prior_probs):
            combined[int(q)] = combined.get(int(q), 0.0) + self.prior_strength * float(p)
        smoothing = self.model.smoothing
        n = self.model.n
        if not combined:
            return np.empty(0, dtype=np.int64), np.empty(0), 1.0
        ids = np.array(sorted(combined), dtype=np.int64)
        mass = np.array([combined[int(i)] for i in ids])
        total = mass.sum() + smoothing * n
        probs = (mass + smoothing) / total
        residual = smoothing * (n - len(ids)) / total
        return ids, probs, float(residual)


def make_shared_markov_predictor(
    n: int,
    prior: SharedTransitionPrior,
    smoothing: float = 1.0,
    prior_strength: float = 8.0,
    deltas_s: Sequence[float] = DEFAULT_DELTAS_S,
) -> Predictor:
    """Server-resident Markov predictor blending a fleet-wide prior.

    Each call builds a fresh per-session private chain; every session
    built over the same ``prior`` both benefits from and contributes to
    the crowd's pooled transition structure.
    """
    return Predictor(
        name="shared-markov",
        client=MarkovClientPredictor(),
        server=SharedMarkovServerPredictor(
            MarkovModel(n, smoothing=smoothing), prior, prior_strength=prior_strength
        ),
        deltas_s=tuple(deltas_s),
    )

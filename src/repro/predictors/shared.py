"""Fleet-wide shared transition prior (SeLeP-style crowd learning).

Khameleon's predictors are per-session: each user's model learns only
from that user's interactions, so a session that just arrived predicts
from nothing — under churn, every arrival pays the cold-start cost all
over again.  Exploratory-workload prefetchers (SeLeP, SCOUT) win
precisely by learning access structure *across* users: most users
traverse the same hot paths through the data, so the crowd's aggregate
transition structure is a strong prior for a user the system has never
seen.

:class:`SharedTransitionPrior` is that aggregate: one fleet-wide
first-order transition count table, fed by every session's observed
request stream.  :class:`SharedMarkovServerPredictor` is the per-session
decoder that blends it with the session's own observations as
pseudo-counts::

    count'(q -> r) = count_private(q -> r) + strength · P_prior(r | q)

followed by the same add-one smoothing as the private
:class:`~repro.predictors.markov.MarkovModel`.  A cold session (no
private counts) therefore starts from the crowd's distribution scaled
to ``strength`` observations; as its own history accumulates, the
private counts dominate and the predictor personalizes.  The prior is
*shared state, not shared fate*: sessions never see each other's raw
streams, only the pooled counts.

Build one prior per fleet and close over it in the fleet's
``make_predictor`` factory::

    prior = SharedTransitionPrior(n)
    fleet = KhameleonFleet(..., make_predictor=lambda i:
        make_shared_markov_predictor(n, prior))

**Caching and fleet batching.**  Counts are append-only, so a row's
observation total doubles as its version.  The prior caches each
decoded crowd row keyed by that version, and the decoder caches each
*blended* row keyed by the ``(private, crowd)`` version pair —
invalidated implicitly when either side observes a transition out of
the row — so static workloads stop re-blending identical rows every
decode.  :meth:`SharedMarkovServerPredictor.decode_batch` decodes a
whole delivery group sharing one prior in a single pass: learning side
effects run in group order (freezing rows an upcoming observation
would mutate while an earlier member still reads them live), crowd
rows are gathered once per version for the whole tick, the blend is a
vectorized scatter-add instead of a Python dict loop, and cold members
(no private counts) landing on the same crowd row version share one
:class:`~repro.core.distribution.RequestDistribution` object — all
byte-identical to per-member :meth:`decode` calls.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from repro.core.distribution import RequestDistribution

from .base import DEFAULT_DELTAS_S, Predictor
from .markov import MarkovClientPredictor, MarkovModel, MarkovServerPredictor

__all__ = [
    "PriorDelta",
    "SharedTransitionPrior",
    "SharedMarkovServerPredictor",
    "make_shared_markov_predictor",
]


@dataclass
class PriorDelta:
    """Wire format for cross-shard prior sync (plain dicts: picklable).

    Carries the *absolute* local counts of every row the receiver has
    not yet seen at this mass — a state snapshot restricted to stale
    rows, not an increment log.  Absolute snapshots are what make the
    merge idempotent: applying the same delta twice is a no-op because
    the receiver compares ``row_mass`` against what it already merged
    from this origin.
    """

    #: Identity of the shard whose local counts these are.
    origin: str
    #: Request-universe size (guards against merging mismatched priors).
    n: int
    #: ``prev -> {nxt -> absolute local count}`` for each stale row.
    rows: dict[int, dict[int, int]] = field(default_factory=dict)
    #: ``prev -> absolute local row mass`` (the row's version at ``origin``).
    row_mass: dict[int, int] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return bool(self.rows)


class SharedTransitionPrior:
    """Crowd-pooled first-order transition counts over request ids."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = n
        self._counts: dict[int, dict[int, int]] = defaultdict(lambda: defaultdict(int))
        # O(1) per-row totals; append-only counts make the total a
        # version the row cache below invalidates on.
        self._row_mass: dict[int, int] = defaultdict(int)
        self._row_cache: dict[int, tuple[int, np.ndarray, np.ndarray]] = {}
        self.transitions_observed = 0
        # -- sharding state (see the CRDT section below) --------------
        # Local contributions, tracked separately once ``enable_sharding``
        # names this replica; ``None`` means unsharded (no tracking cost).
        self._origin: Optional[str] = None
        self._local: dict[int, dict[int, int]] = {}
        self._local_row_mass: dict[int, int] = {}
        # Last absolute snapshot merged per remote origin:
        # origin -> row -> {nxt: count} and origin -> row -> mass.
        # Kept even when unsharded so a fresh pooling prior (the
        # coordinator's aggregate) can merge shard deltas directly.
        self._merged_rows: dict[str, dict[int, dict[int, int]]] = {}
        self._merged_row_mass: dict[str, dict[int, int]] = {}

    def observe(self, prev: int, nxt: int) -> None:
        """Pool one transition from any session's request stream."""
        if not 0 <= prev < self.n or not 0 <= nxt < self.n:
            raise ValueError(f"transition {prev}->{nxt} outside [0, {self.n})")
        self._counts[prev][nxt] += 1
        self._row_mass[prev] += 1
        self.transitions_observed += 1
        if self._origin is not None:
            row = self._local.get(prev)
            if row is None:
                row = self._local[prev] = {}
            row[nxt] = row.get(nxt, 0) + 1
            self._local_row_mass[prev] = self._local_row_mass.get(prev, 0) + 1

    def row(self, request: int) -> tuple[np.ndarray, np.ndarray]:
        """``(ids, probs)``: the crowd's successor distribution of ``request``.

        Empirical (unsmoothed) probabilities over observed successors;
        both arrays are empty when the crowd has never left ``request``.
        Decoded rows are cached keyed by the row's version (its count
        total) — the "gathered once" half of the fleet's stacked decode
        — and the cached arrays are shared: callers must not mutate
        them.
        """
        version = self._row_mass.get(request, 0)
        cached = self._row_cache.get(request)
        if cached is not None and cached[0] == version:
            return cached[1], cached[2]
        row = self._counts.get(request)
        if not row:
            return np.empty(0, dtype=np.int64), np.empty(0)
        ids = np.array(sorted(row), dtype=np.int64)
        counts = np.array([row[i] for i in ids], dtype=float)
        probs = counts / counts.sum()
        self._row_cache[request] = (version, ids, probs)
        return ids, probs

    def row_mass(self, request: int) -> int:
        """Total observed transitions out of ``request`` (its version)."""
        return self._row_mass.get(request, 0)

    def snapshot(self) -> dict:
        return {
            "transitions_observed": self.transitions_observed,
            "rows_warmed": len(self._counts),
        }

    def coo_items(self) -> list[tuple[int, int, int]]:
        """The pooled counts as sorted ``(prev, next, count)`` triples.

        The same COO triplets :meth:`save` writes to npz, for callers
        that persist the prior inside another artifact (the serve
        frontend's JSON checkpoint).
        """
        return [
            (prev, nxt, self._counts[prev][nxt])
            for prev in sorted(self._counts)
            for nxt in sorted(self._counts[prev])
        ]

    def warm(self, prev: int, nxt: int, count: int) -> None:
        """Seed pooled counts directly, as :meth:`load` does from disk.

        Warm counts are pooled but not *local*: a later
        :meth:`enable_sharding` treats them as crowd background, exactly
        like an npz warm start.
        """
        if not 0 <= prev < self.n or not 0 <= nxt < self.n or count < 0:
            raise ValueError(f"corrupt prior entry {prev}->{nxt} x{count}")
        if count:
            self._counts[prev][nxt] += count
            self._row_mass[prev] += count
            self.transitions_observed += count

    # -- cross-shard delta sync (CRDT) --------------------------------
    #
    # A sharded fleet runs one prior replica per worker process.  Each
    # replica tracks the counts *it* observed (its local contribution)
    # separately from the pooled table, and shards exchange those local
    # contributions as :class:`PriorDelta` snapshots.  The pooled table
    # at any replica is then::
    #
    #     counts = local + Σ_origin merged_snapshot[origin]
    #
    # i.e. a map from origin to that origin's latest known local-count
    # snapshot — a G-counter of count *tables* rather than scalars.
    #
    # Why this is a CRDT (state-based, join-semilattice):
    #
    # * Local counts are append-only, so the sequence of snapshots one
    #   origin emits is totally ordered: for two snapshots A, B of the
    #   same origin, either A ≤ B or B ≤ A elementwise, and the
    #   per-row ``row_mass`` (the append-only version from PR 5)
    #   decides which is newer without comparing every cell.
    # * The merged state is the per-origin pointwise maximum of all
    #   snapshots seen.  ``max`` over a total order is the semilattice
    #   join, hence the merge is
    #   **commutative** (max(a, b) = max(b, a)),
    #   **associative** (max(max(a, b), c) = max(a, max(b, c))), and
    #   **idempotent** (max(a, a) = a) — replaying or reordering
    #   deltas cannot double-count.
    # * ``delta_since(version_vector)`` ships the rows whose local mass
    #   exceeds the receiver's recorded mass, as *absolute* counts.
    #   Because a newer snapshot of a row subsumes every older one,
    #   delta-then-merge equals full-state merge: applying any suffix
    #   of snapshots ending in the latest yields the same pooled table
    #   as applying the latest alone.
    #
    # ``merge_delta`` applies the non-negative difference between the
    # incoming snapshot and the last one merged from that origin, so
    # the pooled ``_counts`` / ``_row_mass`` / ``transitions_observed``
    # stay exact sums over origins, and the append-only row versions
    # keep invalidating the decode caches exactly as local observes do.

    def enable_sharding(self, origin: str) -> None:
        """Name this replica and start tracking its local contribution.

        Counts already pooled (e.g. a warm-start snapshot loaded via
        :meth:`load`) are *not* part of the local contribution — every
        shard warm-starts from the same file, so re-broadcasting those
        counts would duplicate them at every peer.
        """
        if self._origin is not None and self._origin != origin:
            raise ValueError(
                f"prior already sharded as {self._origin!r}, not {origin!r}"
            )
        self._origin = str(origin)

    @property
    def origin(self) -> Optional[str]:
        return self._origin

    def local_version_vector(self) -> dict[int, int]:
        """``row -> local mass``: this replica's contribution versions."""
        return dict(self._local_row_mass)

    def delta_since(self, version_vector: Optional[dict[int, int]] = None) -> PriorDelta:
        """Snapshot the local rows newer than ``version_vector``.

        ``version_vector`` is the receiver's last known ``row -> mass``
        for this origin (``None`` or ``{}`` means "send everything":
        the full-state merge).  Rows at or below the receiver's mass
        are omitted — they would be skipped on merge anyway.
        """
        if self._origin is None:
            raise ValueError("enable_sharding() first: unsharded priors have no delta")
        vv = version_vector or {}
        rows: dict[int, dict[int, int]] = {}
        mass: dict[int, int] = {}
        for prev, local_mass in self._local_row_mass.items():
            if local_mass > vv.get(prev, 0):
                rows[prev] = dict(self._local[prev])
                mass[prev] = local_mass
        return PriorDelta(origin=self._origin, n=self.n, rows=rows, row_mass=mass)

    def merge_delta(self, delta: PriorDelta) -> int:
        """Join an origin's snapshot into the pooled table.

        Returns the number of transitions actually applied (0 when the
        delta is stale or our own — replays are free).  Safe to call in
        any order, any number of times, on any replica or on a fresh
        aggregation prior.
        """
        if delta.n != self.n:
            raise ValueError(f"delta over {delta.n} requests, expected {self.n}")
        if delta.origin == self._origin:
            return 0  # our own contribution is already pooled
        seen_rows = self._merged_rows.setdefault(delta.origin, {})
        seen_mass = self._merged_row_mass.setdefault(delta.origin, {})
        applied = 0
        for prev, new_mass in delta.row_mass.items():
            old_mass = seen_mass.get(prev, 0)
            if new_mass <= old_mass:
                continue  # stale or duplicate snapshot of this row
            new_row = delta.rows[prev]
            old_row = seen_rows.get(prev, {})
            pooled = self._counts[prev]
            for nxt, count in new_row.items():
                diff = count - old_row.get(nxt, 0)
                if diff < 0:
                    raise ValueError(
                        f"non-monotone delta from {delta.origin!r}: "
                        f"{prev}->{nxt} shrank by {-diff}"
                    )
                if diff:
                    pooled[nxt] += diff
            grew = new_mass - old_mass
            self._row_mass[prev] += grew
            applied += grew
            seen_rows[prev] = dict(new_row)
            seen_mass[prev] = new_mass
        self.transitions_observed += applied
        return applied

    # -- persistence --------------------------------------------------
    #
    # A crowd prior is only worth its name if it outlives the process
    # that learned it: ``save``/``load`` round-trip the count table as
    # a compressed npz (COO triplets), so ``run_fleet`` sweeps and the
    # serve CLI (``--prior-in/--prior-out``) can warm-start from
    # yesterday's traffic.

    #: Bump on any incompatible change to the npz layout.
    FORMAT_VERSION = 1

    def save(self, path) -> None:
        """Write the pooled counts to ``path`` (npz, versioned)."""
        rows: list[int] = []
        cols: list[int] = []
        vals: list[int] = []
        for prev in sorted(self._counts):
            row = self._counts[prev]
            for nxt in sorted(row):
                rows.append(prev)
                cols.append(nxt)
                vals.append(row[nxt])
        np.savez_compressed(
            path,
            format_version=np.int64(self.FORMAT_VERSION),
            n=np.int64(self.n),
            transitions_observed=np.int64(self.transitions_observed),
            prev=np.asarray(rows, dtype=np.int64),
            next=np.asarray(cols, dtype=np.int64),
            count=np.asarray(vals, dtype=np.int64),
        )

    @classmethod
    def load(cls, path, n: Optional[int] = None) -> "SharedTransitionPrior":
        """Rebuild a prior saved by :meth:`save`.

        ``n`` (optional) asserts the expected request-universe size —
        pass the serving app's ``num_requests`` to fail fast instead of
        feeding a mismatched prior into every session's decoder.
        """
        with np.load(path) as data:
            try:
                version = int(data["format_version"])
                saved_n = int(data["n"])
                observed = int(data["transitions_observed"])
                prev = data["prev"]
                nxt = data["next"]
                count = data["count"]
            except KeyError as exc:
                raise ValueError(f"{path!s} is not a saved prior: {exc}") from exc
        if version != cls.FORMAT_VERSION:
            raise ValueError(
                f"prior format v{version} unsupported (expected v{cls.FORMAT_VERSION})"
            )
        if n is not None and saved_n != n:
            raise ValueError(f"prior over {saved_n} requests, expected {n}")
        prior = cls(saved_n)
        for p, q, c in zip(prev.tolist(), nxt.tolist(), count.tolist()):
            if not 0 <= p < saved_n or not 0 <= q < saved_n or c < 0:
                raise ValueError(f"corrupt prior entry {p}->{q} x{c}")
            if c:
                prior._counts[p][q] = c
                prior._row_mass[p] += c
        prior.transitions_observed = observed
        return prior


class SharedMarkovServerPredictor(MarkovServerPredictor):
    """Per-session Markov decoder warmed by the fleet-wide prior.

    Like the base :class:`~repro.predictors.markov.
    MarkovServerPredictor` (whose learning guard and row→distribution
    plumbing it inherits), the shipped state *is* the event: each
    decoded request id is observed into the session's private chain —
    and its transition is pooled into the shared prior, so this
    session's history warms every other tenant's cold rows.

    ``prior_strength`` is the pseudo-observation mass the crowd's row
    contributes: the blend behaves as if the session had already seen
    ``strength`` transitions drawn from the crowd's distribution.
    """

    def __init__(
        self,
        model: MarkovModel,
        prior: SharedTransitionPrior,
        prior_strength: float = 8.0,
    ) -> None:
        if model.n != prior.n:
            raise ValueError(
                f"model over {model.n} requests, prior over {prior.n}"
            )
        if prior_strength < 0:
            raise ValueError("prior strength must be non-negative")
        super().__init__(model)
        self.prior = prior
        self.prior_strength = prior_strength
        # Blended-row cache: request -> (private version, crowd version,
        # ids, probs, residual).  A hit means neither chain has observed
        # a transition out of the row since it was blended, so the
        # stored arrays are exactly what a re-blend would produce.
        self._blend_cache: dict[
            int, tuple[int, int, np.ndarray, np.ndarray, float]
        ] = {}
        self.blend_cache_hits = 0
        self.blend_cache_misses = 0

    def _learn(self, request: int) -> None:
        prev = self.model.last_request
        self.model.observe(request)
        if prev is not None:
            self.prior.observe(prev, request)

    def decode(
        self, state: Optional[int], deltas_s: Sequence[float]
    ) -> RequestDistribution:
        n = self.model.n
        if state is None:
            return RequestDistribution.uniform(n, deltas_s)
        request = int(state)
        if self._should_learn(request):
            self._learn(request)
        self._last_decoded = request
        ids, probs, residual = self._blended_row(request)
        return self._row_distribution(ids, probs, residual, deltas_s)

    def _blended_row(self, request: int) -> tuple[np.ndarray, np.ndarray, float]:
        """Private counts + crowd pseudo-counts, add-one smoothed.

        Cached keyed by the ``(private, crowd)`` row-version pair; on a
        miss, the blend is a vectorized scatter-add over the union of
        the two id sets (identical IEEE arithmetic to the historical
        per-entry dict loop: each union element is ``private +
        strength · crowd`` with zero-filled absences, summed in sorted
        id order).
        """
        priv_version = self.model.row_mass(request)
        prior_version = self.prior.row_mass(request)
        cached = self._blend_cache.get(request)
        if (
            cached is not None
            and cached[0] == priv_version
            and cached[1] == prior_version
        ):
            self.blend_cache_hits += 1
            return cached[2], cached[3], cached[4]
        self.blend_cache_misses += 1
        prior_ids, prior_probs = self.prior.row(request)
        priv_ids, priv_counts = self.model.row_arrays(request)
        if len(priv_ids) == 0 and len(prior_ids) == 0:
            return np.empty(0, dtype=np.int64), np.empty(0), 1.0
        if len(priv_ids) == 0:
            ids = prior_ids
            mass = self.prior_strength * prior_probs
        elif len(prior_ids) == 0:
            ids = priv_ids
            mass = priv_counts.copy()
        else:
            ids = np.union1d(priv_ids, prior_ids)
            mass = np.zeros(len(ids))
            mass[np.searchsorted(ids, priv_ids)] = priv_counts
            mass[np.searchsorted(ids, prior_ids)] += (
                self.prior_strength * prior_probs
            )
        smoothing = self.model.smoothing
        n = self.model.n
        total = mass.sum() + smoothing * n
        probs = (mass + smoothing) / total
        residual = float(smoothing * (n - len(ids)) / total)
        self._blend_cache[request] = (
            priv_version, prior_version, ids, probs, residual
        )
        return ids, probs, residual

    @classmethod
    def decode_batch(
        cls,
        entries: Sequence[tuple["SharedMarkovServerPredictor", Any, Sequence[float]]],
    ) -> list[RequestDistribution]:
        """Decode a delivery group sharing one prior, in one pass.

        Byte-identical to calling each member's :meth:`decode` in
        sequence.  Learning side effects run in entry order; before an
        observation mutates a crowd (or private) row an earlier member
        still reads live, that member's blend is *frozen* at the
        pre-mutation versions.  Crowd rows are gathered once per
        version via the prior's row cache, and cold members (no
        private counts for their row) that land on the same crowd row
        version — with the same strength, smoothing, universe, and
        horizons — share one distribution object.
        """
        results: list[Optional[RequestDistribution]] = [None] * len(entries)
        reads: list[tuple[int, "SharedMarkovServerPredictor", int]] = []
        live: dict[tuple[int, int], list] = {}
        frozen: dict[int, tuple[np.ndarray, np.ndarray, float]] = {}
        # Tick-local cold-blend pool: (prior id, request, crowd version,
        # strength, smoothing, n) -> blended row, shared across members.
        cold: dict[tuple, tuple[np.ndarray, np.ndarray, float]] = {}

        def blended(sp: "SharedMarkovServerPredictor", request: int):
            if sp.model.row_mass(request) == 0:
                key = (
                    id(sp.prior),
                    request,
                    sp.prior.row_mass(request),
                    sp.prior_strength,
                    sp.model.smoothing,
                    sp.model.n,
                )
                got = cold.get(key)
                if got is None:
                    got = sp._blended_row(request)
                    cold[key] = got
                return got
            return sp._blended_row(request)

        for i, (sp, state, deltas_s) in enumerate(entries):
            if state is None:
                results[i] = RequestDistribution.uniform(sp.model.n, deltas_s)
                continue
            request = int(state)
            if sp._should_learn(request):
                prev = sp.model.last_request
                if prev is not None:
                    for read in live.pop((id(sp.prior), prev), []) + live.pop(
                        (id(sp.model), prev), []
                    ):
                        if read[0] not in frozen:
                            frozen[read[0]] = blended(read[1], read[2])
                sp._learn(request)
            sp._last_decoded = request
            reads.append((i, sp, request))
            live.setdefault((id(sp.prior), request), []).append((i, sp, request))
            live.setdefault((id(sp.model), request), []).append((i, sp, request))
        dists: dict[tuple, RequestDistribution] = {}
        for i, sp, request in reads:
            row = frozen.get(i)
            if row is None:
                row = blended(sp, request)
            ids, probs, residual = row
            deltas_s = entries[i][2]
            key = (id(ids), id(probs), residual, tuple(deltas_s), sp.model.n)
            dist = dists.get(key)
            if dist is None:
                dist = sp._row_distribution(ids, probs, residual, deltas_s)
                dists[key] = dist
            results[i] = dist
        return results  # type: ignore[return-value]


def make_shared_markov_predictor(
    n: int,
    prior: SharedTransitionPrior,
    smoothing: float = 1.0,
    prior_strength: float = 8.0,
    deltas_s: Sequence[float] = DEFAULT_DELTAS_S,
) -> Predictor:
    """Server-resident Markov predictor blending a fleet-wide prior.

    Each call builds a fresh per-session private chain; every session
    built over the same ``prior`` both benefits from and contributes to
    the crowd's pooled transition structure.
    """
    return Predictor(
        name="shared-markov",
        client=MarkovClientPredictor(),
        server=SharedMarkovServerPredictor(
            MarkovModel(n, smoothing=smoothing), prior, prior_strength=prior_strength
        ),
        deltas_s=tuple(deltas_s),
    )

"""Predictor API (§4).

Khameleon decomposes a prediction model into a **client component**
and a **server component**::

    P_t(q | Δ, e_t) = P_s(q | Δ, s_t) · P_c(s_t | Δ, e_t)

The client component observes interaction events ``e_t`` (mouse moves,
issued requests) and compresses them into a compact *state* ``s_t`` —
model parameters, recent events, or probabilities directly.  The state
is shipped to the server, whose component decodes it into a
:class:`~repro.core.distribution.RequestDistribution` for the
scheduler.

Two contract requirements (§3.3):

* predictors are **anytime** — ``state()`` must be callable whenever
  the Predictor Manager decides to ship an update, and
* states must be compact — :meth:`ClientPredictor.state_size_bytes`
  reports the wire size (the Kalman predictor's state is 6 floats per
  horizon).

Khameleon mandates no particular accuracy; the framework reports
empirical accuracy and downstream metrics so developers can iterate
(§3.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.core.distribution import RequestDistribution

__all__ = [
    "MouseEvent",
    "ClientPredictor",
    "ServerPredictor",
    "Predictor",
    "DEFAULT_DELTAS_S",
]

#: The paper's prediction horizons: 50, 150, 250, 500 ms (§4).
DEFAULT_DELTAS_S: tuple[float, ...] = (0.05, 0.15, 0.25, 0.5)


@dataclass(frozen=True)
class MouseEvent:
    """A pointer sample in interface coordinates (pixels)."""

    x: float
    y: float


class ClientPredictor:
    """Client half: consumes events, produces compact anytime state."""

    def observe_event(self, time_s: float, event: Any) -> None:
        """Feed one interaction event (e.g., a :class:`MouseEvent`)."""

    def observe_request(self, time_s: float, request: int) -> None:
        """Feed one issued request (for request-sequence models)."""

    def state(self, time_s: float) -> Any:
        """Current predictor state ``s_t`` (must be cheap, anytime)."""
        raise NotImplementedError

    def state_size_bytes(self, state: Any) -> int:
        """Wire size of a state (for overhead accounting). Default: 64."""
        return 64


class ServerPredictor:
    """Server half: decodes shipped state into a request distribution."""

    def decode(
        self, state: Any, deltas_s: Sequence[float]
    ) -> RequestDistribution:
        """Turn client state into ``P(q | Δ)`` at the given horizons."""
        raise NotImplementedError


@dataclass
class Predictor:
    """A matched client/server pair plus its prediction horizons.

    This is what applications register with Khameleon.  ``name`` shows
    up in experiment reports (e.g., ``kalman``, ``oracle``,
    ``uniform``).
    """

    name: str
    client: ClientPredictor
    server: ServerPredictor
    deltas_s: tuple[float, ...] = DEFAULT_DELTAS_S

    def distribution_now(self, time_s: float) -> RequestDistribution:
        """Convenience: encode + decode in one step (used in tests)."""
        return self.server.decode(self.client.state(time_s), self.deltas_s)

"""Interface layouts: widget bounding boxes → request distributions (§4).

Both evaluation applications use *static layouts*: the image gallery is
a dense grid of thumbnails, Falcon a fixed row of charts.  Requests are
only generated when the mouse is over a widget, so a distribution over
mouse position translates directly into a distribution over requests
through the widget bounding boxes — the ``P_l(q | Δ, x, y, l)`` factor
in the paper's custom predictor.

:class:`GridLayout` handles the gallery's regular grid analytically
(per-cell Gaussian mass via axis-aligned CDF products, touching only
cells within a few standard deviations of the mean — essential with
10,000 thumbnails).  :class:`ChartLayout` handles a small number of
irregular widgets by integrating per widget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.distribution import RequestDistribution

__all__ = ["GridLayout", "ChartLayout", "BoundingBox"]

_SQRT2 = math.sqrt(2.0)


def _norm_cdf(z: np.ndarray) -> np.ndarray:
    """Standard normal CDF (vectorized, no scipy needed at this layer)."""
    return 0.5 * (1.0 + np.vectorize(math.erf)(z / _SQRT2))


def _erf_many(values: np.ndarray) -> np.ndarray:
    """``math.erf`` over a flat array.

    ``math.erf`` (not scipy's Cephes port) keeps every value
    bit-identical to the scalar :func:`_mass_1d` calls, which is what
    lets the factorized and batched decode paths promise byte-identical
    distributions.  One list-comprehension pass; the factorization
    already cut the call count from O(cells) to O(rows + cols).
    """
    return np.array([math.erf(v) for v in values.tolist()], dtype=float)


def _segment_masses(
    segments: Sequence[tuple[np.ndarray, np.ndarray, float, float]]
) -> list[np.ndarray]:
    """Per-cell 1-D Gaussian masses for many ``(lo, hi, mean, std)`` axes.

    Each segment's cell ``i`` gets the mass of ``N(mean, std)`` inside
    ``[lo[i], hi[i])`` — exactly :func:`_mass_1d` per cell (``lo``/``hi``
    are the same floats :meth:`GridLayout.bbox` produces, so the result
    is byte-identical to integrating each
    :meth:`BoundingBox.gaussian_mass`), with every boundary of every
    segment evaluated in one flattened erf pass.  This is the
    truncated-Gaussian kernel behind both the single-state and the
    fleet-batched decode.
    """
    zs = [
        (np.concatenate([lo, hi]) - mean) / std / _SQRT2
        for lo, hi, mean, std in segments
        if std > 0
    ]
    table = _erf_many(np.concatenate(zs)) if zs else np.empty(0)
    out: list[np.ndarray] = []
    k = 0
    for lo, hi, mean, std in segments:
        if std > 0:
            cells = len(lo)
            t = table[k : k + 2 * cells]
            k += 2 * cells
            out.append(0.5 * (t[cells:] - t[:cells]))
        else:
            # Degenerate: all mass at the mean (matches _mass_1d).
            out.append(((lo <= mean) & (mean < hi)).astype(float))
    return out


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned widget rectangle ``[x0, x1) x [y0, y1)`` in pixels."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 <= self.x0 or self.y1 <= self.y0:
            raise ValueError(f"degenerate bounding box: {self}")

    def contains(self, x: float, y: float) -> bool:
        return self.x0 <= x < self.x1 and self.y0 <= y < self.y1

    def gaussian_mass(
        self, mean_x: float, mean_y: float, std_x: float, std_y: float
    ) -> float:
        """Probability a diagonal Gaussian lands inside this box."""
        px = _mass_1d(self.x0, self.x1, mean_x, std_x)
        py = _mass_1d(self.y0, self.y1, mean_y, std_y)
        return float(px * py)


def _mass_1d(lo: float, hi: float, mean: float, std: float) -> float:
    if std <= 0:
        return 1.0 if lo <= mean < hi else 0.0
    zlo = (lo - mean) / std
    zhi = (hi - mean) / std
    return 0.5 * (math.erf(zhi / _SQRT2) - math.erf(zlo / _SQRT2))


class GridLayout:
    """A regular ``rows x cols`` grid of equally sized cells.

    Request id of cell ``(row, col)`` is ``row * cols + col`` — the
    same dense ids the scheduler uses.  The image application's mosaic
    of 10,000 thumbnails is a ``100 x 100`` grid.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        cell_width: float,
        cell_height: float,
        origin_x: float = 0.0,
        origin_y: float = 0.0,
    ) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("grid must have at least one row and column")
        if cell_width <= 0 or cell_height <= 0:
            raise ValueError("cell dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.cell_width = cell_width
        self.cell_height = cell_height
        self.origin_x = origin_x
        self.origin_y = origin_y

    @property
    def num_requests(self) -> int:
        return self.rows * self.cols

    @property
    def width(self) -> float:
        return self.cols * self.cell_width

    @property
    def height(self) -> float:
        return self.rows * self.cell_height

    def request_at(self, x: float, y: float) -> Optional[int]:
        """Request id of the cell containing ``(x, y)``, or None outside."""
        col = int((x - self.origin_x) // self.cell_width)
        row = int((y - self.origin_y) // self.cell_height)
        if 0 <= row < self.rows and 0 <= col < self.cols:
            return row * self.cols + col
        return None

    def bbox(self, request: int) -> BoundingBox:
        if not 0 <= request < self.num_requests:
            raise IndexError(f"request {request} outside grid")
        row, col = divmod(request, self.cols)
        x0 = self.origin_x + col * self.cell_width
        y0 = self.origin_y + row * self.cell_height
        return BoundingBox(x0, y0, x0 + self.cell_width, y0 + self.cell_height)

    def clamp(self, x: float, y: float) -> tuple[float, float]:
        """Clamp a point into the grid's extent (mouse can overshoot)."""
        x = min(max(x, self.origin_x), self.origin_x + self.width - 1e-9)
        y = min(max(y, self.origin_y), self.origin_y + self.height - 1e-9)
        return x, y

    def gaussian_distribution(
        self,
        means: Sequence[tuple[float, float]],
        stds: Sequence[tuple[float, float]],
        deltas_s: Sequence[float],
        truncate_sigmas: float = 3.0,
        uniform_rows: Sequence[bool] = (),
    ) -> RequestDistribution:
        """Gaussian position estimates (one per horizon) → distribution.

        Only cells within ``truncate_sigmas`` standard deviations of a
        mean get explicit probabilities; everything else pools into the
        residual.  Rows flagged in ``uniform_rows`` are fully uniform
        (the paper's 500 ms horizon).

        A cell's mass under a diagonal Gaussian factors into a
        per-column x-mass times a per-row y-mass, so the window costs
        O(rows + cols) erf evaluations instead of O(rows x cols) —
        byte-identical to integrating each
        :meth:`BoundingBox.gaussian_mass` (the segments carry the exact
        per-cell ``lo``/``hi`` floats :meth:`bbox` produces, and the
        x·y product is the same multiply).
        :meth:`gaussian_distribution_batch` stacks the same kernel
        across many states.
        """
        if len(means) != len(deltas_s) or len(stds) != len(deltas_s):
            raise ValueError("need one (mean, std) pair per horizon")
        windows, segments = self._row_plan(means, stds, truncate_sigmas, uniform_rows)
        masses = _segment_masses(segments)
        return self._assemble(windows, masses, deltas_s, uniform_rows)

    def gaussian_distribution_batch(
        self,
        states: Sequence[
            tuple[
                Sequence[tuple[float, float]],
                Sequence[tuple[float, float]],
                Sequence[bool],
            ]
        ],
        deltas_s: Sequence[float],
        truncate_sigmas: float = 3.0,
    ) -> list[RequestDistribution]:
        """:meth:`gaussian_distribution` for many ``(means, stds,
        uniform_rows)`` states with one flattened truncated-Gaussian
        pass over every axis boundary of every state.  Byte-identical
        per state to the single-state method (shared kernels)."""
        plans = []
        all_segments: list[tuple[np.ndarray, float, float]] = []
        for means, stds, uniform_rows in states:
            if len(means) != len(deltas_s) or len(stds) != len(deltas_s):
                raise ValueError("need one (mean, std) pair per horizon")
            windows, segments = self._row_plan(
                means, stds, truncate_sigmas, uniform_rows
            )
            plans.append((windows, len(segments), uniform_rows))
            all_segments.extend(segments)
        all_masses = _segment_masses(all_segments)
        out = []
        k = 0
        for windows, count, uniform_rows in plans:
            out.append(
                self._assemble(
                    windows, all_masses[k : k + count], deltas_s, uniform_rows
                )
            )
            k += count
        return out

    def _row_plan(
        self,
        means: Sequence[tuple[float, float]],
        stds: Sequence[tuple[float, float]],
        truncate_sigmas: float,
        uniform_rows: Sequence[bool],
    ) -> tuple[list, list[tuple[np.ndarray, np.ndarray, float, float]]]:
        """Per-horizon cell windows plus their axis-mass segments.

        ``windows[j]`` is ``(r0, r1, c0, c1)`` or ``None`` for uniform
        horizons; each non-uniform horizon contributes an x then a y
        segment (in that order) to ``segments``.
        """
        windows: list = []
        segments: list[tuple[np.ndarray, np.ndarray, float, float]] = []
        for j, ((mx, my), (sx, sy)) in enumerate(zip(means, stds)):
            if uniform_rows and uniform_rows[j]:
                windows.append(None)
                continue
            window = self._window_near(mx, my, sx, sy, truncate_sigmas)
            windows.append(window)
            r0, r1, c0, c1 = window
            # lo is bbox()'s x0/y0 expression verbatim and hi is lo +
            # cell size, so each cell's interval carries the exact
            # floats the per-cell gaussian_mass path integrates (for
            # fractional cell sizes, origin + (c+1)*w can differ from
            # (origin + c*w) + w by one ULP).
            x_lo = self.origin_x + np.arange(c0, c1 + 1) * self.cell_width
            y_lo = self.origin_y + np.arange(r0, r1 + 1) * self.cell_height
            segments.append((x_lo, x_lo + self.cell_width, mx, sx))
            segments.append((y_lo, y_lo + self.cell_height, my, sy))
        return windows, segments

    def _assemble(
        self,
        windows: list,
        masses: list[np.ndarray],
        deltas_s: Sequence[float],
        uniform_rows: Sequence[bool],
    ) -> RequestDistribution:
        """Fold per-axis masses into the sparse distribution."""
        explicit: set[int] = set()
        for window in windows:
            if window is not None:
                r0, r1, c0, c1 = window
                explicit.update(
                    r * self.cols + c
                    for r in range(r0, r1 + 1)
                    for c in range(c0, c1 + 1)
                )
        ids = np.array(sorted(explicit), dtype=np.int64)
        k = len(deltas_s)
        n = self.num_requests
        probs = np.zeros((k, len(ids)))
        residual = np.ones(k)
        seg = 0
        for j, window in enumerate(windows):
            if window is None:
                # Truly uniform: explicit ids get 1/n like everyone else.
                probs[j] = 1.0 / n
                residual[j] = (n - len(ids)) / n
                continue
            r0, r1, c0, c1 = window
            px = masses[seg]
            py = masses[seg + 1]
            seg += 2
            cell_ids = (
                np.arange(r0, r1 + 1)[:, None] * self.cols
                + np.arange(c0, c1 + 1)[None, :]
            ).ravel()
            cols = np.searchsorted(ids, cell_ids)
            probs[j, cols] = np.outer(py, px).ravel()
            row_sum = probs[j].sum()
            if row_sum > 1.0:
                probs[j] /= row_sum
                row_sum = 1.0
            residual[j] = 1.0 - row_sum
        if len(ids) == self.num_requests:
            scale = probs.sum(axis=1, keepdims=True)
            scale[scale == 0] = 1.0
            probs = probs / scale
            residual = np.zeros(k)
        return RequestDistribution(
            n=self.num_requests,
            deltas_s=np.asarray(deltas_s, dtype=float),
            explicit_ids=ids,
            explicit_probs=probs,
            residual=residual,
        )

    def _window_near(
        self, mx: float, my: float, sx: float, sy: float, sigmas: float
    ) -> tuple[int, int, int, int]:
        """Cell window ``(r0, r1, c0, c1)`` intersecting mean ± sigmas·std."""
        # Guarantee at least the cell under the mean is covered even
        # with tiny variance.
        half_w = max(sx * sigmas, self.cell_width)
        half_h = max(sy * sigmas, self.cell_height)
        c0 = int((mx - half_w - self.origin_x) // self.cell_width)
        c1 = int((mx + half_w - self.origin_x) // self.cell_width)
        r0 = int((my - half_h - self.origin_y) // self.cell_height)
        r1 = int((my + half_h - self.origin_y) // self.cell_height)
        c0, c1 = max(c0, 0), min(c1, self.cols - 1)
        r0, r1 = max(r0, 0), min(r1, self.rows - 1)
        return r0, r1, c0, c1

    def _cells_near(
        self, mx: float, my: float, sx: float, sy: float, sigmas: float
    ) -> list[int]:
        """Cells intersecting the mean ± sigmas·std rectangle."""
        r0, r1, c0, c1 = self._window_near(mx, my, sx, sy, sigmas)
        return [
            r * self.cols + c
            for r in range(r0, r1 + 1)
            for c in range(c0, c1 + 1)
        ]


class ChartLayout:
    """A small set of irregular widgets (Falcon's chart row).

    Request ids are the widget positions in ``boxes`` order.
    """

    def __init__(self, boxes: Sequence[BoundingBox]) -> None:
        if not boxes:
            raise ValueError("need at least one widget")
        self.boxes = tuple(boxes)

    @property
    def num_requests(self) -> int:
        return len(self.boxes)

    def request_at(self, x: float, y: float) -> Optional[int]:
        for i, box in enumerate(self.boxes):
            if box.contains(x, y):
                return i
        return None

    def bbox(self, request: int) -> BoundingBox:
        return self.boxes[request]

    def gaussian_distribution(
        self,
        means: Sequence[tuple[float, float]],
        stds: Sequence[tuple[float, float]],
        deltas_s: Sequence[float],
        uniform_rows: Sequence[bool] = (),
    ) -> RequestDistribution:
        """Per-widget Gaussian mass; leftover mass pools into residual
        only if some widget is non-explicit — with few widgets all are
        explicit, so rows renormalize over the widgets."""
        k = len(deltas_s)
        n = self.num_requests
        probs = np.zeros((k, n))
        for j, ((mx, my), (sx, sy)) in enumerate(zip(means, stds)):
            if uniform_rows and uniform_rows[j]:
                probs[j] = 1.0 / n
                continue
            for i, box in enumerate(self.boxes):
                probs[j, i] = box.gaussian_mass(mx, my, sx, sy)
            total = probs[j].sum()
            if total <= 0:
                probs[j] = 1.0 / n
            else:
                probs[j] /= total
        return RequestDistribution(
            n=n,
            deltas_s=np.asarray(deltas_s, dtype=float),
            explicit_ids=np.arange(n, dtype=np.int64),
            explicit_probs=probs,
            residual=np.zeros(k),
        )

"""One-call assembly of a Khameleon client/server pair (§3.2, §3.4).

:class:`KhameleonSession` is the "import and use" surface the paper
describes: an application supplies its request universe, progressive
encoder (via the backend), utility function, and predictor; the
session builds and wires the cache, scheduler, sender, estimator, and
managers over the links it is given.  The ``sim`` argument is any
:class:`repro.clock.Clock`: a :class:`~repro.sim.engine.Simulator` for
experiments, a :class:`~repro.clock.WallClock` when served live.

Typical use::

    sim = Simulator()
    downlink = FixedRateLink(sim, bytes_per_second=5_625_000,
                             propagation_delay_s=0.0125)
    uplink = ControlChannel(sim, latency_s=0.0125)
    session = KhameleonSession(
        sim=sim, backend=backend, predictor=predictor,
        utility=ssim_image_utility(),
        num_blocks=[encoder.num_blocks(r) for r in range(n)],
        downlink=downlink, uplink=uplink,
        config=SessionConfig(cache_bytes=50_000_000),
    )
    session.start()
    session.client.request(42)
    sim.run(until=180.0)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # core is the lower layer; import upper layers for typing only
    from repro.predictors.base import Predictor
    from repro.backends.base import Backend
    from repro.backends.throttle import BackendThrottle
    from repro.fleet.schedule_service import FleetScheduleService

from repro.core.cache import RingBufferCache
from repro.core.cache_manager import CacheManager
from repro.core.client import KhameleonClient
from repro.core.greedy import GreedyScheduler
from repro.core.predictor_manager import PredictorManager
from repro.core.scheduler import GainTable
from repro.core.sender import Sender
from repro.core.server import KhameleonServer
from repro.core.utility import UtilityFunction
from repro.sim.bandwidth import HarmonicMeanEstimator, ReceiveRateMonitor
from repro.clock import Clock
from repro.sim.link import ControlChannel, Link

__all__ = ["SessionConfig", "KhameleonSession"]


@dataclass
class SessionConfig:
    """Tunables with the paper's §6.1 defaults."""

    cache_bytes: int = 50_000_000
    block_bytes: int = 50_000
    prediction_interval_s: float = 0.150
    rate_report_interval_s: float = 0.150
    gamma: float = 1.0
    lookahead: int = 32
    scheduler_seed: int = 0
    meta_request: bool = True
    #: Greedy draw kernel: "reference" | "vectorized" | "fenwick" (see
    #: :data:`repro.core.greedy.SAMPLER_MODES`).  The default keeps the
    #: bit-identical-schedules contract; "fenwick" trades that for
    #: O(log m) draws (statistically equivalent schedules).
    sampler: str = "vectorized"
    initial_bandwidth_bytes_per_s: float = 1_000_000.0
    bandwidth_cap_bytes_per_s: Optional[float] = None
    backend_concurrency: Optional[int] = None

    @property
    def cache_blocks(self) -> int:
        blocks = self.cache_bytes // self.block_bytes
        if blocks < 1:
            raise ValueError(
                f"cache of {self.cache_bytes} B holds no {self.block_bytes} B blocks"
            )
        return int(blocks)


class KhameleonSession:
    """A fully wired client + server over a simulated network."""

    def __init__(
        self,
        sim: Clock,
        backend: "Backend",
        predictor: Predictor,
        utility: UtilityFunction,
        num_blocks: Sequence[int],
        downlink: Link,
        uplink: ControlChannel,
        config: Optional[SessionConfig] = None,
        throttle: Optional["BackendThrottle"] = None,
        schedule_service: Optional["FleetScheduleService"] = None,
    ) -> None:
        self.sim = sim
        self.config = config or SessionConfig()
        cfg = self.config

        self.gains = GainTable(utility, num_blocks)
        n = self.gains.n

        # Server side ------------------------------------------------
        self.mirror = RingBufferCache(cfg.cache_blocks)
        self.scheduler = GreedyScheduler(
            gains=self.gains,
            cache_blocks=cfg.cache_blocks,
            gamma=cfg.gamma,
            mirror=self.mirror,
            meta_request=cfg.meta_request,
            sampler=cfg.sampler,
            seed=cfg.scheduler_seed,
        )
        self.estimator = HarmonicMeanEstimator(
            cfg.initial_bandwidth_bytes_per_s,
            cap_bytes_per_s=cfg.bandwidth_cap_bytes_per_s,
        )
        # An externally supplied throttle is shared (fleet sessions
        # split one backend's concurrency budget); otherwise the session
        # owns a private one sized by its config.
        if throttle is None and cfg.backend_concurrency is not None:
            from repro.backends.throttle import BackendThrottle

            throttle = BackendThrottle(
                cfg.backend_concurrency, active=lambda: backend.active_requests
            )
        self.throttle = throttle

        # Client side --------------------------------------------------
        self.cache = RingBufferCache(cfg.cache_blocks)
        self.cache_manager = CacheManager(
            clock=sim,
            cache=self.cache,
            num_blocks_of=self.gains.blocks_of,
            utility=utility,
        )

        self.sender = Sender(
            sim=sim,
            scheduler=self.scheduler,
            backend=backend,
            link=downlink,
            estimator=self.estimator,
            deliver=self._deliver,
            mirror=self.mirror,
            throttle=throttle,
            lookahead=cfg.lookahead,
        )
        self.server = KhameleonServer(
            sim=sim,
            scheduler=self.scheduler,
            sender=self.sender,
            predictor_server=predictor.server,
            deltas_s=predictor.deltas_s,
            estimator=self.estimator,
            nominal_block_bytes=cfg.block_bytes,
            num_requests=n,
        )

        # With a fleet schedule service the session's prediction tick is
        # coalesced into the fleet's single periodic event: the manager
        # keeps the state/dedup/accounting logic (polled by the service)
        # but owns no periodic task and never touches the uplink.
        self._schedule_service = schedule_service
        self.predictor_manager = PredictorManager(
            sim=sim,
            client_predictor=predictor.client,
            send_state=lambda state: uplink.send(self.server.on_predictor_state, state),
            interval_s=cfg.prediction_interval_s,
            autostart=schedule_service is None,
        )
        self.rate_monitor = ReceiveRateMonitor(
            sim=sim,
            interval_s=cfg.rate_report_interval_s,
            publish=lambda rate: uplink.send(self.server.on_rate_report, rate),
        )
        self.client = KhameleonClient(
            sim=sim,
            cache_manager=self.cache_manager,
            predictor_manager=self.predictor_manager,
            rate_monitor=self.rate_monitor,
        )
        self.backend = backend
        self.downlink = downlink
        self.uplink = uplink
        self._started = False
        self._stopped = False

    # -- lifecycle -----------------------------------------------------
    #
    # Sessions are attachable/detachable units: a fleet's lifecycle
    # manager starts one when its user arrives and stops it when the
    # user departs, possibly mid-simulation.  Both transitions are
    # idempotent, and a stopped session fires no further application
    # events — late wire deliveries are dropped, not upcalled.

    @property
    def started(self) -> bool:
        return self._started

    @property
    def active(self) -> bool:
        """Started and not yet stopped (attached to its resources)."""
        return self._started and not self._stopped

    def _deliver(self, block) -> None:
        if self._stopped:
            return  # departed: blocks already on the wire land silently
        self.client.on_block(block)

    def start(self) -> None:
        """Start pushing (before running the simulator, or at arrival)."""
        if self._started:
            return
        self._started = True
        if self._schedule_service is not None:
            self._schedule_service.register(self)
        self.server.start()

    def stop(self) -> None:
        """Stop pushing, cancel periodic tasks, finalize pending requests.

        Idempotent.  After this no upcalls, predictor states, or rate
        reports are produced, so a departed session is inert even while
        its last blocks drain off the shared link.
        """
        if self._stopped:
            return
        self._stopped = True
        if self._schedule_service is not None:
            self._schedule_service.unregister(self)
        self.sender.stop()
        self.client.stop()

"""Predicted request distributions (§4, §5).

Predictors estimate ``P(q | Δ)`` — the probability that request ``q``
is issued ``Δ`` seconds in the future — at a small set of horizons
(the paper uses Δ ∈ {50, 150, 250, 500 ms}) and linearly interpolate
between them.

With 10k possible requests, materializing dense vectors per horizon is
wasteful: most requests share the same ≈0 probability (§5.3.1's
meta-request observation).  :class:`RequestDistribution` therefore
stores *explicit* probabilities for a small set of request ids plus a
single *residual* mass spread uniformly over all remaining requests.
The greedy scheduler exploits exactly this split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = ["RequestDistribution"]

_EPS = 1e-9


@dataclass(frozen=True)
class RequestDistribution:
    """Sparse probability over ``n`` requests at future horizons.

    Attributes
    ----------
    n:
        Total number of possible requests.
    deltas_s:
        Sorted future offsets (seconds) at which probabilities are
        specified; shape ``(k,)``.
    explicit_ids:
        Request ids with individually tracked probabilities; shape
        ``(m,)``, unique.
    explicit_probs:
        ``(k, m)`` matrix; row ``j`` holds the explicit probabilities at
        ``deltas_s[j]``.
    residual:
        ``(k,)`` vector: leftover mass at each horizon, implicitly
        spread uniformly over the ``n - m`` non-explicit requests.
        Each row satisfies ``explicit_probs[j].sum() + residual[j] == 1``.
    """

    n: int
    deltas_s: np.ndarray
    explicit_ids: np.ndarray
    explicit_probs: np.ndarray
    residual: np.ndarray

    def __post_init__(self) -> None:
        deltas = np.asarray(self.deltas_s, dtype=float)
        ids = np.asarray(self.explicit_ids, dtype=np.int64)
        probs = np.atleast_2d(np.asarray(self.explicit_probs, dtype=float))
        residual = np.asarray(self.residual, dtype=float)
        if self.n < 1:
            raise ValueError("n must be >= 1")
        if deltas.ndim != 1 or len(deltas) < 1:
            raise ValueError("need at least one horizon")
        if (np.diff(deltas) <= 0).any():
            raise ValueError("horizons must be strictly increasing")
        if probs.shape != (len(deltas), len(ids)):
            raise ValueError(
                f"explicit_probs shape {probs.shape} != ({len(deltas)}, {len(ids)})"
            )
        if residual.shape != (len(deltas),):
            raise ValueError("residual must have one entry per horizon")
        if len(np.unique(ids)) != len(ids):
            raise ValueError("explicit ids must be unique")
        if len(ids) and (ids.min() < 0 or ids.max() >= self.n):
            raise ValueError("explicit ids out of range")
        if (probs < -_EPS).any() or (residual < -_EPS).any():
            raise ValueError("probabilities must be non-negative")
        totals = probs.sum(axis=1) + residual
        if not np.allclose(totals, 1.0, atol=1e-6):
            raise ValueError(f"each horizon must sum to 1 (got {totals})")
        if len(ids) >= self.n and (residual > _EPS).any():
            raise ValueError("residual mass with no non-explicit requests")
        object.__setattr__(self, "deltas_s", deltas)
        object.__setattr__(self, "explicit_ids", ids)
        object.__setattr__(self, "explicit_probs", probs)
        object.__setattr__(self, "residual", residual)

    # -- constructors ------------------------------------------------

    @classmethod
    def uniform(cls, n: int, deltas_s: Sequence[float] = (0.05,)) -> "RequestDistribution":
        """All requests equally likely at every horizon (the default)."""
        k = len(deltas_s)
        return cls(
            n=n,
            deltas_s=np.asarray(deltas_s, dtype=float),
            explicit_ids=np.empty(0, dtype=np.int64),
            explicit_probs=np.empty((k, 0)),
            residual=np.ones(k),
        )

    @classmethod
    def point(
        cls, n: int, request: int, deltas_s: Sequence[float] = (0.05,)
    ) -> "RequestDistribution":
        """All mass on one request (the traditional-request special case)."""
        k = len(deltas_s)
        return cls(
            n=n,
            deltas_s=np.asarray(deltas_s, dtype=float),
            explicit_ids=np.array([request], dtype=np.int64),
            explicit_probs=np.ones((k, 1)),
            residual=np.zeros(k),
        )

    @classmethod
    def from_dense(
        cls,
        probs_by_delta: np.ndarray,
        deltas_s: Sequence[float],
        threshold: float = 1e-4,
    ) -> "RequestDistribution":
        """Compress dense ``(k, n)`` probabilities into sparse form.

        Requests whose probability exceeds ``threshold`` at *any*
        horizon become explicit; the rest pool into the residual.  Rows
        are normalized.
        """
        dense = np.atleast_2d(np.asarray(probs_by_delta, dtype=float))
        if (dense < 0).any():
            raise ValueError("probabilities must be non-negative")
        sums = dense.sum(axis=1, keepdims=True)
        if (sums <= 0).any():
            raise ValueError("each horizon needs positive total mass")
        dense = dense / sums
        n = dense.shape[1]
        explicit_mask = (dense > threshold).any(axis=0)
        ids = np.nonzero(explicit_mask)[0].astype(np.int64)
        probs = dense[:, ids]
        residual = 1.0 - probs.sum(axis=1)
        residual = np.clip(residual, 0.0, 1.0)
        if len(ids) == n:
            # No residual pool to absorb rounding mass; renormalize.
            probs = probs / probs.sum(axis=1, keepdims=True)
            residual = np.zeros(len(dense))
        return cls(
            n=n,
            deltas_s=np.asarray(deltas_s, dtype=float),
            explicit_ids=ids,
            explicit_probs=probs,
            residual=residual,
        )

    # -- queries -----------------------------------------------------

    @property
    def num_explicit(self) -> int:
        return len(self.explicit_ids)

    @property
    def num_uniform(self) -> int:
        """Count of requests sharing the residual mass."""
        return self.n - len(self.explicit_ids)

    def _interp_weights(self, delta_s: float) -> tuple[int, int, float]:
        """Bracketing horizon indices and blend weight for ``delta_s``.

        Clamps outside the horizon range (before the first horizon and
        beyond the last, the nearest horizon's distribution holds).
        """
        deltas = self.deltas_s
        if delta_s <= deltas[0]:
            return 0, 0, 0.0
        if delta_s >= deltas[-1]:
            last = len(deltas) - 1
            return last, last, 0.0
        hi = int(np.searchsorted(deltas, delta_s, side="right"))
        lo = hi - 1
        w = (delta_s - deltas[lo]) / (deltas[hi] - deltas[lo])
        return lo, hi, float(w)

    def explicit_at(self, delta_s: float) -> tuple[np.ndarray, np.ndarray, float]:
        """``(ids, probs, residual)`` linearly interpolated at ``delta_s``."""
        lo, hi, w = self._interp_weights(delta_s)
        if lo == hi:
            return self.explicit_ids, self.explicit_probs[lo], float(self.residual[lo])
        probs = (1 - w) * self.explicit_probs[lo] + w * self.explicit_probs[hi]
        residual = (1 - w) * self.residual[lo] + w * self.residual[hi]
        return self.explicit_ids, probs, float(residual)

    def interp_weights_vec(
        self, deltas_s: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`_interp_weights`: ``(lo, hi, w)`` arrays.

        Same clamping semantics as the scalar helper, and the same IEEE
        arithmetic for ``w``, so downstream blends are bit-identical to
        per-horizon :meth:`explicit_at` calls.  Shared by
        :meth:`explicit_matrix` and the fleet's batched probability
        recompute so both paths interpolate identically.
        """
        qs = np.asarray(deltas_s, dtype=float)
        deltas = self.deltas_s
        last = len(deltas) - 1
        lo = np.zeros(len(qs), dtype=np.intp)
        hi = np.zeros(len(qs), dtype=np.intp)
        w = np.zeros(len(qs))
        above = qs >= deltas[-1]
        lo[above] = last
        hi[above] = last
        mid = ~(qs <= deltas[0]) & ~above
        if mid.any():
            hi_mid = np.searchsorted(deltas, qs[mid], side="right")
            lo_mid = hi_mid - 1
            lo[mid] = lo_mid
            hi[mid] = hi_mid
            w[mid] = (qs[mid] - deltas[lo_mid]) / (deltas[hi_mid] - deltas[lo_mid])
        return lo, hi, w

    def clamp_split(self, offsets_s: np.ndarray) -> tuple[int, int]:
        """Split increasing offsets into clamped head / interior / tail.

        Returns ``(head, tail)``: offsets before index ``head`` lie at
        or below the first horizon (their rows are copies of horizon 0),
        offsets at or past ``tail`` lie at or beyond the last horizon
        (copies of horizon ``k-1``), and only ``offsets_s[head:tail]``
        pay the interpolation blend.  Uses the same boundary comparisons
        as :meth:`interp_weights_vec`, so the split is exactly the
        clamped set that helper produces.  With a single horizon every
        row is a copy, so ``head == tail == 0`` — the whole range is
        tail.  Shared by the fleet's stacked probability pass and the
        scheduler's Fenwick sampler (which exploits the tail rows being
        proportional to the last-horizon row).
        """
        offsets = np.asarray(offsets_s, dtype=float)
        if len(self.deltas_s) == 1:
            return 0, 0
        head = int(np.searchsorted(offsets, self.deltas_s[0], side="right"))
        tail = int(np.searchsorted(offsets, self.deltas_s[-1], side="left"))
        return head, max(head, tail)

    def horizon_weights(self, offsets_s: np.ndarray) -> np.ndarray:
        """Per-horizon mass split of each offset's interpolated row.

        Returns ``W`` of shape ``(len(offsets_s), k)`` whose row ``j``
        is the convex decomposition of the offset's distribution onto
        the stored horizons: the interpolated explicit row at
        ``offsets_s[j]`` equals ``W[j] @ explicit_probs`` and its
        residual equals ``W[j] @ residual``.  Rows sum to 1; clamped
        offsets put all mass on the edge horizon, interior offsets
        split ``(1 − w, w)`` across the bracketing pair (the same
        weights :meth:`interp_weights_vec` produces).

        This is the algebraic fact the scheduler's horizon-forest
        sampler rests on: because every slot's probability row is a
        linear combination of the ``k`` horizon rows, a reverse
        cumulative sum of these coefficient rows turns the whole
        remaining-batch matrix into ``k`` fixed per-horizon mass
        vectors weighted by per-slot scalars — one Fenwick tree per
        horizon then answers any slot's draw.
        """
        lo, hi, w = self.interp_weights_vec(offsets_s)
        out = np.zeros((len(lo), len(self.deltas_s)))
        rows = np.arange(len(lo))
        out[rows, lo] += 1.0 - w
        out[rows, hi] += w
        return out

    def explicit_matrix(self, deltas_s: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`explicit_at` over many horizons.

        Returns ``(probs, residual)`` with shapes ``(len(deltas_s), m)``
        and ``(len(deltas_s),)``.  Used by the scheduler to materialize
        its probability matrix in one shot.  One blend over all horizons
        instead of a Python loop calling :meth:`explicit_at` per row;
        rows clamped outside the horizon range (``lo == hi``) are plain
        row copies — what :meth:`explicit_at` returns there — which
        skips the arithmetic entirely for the (typically dominant)
        beyond-last-horizon slots.
        """
        lo, hi, w = self.interp_weights_vec(deltas_s)
        out = np.empty((len(lo), len(self.explicit_ids)))
        res = np.empty(len(lo))
        clamped = lo == hi
        if clamped.any():
            out[clamped] = self.explicit_probs[lo[clamped]]
            res[clamped] = self.residual[lo[clamped]]
        interior = ~clamped
        if interior.any():
            li, hi_i, wi = lo[interior], hi[interior], w[interior]
            wc = wi[:, None]
            out[interior] = (
                (1 - wc) * self.explicit_probs[li] + wc * self.explicit_probs[hi_i]
            )
            res[interior] = (1 - wi) * self.residual[li] + wi * self.residual[hi_i]
        return out, res

    def dense_at(self, delta_s: float) -> np.ndarray:
        """Full length-``n`` probability vector at ``delta_s`` (small n only)."""
        ids, probs, residual = self.explicit_at(delta_s)
        dense = np.full(self.n, residual / self.num_uniform if self.num_uniform else 0.0)
        dense[ids] = probs
        return dense

    def prob_of(self, request: int, delta_s: float) -> float:
        """Probability of a single request at ``delta_s``."""
        ids, probs, residual = self.explicit_at(delta_s)
        hit = np.nonzero(ids == request)[0]
        if len(hit):
            return float(probs[hit[0]])
        return residual / self.num_uniform if self.num_uniform else 0.0

    def top_k(self, k: int, delta_s: Optional[float] = None) -> list[int]:
        """The ``k`` most likely requests (at the first horizon by default)."""
        d = float(self.deltas_s[0]) if delta_s is None else delta_s
        ids, probs, residual = self.explicit_at(d)
        uniform_p = residual / self.num_uniform if self.num_uniform else 0.0
        order = np.argsort(-probs, kind="stable")
        ranked = [int(ids[i]) for i in order if probs[i] > uniform_p]
        return ranked[:k]

"""Sender thread (§3.3, §5.3.2, §5.4).

The sender reads the scheduler's block sequence, retrieves blocks from
the backend, and places them onto the network at a rate matched to the
bandwidth estimate ("aims to saturate the link" without congesting
it).  Three coordination concerns from the paper:

* **Pacing** — the sender keeps the link *backlogged but bounded*: it
  transmits whenever the link's queueing delay is below
  ``max_backlog_s`` (modelling a transport that keeps the pipe full
  with a small send buffer).  A saturated link is what makes the
  client's measured receive rate equal true capacity — the §5.4
  observation that bandwidth "can be accurately estimated ... in
  backlogged settings".  Pacing *at* the estimate instead would be
  self-limiting: the client would only ever measure the paced rate, and
  the estimate could never recover upward.  A user-configured bandwidth
  cap (§B.2) adds explicit ``size / cap`` spacing on top.
* **Fetch-ahead** — the sender pulls a window of upcoming scheduled
  blocks and issues backend fetches for them concurrently, so backend
  latency (tens to hundreds of ms) overlaps transmission instead of
  serializing with it.  The backend dedupes in-flight fetches.
* **Preemption** (§5.3.2) — when a new prediction arrives, the unsent
  tail of the pipeline is handed back to the scheduler
  (:meth:`GreedyScheduler.rollback`) and re-decided; blocks already on
  the wire are not recalled.
* **Backend throttle** (§5.4) — with a concurrency-limited backend, a
  :class:`~repro.backends.throttle.BackendThrottle` caps how many
  *distinct new* requests the pipeline may fetch at once; excess blocks
  are deferred back to the scheduler at the next refresh.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # avoid core <-> backends import cycle at runtime
    from repro.backends.base import Backend
    from repro.backends.throttle import BackendThrottle

from repro.core.blocks import Block, ProgressiveResponse
from repro.core.cache import RingBufferCache
from repro.core.scheduler import ScheduledBlock, Scheduler
from repro.sim.bandwidth import HarmonicMeanEstimator
from repro.clock import Clock
from repro.sim.link import Link

__all__ = ["Sender"]


class Sender:
    """Paced, pipelined block pusher.

    ``deliver`` receives each :class:`~repro.core.blocks.Block` at the
    client (after link serialization + propagation).
    """

    def __init__(
        self,
        sim: Clock,
        scheduler: Scheduler,
        backend: "Backend",
        link: Link,
        estimator: HarmonicMeanEstimator,
        deliver: Callable[[Block], None],
        mirror: Optional[RingBufferCache] = None,
        throttle: Optional["BackendThrottle"] = None,
        lookahead: int = 32,
        idle_retry_s: float = 0.005,
        max_backlog_s: float = 0.020,
    ) -> None:
        if lookahead < 1:
            raise ValueError("lookahead must be >= 1")
        if idle_retry_s <= 0:
            raise ValueError("idle retry must be positive")
        if max_backlog_s <= 0:
            raise ValueError("max backlog must be positive")
        self.sim = sim
        self.scheduler = scheduler
        self.backend = backend
        self.link = link
        self.estimator = estimator
        self.deliver = deliver
        self.mirror = mirror
        self.throttle = throttle
        self.lookahead = lookahead
        self.idle_retry_s = idle_retry_s
        self.max_backlog_s = max_backlog_s

        self._pipeline: deque[ScheduledBlock] = deque()
        # Per-request pipeline occupancy, maintained on every append /
        # popleft / clear so _admit's "already holds a slot" membership
        # test is O(1) instead of an O(lookahead) scan.
        self._pipeline_counts: dict[int, int] = {}
        self._next_send_time = 0.0
        self._send_scheduled = False
        self._idle_timer = None
        self._started = False

        self.blocks_sent = 0
        self.bytes_sent = 0
        self.blocks_deferred = 0
        self.blocks_skipped = 0

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Begin pushing (typically at simulation time zero)."""
        self._started = True
        self._pump()

    def refresh(self) -> None:
        """New prediction arrived: reschedule the unsent tail (§5.3.2)."""
        blocks = self.take_pipeline()
        if blocks:
            self.scheduler.rollback(blocks)
        self.resume()

    def take_pipeline(self) -> list[ScheduledBlock]:
        """Hand back the unsent pipeline without rescheduling.

        The fleet's batched prediction tick preempts every affected
        sender first, rolls the blocks back itself (deferring the
        probability recompute), then installs the new distributions in
        one stacked pass and calls :meth:`resume`.
        """
        if not self._pipeline:
            return []
        blocks = list(self._pipeline)
        self._pipeline.clear()
        self._pipeline_counts.clear()
        return blocks

    def resume(self) -> None:
        """Restart the fill/send loop after an external preemption."""
        if self._started:
            self._pump()

    def stop(self) -> None:
        """Stop pushing: no further sends; in-flight deliveries land.

        Used at end of experiment so the client cache can quiesce to
        the mirror's state (the mirror records blocks at send time, the
        client at delivery time).
        """
        self._started = False
        if self._idle_timer is not None:
            self._idle_timer.cancel()
            self._idle_timer = None

    # -- pipeline ------------------------------------------------------

    def _fill_pipeline(self) -> None:
        """Pull a whole lookahead window in one scheduler call.

        ``schedule_batch`` draws the window on the scheduler's
        vectorized fast path (bit-identical to a ``next_block`` loop),
        so the per-block Python round-trip is paid once per window, not
        once per block.

        Applies the §5.4 throttle: a block needing a *new* backend fetch
        is only admitted while backend slots remain; otherwise it — and
        the rest of the freshly drawn window — is rolled back for
        rescheduling and the fill stops (the schedule is ordered —
        skipping ahead would reorder the stream).
        """
        while len(self._pipeline) < self.lookahead:
            want = self.lookahead - len(self._pipeline)
            if self.throttle is not None:
                # A deferral rolls the window's tail back, and rollback
                # cannot cross a batch reset (the reset clears the
                # per-batch counts).  Cap each pull at the scheduler's
                # remaining batch so a window never straddles one; the
                # outer loop keeps filling across the boundary.
                want = min(
                    want, max(1, self.scheduler.C - self.scheduler.position)
                )
            blocks = self.scheduler.schedule_batch(want)
            if not blocks:
                break
            deferred = False
            for i, block in enumerate(blocks):
                if self.throttle is not None and not self._admit(block):
                    self.scheduler.rollback(blocks[i:])
                    self.blocks_deferred += 1
                    deferred = True
                    break
                self._append_pipeline(block)
                self._ensure_fetch(block.request)
            if deferred or len(blocks) < want:
                break

    def _append_pipeline(self, block: ScheduledBlock) -> None:
        self._pipeline.append(block)
        counts = self._pipeline_counts
        counts[block.request] = counts.get(block.request, 0) + 1

    def _pop_pipeline_head(self) -> ScheduledBlock:
        block = self._pipeline.popleft()
        counts = self._pipeline_counts
        remaining = counts[block.request] - 1
        if remaining:
            counts[block.request] = remaining
        else:
            del counts[block.request]
        return block

    def _admit(self, block: ScheduledBlock) -> bool:
        # §5.4: "cached or in flight" counts as materialized — an
        # in-flight fetch already holds its backend slot, so re-admitting
        # the request (e.g. after refresh() cleared the pipeline) must
        # not be deferred or charged a second slot.
        materialized = (
            self.backend.is_materialized(block.request)
            or self._pipeline_counts.get(block.request, 0) > 0
        )
        if materialized:
            return True
        if self.throttle.available_slots <= 0:
            return False
        # Attribute the slot to this sender (weighted shares track it;
        # the global throttle's charge is a no-op since it reads the
        # backend's own active count).
        self.throttle.charge(block.request)
        return True

    def _ensure_fetch(self, request: int) -> None:
        if self.backend.is_cached(request):
            # Count the avoided fetch: reuse of a cached response must
            # show up in the backend's hit accounting (it never reaches
            # fetch(), which only sees uncached/in-flight requests).
            self.backend.stats.cache_hits += 1
            return
        self.backend.fetch(request, self._on_fetched)

    def _on_fetched(self, _response: ProgressiveResponse) -> None:
        self._pump()

    def _pump(self) -> None:
        """Advance: fill the window, then send the head when ready."""
        if not self._started:
            return
        self._fill_pipeline()
        if not self._pipeline:
            self._arm_idle_retry()
            return
        head = self._pipeline[0]
        response = self.backend.cached(head.request)
        if response is None:
            return  # head fetch in flight; _on_fetched re-pumps
        if self._send_scheduled:
            return
        when = max(self.sim.now, self._next_send_time)
        self._send_scheduled = True
        self.sim.schedule_at(when, self._transmit)

    def _transmit(self) -> None:
        self._send_scheduled = False
        if not self._started:
            # stop() cannot cancel an already-scheduled transmit event;
            # honour the "no further sends" contract here instead.
            return
        if not self._pipeline:
            self._pump()
            return
        head = self._pipeline[0]
        response = self.backend.cached(head.request)
        if response is None:
            self._pump()
            return
        if head.index >= response.num_blocks:
            # Scheduler raced ahead of a shrunken response; skip the
            # slot.  The allocation is deliberately NOT rolled back:
            # releasing it would let the scheduler re-draw the same
            # impossible (request, index) forever, while retiring the
            # pending count drives the request's marginal gain to zero
            # after at most its remaining block budget — the sampler
            # then steers elsewhere on its own.  (Unreachable with the
            # built-in backends, whose responses share the GainTable's
            # encoder; counted for visibility.)
            self._pop_pipeline_head()
            self.blocks_skipped += 1
            self._pump()
            return
        # Keep the link backlogged but bounded: defer while the send
        # buffer (link queue) holds more than max_backlog_s of data.
        # The slack tolerance and minimum wait keep float dust from
        # producing a defer too small to advance the virtual clock.
        slack = self.link.queue_delay() - self.max_backlog_s
        if slack > 1e-9:
            self._send_scheduled = True
            self.sim.schedule(max(slack, 1e-6), self._transmit)
            return
        block = response.blocks[head.index]
        self._pop_pipeline_head()
        start = self.sim.now
        self.link.send(block.size_bytes, self._on_delivered, block)
        if self.mirror is not None:
            self.mirror.put(block)
        self.scheduler.on_sent(head)
        self.blocks_sent += 1
        self.bytes_sent += block.size_bytes
        # Explicit rate pacing only under a user-configured cap (§B.2).
        cap = self.estimator.cap_bytes_per_s
        if cap is not None:
            self._next_send_time = start + block.size_bytes / cap
        self._pump()

    def _on_delivered(self, block: Block) -> None:
        self.deliver(block)

    def _arm_idle_retry(self) -> None:
        if self._idle_timer is not None and not self._idle_timer.cancelled:
            return
        self._idle_timer = self.sim.schedule(self.idle_retry_s, self._idle_tick)

    def _idle_tick(self) -> None:
        self._idle_timer = None
        self._pump()

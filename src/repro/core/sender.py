"""Sender thread (§3.3, §5.3.2, §5.4).

The sender reads the scheduler's block sequence, retrieves blocks from
the backend, and places them onto the network at a rate matched to the
bandwidth estimate ("aims to saturate the link" without congesting
it).  Three coordination concerns from the paper:

* **Pacing** — the sender keeps the link *backlogged but bounded*: it
  transmits whenever the link's queueing delay is below
  ``max_backlog_s`` (modelling a transport that keeps the pipe full
  with a small send buffer).  A saturated link is what makes the
  client's measured receive rate equal true capacity — the §5.4
  observation that bandwidth "can be accurately estimated ... in
  backlogged settings".  Pacing *at* the estimate instead would be
  self-limiting: the client would only ever measure the paced rate, and
  the estimate could never recover upward.  A user-configured bandwidth
  cap (§B.2) adds explicit ``size / cap`` spacing on top.
* **Fetch-ahead** — the sender pulls a window of upcoming scheduled
  blocks and issues backend fetches for them concurrently, so backend
  latency (tens to hundreds of ms) overlaps transmission instead of
  serializing with it.  The backend dedupes in-flight fetches.
* **Preemption** (§5.3.2) — when a new prediction arrives, the unsent
  tail of the pipeline is handed back to the scheduler
  (:meth:`GreedyScheduler.rollback`) and re-decided; blocks already on
  the wire are not recalled.
* **Backend throttle** (§5.4) — with a concurrency-limited backend, a
  :class:`~repro.backends.throttle.BackendThrottle` caps how many
  *distinct new* requests the pipeline may fetch at once; excess blocks
  are deferred back to the scheduler at the next refresh.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # avoid core <-> backends import cycle at runtime
    from repro.backends.base import Backend
    from repro.backends.throttle import BackendThrottle

from repro.core.blocks import Block, ProgressiveResponse
from repro.core.cache import RingBufferCache
from repro.core.scheduler import ScheduledBlock, Scheduler
from repro.sim.bandwidth import HarmonicMeanEstimator
from repro.sim.engine import Simulator
from repro.sim.link import Link

__all__ = ["Sender"]


class Sender:
    """Paced, pipelined block pusher.

    ``deliver`` receives each :class:`~repro.core.blocks.Block` at the
    client (after link serialization + propagation).
    """

    def __init__(
        self,
        sim: Simulator,
        scheduler: Scheduler,
        backend: "Backend",
        link: Link,
        estimator: HarmonicMeanEstimator,
        deliver: Callable[[Block], None],
        mirror: Optional[RingBufferCache] = None,
        throttle: Optional["BackendThrottle"] = None,
        lookahead: int = 32,
        idle_retry_s: float = 0.005,
        max_backlog_s: float = 0.020,
    ) -> None:
        if lookahead < 1:
            raise ValueError("lookahead must be >= 1")
        if idle_retry_s <= 0:
            raise ValueError("idle retry must be positive")
        if max_backlog_s <= 0:
            raise ValueError("max backlog must be positive")
        self.sim = sim
        self.scheduler = scheduler
        self.backend = backend
        self.link = link
        self.estimator = estimator
        self.deliver = deliver
        self.mirror = mirror
        self.throttle = throttle
        self.lookahead = lookahead
        self.idle_retry_s = idle_retry_s
        self.max_backlog_s = max_backlog_s

        self._pipeline: deque[ScheduledBlock] = deque()
        self._next_send_time = 0.0
        self._send_scheduled = False
        self._idle_timer = None
        self._started = False

        self.blocks_sent = 0
        self.bytes_sent = 0
        self.blocks_deferred = 0

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Begin pushing (typically at simulation time zero)."""
        self._started = True
        self._pump()

    def refresh(self) -> None:
        """New prediction arrived: reschedule the unsent tail (§5.3.2)."""
        if self._pipeline:
            self.scheduler.rollback(list(self._pipeline))
            self._pipeline.clear()
        if self._started:
            self._pump()

    def stop(self) -> None:
        """Stop pushing: no further sends; in-flight deliveries land.

        Used at end of experiment so the client cache can quiesce to
        the mirror's state (the mirror records blocks at send time, the
        client at delivery time).
        """
        self._started = False
        if self._idle_timer is not None:
            self._idle_timer.cancel()
            self._idle_timer = None

    # -- pipeline ------------------------------------------------------

    def _fill_pipeline(self) -> None:
        """Pull schedule entries up to the lookahead window.

        Applies the §5.4 throttle: a block needing a *new* backend fetch
        is only admitted while backend slots remain; otherwise it is
        rolled back for rescheduling and the fill stops (the schedule is
        ordered — skipping ahead would reorder the stream).
        """
        while len(self._pipeline) < self.lookahead:
            block = self.scheduler.next_block()
            if block is None:
                break
            if self.throttle is not None and not self._admit(block):
                self.scheduler.rollback([block])
                self.blocks_deferred += 1
                break
            self._pipeline.append(block)
            self._ensure_fetch(block.request)

    def _admit(self, block: ScheduledBlock) -> bool:
        # §5.4: "cached or in flight" counts as materialized — an
        # in-flight fetch already holds its backend slot, so re-admitting
        # the request (e.g. after refresh() cleared the pipeline) must
        # not be deferred or charged a second slot.
        materialized = self.backend.is_materialized(block.request) or any(
            entry.request == block.request for entry in self._pipeline
        )
        if materialized:
            return True
        if self.throttle.available_slots <= 0:
            return False
        # Attribute the slot to this sender (weighted shares track it;
        # the global throttle's charge is a no-op since it reads the
        # backend's own active count).
        self.throttle.charge(block.request)
        return True

    def _ensure_fetch(self, request: int) -> None:
        if self.backend.is_cached(request):
            # Count the avoided fetch: reuse of a cached response must
            # show up in the backend's hit accounting (it never reaches
            # fetch(), which only sees uncached/in-flight requests).
            self.backend.stats.cache_hits += 1
            return
        self.backend.fetch(request, self._on_fetched)

    def _on_fetched(self, _response: ProgressiveResponse) -> None:
        self._pump()

    def _pump(self) -> None:
        """Advance: fill the window, then send the head when ready."""
        if not self._started:
            return
        self._fill_pipeline()
        if not self._pipeline:
            self._arm_idle_retry()
            return
        head = self._pipeline[0]
        response = self.backend.cached(head.request)
        if response is None:
            return  # head fetch in flight; _on_fetched re-pumps
        if self._send_scheduled:
            return
        when = max(self.sim.now, self._next_send_time)
        self._send_scheduled = True
        self.sim.schedule_at(when, self._transmit)

    def _transmit(self) -> None:
        self._send_scheduled = False
        if not self._started:
            # stop() cannot cancel an already-scheduled transmit event;
            # honour the "no further sends" contract here instead.
            return
        if not self._pipeline:
            self._pump()
            return
        head = self._pipeline[0]
        response = self.backend.cached(head.request)
        if response is None:
            self._pump()
            return
        if head.index >= response.num_blocks:
            # Scheduler raced ahead of a shrunken response; skip the slot.
            self._pipeline.popleft()
            self._pump()
            return
        # Keep the link backlogged but bounded: defer while the send
        # buffer (link queue) holds more than max_backlog_s of data.
        # The slack tolerance and minimum wait keep float dust from
        # producing a defer too small to advance the virtual clock.
        slack = self.link.queue_delay() - self.max_backlog_s
        if slack > 1e-9:
            self._send_scheduled = True
            self.sim.schedule(max(slack, 1e-6), self._transmit)
            return
        block = response.blocks[head.index]
        self._pipeline.popleft()
        start = self.sim.now
        self.link.send(block.size_bytes, self._on_delivered, block)
        if self.mirror is not None:
            self.mirror.put(block)
        self.scheduler.on_sent(head)
        self.blocks_sent += 1
        self.bytes_sent += block.size_bytes
        # Explicit rate pacing only under a user-configured cap (§B.2).
        cap = self.estimator.cap_bytes_per_s
        if cap is not None:
            self._next_send_time = start + block.size_bytes / cap
        self._pump()

    def _on_delivered(self, block: Block) -> None:
        self.deliver(block)

    def _arm_idle_retry(self) -> None:
        if self._idle_timer is not None and not self._idle_timer.cancelled:
            return
        self._idle_timer = self.sim.schedule(self.idle_retry_s, self._idle_tick)

    def _idle_tick(self) -> None:
        self._idle_timer = None
        self._pump()

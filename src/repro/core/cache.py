"""Client caches (§3.3).

Khameleon's client cache is a **ring buffer with FIFO replacement**:
the i-th block received from the server goes into slot ``i % C``.  The
paper chooses FIFO deliberately — it is deterministic, so the server-
side scheduler can mirror the client cache's contents exactly without
any coordination (the sender feeds the same sequence into an identical
ring buffer).

:class:`LRUCache` is the byte-budgeted LRU used by the traditional
prefetching baselines (§6.1), which cache whole responses.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional

from .blocks import Block

__all__ = ["RingBufferCache", "LRUCache"]


class RingBufferCache:
    """Fixed-capacity block cache with FIFO (ring buffer) replacement.

    Capacity is counted in *blocks* — the paper sizes everything in
    equal blocks so cache state is a pure function of the block arrival
    sequence, which is what lets the server simulate it.
    """

    def __init__(self, capacity_blocks: int) -> None:
        if capacity_blocks < 1:
            raise ValueError(f"capacity must be >= 1 (got {capacity_blocks})")
        self.capacity_blocks = capacity_blocks
        self._slots: list[Optional[Block]] = [None] * capacity_blocks
        self._counter = 0
        # request id -> {block index -> slot} for O(1) lookups.
        self._index: dict[int, dict[int, int]] = {}
        # Called with the affected request id when a *live* block copy
        # is unlinked by FIFO replacement (its prefix may have shrunk),
        # or with None when the whole cache is cleared.  The scheduler's
        # incrementally-maintained `have` array subscribes here so it
        # never has to re-walk the mirror per allocation.
        self._evict_listeners: list = []

    def add_evict_listener(self, listener) -> None:
        """Register ``listener(request_or_None)`` for live-copy evictions."""
        self._evict_listeners.append(listener)

    # -- mutation ----------------------------------------------------

    def put(self, block: Block) -> Optional[Block]:
        """Insert ``block`` into slot ``counter % C``; return any evictee.

        A duplicate (request, index) pair replaces its older copy's
        index entry — the stale slot is left to age out, matching what a
        real client would do (the old bytes are unreachable).
        """
        slot = self._counter % self.capacity_blocks
        self._counter += 1
        evicted = self._slots[slot]
        unlinked = None
        if evicted is not None:
            by_index = self._index.get(evicted.request)
            # Only unlink if this slot is still the live copy.
            if by_index is not None and by_index.get(evicted.index) == slot:
                del by_index[evicted.index]
                if not by_index:
                    del self._index[evicted.request]
                unlinked = evicted.request
        self._slots[slot] = block
        self._index.setdefault(block.request, {})[block.index] = slot
        if unlinked is not None:
            for listener in self._evict_listeners:
                listener(unlinked)
        return evicted

    def clear(self) -> None:
        self._slots = [None] * self.capacity_blocks
        self._index.clear()
        self._counter = 0
        for listener in self._evict_listeners:
            listener(None)

    # -- queries -----------------------------------------------------

    @property
    def blocks_received(self) -> int:
        """Total puts so far (drives the slot cursor)."""
        return self._counter

    def has(self, request: int) -> bool:
        """True if >= 1 block for ``request`` is cached (upcall condition)."""
        return request in self._index

    def block_count(self, request: int) -> int:
        """Number of cached blocks for ``request``."""
        return len(self._index.get(request, ()))

    def block_indices(self, request: int) -> set[int]:
        """Set of cached block indices for ``request``."""
        return set(self._index.get(request, ()))

    def prefix_len(self, request: int) -> int:
        """Longest contiguous prefix 0..k-1 present for ``request``.

        Rendering quality is defined over prefixes (§3.3): block 3
        without blocks 0–2 cannot be decoded, so utility is computed
        from the prefix, not the raw count.
        """
        by_index = self._index.get(request)
        if not by_index:
            return 0
        k = 0
        while k in by_index:
            k += 1
        return k

    def get(self, request: int, index: int) -> Optional[Block]:
        slot = self._index.get(request, {}).get(index)
        return self._slots[slot] if slot is not None else None

    def cached_requests(self) -> set[int]:
        return set(self._index)

    def occupancy(self) -> int:
        """Number of occupied slots."""
        return sum(1 for s in self._slots if s is not None)

    def mirror_put(self, request: int, index: int, size_bytes: int = 1) -> Optional[Block]:
        """Server-side convenience: feed the mirror without a payload."""
        return self.put(Block(request=request, index=index, size_bytes=size_bytes))


class LRUCache:
    """Byte-budgeted least-recently-used cache of whole responses.

    Used by the ``Baseline`` and ``ACC-*-*`` comparison systems, which
    fetch and cache complete responses.  ``get`` refreshes recency;
    inserting over budget evicts the least recently used entries.  A
    single entry larger than the whole budget is rejected (returned
    False) rather than silently evicting everything.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive (got {capacity_bytes})")
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[Hashable, tuple[Any, int]] = OrderedDict()
        self._used = 0
        self.evictions = 0

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def used_bytes(self) -> int:
        return self._used

    def get(self, key: Hashable) -> Optional[Any]:
        """Value for ``key`` (refreshing recency), or None."""
        hit = self._entries.get(key)
        if hit is None:
            return None
        self._entries.move_to_end(key)
        return hit[0]

    def peek(self, key: Hashable) -> Optional[Any]:
        """Value for ``key`` without touching recency."""
        hit = self._entries.get(key)
        return hit[0] if hit is not None else None

    def put(self, key: Hashable, value: Any, size_bytes: int) -> bool:
        """Insert/replace ``key``; evict LRU entries to fit.  False if too big."""
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        if size_bytes > self.capacity_bytes:
            return False
        old = self._entries.pop(key, None)
        if old is not None:
            self._used -= old[1]
        while self._used + size_bytes > self.capacity_bytes:
            _evicted_key, (_v, sz) = self._entries.popitem(last=False)
            self._used -= sz
            self.evictions += 1
        self._entries[key] = (value, size_bytes)
        self._used += size_bytes
        return True

    def remove(self, key: Hashable) -> bool:
        old = self._entries.pop(key, None)
        if old is None:
            return False
        self._used -= old[1]
        return True

    def clear(self) -> None:
        self._entries.clear()
        self._used = 0

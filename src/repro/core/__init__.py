"""Khameleon core: the paper's primary contribution.

Progressive blocks and caches (§3.3), the scheduling problem with its
greedy (§5.3) and ILP (§5.2) solvers, the paced sender (§5.3.2), and
the client/server assemblies (§3.2).
"""

from .blocks import Block, ProgressiveResponse, RequestSpace
from .cache import LRUCache, RingBufferCache
from .cache_manager import CacheManager, RequestOutcome, Upcall
from .client import KhameleonClient
from .distribution import RequestDistribution
from .greedy import GreedyScheduler
from .ilp import ILPScheduler, ILPSolution
from .qlearning import QLearningConfig, QLearningScheduler
from .semantics import PredictionArrival, ReferenceScheduler
from .predictor_manager import PredictorManager
from .scheduler import GainTable, ScheduledBlock, Scheduler, expected_utility
from .sender import Sender
from .server import KhameleonServer
from .session import KhameleonSession, SessionConfig
from .utility import (
    LinearUtility,
    PiecewiseUtility,
    PowerUtility,
    UtilityFunction,
    ssim_image_utility,
)

__all__ = [
    "Block",
    "ProgressiveResponse",
    "RequestSpace",
    "RingBufferCache",
    "LRUCache",
    "CacheManager",
    "RequestOutcome",
    "Upcall",
    "RequestDistribution",
    "UtilityFunction",
    "LinearUtility",
    "PowerUtility",
    "PiecewiseUtility",
    "ssim_image_utility",
    "GainTable",
    "ScheduledBlock",
    "Scheduler",
    "expected_utility",
    "GreedyScheduler",
    "ILPScheduler",
    "ILPSolution",
    "QLearningScheduler",
    "QLearningConfig",
    "ReferenceScheduler",
    "PredictionArrival",
    "Sender",
    "KhameleonServer",
    "KhameleonClient",
    "KhameleonSession",
    "SessionConfig",
    "PredictorManager",
]
